//! Integration tests for Example 1.1 distributed Set Disjointness: the
//! classical streaming protocol and the quantum Grover round-trip
//! protocol, run on the real CONGEST simulator over a length-D path.
//!
//! This is the test-suite form of the `ex11_disjointness` bin's
//! assertions: planted-intersection and disjoint instances across
//! b ∈ {64, 256, 1024}, answer correctness on both channels, measured
//! round counts against the closed forms, and the crossover ordering.

use qdc_algos::disjointness::{
    classical_disjointness, classical_rounds, quantum_disjointness, quantum_disjointness_seeded,
    quantum_rounds,
};
use qdc_congest::{CongestConfig, NullTelemetry, RunOptions};
use qdc_graph::generate;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The bin's instance family: pseudorandom `x`, complemented `y`
/// (disjoint by construction), optionally one shared element forced in
/// at `b/2` on both sides.
fn instance(b: usize, plant: bool) -> (Vec<bool>, Vec<bool>, bool) {
    let mut x = generate::random_bits(b, 100 + b as u64);
    let mut y: Vec<bool> = x.iter().map(|&v| !v).collect();
    if plant {
        x[b / 2] = true;
        y[b / 2] = true;
    }
    let planted = x.iter().zip(&y).any(|(&a, &c)| a && c);
    assert_eq!(planted, plant, "the plant site must actually intersect");
    (x, y, planted)
}

#[test]
fn ex11_both_protocols_decide_planted_and_disjoint_instances() {
    let d = 16;
    let bandwidth = 16;
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    for b in [64usize, 256, 1024] {
        for plant in [false, true] {
            let (x, y, planted) = instance(b, plant);

            let c_run = classical_disjointness(&x, &y, d, CongestConfig::classical(bandwidth));
            assert_eq!(
                c_run.disjoint, !planted,
                "classical verdict wrong at b = {b}, plant = {plant}"
            );

            let q_run =
                quantum_disjointness(&x, &y, d, CongestConfig::quantum(bandwidth), &mut rng);
            assert_eq!(
                q_run.disjoint, !planted,
                "quantum verdict wrong at b = {b}, plant = {plant}"
            );
        }
    }
}

#[test]
fn ex11_measured_rounds_match_the_closed_forms() {
    let d = 16;
    let bandwidth = 16;
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    for b in [64usize, 256, 1024] {
        let (x, y, _) = instance(b, b >= 256);

        let c_run = classical_disjointness(&x, &y, d, CongestConfig::classical(bandwidth));
        let c_pred = classical_rounds(b, d, bandwidth);
        assert!(
            (c_pred..=c_pred + 2).contains(&c_run.ledger.rounds),
            "classical b = {b}: measured {} vs predicted {c_pred}",
            c_run.ledger.rounds
        );

        let q_run = quantum_disjointness(&x, &y, d, CongestConfig::quantum(bandwidth), &mut rng);
        assert_eq!(
            q_run.ledger.rounds,
            quantum_rounds(b, d),
            "the quantum bounce is exactly 2·D rounds per query (b = {b})"
        );
    }
}

#[test]
fn ex11_seeded_entry_point_is_reproducible() {
    let (x, y, _) = instance(256, true);
    let run = |seed| {
        let (run, report) = quantum_disjointness_seeded(
            &x,
            &y,
            4,
            CongestConfig::quantum(16),
            seed,
            RunOptions::default(),
            &mut NullTelemetry,
        );
        (run.disjoint, run.ledger.rounds, report.bits_sent)
    };
    assert_eq!(run(11), run(11), "equal seeds give byte-equal outcomes");
}

#[test]
fn ex11_crossover_ordering_holds_on_the_measured_curve() {
    // At D = 2 the quantum protocol's 2·D·⌈(π/4)√b⌉ rounds undercut the
    // classical ⌈b/B⌉ + D − 1 pipeline only once b clears the analytic
    // crossover √b ≈ (π/2)·D·B — below it, classical wins.
    let d = 2;
    let bandwidth = 12;
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let mut saw_classical_win = false;
    let mut saw_quantum_win = false;
    for b in [64usize, 1024, 4096] {
        let (x, y, _) = instance(b, b >= 256);
        let c_run = classical_disjointness(&x, &y, d, CongestConfig::classical(bandwidth));
        let q_run = quantum_disjointness(&x, &y, d, CongestConfig::quantum(bandwidth), &mut rng);
        let predicted_q_wins = quantum_rounds(b, d) < classical_rounds(b, d, bandwidth);
        let measured_q_wins = q_run.ledger.rounds < c_run.ledger.rounds;
        assert_eq!(
            measured_q_wins, predicted_q_wins,
            "measured ordering diverges from the closed forms at b = {b}"
        );
        saw_classical_win |= !measured_q_wins;
        saw_quantum_win |= measured_q_wins;
    }
    assert!(saw_classical_win, "the grid must include pre-crossover b");
    assert!(saw_quantum_win, "the grid must include post-crossover b");
}
