//! Example 1.1: distributed Set Disjointness, classical vs quantum.
//!
//! Two nodes at the ends of a distance-`D` path hold `b`-bit sets `x` and
//! `y` and must decide whether `⟨x, y⟩ = 0`:
//!
//! * **classically**, Ω̃(b) bits must cross the path, so pipelined
//!   streaming needs ≈ `D + b/B` rounds — and by the Simulation Theorem
//!   of Das Sarma et al. this is optimal up to log factors;
//! * **quantumly**, the Aaronson–Ambainis protocol runs a distributed
//!   Grover search with `⌈(π/4)√b⌉` oracle queries, each a round trip
//!   over the path: ≈ `2·D·(π/4)√b` rounds. For `b = √n`, `D = O(log n)`
//!   this beats the classical bound — the one genuine quantum speedup in
//!   the paper, and the reason its lower bounds cannot come from
//!   Disjointness.

use crate::flood::stage_cap;
use crate::ledger::Ledger;
use crate::widths::bits_for;
use qdc_congest::{
    BitString, CongestConfig, Inbox, Message, NodeAlgorithm, NodeInfo, NullTelemetry, Outbox,
    RunOptions, RunReport, Simulator, Telemetry,
};
use qdc_graph::Graph;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Result of a distributed Disjointness run.
#[derive(Clone, Debug)]
pub struct DisjointnessRun {
    /// `true` iff the sets are disjoint (`⟨x, y⟩ = 0`).
    pub disjoint: bool,
    /// Accumulated cost (bits for the classical run, qubits for quantum).
    pub ledger: Ledger,
}

/// Closed-form round count of the classical streaming protocol.
pub fn classical_rounds(b: usize, d: usize, bandwidth: usize) -> usize {
    d + b.div_ceil(bandwidth).saturating_sub(1)
}

/// Closed-form round count of the quantum protocol: `2·D` rounds per
/// Grover query.
pub fn quantum_rounds(b: usize, d: usize) -> usize {
    2 * d * qdc_quantum::grover::disjointness_queries(b)
}

// ---------------------------------------------------------------------------
// Classical streaming
// ---------------------------------------------------------------------------

enum StreamRole {
    /// Holds `y`, streams it left in `B`-bit chunks.
    Sender { chunks: Vec<BitString> },
    /// Relays chunks toward node 0.
    Relay,
    /// Holds `x`, collects `y` and decides.
    Receiver {
        x: Vec<bool>,
        received: Vec<bool>,
        expected: usize,
        decided: Option<bool>,
    },
}

struct StreamNode {
    role: StreamRole,
    toward_receiver: Option<usize>, // port toward node 0 (None at node 0)
}

impl NodeAlgorithm for StreamNode {
    fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
        if let StreamRole::Sender { chunks } = &mut self.role {
            if let Some(chunk) = chunks.pop() {
                let p = self.toward_receiver.expect("sender has a left port");
                out.send(p, Message::from_bits(chunk));
            }
        }
    }
    fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        match &mut self.role {
            StreamRole::Sender { chunks } => {
                if let Some(chunk) = chunks.pop() {
                    let p = self.toward_receiver.expect("sender has a left port");
                    out.send(p, Message::from_bits(chunk));
                }
            }
            StreamRole::Relay => {
                // Forward anything arriving from the right to the left.
                for (port, msg) in inbox.iter() {
                    if Some(port) != self.toward_receiver {
                        let p = self.toward_receiver.expect("relay has a left port");
                        out.send(p, Message::from_bits(msg.payload().clone()));
                    }
                }
            }
            StreamRole::Receiver {
                x,
                received,
                expected,
                decided,
            } => {
                for (_, msg) in inbox.iter() {
                    received.extend(msg.payload().to_bools());
                }
                if decided.is_none() && received.len() >= *expected {
                    let disjoint = !x.iter().zip(received.iter()).any(|(&a, &b)| a && b);
                    *decided = Some(disjoint);
                }
            }
        }
    }
    fn is_terminated(&self) -> bool {
        match &self.role {
            StreamRole::Sender { chunks } => chunks.is_empty(),
            StreamRole::Relay => true,
            StreamRole::Receiver { decided, .. } => decided.is_some(),
        }
    }
}

/// Runs the classical streaming protocol on a path of `d` hops with
/// endpoints holding `x` (node 0) and `y` (node `d`).
///
/// # Panics
///
/// Panics if `x` and `y` differ in length, are empty, or `d == 0`.
pub fn classical_disjointness(
    x: &[bool],
    y: &[bool],
    d: usize,
    cfg: CongestConfig,
) -> DisjointnessRun {
    let (run, _) =
        classical_disjointness_observed(x, y, d, cfg, RunOptions::default(), &mut NullTelemetry);
    run
}

/// [`classical_disjointness`] with execution [`RunOptions`] and a
/// [`Telemetry`] sink observing every round — the campaign-facing entry
/// point. The outcome and the [`RunReport`] are bit-for-bit those of
/// the plain run at any thread count.
///
/// # Panics
///
/// Panics if `x` and `y` differ in length, are empty, or `d == 0`.
pub fn classical_disjointness_observed<T: Telemetry>(
    x: &[bool],
    y: &[bool],
    d: usize,
    cfg: CongestConfig,
    options: RunOptions,
    telemetry: &mut T,
) -> (DisjointnessRun, RunReport) {
    assert_eq!(x.len(), y.len(), "inputs must have equal length");
    assert!(!x.is_empty() && d >= 1, "need non-empty inputs and d ≥ 1");
    let b = x.len();
    let graph = Graph::path(d + 1);
    let chunk_bits = cfg.bandwidth_bits;
    // Chunks are popped back-to-front: store in reverse order.
    let mut chunks: Vec<BitString> = y.chunks(chunk_bits).map(BitString::from_bools).collect();
    chunks.reverse();

    let mut ledger = Ledger::new();
    let sim = Simulator::with_options(&graph, cfg, options);
    let (nodes, report, _) = sim.run_traced_observed(
        |info| {
            let id = info.id.0 as usize;
            let toward_receiver = if id == 0 {
                None
            } else {
                info.port_to(qdc_graph::NodeId((id - 1) as u32))
            };
            let role = if id == d {
                StreamRole::Sender {
                    chunks: chunks.clone(),
                }
            } else if id == 0 {
                StreamRole::Receiver {
                    x: x.to_vec(),
                    received: Vec::new(),
                    expected: b,
                    decided: None,
                }
            } else {
                StreamRole::Relay
            };
            StreamNode {
                role,
                toward_receiver,
            }
        },
        stage_cap(d + 1) + b,
        telemetry,
    );
    ledger.absorb(&report);
    let disjoint = match &nodes[0].role {
        StreamRole::Receiver { decided, .. } => decided.expect("receiver decided"),
        _ => unreachable!("node 0 is the receiver"),
    };
    (DisjointnessRun { disjoint, ledger }, report)
}

// ---------------------------------------------------------------------------
// Quantum (Grover) round-trip accounting
// ---------------------------------------------------------------------------

struct BounceNode {
    kind: BounceKind,
    width: usize,
}

enum BounceKind {
    /// Node 0: initiates `trips` round trips.
    Left {
        trips: usize,
        completed: usize,
    },
    Relay,
    Right,
}

impl NodeAlgorithm for BounceNode {
    fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
        if let BounceKind::Left { trips, .. } = self.kind {
            if trips > 0 {
                out.send(0, Message::from_uint(0, self.width));
            }
        }
    }
    fn on_round(&mut self, info: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        for (port, msg) in inbox.iter() {
            match &mut self.kind {
                BounceKind::Left { trips, completed } => {
                    *completed += 1;
                    if completed < trips {
                        out.send(0, Message::from_uint(0, self.width));
                    }
                }
                BounceKind::Relay => {
                    let other = 1 - port;
                    out.send(other, Message::from_bits(msg.payload().clone()));
                }
                BounceKind::Right => {
                    let _ = info;
                    out.send(port, Message::from_bits(msg.payload().clone()));
                }
            }
        }
    }
    fn is_terminated(&self) -> bool {
        match self.kind {
            BounceKind::Left { trips, completed } => completed >= trips,
            _ => true,
        }
    }
}

/// Runs the quantum Disjointness protocol: `⌈(π/4)√b⌉` Grover queries,
/// each a `⌈log₂ b⌉`-qubit round trip over the `d`-hop path, with the
/// search outcome simulated exactly (for `b ≤ 4096`) by the state-vector
/// Grover of `qdc-quantum`.
///
/// # Panics
///
/// Panics if the inputs mismatch, `d == 0`, or the query register does
/// not fit the qubit budget.
pub fn quantum_disjointness<R: Rng + ?Sized>(
    x: &[bool],
    y: &[bool],
    d: usize,
    cfg: CongestConfig,
    rng: &mut R,
) -> DisjointnessRun {
    let (run, _) =
        quantum_disjointness_observed(x, y, d, cfg, rng, RunOptions::default(), &mut NullTelemetry);
    run
}

/// [`quantum_disjointness`] with a `u64` seed instead of a caller-held
/// RNG: the Grover measurement stream comes from a [`ChaCha8Rng`]
/// seeded with `seed`, so two invocations with equal arguments are
/// byte-identical — the form campaign points use.
pub fn quantum_disjointness_seeded<T: Telemetry>(
    x: &[bool],
    y: &[bool],
    d: usize,
    cfg: CongestConfig,
    seed: u64,
    options: RunOptions,
    telemetry: &mut T,
) -> (DisjointnessRun, RunReport) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    quantum_disjointness_observed(x, y, d, cfg, &mut rng, options, telemetry)
}

/// [`quantum_disjointness`] with execution [`RunOptions`] and a
/// [`Telemetry`] sink observing every query round trip. The outcome and
/// the [`RunReport`] are bit-for-bit those of the plain run at any
/// thread count.
///
/// # Panics
///
/// Panics if the inputs mismatch, `d == 0`, or the query register does
/// not fit the qubit budget.
pub fn quantum_disjointness_observed<R: Rng + ?Sized, T: Telemetry>(
    x: &[bool],
    y: &[bool],
    d: usize,
    cfg: CongestConfig,
    rng: &mut R,
    options: RunOptions,
    telemetry: &mut T,
) -> (DisjointnessRun, RunReport) {
    assert_eq!(x.len(), y.len(), "inputs must have equal length");
    assert!(!x.is_empty() && d >= 1, "need non-empty inputs and d ≥ 1");
    let b = x.len();
    let width = bits_for(b.saturating_sub(1) as u64);
    assert!(
        width * cfg.charge_factor() <= cfg.bandwidth_bits,
        "query register exceeds B qubits"
    );
    let trips = qdc_quantum::grover::disjointness_queries(b);

    // The decision itself: exact Grover simulation when feasible, else
    // the classical evaluation (the *outcome* distribution is what the
    // state-vector simulation establishes; the cost model is the bounce).
    let disjoint = if b <= 4096 {
        let (intersects, _) = qdc_quantum::grover::disjointness_grover(x, y, 3, rng);
        !intersects
    } else {
        !x.iter().zip(y).any(|(&a, &b)| a && b)
    };

    let graph = Graph::path(d + 1);
    let mut ledger = Ledger::new();
    let sim = Simulator::with_options(&graph, cfg, options);
    let (_, report, _) = sim.run_traced_observed(
        |info| {
            let id = info.id.0 as usize;
            let kind = if id == 0 {
                BounceKind::Left {
                    trips,
                    completed: 0,
                }
            } else if id == d {
                BounceKind::Right
            } else {
                BounceKind::Relay
            };
            BounceNode { kind, width }
        },
        2 * d * trips + 10,
        telemetry,
    );
    ledger.absorb(&report);
    (DisjointnessRun { disjoint, ledger }, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn classical_protocol_is_correct() {
        let cfg = CongestConfig::classical(8);
        let x: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
        let mut y: Vec<bool> = (0..64).map(|i| i % 3 == 1).collect();
        let run = classical_disjointness(&x, &y, 5, cfg);
        assert!(run.disjoint);
        y[33] = true; // 33 % 3 == 0 → intersection
        let run = classical_disjointness(&x, &y, 5, cfg);
        assert!(!run.disjoint);
    }

    #[test]
    fn classical_rounds_match_pipeline_formula() {
        let cfg = CongestConfig::classical(8);
        let b = 64;
        let d = 10;
        let x = vec![false; b];
        let y = vec![false; b];
        let run = classical_disjointness(&x, &y, d, cfg);
        let predicted = classical_rounds(b, d, 8); // 10 + 8 - 1 = 17
                                                   // Quiescence adds O(1) slack.
        assert!(
            run.ledger.rounds >= predicted && run.ledger.rounds <= predicted + 2,
            "rounds {} vs predicted {predicted}",
            run.ledger.rounds
        );
    }

    #[test]
    fn quantum_protocol_is_correct_and_counts_round_trips() {
        let cfg = CongestConfig::quantum(16);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut x = vec![false; 256];
        let mut y = vec![false; 256];
        x[100] = true;
        y[100] = true;
        let run = quantum_disjointness(&x, &y, 4, cfg, &mut rng);
        assert!(!run.disjoint);
        let trips = qdc_quantum::grover::disjointness_queries(256); // ⌈π/4·16⌉ = 13
        assert_eq!(run.ledger.rounds, 2 * 4 * trips);
        assert_eq!(quantum_rounds(256, 4), 2 * 4 * trips);
    }

    #[test]
    fn quantum_wins_for_large_b_small_d() {
        // Example 1.1's regime: b = √n, D = log n. For n = 2^20:
        let b = 1024; // √n
        let d = 20; // log₂ n
        let bandwidth = 20; // B = log n
        let classical = classical_rounds(b, d, bandwidth); // ≈ 20 + 52
        let quantum = quantum_rounds(b, d); // 2·20·26 = 1040 … larger!
                                            // At this scale the quantum protocol's 2·D·B factor still
                                            // dominates (crossover at √b ≈ (π/2)·D·B ≈ 628); push b past it
                                            // and quantum wins:
        let b2 = 1 << 22;
        assert!(quantum_rounds(b2, d) < classical_rounds(b2, d, bandwidth));
        // And the classical/quantum ratio grows like √b·…:
        let q_growth = quantum_rounds(b2 * 4, d) as f64 / quantum_rounds(b2, d) as f64;
        assert!(
            (q_growth - 2.0).abs() < 0.1,
            "quantum scales as √b: {q_growth}"
        );
        let c_growth = classical_rounds(b2 * 4, d, bandwidth) as f64
            / classical_rounds(b2, d, bandwidth) as f64;
        assert!(c_growth > 3.5, "classical scales as b: {c_growth}");
        let _ = (classical, quantum);
    }

    #[test]
    fn quantum_channel_accounting_is_labeled() {
        let cfg = CongestConfig::quantum(8);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let x = vec![true; 16];
        let y = vec![false; 16];
        let run = quantum_disjointness(&x, &y, 2, cfg, &mut rng);
        assert!(run.disjoint);
        assert!(run.ledger.bits > 0, "qubits are accounted in the ledger");
    }
}
