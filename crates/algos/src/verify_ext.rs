//! Distributed verification of the remaining Appendix A.2 / Corollary 3.7
//! problems: cycle containment, e-cycle containment, bipartiteness,
//! s-t connectivity, cut, s-t cut, edge-on-all-paths and simple path.
//!
//! All follow the same fragment-engine + aggregate recipe as
//! [`crate::verify`]; bipartiteness additionally runs a parity-carrying
//! label flood and a one-round conflict exchange.

use crate::flood::stage_cap;
use crate::fragments::count_components;
use crate::ledger::Ledger;
use crate::tree::{aggregate_to_root, broadcast_from_root, Agg};
use crate::verify::VerificationRun;
use crate::widths::{bits_for, id_width};
use qdc_congest::{CongestConfig, Inbox, Message, NodeAlgorithm, NodeInfo, Outbox, Simulator};
use qdc_graph::{EdgeId, Graph, NodeId, Subgraph};

/// **Cycle containment verification**: does `M` contain a cycle?
///
/// `M` is acyclic iff `|E(M)| = n − components(M)`; both sides are
/// aggregates.
pub fn verify_cycle_containment(
    graph: &Graph,
    cfg: CongestConfig,
    m: &Subgraph,
) -> VerificationRun {
    let mut ledger = Ledger::new();
    let out = count_components(graph, cfg, m, &mut ledger);
    let degrees: Vec<u64> = graph
        .nodes()
        .map(|u| m.degree_in(graph, u) as u64)
        .collect();
    let degree_sum = aggregate_to_root(
        graph,
        cfg,
        &out.bfs,
        &degrees,
        Agg::Sum,
        bits_for(2 * graph.edge_count().max(1) as u64),
        &mut ledger,
    );
    let edges = degree_sum / 2;
    let accept = edges > graph.node_count() as u64 - out.fragment_count as u64;
    let _ = broadcast_from_root(graph, cfg, &out.bfs, u64::from(accept), 1, &mut ledger);
    VerificationRun { accept, ledger }
}

/// **e-cycle containment verification**: does `M` contain a cycle through
/// the edge `e`?
///
/// Runs the component engine on `M − e` and checks whether the endpoints
/// of `e` still share a fragment (and that `e ∈ M`).
pub fn verify_e_cycle_containment(
    graph: &Graph,
    cfg: CongestConfig,
    m: &Subgraph,
    e: EdgeId,
) -> VerificationRun {
    let mut ledger = Ledger::new();
    if !m.contains(e) {
        return VerificationRun {
            accept: false,
            ledger,
        };
    }
    let mut without = m.clone();
    without.remove(e);
    let (u, v) = graph.endpoints(e);
    let run = verify_st_connectivity(graph, cfg, &without, u, v);
    ledger.merge(&run.ledger);
    VerificationRun {
        accept: run.accept,
        ledger,
    }
}

/// **s-t connectivity verification**: are `s` and `t` in the same
/// component of `M`?
///
/// Component labels from the fragment engine; `s` and `t` inject their
/// labels into two MIN-aggregates (everyone else contributes the identity
/// `u64::MAX`), and the root compares.
pub fn verify_st_connectivity(
    graph: &Graph,
    cfg: CongestConfig,
    m: &Subgraph,
    s: NodeId,
    t: NodeId,
) -> VerificationRun {
    let mut ledger = Ledger::new();
    let out = count_components(graph, cfg, m, &mut ledger);
    let width = id_width(graph.node_count()) + 1;
    let inject = |who: NodeId| -> Vec<u64> {
        graph
            .nodes()
            .map(|u| {
                if u == who {
                    out.fragment_of[u.index()]
                } else {
                    (1 << width) - 1
                }
            })
            .collect()
    };
    let s_label = aggregate_to_root(
        graph,
        cfg,
        &out.bfs,
        &inject(s),
        Agg::Min,
        width,
        &mut ledger,
    );
    let t_label = aggregate_to_root(
        graph,
        cfg,
        &out.bfs,
        &inject(t),
        Agg::Min,
        width,
        &mut ledger,
    );
    let accept = s_label == t_label;
    let _ = broadcast_from_root(graph, cfg, &out.bfs, u64::from(accept), 1, &mut ledger);
    VerificationRun { accept, ledger }
}

/// **Cut verification**: does removing `E(M)` disconnect `N`?
///
/// Runs the component engine on the complement subgraph.
pub fn verify_cut(graph: &Graph, cfg: CongestConfig, m: &Subgraph) -> VerificationRun {
    let mut ledger = Ledger::new();
    let out = count_components(graph, cfg, &m.complement(), &mut ledger);
    let accept = out.fragment_count > 1;
    let _ = broadcast_from_root(graph, cfg, &out.bfs, u64::from(accept), 1, &mut ledger);
    VerificationRun { accept, ledger }
}

/// **s-t cut verification**: does removing `E(M)` separate `s` from `t`?
pub fn verify_st_cut(
    graph: &Graph,
    cfg: CongestConfig,
    m: &Subgraph,
    s: NodeId,
    t: NodeId,
) -> VerificationRun {
    let run = verify_st_connectivity(graph, cfg, &m.complement(), s, t);
    VerificationRun {
        accept: !run.accept,
        ledger: run.ledger,
    }
}

/// **Edge-on-all-paths verification**: does `e` lie on every `u`–`v` path
/// in `M` (vacuously true if `u` and `v` are disconnected in `M`)?
pub fn verify_edge_on_all_paths(
    graph: &Graph,
    cfg: CongestConfig,
    m: &Subgraph,
    u: NodeId,
    v: NodeId,
    e: EdgeId,
) -> VerificationRun {
    let mut without = m.clone();
    without.remove(e);
    let run = verify_st_connectivity(graph, cfg, &without, u, v);
    VerificationRun {
        accept: !run.accept,
        ledger: run.ledger,
    }
}

/// **Simple path verification**: degrees in `{0, 1, 2}` with exactly two
/// degree-1 nodes, and no cycle.
pub fn verify_simple_path(graph: &Graph, cfg: CongestConfig, m: &Subgraph) -> VerificationRun {
    let mut ledger = Ledger::new();
    let out = count_components(graph, cfg, m, &mut ledger);
    let deg_ok: Vec<u64> = graph
        .nodes()
        .map(|n| u64::from(m.degree_in(graph, n) <= 2))
        .collect();
    let degrees_fine =
        aggregate_to_root(graph, cfg, &out.bfs, &deg_ok, Agg::And, 1, &mut ledger) == 1;
    let deg1: Vec<u64> = graph
        .nodes()
        .map(|n| u64::from(m.degree_in(graph, n) == 1))
        .collect();
    let sw = bits_for(graph.node_count() as u64);
    let deg1_count = aggregate_to_root(graph, cfg, &out.bfs, &deg1, Agg::Sum, sw, &mut ledger);
    let degrees_all: Vec<u64> = graph
        .nodes()
        .map(|n| m.degree_in(graph, n) as u64)
        .collect();
    let degree_sum = aggregate_to_root(
        graph,
        cfg,
        &out.bfs,
        &degrees_all,
        Agg::Sum,
        bits_for(2 * graph.edge_count().max(1) as u64),
        &mut ledger,
    );
    let edges = degree_sum / 2;
    let acyclic = edges == graph.node_count() as u64 - out.fragment_count as u64;
    let accept = degrees_fine && deg1_count == 2 && acyclic;
    let _ = broadcast_from_root(graph, cfg, &out.bfs, u64::from(accept), 1, &mut ledger);
    VerificationRun { accept, ledger }
}

// ---------------------------------------------------------------------------
// Bipartiteness: parity-carrying label flood + conflict exchange.
// ---------------------------------------------------------------------------

struct ParityFlood {
    origin: u64,
    parity: bool,
    active: Vec<bool>,
    width: usize,
}

impl ParityFlood {
    fn encode(&self) -> Message {
        let mut bits = qdc_congest::BitString::new();
        bits.push_uint(self.origin, self.width);
        bits.push_bit(self.parity);
        Message::from_bits(bits)
    }
    fn broadcast(&self, out: &mut Outbox, skip: Option<usize>) {
        for p in 0..self.active.len() {
            if self.active[p] && Some(p) != skip {
                out.send(p, self.encode());
            }
        }
    }
}

impl NodeAlgorithm for ParityFlood {
    fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
        self.broadcast(out, None);
    }
    fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        let mut improved = None;
        for (port, msg) in inbox.iter() {
            if !self.active[port] {
                continue;
            }
            let mut r = msg.reader();
            let origin = r.read_uint(self.width).expect("origin");
            let parity = r.read_bit().expect("parity");
            if origin < self.origin {
                self.origin = origin;
                self.parity = !parity;
                improved = Some(port);
            }
        }
        if let Some(port) = improved {
            self.broadcast(out, Some(port));
        }
    }
    fn is_terminated(&self) -> bool {
        true
    }
}

struct ParityCheck {
    origin: u64,
    parity: bool,
    active: Vec<bool>,
    conflict: bool,
    width: usize,
    started: bool,
}

impl NodeAlgorithm for ParityCheck {
    fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
        self.started = true;
        let mut bits = qdc_congest::BitString::new();
        bits.push_uint(self.origin, self.width);
        bits.push_bit(self.parity);
        for p in 0..self.active.len() {
            if self.active[p] {
                out.send(p, Message::from_bits(bits.clone()));
            }
        }
    }
    fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, _out: &mut Outbox) {
        for (port, msg) in inbox.iter() {
            if !self.active[port] {
                continue;
            }
            let mut r = msg.reader();
            let origin = r.read_uint(self.width).expect("origin");
            let parity = r.read_bit().expect("parity");
            // Same BFS-layer origin with equal parity across an M-edge ⇒
            // an odd cycle.
            if origin == self.origin && parity == self.parity {
                self.conflict = true;
            }
        }
    }
    fn is_terminated(&self) -> bool {
        self.started
    }
}

/// **Bipartiteness verification**: is `M` bipartite?
///
/// Each `M`-component is 2-colored by a parity-carrying minimum-origin
/// flood; a one-round exchange then flags any `M`-edge joining equal
/// parities, and the flags are OR-aggregated.
pub fn verify_bipartiteness(graph: &Graph, cfg: CongestConfig, m: &Subgraph) -> VerificationRun {
    let n = graph.node_count();
    let width = id_width(n);
    assert!(width < cfg.bandwidth_bits, "parity message exceeds B");
    let mut ledger = Ledger::new();
    let sim = Simulator::new(graph, cfg);

    let (flooded, report) = sim.run(
        |info| ParityFlood {
            origin: info.id.0 as u64,
            parity: false,
            active: info.incident_edges.iter().map(|&e| m.contains(e)).collect(),
            width,
        },
        stage_cap(n),
    );
    ledger.absorb(&report);

    let (checked, report) = sim.run(
        |info| {
            let i = info.id.index();
            ParityCheck {
                origin: flooded[i].origin,
                parity: flooded[i].parity,
                active: info.incident_edges.iter().map(|&e| m.contains(e)).collect(),
                conflict: false,
                width,
                started: false,
            }
        },
        stage_cap(n),
    );
    ledger.absorb(&report);

    // OR-aggregate the conflicts over a BFS tree and broadcast back.
    let leader = crate::flood::elect_leader(graph, cfg, &mut ledger);
    let bfs = crate::flood::build_bfs_tree(graph, cfg, leader, &mut ledger);
    let flags: Vec<u64> = checked.iter().map(|s| u64::from(s.conflict)).collect();
    let any_conflict = aggregate_to_root(graph, cfg, &bfs, &flags, Agg::Or, 1, &mut ledger) == 1;
    let accept = !any_conflict;
    let _ = broadcast_from_root(graph, cfg, &bfs, u64::from(accept), 1, &mut ledger);
    VerificationRun { accept, ledger }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdc_graph::{generate, predicates, Graph};

    fn cfg() -> CongestConfig {
        CongestConfig::classical(64)
    }

    #[test]
    fn cycle_containment_matches_predicate() {
        let g = Graph::cycle(8);
        assert!(verify_cycle_containment(&g, cfg(), &g.full_subgraph()).accept);
        let mut m = g.full_subgraph();
        m.remove(EdgeId(3));
        assert!(!verify_cycle_containment(&g, cfg(), &m).accept);
    }

    #[test]
    fn e_cycle_containment_matches_predicate() {
        // Triangle + pendant.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let m = g.full_subgraph();
        let in_cycle = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let pendant = g.find_edge(NodeId(2), NodeId(3)).unwrap();
        assert!(verify_e_cycle_containment(&g, cfg(), &m, in_cycle).accept);
        assert!(!verify_e_cycle_containment(&g, cfg(), &m, pendant).accept);
        let mut without = m.clone();
        without.remove(in_cycle);
        assert!(!verify_e_cycle_containment(&g, cfg(), &without, in_cycle).accept);
    }

    #[test]
    fn st_connectivity_matches_predicate() {
        let g = Graph::path(6);
        let m = g.full_subgraph();
        assert!(verify_st_connectivity(&g, cfg(), &m, NodeId(0), NodeId(5)).accept);
        let mut cut = m.clone();
        cut.remove(EdgeId(2));
        assert!(!verify_st_connectivity(&g, cfg(), &cut, NodeId(0), NodeId(5)).accept);
        assert!(verify_st_connectivity(&g, cfg(), &cut, NodeId(3), NodeId(5)).accept);
    }

    #[test]
    fn cut_and_st_cut_match_predicates() {
        let g = Graph::cycle(6);
        let m = qdc_graph::Subgraph::from_endpoint_pairs(
            &g,
            &[(NodeId(0), NodeId(1)), (NodeId(3), NodeId(4))],
        );
        assert!(verify_cut(&g, cfg(), &m).accept);
        assert_eq!(verify_cut(&g, cfg(), &m).accept, predicates::is_cut(&g, &m));
        // Removing M splits the 6-cycle into arcs {1,2,3} and {4,5,0}.
        assert!(verify_st_cut(&g, cfg(), &m, NodeId(1), NodeId(4)).accept);
        assert!(!verify_st_cut(&g, cfg(), &m, NodeId(1), NodeId(3)).accept);
    }

    #[test]
    fn edge_on_all_paths_matches_predicate() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let m = g.full_subgraph();
        let bridge = g.find_edge(NodeId(2), NodeId(3)).unwrap();
        let side = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        assert!(verify_edge_on_all_paths(&g, cfg(), &m, NodeId(0), NodeId(3), bridge).accept);
        assert!(!verify_edge_on_all_paths(&g, cfg(), &m, NodeId(0), NodeId(2), side).accept);
    }

    #[test]
    fn simple_path_matches_predicate() {
        let p = Graph::path(7);
        assert!(verify_simple_path(&p, cfg(), &p.full_subgraph()).accept);
        let c = Graph::cycle(5);
        assert!(!verify_simple_path(&c, cfg(), &c.full_subgraph()).accept);
        // Two disjoint edges in a connected host: four degree-1 nodes.
        let g = Graph::path(4);
        let mut m = g.full_subgraph();
        m.remove(EdgeId(1));
        assert!(!verify_simple_path(&g, cfg(), &m).accept);
    }

    #[test]
    fn bipartiteness_even_vs_odd_cycles() {
        let even = Graph::cycle(8);
        assert!(verify_bipartiteness(&even, cfg(), &even.full_subgraph()).accept);
        let odd = Graph::cycle(7);
        assert!(!verify_bipartiteness(&odd, cfg(), &odd.full_subgraph()).accept);
        // Removing one edge of the odd cycle restores bipartiteness.
        let mut m = odd.full_subgraph();
        m.remove(EdgeId(0));
        assert!(verify_bipartiteness(&odd, cfg(), &m).accept);
    }

    #[test]
    fn bipartiteness_on_random_subgraphs_matches_predicate() {
        for seed in 0..8 {
            let g = generate::random_connected(16, 18, seed + 70);
            let mut m = g.empty_subgraph();
            for (k, e) in g.edges().enumerate() {
                if !(k * 13 + seed as usize).is_multiple_of(3) {
                    m.insert(e);
                }
            }
            assert_eq!(
                verify_bipartiteness(&g, cfg(), &m).accept,
                predicates::is_bipartite(&g, &m),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn all_extended_verifiers_match_predicates_randomized() {
        for seed in 0..6 {
            let g = generate::random_connected(14, 14, seed + 90);
            let mut m = g.empty_subgraph();
            for (k, e) in g.edges().enumerate() {
                if (k * 7 + seed as usize) % 4 < 2 {
                    m.insert(e);
                }
            }
            assert_eq!(
                verify_cycle_containment(&g, cfg(), &m).accept,
                predicates::contains_cycle(&g, &m),
                "cycle seed {seed}"
            );
            let (s, t) = (NodeId(0), NodeId((g.node_count() - 1) as u32));
            assert_eq!(
                verify_st_connectivity(&g, cfg(), &m, s, t).accept,
                predicates::st_connected(&g, &m, s, t),
                "st seed {seed}"
            );
            assert_eq!(
                verify_cut(&g, cfg(), &m).accept,
                predicates::is_cut(&g, &m),
                "cut seed {seed}"
            );
            assert_eq!(
                verify_st_cut(&g, cfg(), &m, s, t).accept,
                predicates::is_st_cut(&g, &m, s, t),
                "st-cut seed {seed}"
            );
            assert_eq!(
                verify_simple_path(&g, cfg(), &m).accept,
                predicates::is_simple_path(&g, &m),
                "path seed {seed}"
            );
        }
    }
}
