//! Distributed single-source shortest paths (Bellman–Ford).
//!
//! The s-source distance problem of Appendix A.3: every node must learn
//! its weighted distance from `s`. The classic distributed Bellman–Ford
//! relaxes event-driven: a node that improves its distance announces the
//! new value to its neighbors. Rounds ≈ the maximum *hop count* of a
//! shortest path — the baseline the paper's Ω̃(√n) lower bound
//! (Corollary 3.9) is compared against.

use crate::flood::stage_cap;
use crate::ledger::Ledger;
use crate::widths::distance_width;
use qdc_congest::{CongestConfig, Inbox, Message, NodeAlgorithm, NodeInfo, Outbox, Simulator};
use qdc_graph::{EdgeWeights, Graph, NodeId};

/// Result of a distributed SSSP run.
#[derive(Clone, Debug)]
pub struct SsspRun {
    /// Distance from the source per node (`u64::MAX` if unreachable).
    pub dist: Vec<u64>,
    /// Port toward the parent in the shortest-path tree (`None` for the
    /// source and unreachable nodes).
    pub parent_port: Vec<Option<usize>>,
    /// Accumulated cost.
    pub ledger: Ledger,
}

struct BellmanFord {
    dist: u64,
    parent_port: Option<usize>,
    port_weight: Vec<u64>,
    width: usize,
}

impl BellmanFord {
    fn announce(&self, out: &mut Outbox) {
        for p in 0..self.port_weight.len() {
            out.send(p, Message::from_uint(self.dist, self.width));
        }
    }
}

impl NodeAlgorithm for BellmanFord {
    fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
        if self.dist == 0 {
            self.announce(out);
        }
    }
    fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        let mut improved = false;
        for (port, msg) in inbox.iter() {
            if let Some(d) = msg.as_uint(self.width) {
                let candidate = d.saturating_add(self.port_weight[port]);
                if candidate < self.dist {
                    self.dist = candidate;
                    self.parent_port = Some(port);
                    improved = true;
                }
            }
        }
        if improved {
            self.announce(out);
        }
    }
    fn is_terminated(&self) -> bool {
        true
    }
}

/// Runs distributed Bellman–Ford from `source`.
///
/// # Panics
///
/// Panics if a distance value cannot fit the bandwidth budget.
pub fn distributed_sssp(
    graph: &Graph,
    cfg: CongestConfig,
    weights: &EdgeWeights,
    source: NodeId,
) -> SsspRun {
    let n = graph.node_count();
    let w_max = graph.edges().map(|e| weights.weight(e)).max().unwrap_or(1);
    let width = distance_width(n, w_max);
    assert!(
        width <= cfg.bandwidth_bits,
        "distance ({width} bits) exceeds B"
    );
    let mut ledger = Ledger::new();
    let sim = Simulator::new(graph, cfg);
    let (nodes, report) = sim.run(
        |info| BellmanFord {
            dist: if info.id == source { 0 } else { u64::MAX },
            parent_port: None,
            port_weight: info
                .incident_edges
                .iter()
                .map(|&e| weights.weight(e))
                .collect(),
            width,
        },
        stage_cap(n) + n,
    );
    ledger.absorb(&report);
    SsspRun {
        dist: nodes.iter().map(|s| s.dist).collect(),
        parent_port: nodes.iter().map(|s| s.parent_port).collect(),
        ledger,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdc_graph::{algorithms, generate};

    fn cfg() -> CongestConfig {
        CongestConfig::classical(64)
    }

    #[test]
    fn distances_match_dijkstra() {
        for seed in 0..5 {
            let g = generate::random_connected(30, 40, seed);
            let w = generate::random_weights(&g, 20, seed + 1);
            let run = distributed_sssp(&g, cfg(), &w, NodeId(0));
            assert_eq!(
                run.dist,
                algorithms::dijkstra(&g, &w, NodeId(0)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn parent_ports_realize_distances() {
        let g = generate::random_connected(20, 25, 9);
        let w = generate::random_weights(&g, 9, 10);
        let run = distributed_sssp(&g, cfg(), &w, NodeId(5));
        for v in g.nodes() {
            if v == NodeId(5) {
                assert!(run.parent_port[v.index()].is_none());
                continue;
            }
            let p = run.parent_port[v.index()].expect("connected");
            let (e, u) = g.incident(v)[p];
            assert_eq!(
                run.dist[u.index()] + w.weight(e),
                run.dist[v.index()],
                "node {v}"
            );
        }
    }

    #[test]
    fn unreachable_nodes_stay_at_infinity() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let w = EdgeWeights::uniform(&g);
        let run = distributed_sssp(&g, cfg(), &w, NodeId(0));
        assert_eq!(run.dist, vec![0, 1, u64::MAX]);
    }

    #[test]
    fn rounds_track_hop_depth_not_weight() {
        // A path with huge weights still converges in ~n rounds.
        let g = Graph::path(30);
        let mut w = EdgeWeights::uniform(&g);
        for e in g.edges() {
            w.set(e, 1_000_000);
        }
        let run = distributed_sssp(&g, cfg(), &w, NodeId(0));
        assert_eq!(run.dist[29], 29_000_000);
        assert!(run.ledger.rounds <= 35, "rounds {}", run.ledger.rounds);
    }
}
