//! Distributed minimum spanning tree algorithms.
//!
//! Two algorithms, matching the two upper-bound regimes of Figure 3:
//!
//! * [`mst_exact`] — the Kutten–Peleg-style exact MST via the two-phase
//!   [`crate::fragments`] engine: Õ(√n + D) rounds, **independent of the
//!   weight aspect ratio `W`** (the flat branch of Figure 3);
//! * [`mst_approx_sweep`] — an Elkin-style α-approximation by threshold
//!   sweeping: weights are quantized to `q = ⌊(α−1)·w_min⌋` buckets and
//!   the classes are activated one per stage, merging fragments by
//!   event-driven minimum-label flooding. Rounds scale as
//!   `W/(α−1) + (merge work)` — the rising branch of Figure 3, so the two
//!   curves cross where `W/α ≈ √n`, exactly the crossover Theorem 3.8
//!   pins down.
//!
//! The approximation bound: with quantized classes `ĉ(e) = ⌈w(e)/q⌉`, any
//! spanning tree optimal under `ĉ` has true weight at most
//! `OPT + q·(n−1) ≤ α·OPT` (since `OPT ≥ (n−1)·w_min`); the sweep adds,
//! per class, exactly the edges that merge the class-`≤c` components, the
//! same count per class as Kruskal on `ĉ`.

use crate::flood::stage_cap;
use crate::fragments::{spanning_forest, FragmentConfig};
use crate::ledger::Ledger;
use crate::widths::id_width;
use qdc_congest::{CongestConfig, Inbox, Message, NodeAlgorithm, NodeInfo, Outbox, Simulator};
use qdc_graph::{EdgeId, EdgeWeights, Graph};

/// Result of a distributed MST computation.
#[derive(Clone, Debug)]
pub struct MstRun {
    /// The chosen tree (or forest) edges.
    pub edges: Vec<EdgeId>,
    /// Total weight under the *true* weights.
    pub total_weight: u64,
    /// Accumulated cost.
    pub ledger: Ledger,
}

/// Exact distributed MST (Kutten–Peleg style two-phase fragment engine).
pub fn mst_exact(graph: &Graph, cfg: CongestConfig, weights: &EdgeWeights) -> MstRun {
    let mut ledger = Ledger::new();
    let fc = FragmentConfig::for_network(graph.node_count());
    let out = spanning_forest(
        graph,
        cfg,
        weights,
        &graph.full_subgraph(),
        &fc,
        &mut ledger,
    );
    let total_weight = out.forest_edges.iter().map(|&e| weights.weight(e)).sum();
    MstRun {
        edges: out.forest_edges,
        total_weight,
        ledger,
    }
}

/// One sweep stage: event-driven minimum-label flooding over edges of
/// quantized class ≤ the current threshold, recording the adoption edge
/// (the port the final label arrived through).
struct SweepNode {
    label: u64,
    /// Quantized class per port (u64::MAX for no edge… all ports have
    /// edges; class of the incident edge).
    port_class: Vec<u64>,
    current_class: u64,
    adopted_port: Option<usize>,
    width: usize,
}

impl SweepNode {
    fn active(&self, port: usize) -> bool {
        self.port_class[port] <= self.current_class
    }
    fn broadcast(&self, out: &mut Outbox, skip: Option<usize>) {
        for p in 0..self.port_class.len() {
            if Some(p) != skip && self.active(p) {
                out.send(p, Message::from_uint(self.label, self.width));
            }
        }
    }
}

impl NodeAlgorithm for SweepNode {
    fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
        self.broadcast(out, None);
    }
    fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        // Collect the best improvement this round; among ports delivering
        // the same minimal label prefer the lowest (class, port) so that
        // cheap edges become tree edges.
        let mut best: Option<(u64, u64, usize)> = None; // (label, class, port)
        for (port, msg) in inbox.iter() {
            if let Some(v) = msg.as_uint(self.width) {
                let key = (v, self.port_class[port], port);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        if let Some((v, _, port)) = best {
            if v < self.label {
                self.label = v;
                self.adopted_port = Some(port);
                self.broadcast(out, Some(port));
            }
        }
    }
    fn is_terminated(&self) -> bool {
        true
    }
}

/// Elkin-style α-approximate MST by threshold sweeping.
///
/// # Panics
///
/// Panics if `alpha <= 1.0`, the graph is empty, or a label does not fit
/// the bandwidth budget.
pub fn mst_approx_sweep(
    graph: &Graph,
    cfg: CongestConfig,
    weights: &EdgeWeights,
    alpha: f64,
) -> MstRun {
    assert!(alpha > 1.0, "approximation factor must exceed 1");
    let n = graph.node_count();
    assert!(n > 0, "empty graph");
    let width = id_width(n);
    assert!(width <= cfg.bandwidth_bits, "label exceeds B");
    let mut ledger = Ledger::new();

    let w_min = graph.edges().map(|e| weights.weight(e)).min().unwrap_or(1);
    let w_max = graph.edges().map(|e| weights.weight(e)).max().unwrap_or(1);
    let q = (((alpha - 1.0) * w_min as f64).floor() as u64).max(1);
    let class_of = |e: EdgeId| weights.weight(e).div_ceil(q);
    let classes = w_max.div_ceil(q);

    let mut labels: Vec<u64> = (0..n as u64).collect();
    let mut adopted: Vec<Option<usize>> = vec![None; n];
    let sim = Simulator::new(graph, cfg);
    for c in 1..=classes {
        let (nodes, report) = sim.run(
            |info| {
                let i = info.id.index();
                SweepNode {
                    label: labels[i],
                    port_class: info.incident_edges.iter().map(|&e| class_of(e)).collect(),
                    current_class: c,
                    adopted_port: adopted[i],
                    width,
                }
            },
            stage_cap(n),
        );
        ledger.absorb(&report);
        for (i, s) in nodes.iter().enumerate() {
            labels[i] = s.label;
            adopted[i] = s.adopted_port;
        }
    }

    let mut edges: Vec<EdgeId> = graph
        .nodes()
        .filter_map(|u| adopted[u.index()].map(|p| graph.incident(u)[p].0))
        .collect();
    edges.sort();
    edges.dedup();
    let total_weight = edges.iter().map(|&e| weights.weight(e)).sum();
    MstRun {
        edges,
        total_weight,
        ledger,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdc_graph::{algorithms, generate, predicates, Subgraph};

    fn cfg() -> CongestConfig {
        CongestConfig::classical(64)
    }

    #[test]
    fn exact_mst_matches_kruskal() {
        for seed in 0..4 {
            let g = generate::random_connected(24, 20, seed);
            let w = generate::random_weights(&g, 30, seed + 9);
            let run = mst_exact(&g, cfg(), &w);
            assert_eq!(
                run.total_weight,
                algorithms::kruskal_mst(&g, &w).total_weight
            );
        }
    }

    #[test]
    fn sweep_produces_spanning_tree_within_alpha() {
        for seed in 0..5 {
            let g = generate::random_connected(30, 40, seed + 50);
            let w = generate::weights_with_aspect_ratio(&g, 32, seed + 60);
            for &alpha in &[1.5, 2.0, 4.0] {
                let run = mst_approx_sweep(&g, cfg(), &w, alpha);
                let sub = Subgraph::from_edges(&g, run.edges.iter().copied());
                assert!(
                    predicates::is_spanning_tree(&g, &sub),
                    "seed {seed}, α={alpha}"
                );
                let opt = algorithms::kruskal_mst(&g, &w).total_weight;
                let ratio = run.total_weight as f64 / opt as f64;
                assert!(
                    ratio <= alpha + 1e-9,
                    "seed {seed}, α={alpha}: ratio {ratio}"
                );
            }
        }
    }

    #[test]
    fn sweep_rounds_grow_with_aspect_ratio() {
        // Fixed n and α; rounds must grow roughly linearly in W.
        let g = generate::random_connected(24, 30, 7);
        let alpha = 2.0;
        let mut last = 0usize;
        for &w_max in &[8u64, 32, 128] {
            let w = generate::weights_with_aspect_ratio(&g, w_max, 8);
            let run = mst_approx_sweep(&g, cfg(), &w, alpha);
            assert!(
                run.ledger.rounds > last,
                "rounds should grow with W: {} then {}",
                last,
                run.ledger.rounds
            );
            last = run.ledger.rounds;
        }
        // The number of stages is ⌈W/⌊(α−1)·w_min⌋⌉ = W here (w_min = 1).
        assert!(last >= 128, "rounds {last}");
    }

    #[test]
    fn exact_mst_rounds_do_not_grow_with_aspect_ratio() {
        let g = generate::random_connected(24, 30, 7);
        let w_small = generate::weights_with_aspect_ratio(&g, 8, 8);
        let w_large = generate::weights_with_aspect_ratio(&g, 128, 8);
        let r_small = mst_exact(&g, cfg(), &w_small).ledger.rounds;
        let r_large = mst_exact(&g, cfg(), &w_large).ledger.rounds;
        // Same topology, same phase structure: rounds differ only by
        // incidental merge order.
        let lo = r_small.min(r_large) as f64;
        let hi = r_small.max(r_large) as f64;
        assert!(hi / lo < 1.5, "exact MST rounds {r_small} vs {r_large}");
    }

    #[test]
    fn sweep_is_exact_when_quantization_is_trivial() {
        // α large enough that q ≥ W makes a single class: the sweep then
        // merges everything at once; with unit weights the result is an
        // exact MST.
        let g = generate::random_connected(15, 10, 2);
        let w = qdc_graph::EdgeWeights::uniform(&g);
        let run = mst_approx_sweep(&g, cfg(), &w, 2.0);
        assert_eq!(run.total_weight, 14);
    }

    #[test]
    #[should_panic(expected = "must exceed 1")]
    fn alpha_one_rejected() {
        let g = generate::random_connected(5, 2, 0);
        let w = qdc_graph::EdgeWeights::uniform(&g);
        mst_approx_sweep(&g, cfg(), &w, 1.0);
    }
}
