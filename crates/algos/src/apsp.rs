//! Distributed all-pairs shortest paths, eccentricities and diameter.
//!
//! The paper's conclusion asks whether its technique extends to the
//! problems of Frischknecht–Holzer–Wattenhofer and Holzer–Wattenhofer
//! (\[FHW12, HW12\]): computing the diameter needs Ω̃(n) rounds even on
//! constant-diameter networks, and O(n)-round APSP is optimal. This
//! module implements the classic pipelined-BFS APSP (every node floods
//! its own hop-distance wave; waves queue per edge, one message per
//! round): Θ(n + D) rounds on unweighted networks — the upper-bound side
//! of that story, awaiting its quantum lower bound (open problem).

use crate::flood::stage_cap;
use crate::ledger::Ledger;
use crate::tree::{aggregate_to_root, Agg};
use crate::widths::{bits_for, id_width};
use qdc_congest::{
    BitString, CongestConfig, Inbox, Message, NodeAlgorithm, NodeInfo, Outbox, Simulator,
};
use qdc_graph::Graph;
use std::collections::VecDeque;

struct ApspNode {
    dist: Vec<u64>,
    outbound: VecDeque<(u32, u64)>,
    idw: usize,
    dw: usize,
}

impl ApspNode {
    fn encode(&self, source: u32, dist: u64) -> Message {
        let mut bits = BitString::new();
        bits.push_uint(source as u64, self.idw);
        bits.push_uint(dist, self.dw);
        Message::from_bits(bits)
    }
}

impl NodeAlgorithm for ApspNode {
    fn on_start(&mut self, info: &NodeInfo, out: &mut Outbox) {
        let me = info.id.0;
        self.dist[me as usize] = 0;
        for p in 0..info.degree() {
            out.send(p, self.encode(me, 1));
        }
    }
    fn on_round(&mut self, info: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        for (_, msg) in inbox.iter() {
            let mut r = msg.reader();
            let source = r.read_uint(self.idw).expect("source") as u32;
            let dist = r.read_uint(self.dw).expect("dist");
            if dist < self.dist[source as usize] {
                self.dist[source as usize] = dist;
                self.outbound.push_back((source, dist + 1));
            }
        }
        // One message per edge per round: drain the queue.
        if let Some((source, dist)) = self.outbound.pop_front() {
            for p in 0..info.degree() {
                out.send(p, self.encode(source, dist));
            }
        }
    }
    fn is_terminated(&self) -> bool {
        self.outbound.is_empty()
    }
}

/// Result of the distributed APSP computation.
#[derive(Clone, Debug)]
pub struct ApspRun {
    /// `dist[u][v]`: hop distance from `u` to `v` (`u64::MAX` if
    /// unreachable).
    pub dist: Vec<Vec<u64>>,
    /// Each node's eccentricity.
    pub eccentricity: Vec<u64>,
    /// The network diameter (as agreed at the coordinator and broadcast).
    pub diameter: u64,
    /// Accumulated cost.
    pub ledger: Ledger,
}

/// Computes hop-count APSP by pipelined BFS waves, then aggregates the
/// maximum eccentricity into the diameter (Θ(n + D) rounds — the
/// \[HW12\] upper bound).
///
/// # Panics
///
/// Panics if the `(source, distance)` message does not fit the bandwidth
/// budget.
pub fn distributed_apsp(graph: &Graph, cfg: CongestConfig) -> ApspRun {
    let n = graph.node_count();
    let idw = id_width(n);
    let dw = bits_for(n as u64);
    assert!(idw + dw <= cfg.bandwidth_bits, "APSP message exceeds B");
    let mut ledger = Ledger::new();
    let sim = Simulator::new(graph, cfg);
    let (nodes, report) = sim.run(
        |_info| ApspNode {
            dist: vec![u64::MAX; n],
            outbound: VecDeque::new(),
            idw,
            dw,
        },
        stage_cap(n) + n * n,
    );
    ledger.absorb(&report);
    let dist: Vec<Vec<u64>> = nodes.into_iter().map(|s| s.dist).collect();
    let eccentricity: Vec<u64> = dist
        .iter()
        .map(|row| row.iter().copied().max().unwrap_or(0))
        .collect();
    // Diameter = max eccentricity, agreed via the usual leader/BFS
    // aggregation.
    let leader = crate::flood::elect_leader(graph, cfg, &mut ledger);
    let bfs = crate::flood::build_bfs_tree(graph, cfg, leader, &mut ledger);
    let finite: Vec<u64> = eccentricity
        .iter()
        .map(|&e| if e == u64::MAX { (1 << dw) - 1 } else { e })
        .collect();
    let diameter = aggregate_to_root(graph, cfg, &bfs, &finite, Agg::Max, dw, &mut ledger);
    let _ = crate::tree::broadcast_from_root(graph, cfg, &bfs, diameter, dw, &mut ledger);
    ApspRun {
        dist,
        eccentricity,
        diameter,
        ledger,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdc_graph::{algorithms, generate, Graph, NodeId};

    fn cfg() -> CongestConfig {
        CongestConfig::classical(32)
    }

    #[test]
    fn apsp_matches_sequential_bfs() {
        for seed in 0..4 {
            let g = generate::random_connected(18, 14, seed);
            let run = distributed_apsp(&g, cfg());
            for u in g.nodes() {
                let reference = algorithms::bfs_distances(&g, &g.full_subgraph(), u);
                assert_eq!(run.dist[u.index()], reference, "seed {seed}, source {u}");
            }
        }
    }

    #[test]
    fn diameter_matches_exact() {
        for g in [
            Graph::path(12),
            Graph::cycle(11),
            generate::random_connected(20, 25, 9),
        ] {
            let run = distributed_apsp(&g, cfg());
            assert_eq!(run.diameter, algorithms::diameter(&g).expect("connected"),);
        }
    }

    #[test]
    fn rounds_scale_linearly_in_n_even_at_small_diameter() {
        // The [FHW12] phenomenon from the upper-bound side: on a
        // constant-diameter clique-like network APSP still pays ~n rounds
        // (congestion: n waves share each edge).
        let small = generate::random_connected(16, 100, 3);
        let large = generate::random_connected(48, 1000, 3);
        let r_small = distributed_apsp(&small, cfg()).ledger.rounds;
        let r_large = distributed_apsp(&large, cfg()).ledger.rounds;
        let ratio = r_large as f64 / r_small as f64;
        assert!(
            ratio > 1.8,
            "APSP rounds should grow with n despite flat diameter: {r_small} → {r_large}"
        );
    }

    #[test]
    fn eccentricities_are_consistent() {
        let g = Graph::path(9);
        let run = distributed_apsp(&g, cfg());
        assert_eq!(run.eccentricity[0], 8);
        assert_eq!(run.eccentricity[4], 4);
        assert_eq!(run.diameter, 8);
        let _ = NodeId(0);
    }
}
