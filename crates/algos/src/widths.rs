//! Message-width arithmetic.
//!
//! CONGEST algorithms are stated for `B = Θ(log n)`-bit messages; the
//! simulator enforces exact budgets, so every stage computes the width of
//! its message format from the instance parameters. These helpers keep
//! that arithmetic in one place.

/// Bits needed to represent values in `0..=max` (at least 1).
pub fn bits_for(max: u64) -> usize {
    (64 - max.leading_zeros() as usize).max(1)
}

/// Width of a node or fragment id in an `n`-node network.
pub fn id_width(n: usize) -> usize {
    bits_for(n.saturating_sub(1) as u64)
}

/// Width of an edge id in an `m`-edge network.
pub fn edge_width(m: usize) -> usize {
    bits_for(m.saturating_sub(1) as u64)
}

/// Width of a path length: distances are at most `n · w_max`.
pub fn distance_width(n: usize, w_max: u64) -> usize {
    bits_for((n as u64).saturating_mul(w_max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_powers() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u64::MAX), 64);
    }

    #[test]
    fn id_widths() {
        assert_eq!(id_width(1), 1);
        assert_eq!(id_width(2), 1);
        assert_eq!(id_width(1024), 10);
        assert_eq!(id_width(1025), 11);
        assert_eq!(edge_width(16), 4);
    }

    #[test]
    fn distance_widths() {
        assert_eq!(distance_width(8, 1), 4);
        assert_eq!(distance_width(1000, 1000), bits_for(1_000_000));
    }
}
