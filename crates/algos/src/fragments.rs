//! The two-phase fragment engine: distributed minimum spanning forests
//! and component counting in Õ(√n + D) style.
//!
//! This is the executable counterpart of the Kutten–Peleg / GHS machinery
//! the paper's upper bounds cite:
//!
//! * **Phase 1 (local, Controlled-GHS style)**: fragments (rooted trees of
//!   already-chosen forest edges) repeatedly find their minimum outgoing
//!   active edge by convergecast over the fragment tree, merge along the
//!   chosen edges, and relabel by an event-driven minimum-id flood over
//!   the merged structure. A fragment stops initiating merges once its
//!   size reaches the `size_threshold` (√n by default), which caps the
//!   work per phase.
//! * **Phase 2 (global, pipelined)**: with at most `n/√n = √n` initiating
//!   fragments left, per-fragment minimum outgoing edges are pipelined up
//!   a global BFS tree; the root (which, per the model, has unbounded
//!   local computation) performs the Borůvka merges centrally and streams
//!   the relabeling map and chosen edges back down. Each iteration costs
//!   O(D + #fragments) rounds.
//!
//! The same engine computes **connected components** of a subgraph `M`
//! (unit weights, edge-id tie-break): the resulting forest spans each
//! component, and the fragment count equals the number of components — the
//! primitive behind all the Section 2.2 verification algorithms.

use crate::flood::{build_bfs_tree, discover_children, elect_leader, stage_cap, BfsTreeInfo};
use crate::ledger::Ledger;
use crate::tree::{aggregate_to_root, broadcast_from_root, Agg};
use crate::widths::{bits_for, edge_width, id_width};
use qdc_congest::{
    BitString, CongestConfig, Inbox, Message, NodeAlgorithm, NodeInfo, Outbox, Simulator,
};
use qdc_graph::{EdgeId, EdgeWeights, Graph, NodeId, Subgraph};
use std::collections::{BTreeMap, VecDeque};

/// Tuning knobs for the fragment engine.
#[derive(Clone, Copy, Debug)]
pub struct FragmentConfig {
    /// Phase-1 growth cap: fragments of at least this size stop initiating
    /// merges (√n in Kutten–Peleg).
    pub size_threshold: usize,
    /// Safety cap on the number of merge phases.
    pub max_phases: usize,
}

impl FragmentConfig {
    /// The standard configuration for an `n`-node network: threshold √n.
    pub fn for_network(n: usize) -> Self {
        FragmentConfig {
            size_threshold: (n as f64).sqrt().ceil() as usize,
            max_phases: 4 * bits_for(n as u64) + 16,
        }
    }
}

/// Result of a fragment-engine run.
#[derive(Clone, Debug)]
pub struct FragmentOutcome {
    /// Final fragment id (the minimum original node id in the component)
    /// per node.
    pub fragment_of: Vec<u64>,
    /// The chosen forest edges (a minimum spanning forest of the active
    /// subgraph under the given weights, ties broken by edge id).
    pub forest_edges: Vec<EdgeId>,
    /// Number of fragments = connected components of the active subgraph
    /// (isolated nodes count).
    pub fragment_count: usize,
    /// The elected coordinator.
    pub leader: NodeId,
    /// The global BFS tree used for control and pipelining (reusable by
    /// callers for further aggregation).
    pub bfs: BfsTreeInfo,
}

// ---------------------------------------------------------------------------
// Shared per-node stage state kept by the orchestrator between stages.
// ---------------------------------------------------------------------------

struct EngineState {
    frag: Vec<u64>,
    fparent: Vec<Option<usize>>,
    fchildren: Vec<Vec<usize>>,
    chosen: Vec<bool>,
}

/// A node's local view of the minimum outgoing active edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Candidate {
    weight: u64,
    edge: u32,
    to_frag: u64,
}

impl Candidate {
    fn better_than(&self, other: &Option<Candidate>) -> bool {
        match other {
            None => true,
            Some(o) => (self.weight, self.edge) < (o.weight, o.edge),
        }
    }
}

// ---------------------------------------------------------------------------
// Stage: fragment-id exchange across active edges.
// ---------------------------------------------------------------------------

struct Exchange {
    frag: u64,
    width: usize,
    active_ports: Vec<bool>,
    nbr: Vec<Option<u64>>,
}

impl NodeAlgorithm for Exchange {
    fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
        for p in 0..self.active_ports.len() {
            if self.active_ports[p] {
                out.send(p, Message::from_uint(self.frag, self.width));
            }
        }
    }
    fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, _out: &mut Outbox) {
        for (port, msg) in inbox.iter() {
            self.nbr[port] = msg.as_uint(self.width);
        }
    }
    fn is_terminated(&self) -> bool {
        true
    }
}

/// Runs the exchange and computes each node's local outgoing candidate.
fn local_candidates(
    graph: &Graph,
    cfg: CongestConfig,
    state: &EngineState,
    weights: &EdgeWeights,
    active: &Subgraph,
    ledger: &mut Ledger,
) -> Vec<Option<Candidate>> {
    let width = id_width(graph.node_count());
    assert!(width <= cfg.bandwidth_bits, "fragment id exceeds B");
    let sim = Simulator::new(graph, cfg);
    let (nodes, report) = sim.run(
        |info| {
            let i = info.id.index();
            Exchange {
                frag: state.frag[i],
                width,
                active_ports: info
                    .incident_edges
                    .iter()
                    .map(|&e| active.contains(e))
                    .collect(),
                nbr: vec![None; info.degree()],
            }
        },
        stage_cap(graph.node_count()),
    );
    ledger.absorb(&report);

    graph
        .nodes()
        .map(|u| {
            let i = u.index();
            let mut best: Option<Candidate> = None;
            for (port, &(e, _)) in graph.incident(u).iter().enumerate() {
                if !active.contains(e) {
                    continue;
                }
                if let Some(nf) = nodes[i].nbr[port] {
                    if nf != state.frag[i] {
                        let cand = Candidate {
                            weight: weights.weight(e),
                            edge: e.0,
                            to_frag: nf,
                        };
                        if cand.better_than(&best) {
                            best = Some(cand);
                        }
                    }
                }
            }
            best
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Stage: fragment-tree convergecast of (min candidate, size).
// ---------------------------------------------------------------------------

struct FragConverge {
    parent_port: Option<usize>,
    pending: Vec<usize>,
    best: Option<(u64, u32)>,
    size: u64,
    ww: usize,
    ew: usize,
    sw: usize,
    sent: bool,
}

impl FragConverge {
    fn try_send(&mut self, out: &mut Outbox) {
        if self.sent || !self.pending.is_empty() {
            return;
        }
        self.sent = true;
        if let Some(p) = self.parent_port {
            let mut bits = BitString::new();
            bits.push_uint(self.size, self.sw);
            match self.best {
                Some((w, e)) => {
                    bits.push_bit(true);
                    bits.push_uint(w, self.ww);
                    bits.push_uint(e as u64, self.ew);
                }
                None => {
                    bits.push_bit(false);
                    bits.push_uint(0, self.ww);
                    bits.push_uint(0, self.ew);
                }
            }
            out.send(p, Message::from_bits(bits));
        }
    }
}

impl NodeAlgorithm for FragConverge {
    fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
        self.try_send(out);
    }
    fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        for (port, msg) in inbox.iter() {
            if let Some(pos) = self.pending.iter().position(|&c| c == port) {
                self.pending.swap_remove(pos);
                let mut r = msg.reader();
                let size = r.read_uint(self.sw).expect("size field");
                let present = r.read_bit().expect("flag field");
                let w = r.read_uint(self.ww).expect("weight field");
                let e = r.read_uint(self.ew).expect("edge field");
                self.size += size;
                if present {
                    let cand = (w, e as u32);
                    if self.best.is_none_or(|b| cand < b) {
                        self.best = Some(cand);
                    }
                }
            }
        }
        self.try_send(out);
    }
    fn is_terminated(&self) -> bool {
        self.sent
    }
}

// ---------------------------------------------------------------------------
// Stage: decision broadcast down the fragment tree.
// ---------------------------------------------------------------------------

struct DecisionBroadcast {
    decided: Option<u64>, // chosen edge id (roots that merge)
    children: Vec<usize>,
    incident: Vec<(usize, u32)>, // (port, edge id)
    merge_port: Option<usize>,
    ew: usize,
    started: bool,
}

impl DecisionBroadcast {
    fn forward(&mut self, out: &mut Outbox) {
        if let Some(e) = self.decided {
            for &c in &self.children {
                out.send(c, Message::from_uint(e, self.ew));
            }
            if let Some(&(port, _)) = self.incident.iter().find(|&&(_, eid)| eid as u64 == e) {
                self.merge_port = Some(port);
            }
        }
    }
}

impl NodeAlgorithm for DecisionBroadcast {
    fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
        self.started = true;
        self.forward(out);
    }
    fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        if self.decided.is_none() {
            if let Some((_, msg)) = inbox.iter().next() {
                self.decided = msg.as_uint(self.ew);
                self.forward(out);
            }
        }
    }
    fn is_terminated(&self) -> bool {
        self.started
    }
}

// ---------------------------------------------------------------------------
// Stage: notify the other endpoint of each chosen merge edge.
// ---------------------------------------------------------------------------

struct MergeNotify {
    announce: Option<usize>, // my merge port, if my fragment chose it
    merge_ports: Vec<usize>,
    started: bool,
}

impl NodeAlgorithm for MergeNotify {
    fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
        self.started = true;
        if let Some(p) = self.announce {
            self.merge_ports.push(p);
            out.send(p, Message::from_bit(true));
        }
    }
    fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, _out: &mut Outbox) {
        for (port, _) in inbox.iter() {
            if !self.merge_ports.contains(&port) {
                self.merge_ports.push(port);
            }
        }
    }
    fn is_terminated(&self) -> bool {
        self.started
    }
}

// ---------------------------------------------------------------------------
// Stage: event-driven minimum-id relabel flood over structure edges.
// ---------------------------------------------------------------------------

struct Relabel {
    cur: u64,
    parent_port: Option<usize>,
    structure: Vec<usize>,
    width: usize,
}

impl NodeAlgorithm for Relabel {
    fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
        for &p in &self.structure {
            out.send(p, Message::from_uint(self.cur, self.width));
        }
    }
    fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        let mut improved_from = None;
        for (port, msg) in inbox.iter() {
            if let Some(v) = msg.as_uint(self.width) {
                if v < self.cur {
                    self.cur = v;
                    improved_from = Some(port);
                }
            }
        }
        if let Some(port) = improved_from {
            self.parent_port = Some(port);
            for &p in &self.structure {
                if p != port {
                    out.send(p, Message::from_uint(self.cur, self.width));
                }
            }
        }
    }
    fn is_terminated(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------------
// Phase 2: pipelined per-fragment upcast over the global BFS tree.
// ---------------------------------------------------------------------------

struct PipedUpcast {
    parent_port: Option<usize>,
    pending_children: Vec<usize>,
    table: BTreeMap<u64, Candidate>,
    done: bool,
    idw: usize,
    ww: usize,
    ew: usize,
}

impl PipedUpcast {
    fn step(&mut self, out: &mut Outbox) {
        if self.done {
            return;
        }
        if !self.pending_children.is_empty() {
            return;
        }
        let Some(p) = self.parent_port else {
            // The BFS root never sends; it just finishes.
            self.done = true;
            return;
        };
        if let Some((&frag, &cand)) = self.table.iter().next() {
            let mut bits = BitString::new();
            bits.push_bit(false); // kind: entry
            bits.push_uint(frag, self.idw);
            bits.push_uint(cand.weight, self.ww);
            bits.push_uint(cand.edge as u64, self.ew);
            bits.push_uint(cand.to_frag, self.idw);
            out.send(p, Message::from_bits(bits));
            self.table.remove(&frag);
        } else {
            let mut bits = BitString::new();
            bits.push_bit(true); // kind: done
            out.send(p, Message::from_bits(bits));
            self.done = true;
        }
    }
    fn absorb(&mut self, frag: u64, cand: Candidate) {
        match self.table.get(&frag) {
            Some(existing) if !cand.better_than(&Some(*existing)) => {}
            _ => {
                self.table.insert(frag, cand);
            }
        }
    }
}

impl NodeAlgorithm for PipedUpcast {
    fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
        self.step(out);
    }
    fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        for (port, msg) in inbox.iter() {
            let mut r = msg.reader();
            let done = r.read_bit().expect("kind flag");
            if done {
                if let Some(pos) = self.pending_children.iter().position(|&c| c == port) {
                    self.pending_children.swap_remove(pos);
                }
            } else {
                let frag = r.read_uint(self.idw).expect("frag field");
                let weight = r.read_uint(self.ww).expect("weight field");
                let edge = r.read_uint(self.ew).expect("edge field") as u32;
                let to_frag = r.read_uint(self.idw).expect("to_frag field");
                self.absorb(
                    frag,
                    Candidate {
                        weight,
                        edge,
                        to_frag,
                    },
                );
            }
        }
        self.step(out);
    }
    fn is_terminated(&self) -> bool {
        self.done
    }
}

// ---------------------------------------------------------------------------
// Phase 2: downcast of the relabeling map and chosen edges.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum DownEntry {
    Mapping { old: u64, new: u64 },
    Chosen { edge: u32 },
    End,
}

struct Downcast {
    queue: VecDeque<DownEntry>, // root starts with the full stream
    children: Vec<usize>,
    frag: u64,
    incident: Vec<(usize, u32)>,
    chosen_here: Vec<u32>,
    is_root: bool,
    ended: bool,
    idw: usize,
    ew: usize,
}

impl Downcast {
    fn encode(&self, e: DownEntry) -> Message {
        let mut bits = BitString::new();
        match e {
            DownEntry::Mapping { old, new } => {
                bits.push_uint(0, 2);
                bits.push_uint(old, self.idw);
                bits.push_uint(new, self.idw);
            }
            DownEntry::Chosen { edge } => {
                bits.push_uint(1, 2);
                bits.push_uint(edge as u64, self.ew);
            }
            DownEntry::End => bits.push_uint(2, 2),
        }
        Message::from_bits(bits)
    }
    fn apply(&mut self, e: DownEntry) {
        match e {
            DownEntry::Mapping { old, new } => {
                if self.frag == old {
                    self.frag = new;
                }
            }
            DownEntry::Chosen { edge } => {
                if self.incident.iter().any(|&(_, eid)| eid == edge) {
                    self.chosen_here.push(edge);
                }
            }
            DownEntry::End => self.ended = true,
        }
    }
    fn pump(&mut self, out: &mut Outbox) {
        if let Some(e) = self.queue.pop_front() {
            for &c in &self.children {
                out.send(c, self.encode(e));
            }
            self.apply(e);
        }
    }
}

impl NodeAlgorithm for Downcast {
    fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
        if self.is_root {
            self.pump(out);
        }
    }
    fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        for (_, msg) in inbox.iter() {
            let mut r = msg.reader();
            let kind = r.read_uint(2).expect("kind field");
            let entry = match kind {
                0 => DownEntry::Mapping {
                    old: r.read_uint(self.idw).expect("old"),
                    new: r.read_uint(self.idw).expect("new"),
                },
                1 => DownEntry::Chosen {
                    edge: r.read_uint(self.ew).expect("edge") as u32,
                },
                _ => DownEntry::End,
            };
            self.queue.push_back(entry);
        }
        self.pump(out);
    }
    fn is_terminated(&self) -> bool {
        self.ended && self.queue.is_empty()
    }
}

// ---------------------------------------------------------------------------
// The orchestrated engine.
// ---------------------------------------------------------------------------

/// Computes a minimum spanning forest of the `active` subgraph under
/// `weights` (ties broken by edge id), together with component labels and
/// count. See the module docs for the two-phase structure and cost model.
///
/// # Panics
///
/// Panics if a message format does not fit the bandwidth budget, or the
/// engine fails to converge within `fc.max_phases` phases per phase type
/// (indicating a bug, not an input condition).
pub fn spanning_forest(
    graph: &Graph,
    cfg: CongestConfig,
    weights: &EdgeWeights,
    active: &Subgraph,
    fc: &FragmentConfig,
    ledger: &mut Ledger,
) -> FragmentOutcome {
    let n = graph.node_count();
    let m = graph.edge_count();
    let idw = id_width(n);
    let ew = edge_width(m.max(1));
    let max_w = graph.edges().map(|e| weights.weight(e)).max().unwrap_or(1);
    let ww = bits_for(max_w);
    let sw = bits_for(n as u64);

    let leader = elect_leader(graph, cfg, ledger);
    let bfs = build_bfs_tree(graph, cfg, leader, ledger);
    assert!(
        graph.nodes().all(|u| bfs.in_tree(u)),
        "the fragment engine requires a connected network (the CONGEST \
         model's communication graph); the subnetwork M may be disconnected"
    );

    let mut state = EngineState {
        frag: (0..n as u64).collect(),
        fparent: vec![None; n],
        fchildren: vec![Vec::new(); n],
        chosen: vec![false; m],
    };
    let sim = Simulator::new(graph, cfg);

    // ---------------- Phase 1: local controlled merging ----------------
    for _phase in 0..fc.max_phases {
        let cands = local_candidates(graph, cfg, &state, weights, active, ledger);

        // Convergecast (min candidate, size) within each fragment.
        assert!(
            sw + 1 + ww + ew <= cfg.bandwidth_bits,
            "converge width exceeds B"
        );
        let (conv, report) = sim.run(
            |info| {
                let i = info.id.index();
                FragConverge {
                    parent_port: state.fparent[i],
                    pending: state.fchildren[i].clone(),
                    best: cands[i].map(|c| (c.weight, c.edge)),
                    size: 1,
                    ww,
                    ew,
                    sw,
                    sent: false,
                }
            },
            stage_cap(n),
        );
        ledger.absorb(&report);

        // Roots decide; decision flows down the fragment tree.
        let decisions: Vec<Option<u64>> = graph
            .nodes()
            .map(|u| {
                let i = u.index();
                if state.fparent[i].is_none() && (conv[i].size as usize) < fc.size_threshold {
                    conv[i].best.map(|(_, e)| e as u64)
                } else {
                    None
                }
            })
            .collect();
        let any_decision = decisions.iter().any(Option::is_some);
        assert!(ew <= cfg.bandwidth_bits, "edge id exceeds B");
        let (dec, report) = sim.run(
            |info| {
                let i = info.id.index();
                DecisionBroadcast {
                    decided: decisions[i],
                    children: state.fchildren[i].clone(),
                    incident: info
                        .incident_edges
                        .iter()
                        .enumerate()
                        .map(|(p, &e)| (p, e.0))
                        .collect(),
                    merge_port: None,
                    ew,
                    started: false,
                }
            },
            stage_cap(n),
        );
        ledger.absorb(&report);

        // Mark chosen edges and notify across them.
        for u in graph.nodes() {
            let i = u.index();
            if let Some(p) = dec[i].merge_port {
                state.chosen[graph.incident(u)[p].0.index()] = true;
            }
        }
        let (notif, report) = sim.run(
            |info| MergeNotify {
                announce: dec[info.id.index()].merge_port,
                merge_ports: Vec::new(),
                started: false,
            },
            stage_cap(n),
        );
        ledger.absorb(&report);

        // Relabel by minimum-id flooding over tree + merge edges.
        let (rel, report) = sim.run(
            |info| {
                let i = info.id.index();
                let mut structure: Vec<usize> = state.fchildren[i].clone();
                if let Some(p) = state.fparent[i] {
                    structure.push(p);
                }
                for &p in &notif[i].merge_ports {
                    if !structure.contains(&p) {
                        structure.push(p);
                    }
                }
                Relabel {
                    cur: state.frag[i],
                    parent_port: state.fparent[i],
                    structure,
                    width: idw,
                }
            },
            stage_cap(n),
        );
        ledger.absorb(&report);
        for u in graph.nodes() {
            let i = u.index();
            state.frag[i] = rel[i].cur;
            state.fparent[i] = if state.frag[i] == u.0 as u64 {
                None
            } else {
                rel[i].parent_port
            };
        }
        let in_tree = vec![true; n];
        state.fchildren = discover_children(graph, cfg, &state.fparent, &in_tree, ledger);

        // Global control: did any fragment initiate a merge this phase?
        let flags: Vec<u64> = decisions.iter().map(|d| u64::from(d.is_some())).collect();
        let merged = aggregate_to_root(graph, cfg, &bfs, &flags, Agg::Or, 1, ledger);
        let _ = broadcast_from_root(graph, cfg, &bfs, merged, 1, ledger);
        debug_assert_eq!(merged == 1, any_decision);
        if merged == 0 {
            break;
        }
    }

    // ---------------- Phase 2: globally pipelined Borůvka ----------------
    assert!(
        1 + 2 * idw + ww + ew <= cfg.bandwidth_bits,
        "upcast width exceeds B"
    );
    assert!(
        2 + (2 * idw).max(ew) <= cfg.bandwidth_bits,
        "downcast width exceeds B"
    );
    for _phase in 0..fc.max_phases {
        let cands = local_candidates(graph, cfg, &state, weights, active, ledger);
        let (up, report) = sim.run(
            |info| {
                let i = info.id.index();
                let mut table = BTreeMap::new();
                if let Some(c) = cands[i] {
                    table.insert(state.frag[i], c);
                }
                PipedUpcast {
                    parent_port: bfs.parent_port[i],
                    pending_children: bfs.children_ports[i].clone(),
                    table,
                    done: false,
                    idw,
                    ww,
                    ew,
                }
            },
            stage_cap(n) + n,
        );
        ledger.absorb(&report);
        let root_table = &up[bfs.root.index()].table;
        if root_table.is_empty() {
            break;
        }

        // The root merges centrally (free local computation).
        let mut ids: Vec<u64> = root_table
            .iter()
            .flat_map(|(&f, c)| [f, c.to_frag])
            .collect();
        ids.sort_unstable();
        ids.dedup();
        let index_of = |id: u64| ids.binary_search(&id).expect("known fragment");
        let mut dsu = qdc_graph::DisjointSets::new(ids.len());
        let mut chosen_edges: Vec<u32> = Vec::new();
        for (&f, c) in root_table {
            // With the unique (weight, edge-id) order every fragment's
            // minimum outgoing edge is in the MSF; mutual choices simply
            // name the same edge twice.
            dsu.union(index_of(f), index_of(c.to_frag));
            if !chosen_edges.contains(&c.edge) {
                chosen_edges.push(c.edge);
            }
        }
        let mut new_id = vec![u64::MAX; ids.len()];
        for (k, &id) in ids.iter().enumerate() {
            let r = dsu.find(k);
            new_id[r] = new_id[r].min(id);
        }
        let mut stream: VecDeque<DownEntry> = VecDeque::new();
        for (k, &id) in ids.iter().enumerate() {
            let target = new_id[dsu.find(k)];
            if target != id {
                stream.push_back(DownEntry::Mapping {
                    old: id,
                    new: target,
                });
            }
        }
        for &e in &chosen_edges {
            stream.push_back(DownEntry::Chosen { edge: e });
        }
        stream.push_back(DownEntry::End);

        let (down, report) = sim.run(
            |info| {
                let i = info.id.index();
                let is_root = info.id == bfs.root;
                Downcast {
                    queue: if is_root {
                        stream.clone()
                    } else {
                        VecDeque::new()
                    },
                    children: bfs.children_ports[i].clone(),
                    frag: state.frag[i],
                    incident: info
                        .incident_edges
                        .iter()
                        .enumerate()
                        .map(|(p, &e)| (p, e.0))
                        .collect(),
                    chosen_here: Vec::new(),
                    is_root,
                    ended: false,
                    idw,
                    ew,
                }
            },
            stage_cap(n) + n,
        );
        ledger.absorb(&report);
        for u in graph.nodes() {
            let i = u.index();
            state.frag[i] = down[i].frag;
            for &e in &down[i].chosen_here {
                state.chosen[e as usize] = true;
            }
        }
    }

    // Count fragments: sum of representative indicators over the BFS tree.
    let indicators: Vec<u64> = graph
        .nodes()
        .map(|u| u64::from(state.frag[u.index()] == u.0 as u64))
        .collect();
    let count = aggregate_to_root(graph, cfg, &bfs, &indicators, Agg::Sum, sw, ledger);

    FragmentOutcome {
        fragment_of: state.frag,
        forest_edges: state
            .chosen
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c)
            .map(|(i, _)| EdgeId::from(i))
            .collect(),
        fragment_count: count as usize,
        leader,
        bfs,
    }
}

/// Counts the connected components of the `active` subgraph (isolated
/// nodes included) with the fragment engine under unit weights.
pub fn count_components(
    graph: &Graph,
    cfg: CongestConfig,
    active: &Subgraph,
    ledger: &mut Ledger,
) -> FragmentOutcome {
    let weights = EdgeWeights::uniform(graph);
    let fc = FragmentConfig::for_network(graph.node_count());
    spanning_forest(graph, cfg, &weights, active, &fc, ledger)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdc_graph::{algorithms, generate, predicates};

    fn cfg() -> CongestConfig {
        CongestConfig::classical(64)
    }

    #[test]
    fn msf_matches_kruskal_on_random_graphs() {
        for seed in 0..6 {
            let g = generate::random_connected(30, 30, seed);
            let w = generate::random_weights(&g, 50, seed + 100);
            let mut ledger = Ledger::new();
            let fc = FragmentConfig::for_network(30);
            let out = spanning_forest(&g, cfg(), &w, &g.full_subgraph(), &fc, &mut ledger);
            let reference = algorithms::kruskal_mst(&g, &w);
            let mut got = out.forest_edges.clone();
            let mut want = reference.edges.clone();
            got.sort();
            want.sort();
            assert_eq!(got, want, "seed {seed}");
            assert_eq!(out.fragment_count, 1);
        }
    }

    #[test]
    fn component_count_matches_predicate() {
        // The *network* must be connected (CONGEST assumption); the active
        // subgraph M may be arbitrarily fragmented.
        for seed in 0..6 {
            let g = generate::random_connected(40, 30, seed + 40);
            let mut active = g.empty_subgraph();
            for (k, e) in g.edges().enumerate() {
                if (k as u64).wrapping_mul(2654435761).wrapping_add(seed) % 5 < 2 {
                    active.insert(e);
                }
            }
            let mut ledger = Ledger::new();
            let out = count_components(&g, cfg(), &active, &mut ledger);
            assert_eq!(
                out.fragment_count,
                predicates::component_count(&g, &active),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn components_of_subgraph_not_whole_network() {
        // Network is a cycle; active subgraph is two disjoint arcs.
        let g = Graph::cycle(8);
        let mut active = g.empty_subgraph();
        active.insert(qdc_graph::EdgeId(0));
        active.insert(qdc_graph::EdgeId(1));
        active.insert(qdc_graph::EdgeId(4));
        let mut ledger = Ledger::new();
        let out = count_components(&g, cfg(), &active, &mut ledger);
        assert_eq!(out.fragment_count, predicates::component_count(&g, &active));
        // Forest = active edges themselves (they are acyclic).
        assert_eq!(out.forest_edges.len(), 3);
    }

    #[test]
    fn forest_is_spanning_forest_of_active_subgraph() {
        let g = generate::random_connected(25, 40, 77);
        let w = generate::random_weights(&g, 9, 78);
        let mut ledger = Ledger::new();
        let fc = FragmentConfig::for_network(25);
        let out = spanning_forest(&g, cfg(), &w, &g.full_subgraph(), &fc, &mut ledger);
        let sub = Subgraph::from_edges(&g, out.forest_edges.iter().copied());
        assert!(predicates::is_spanning_tree(&g, &sub));
        // Fragment labels all agree (single component).
        assert!(out.fragment_of.iter().all(|&f| f == out.fragment_of[0]));
    }

    #[test]
    fn fragment_labels_match_components() {
        // Connected network; M = three separate pieces.
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (3, 4), (5, 6), (2, 3), (4, 5)]);
        let mut m = g.full_subgraph();
        m.remove(g.find_edge(NodeId(2), NodeId(3)).unwrap());
        m.remove(g.find_edge(NodeId(4), NodeId(5)).unwrap());
        let mut ledger = Ledger::new();
        let out = count_components(&g, cfg(), &m, &mut ledger);
        assert_eq!(out.fragment_count, 3);
        let (labels, _) = predicates::components(&g, &m);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(
                    labels[u.index()] == labels[v.index()],
                    out.fragment_of[u.index()] == out.fragment_of[v.index()],
                    "{u} vs {v}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "connected network")]
    fn disconnected_network_rejected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let mut ledger = Ledger::new();
        count_components(&g, cfg(), &g.full_subgraph(), &mut ledger);
    }

    #[test]
    fn threshold_one_still_correct_via_phase_two() {
        // size_threshold = 1 disables phase 1 entirely; phase 2 alone must
        // still compute the MSF (ablation of the two-phase split).
        let g = generate::random_connected(20, 15, 3);
        let w = generate::random_weights(&g, 20, 4);
        let mut ledger = Ledger::new();
        let fc = FragmentConfig {
            size_threshold: 1,
            max_phases: 40,
        };
        let out = spanning_forest(&g, cfg(), &w, &g.full_subgraph(), &fc, &mut ledger);
        let reference = algorithms::kruskal_mst(&g, &w);
        assert_eq!(
            out.forest_edges.iter().map(|&e| w.weight(e)).sum::<u64>(),
            reference.total_weight
        );
    }

    #[test]
    fn engine_cost_is_recorded() {
        let g = generate::random_connected(20, 10, 11);
        let mut ledger = Ledger::new();
        let out = count_components(&g, cfg(), &g.full_subgraph(), &mut ledger);
        assert_eq!(out.fragment_count, 1);
        assert!(ledger.rounds > 0);
        assert!(ledger.bits > 0);
        assert!(ledger.stages >= 5);
    }
}
