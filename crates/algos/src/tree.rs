//! Convergecast and broadcast aggregation over a rooted tree.
//!
//! The workhorses of every multi-phase algorithm: combine one `u64` per
//! node up to the root (sum / min / max / and / or), or push one value
//! from the root to everyone. Each costs ≈ tree height rounds with one
//! `width`-bit message per tree edge.

use crate::flood::{stage_cap, BfsTreeInfo};
use crate::ledger::Ledger;
use qdc_congest::{CongestConfig, Inbox, Message, NodeAlgorithm, NodeInfo, Outbox, Simulator};
use qdc_graph::Graph;

/// Aggregation operator for [`aggregate_to_root`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Agg {
    /// Sum (caller guarantees the total fits in `width` bits).
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Bitwise AND (use 0/1 values for boolean "all").
    And,
    /// Bitwise OR (use 0/1 values for boolean "any").
    Or,
}

impl Agg {
    fn combine(self, a: u64, b: u64) -> u64 {
        match self {
            Agg::Sum => a.checked_add(b).expect("aggregate overflow"),
            Agg::Min => a.min(b),
            Agg::Max => a.max(b),
            Agg::And => a & b,
            Agg::Or => a | b,
        }
    }
}

struct ConvergeNode {
    in_tree: bool,
    parent_port: Option<usize>,
    pending_children: Vec<usize>,
    acc: u64,
    agg: Agg,
    width: usize,
    sent: bool,
}

impl ConvergeNode {
    fn try_finish(&mut self, out: &mut Outbox) {
        if self.sent || !self.pending_children.is_empty() {
            return;
        }
        self.sent = true;
        if let Some(p) = self.parent_port {
            assert!(
                self.acc < (1u64 << self.width.min(63)) || self.width >= 64,
                "aggregate {} does not fit in {} bits",
                self.acc,
                self.width
            );
            out.send(p, Message::from_uint(self.acc, self.width));
        }
    }
}

impl NodeAlgorithm for ConvergeNode {
    fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
        if !self.in_tree {
            self.sent = true;
            return;
        }
        self.try_finish(out);
    }
    fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        for (port, msg) in inbox.iter() {
            if let Some(pos) = self.pending_children.iter().position(|&c| c == port) {
                self.pending_children.swap_remove(pos);
                let v = msg
                    .as_uint(self.width)
                    .expect("malformed aggregate message");
                self.acc = self.agg.combine(self.acc, v);
            }
        }
        self.try_finish(out);
    }
    fn is_terminated(&self) -> bool {
        self.sent
    }
}

/// Aggregates `values[v]` over all tree nodes to the root; returns the
/// root's result. Nodes outside the tree are ignored.
///
/// # Panics
///
/// Panics if `width` exceeds the bandwidth budget or an intermediate
/// aggregate does not fit in `width` bits.
pub fn aggregate_to_root(
    graph: &Graph,
    cfg: CongestConfig,
    tree: &BfsTreeInfo,
    values: &[u64],
    agg: Agg,
    width: usize,
    ledger: &mut Ledger,
) -> u64 {
    assert_eq!(values.len(), graph.node_count(), "one value per node");
    assert!(width <= cfg.bandwidth_bits, "aggregate width exceeds B");
    let sim = Simulator::new(graph, cfg);
    let (nodes, report) = sim.run(
        |info| {
            let i = info.id.index();
            ConvergeNode {
                in_tree: tree.in_tree(info.id),
                parent_port: tree.parent_port[i],
                pending_children: tree.children_ports[i].clone(),
                acc: values[i],
                agg,
                width,
                sent: false,
            }
        },
        stage_cap(graph.node_count()),
    );
    ledger.absorb(&report);
    nodes[tree.root.index()].acc
}

struct BroadcastNode {
    is_root: bool,
    in_tree: bool,
    children: Vec<usize>,
    value: Option<u64>,
    width: usize,
}

impl BroadcastNode {
    fn forward(&self, out: &mut Outbox) {
        if let Some(v) = self.value {
            for &c in &self.children {
                out.send(c, Message::from_uint(v, self.width));
            }
        }
    }
}

impl NodeAlgorithm for BroadcastNode {
    fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
        if self.is_root {
            self.forward(out);
        }
    }
    fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        if self.value.is_none() {
            if let Some((_, msg)) = inbox.iter().next() {
                self.value = msg.as_uint(self.width);
                self.forward(out);
            }
        }
    }
    fn is_terminated(&self) -> bool {
        !self.in_tree || self.value.is_some() || !self.is_root
    }
}

/// Broadcasts `value` from the tree root to every tree node; returns each
/// node's received value (`None` for nodes outside the tree).
///
/// # Panics
///
/// Panics if `width` exceeds the bandwidth budget or the value does not
/// fit.
pub fn broadcast_from_root(
    graph: &Graph,
    cfg: CongestConfig,
    tree: &BfsTreeInfo,
    value: u64,
    width: usize,
    ledger: &mut Ledger,
) -> Vec<Option<u64>> {
    assert!(width <= cfg.bandwidth_bits, "broadcast width exceeds B");
    let sim = Simulator::new(graph, cfg);
    let (nodes, report) = sim.run(
        |info| {
            let i = info.id.index();
            let is_root = info.id == tree.root;
            BroadcastNode {
                is_root,
                in_tree: tree.in_tree(info.id),
                children: tree.children_ports[i].clone(),
                value: if is_root { Some(value) } else { None },
                width,
            }
        },
        stage_cap(graph.node_count()),
    );
    ledger.absorb(&report);
    nodes.into_iter().map(|s| s.value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flood::build_bfs_tree;
    use qdc_graph::{Graph, NodeId};

    fn setup(g: &Graph) -> (CongestConfig, BfsTreeInfo, Ledger) {
        let cfg = CongestConfig::classical(32);
        let mut ledger = Ledger::new();
        let tree = build_bfs_tree(g, cfg, NodeId(0), &mut ledger);
        (cfg, tree, ledger)
    }

    #[test]
    fn sum_of_node_ids() {
        let g = qdc_graph::generate::random_connected(20, 10, 3);
        let (cfg, tree, mut ledger) = setup(&g);
        let values: Vec<u64> = (0..20).collect();
        let total = aggregate_to_root(&g, cfg, &tree, &values, Agg::Sum, 16, &mut ledger);
        assert_eq!(total, 190);
    }

    #[test]
    fn min_max_and_or() {
        let g = Graph::cycle(9);
        let (cfg, tree, mut ledger) = setup(&g);
        let values: Vec<u64> = (0..9).map(|i| (i * 13 + 5) % 23).collect();
        assert_eq!(
            aggregate_to_root(&g, cfg, &tree, &values, Agg::Min, 8, &mut ledger),
            *values.iter().min().unwrap()
        );
        assert_eq!(
            aggregate_to_root(&g, cfg, &tree, &values, Agg::Max, 8, &mut ledger),
            *values.iter().max().unwrap()
        );
        let bools: Vec<u64> = (0..9).map(|i| u64::from(i != 4)).collect();
        assert_eq!(
            aggregate_to_root(&g, cfg, &tree, &bools, Agg::And, 1, &mut ledger),
            0
        );
        assert_eq!(
            aggregate_to_root(&g, cfg, &tree, &bools, Agg::Or, 1, &mut ledger),
            1
        );
    }

    #[test]
    fn convergecast_rounds_scale_with_height() {
        let g = Graph::path(40);
        let (cfg, tree, _) = setup(&g);
        let mut ledger = Ledger::new();
        let values = vec![1u64; 40];
        let total = aggregate_to_root(&g, cfg, &tree, &values, Agg::Sum, 8, &mut ledger);
        assert_eq!(total, 40);
        assert!(ledger.rounds >= 39, "rounds {}", ledger.rounds);
        assert!(ledger.rounds <= 45, "rounds {}", ledger.rounds);
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let g = qdc_graph::generate::random_connected(25, 12, 8);
        let (cfg, tree, mut ledger) = setup(&g);
        let got = broadcast_from_root(&g, cfg, &tree, 1234, 11, &mut ledger);
        assert!(got.iter().all(|&v| v == Some(1234)));
    }

    #[test]
    fn broadcast_skips_unreachable_nodes() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let cfg = CongestConfig::classical(8);
        let mut ledger = Ledger::new();
        let tree = build_bfs_tree(&g, cfg, NodeId(0), &mut ledger);
        let got = broadcast_from_root(&g, cfg, &tree, 7, 3, &mut ledger);
        assert_eq!(got[0], Some(7));
        assert_eq!(got[1], Some(7));
        assert_eq!(got[2], None);
    }

    #[test]
    #[should_panic(expected = "exceeds B")]
    fn oversized_aggregate_width_rejected() {
        let g = Graph::path(3);
        let cfg = CongestConfig::classical(4);
        let mut ledger = Ledger::new();
        let tree = build_bfs_tree(&g, cfg, NodeId(0), &mut ledger);
        aggregate_to_root(&g, cfg, &tree, &[1, 1, 1], Agg::Sum, 8, &mut ledger);
    }
}
