//! Distributed least-element lists (Cohen's algorithm) and their
//! verification — the last Corollary 3.7 problem.
//!
//! Every node holds a distinct rank; node `v` is a *least element* of `u`
//! if `v` has the lowest rank among nodes within weighted distance
//! `d(u, v)` of `u` (Appendix A.2). The distributed computation is the
//! classic pruned flood (Cohen; used distributedly by Khan et al.
//! \[KKM+08\], one of the problems Corollary 3.7 covers): each node
//! announces `(rank, distance)` pairs; a node accepts a pair iff no
//! strictly better-ranked source is known at a smaller-or-equal distance,
//! and forwards accepted pairs with the edge weight added. At quiescence
//! each node's accepted set *is* its LE-list.

use crate::flood::stage_cap;
use crate::ledger::Ledger;
use crate::widths::{bits_for, distance_width};
use qdc_congest::{
    BitString, CongestConfig, Inbox, Message, NodeAlgorithm, NodeInfo, Outbox, Simulator,
};
use qdc_graph::lel::LeEntry;
use qdc_graph::{EdgeWeights, Graph, NodeId};

struct LeFlood {
    /// Accepted `(distance, rank, origin)` triples.
    accepted: Vec<(u64, u64, u32)>,
    /// Accepted entries not yet forwarded (drained one per round).
    outbound: std::collections::VecDeque<(u64, u64, u32)>,
    port_weight: Vec<u64>,
    rank_width: usize,
    dist_width: usize,
    id_width: usize,
}

impl LeFlood {
    fn encode(&self, dist: u64, rank: u64, origin: u32) -> Message {
        let mut bits = BitString::new();
        bits.push_uint(dist, self.dist_width);
        bits.push_uint(rank, self.rank_width);
        bits.push_uint(origin as u64, self.id_width);
        Message::from_bits(bits)
    }

    /// Cohen's acceptance rule: keep iff no known entry is at least as
    /// good in both coordinates (covers strictly-better ranks at ≤
    /// distance, and duplicates / worse copies from the same origin —
    /// ranks are distinct, so equal rank means equal origin).
    fn accepts(&self, dist: u64, rank: u64) -> bool {
        !self
            .accepted
            .iter()
            .any(|&(d, r, _)| r <= rank && d <= dist)
    }

    fn insert(&mut self, dist: u64, rank: u64, origin: u32) -> bool {
        if !self.accepts(dist, rank) {
            return false;
        }
        // Drop entries the new one dominates.
        self.accepted.retain(|&(d, r, _)| !(rank <= r && dist <= d));
        self.accepted.push((dist, rank, origin));
        true
    }
}

impl NodeAlgorithm for LeFlood {
    fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
        // Announce yourself: each node is trivially its own least element
        // at distance 0 (already in `accepted` from init).
        let &(d, r, o) = self.accepted.first().expect("self entry");
        for p in 0..self.port_weight.len() {
            out.send(p, self.encode(d + self.port_weight[p], r, o));
        }
    }
    fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        for (_port, msg) in inbox.iter() {
            let mut rd = msg.reader();
            let dist = rd.read_uint(self.dist_width).expect("dist");
            let rank = rd.read_uint(self.rank_width).expect("rank");
            let origin = rd.read_uint(self.id_width).expect("origin") as u32;
            if self.insert(dist, rank, origin) {
                self.outbound.push_back((dist, rank, origin));
            }
        }
        // Drain the forward queue one entry per round (one message per
        // edge per round — CONGEST discipline). Superseded entries may
        // still be forwarded; receivers prune them.
        if let Some((dist, rank, origin)) = self.outbound.pop_front() {
            for p in 0..self.port_weight.len() {
                out.send(p, self.encode(dist + self.port_weight[p], rank, origin));
            }
        }
    }
    fn is_terminated(&self) -> bool {
        self.outbound.is_empty()
    }
}

/// Result of the distributed LE-list computation.
#[derive(Clone, Debug)]
pub struct LeListRun {
    /// Each node's computed least-element list.
    pub lists: Vec<Vec<LeEntry>>,
    /// Accumulated cost.
    pub ledger: Ledger,
}

/// Computes every node's least-element list distributedly by Cohen's
/// pruned flood.
///
/// # Panics
///
/// Panics if ranks are not one per node / not distinct, or a message
/// does not fit the bandwidth budget.
pub fn distributed_le_lists(
    graph: &Graph,
    cfg: CongestConfig,
    weights: &EdgeWeights,
    ranks: &[u64],
) -> LeListRun {
    let n = graph.node_count();
    assert_eq!(ranks.len(), n, "one rank per node");
    {
        let mut sorted = ranks.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), n, "ranks must be distinct");
    }
    let w_max = graph.edges().map(|e| weights.weight(e)).max().unwrap_or(1);
    let dist_width = distance_width(n, w_max);
    let rank_width = bits_for(*ranks.iter().max().unwrap_or(&1));
    let id_width = crate::widths::id_width(n);
    assert!(
        dist_width + rank_width + id_width <= cfg.bandwidth_bits,
        "LE-list message exceeds B"
    );
    let mut ledger = Ledger::new();
    let sim = Simulator::new(graph, cfg);
    let (nodes, report) = sim.run(
        |info| LeFlood {
            accepted: vec![(0, ranks[info.id.index()], info.id.0)],
            outbound: std::collections::VecDeque::new(),
            port_weight: info
                .incident_edges
                .iter()
                .map(|&e| weights.weight(e))
                .collect(),
            rank_width,
            dist_width,
            id_width,
        },
        stage_cap(n) + n * n,
    );
    ledger.absorb(&report);
    let lists = nodes
        .into_iter()
        .map(|s| {
            let mut entries: Vec<LeEntry> = s
                .accepted
                .into_iter()
                .map(|(distance, _, origin)| LeEntry {
                    distance,
                    node: NodeId(origin),
                })
                .collect();
            entries.sort();
            entries
        })
        .collect();
    LeListRun { lists, ledger }
}

/// **Least-element list verification** (Appendix A.2): node `u` is handed
/// a candidate list; recompute distributedly and compare.
pub fn verify_le_list(
    graph: &Graph,
    cfg: CongestConfig,
    weights: &EdgeWeights,
    ranks: &[u64],
    u: NodeId,
    candidate: &[LeEntry],
) -> bool {
    let run = distributed_le_lists(graph, cfg, weights, ranks);
    let mut cand = candidate.to_vec();
    cand.sort();
    run.lists[u.index()] == cand
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdc_graph::{generate, lel};

    fn cfg() -> CongestConfig {
        CongestConfig::classical(64)
    }

    #[test]
    fn distributed_lists_match_sequential_on_path() {
        let g = Graph::path(6);
        let w = EdgeWeights::uniform(&g);
        let ranks = vec![50, 40, 30, 20, 10, 0];
        let run = distributed_le_lists(&g, cfg(), &w, &ranks);
        for v in g.nodes() {
            let mut reference = lel::le_list(&g, &w, &ranks, v);
            reference.sort();
            assert_eq!(run.lists[v.index()], reference, "node {v}");
        }
    }

    #[test]
    fn distributed_lists_match_sequential_randomized() {
        for seed in 0..6 {
            let g = generate::random_connected(18, 16, seed + 10);
            let w = generate::random_weights(&g, 7, seed + 20);
            let ranks: Vec<u64> = (0..18)
                .map(|i| (i * 7919 + seed * 13 + 1) % 65536)
                .collect();
            // Ensure distinctness of the synthetic ranks.
            let mut sorted = ranks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != ranks.len() {
                continue;
            }
            let run = distributed_le_lists(&g, cfg(), &w, &ranks);
            for v in g.nodes() {
                let mut reference = lel::le_list(&g, &w, &ranks, v);
                reference.sort();
                assert_eq!(run.lists[v.index()], reference, "seed {seed}, node {v}");
            }
        }
    }

    #[test]
    fn verification_accepts_truth_and_rejects_corruption() {
        let g = generate::random_connected(12, 10, 3);
        let w = generate::random_weights(&g, 5, 4);
        let ranks: Vec<u64> = (0..12).map(|i| (i * 101 + 7) % 10007).collect();
        let truth = lel::le_list(&g, &w, &ranks, NodeId(4));
        assert!(verify_le_list(&g, cfg(), &w, &ranks, NodeId(4), &truth));
        let mut bad = truth.clone();
        bad[0].distance += 1;
        assert!(!verify_le_list(&g, cfg(), &w, &ranks, NodeId(4), &bad));
    }

    #[test]
    fn list_lengths_are_logarithmic_for_random_ranks() {
        // With random ranks the expected LE-list length is O(log n) —
        // Cohen's key property; check the average stays small.
        let g = generate::random_connected(40, 60, 8);
        let w = generate::random_weights(&g, 9, 9);
        let ranks: Vec<u64> = {
            use rand::seq::SliceRandom;
            let mut r: Vec<u64> = (0..40).collect();
            r.shuffle(&mut generate::rng(99));
            r
        };
        let run = distributed_le_lists(&g, cfg(), &w, &ranks);
        let avg: f64 =
            run.lists.iter().map(|l| l.len() as f64).sum::<f64>() / run.lists.len() as f64;
        assert!(avg < 10.0, "average LE-list length {avg}");
    }
}
