//! Cost accounting across composed simulation stages.

use qdc_congest::RunReport;

/// Accumulated cost of a multi-stage distributed algorithm.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Ledger {
    /// Total communication rounds across all stages.
    pub rounds: usize,
    /// Total messages delivered.
    pub messages: u64,
    /// Total payload bits (or qubits) delivered.
    pub bits: u64,
    /// Number of stages (separate simulator runs) composed.
    pub stages: usize,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Absorbs one stage's run report.
    ///
    /// # Panics
    ///
    /// Panics if the stage did not complete (hit its round cap) — composed
    /// algorithms rely on every stage reaching quiescence.
    pub fn absorb(&mut self, report: &RunReport) {
        assert!(
            report.completed,
            "stage hit its round cap without reaching quiescence"
        );
        self.rounds += report.rounds;
        self.messages += report.messages_sent;
        self.bits += report.bits_sent;
        self.stages += 1;
    }

    /// Adds a fixed number of silent rounds (e.g. idealized waiting).
    pub fn add_rounds(&mut self, rounds: usize) {
        self.rounds += rounds;
    }

    /// Merges another ledger (e.g. a sub-algorithm's costs).
    pub fn merge(&mut self, other: &Ledger) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.bits += other.bits;
        self.stages += other.stages;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdc_congest::ChannelKind;

    fn report(rounds: usize, messages: u64, bits: u64, completed: bool) -> RunReport {
        RunReport {
            rounds,
            completed,
            messages_sent: messages,
            bits_sent: bits,
            max_bits_per_round: 0,
            channel: ChannelKind::Classical,
            messages_dropped: 0,
            nodes_crashed: 0,
            bits_corrupted: 0,
        }
    }

    #[test]
    fn absorb_accumulates() {
        let mut l = Ledger::new();
        l.absorb(&report(3, 10, 80, true));
        l.absorb(&report(2, 5, 40, true));
        assert_eq!(l.rounds, 5);
        assert_eq!(l.messages, 15);
        assert_eq!(l.bits, 120);
        assert_eq!(l.stages, 2);
    }

    #[test]
    #[should_panic(expected = "round cap")]
    fn incomplete_stage_rejected() {
        Ledger::new().absorb(&report(3, 1, 1, false));
    }

    #[test]
    fn merge_combines_ledgers() {
        let mut a = Ledger::new();
        a.absorb(&report(1, 1, 1, true));
        let mut b = Ledger::new();
        b.absorb(&report(2, 2, 2, true));
        b.add_rounds(7);
        a.merge(&b);
        assert_eq!(a.rounds, 10);
        assert_eq!(a.stages, 2);
    }
}
