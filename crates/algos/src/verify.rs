//! Distributed verification of subnetwork properties (Section 2.2).
//!
//! Every verifier follows the same recipe the upper bounds of Das Sarma
//! et al. use: elect a leader, build a BFS tree of the *network* `N`,
//! compute connected components of the *subnetwork* `M` with the fragment
//! engine, and combine O(1) aggregates over the BFS tree. The round cost
//! is dominated by the fragment engine's Õ(√n + D); the paper's
//! Theorem 3.6 shows this is optimal up to polylog factors **even for
//! quantum algorithms**.

use crate::fragments::{count_components, FragmentOutcome};
use crate::ledger::Ledger;
use crate::tree::{aggregate_to_root, broadcast_from_root, Agg};
use crate::widths::bits_for;
use qdc_congest::CongestConfig;
use qdc_graph::{Graph, Subgraph};

/// Result of a distributed verification run.
#[derive(Clone, Debug)]
pub struct VerificationRun {
    /// The decision (known to every node after the final broadcast).
    pub accept: bool,
    /// Accumulated cost.
    pub ledger: Ledger,
}

fn finish(
    graph: &Graph,
    cfg: CongestConfig,
    out: &FragmentOutcome,
    accept: bool,
    ledger: &mut Ledger,
) -> bool {
    // Broadcast the decision so every node knows the answer, as the
    // problem statement requires.
    let got = broadcast_from_root(graph, cfg, &out.bfs, u64::from(accept), 1, ledger);
    debug_assert!(got.iter().all(|&v| v == Some(u64::from(accept))));
    accept
}

/// **Hamiltonian cycle verification**: `M` is a spanning simple cycle.
/// Checks "every `M`-degree is 2" (AND-aggregate) and "`M` has one
/// component" (fragment count); together these force a single spanning
/// `n`-cycle.
pub fn verify_hamiltonian_cycle(
    graph: &Graph,
    cfg: CongestConfig,
    m: &Subgraph,
) -> VerificationRun {
    let mut ledger = Ledger::new();
    let out = count_components(graph, cfg, m, &mut ledger);
    let deg_ok: Vec<u64> = graph
        .nodes()
        .map(|u| u64::from(m.degree_in(graph, u) == 2))
        .collect();
    let all_deg2 = aggregate_to_root(graph, cfg, &out.bfs, &deg_ok, Agg::And, 1, &mut ledger) == 1;
    let accept = graph.node_count() >= 3 && all_deg2 && out.fragment_count == 1;
    let accept = finish(graph, cfg, &out, accept, &mut ledger);
    VerificationRun { accept, ledger }
}

/// **Spanning tree verification**: `M` is connected over all nodes and has
/// exactly `n − 1` edges.
pub fn verify_spanning_tree(graph: &Graph, cfg: CongestConfig, m: &Subgraph) -> VerificationRun {
    let mut ledger = Ledger::new();
    let out = count_components(graph, cfg, m, &mut ledger);
    let n = graph.node_count();
    let degrees: Vec<u64> = graph
        .nodes()
        .map(|u| m.degree_in(graph, u) as u64)
        .collect();
    let degree_sum = aggregate_to_root(
        graph,
        cfg,
        &out.bfs,
        &degrees,
        Agg::Sum,
        bits_for(2 * graph.edge_count().max(1) as u64),
        &mut ledger,
    );
    let accept = out.fragment_count == 1 && degree_sum == 2 * (n as u64 - 1);
    let accept = finish(graph, cfg, &out, accept, &mut ledger);
    VerificationRun { accept, ledger }
}

/// **Connectivity verification**: all `M`-edges lie in one component
/// (isolated nodes ignored, matching
/// [`qdc_graph::predicates::is_connected`]).
pub fn verify_connectivity(graph: &Graph, cfg: CongestConfig, m: &Subgraph) -> VerificationRun {
    let mut ledger = Ledger::new();
    let out = count_components(graph, cfg, m, &mut ledger);
    let isolated: Vec<u64> = graph
        .nodes()
        .map(|u| u64::from(m.degree_in(graph, u) == 0))
        .collect();
    let isolated_count = aggregate_to_root(
        graph,
        cfg,
        &out.bfs,
        &isolated,
        Agg::Sum,
        bits_for(graph.node_count() as u64),
        &mut ledger,
    );
    let accept = out.fragment_count as u64 - isolated_count <= 1;
    let accept = finish(graph, cfg, &out, accept, &mut ledger);
    VerificationRun { accept, ledger }
}

/// **Connected spanning subgraph verification**: `M` is connected and
/// touches every node.
pub fn verify_spanning_connected(
    graph: &Graph,
    cfg: CongestConfig,
    m: &Subgraph,
) -> VerificationRun {
    let mut ledger = Ledger::new();
    let out = count_components(graph, cfg, m, &mut ledger);
    let accept = out.fragment_count == 1;
    let accept = finish(graph, cfg, &out, accept, &mut ledger);
    VerificationRun { accept, ledger }
}

// ---------------------------------------------------------------------------
// Indicator-variable consistency (Appendix A.2's one-round precheck).
// ---------------------------------------------------------------------------

struct IndicatorExchange {
    claims: Vec<bool>,
    mismatch: bool,
    started: bool,
}

impl qdc_congest::NodeAlgorithm for IndicatorExchange {
    fn on_start(&mut self, _info: &qdc_congest::NodeInfo, out: &mut qdc_congest::Outbox) {
        self.started = true;
        for (p, &bit) in self.claims.iter().enumerate() {
            out.send(p, qdc_congest::Message::from_bit(bit));
        }
    }
    fn on_round(
        &mut self,
        _info: &qdc_congest::NodeInfo,
        inbox: &qdc_congest::Inbox,
        _out: &mut qdc_congest::Outbox,
    ) {
        for (port, msg) in inbox.iter() {
            if msg.as_bit() != Some(self.claims[port]) {
                self.mismatch = true;
            }
        }
    }
    fn is_terminated(&self) -> bool {
        self.started
    }
}

/// The Appendix A.2 consistency precheck: each node announces, per port,
/// whether it believes the incident edge is in `M`; the two endpoints'
/// claims must agree (`x_{u,v} = x_{v,u}`). One communication round plus
/// an OR-aggregate; rejects corrupted or inconsistent inputs before any
/// verifier runs.
///
/// `claims[v][p]` is node `v`'s indicator for its `p`-th incident edge.
///
/// # Panics
///
/// Panics if the claims shape does not match the graph.
pub fn check_indicator_consistency(
    graph: &Graph,
    cfg: CongestConfig,
    claims: &[Vec<bool>],
) -> VerificationRun {
    assert_eq!(claims.len(), graph.node_count(), "one claim row per node");
    for v in graph.nodes() {
        assert_eq!(
            claims[v.index()].len(),
            graph.degree(v),
            "one claim per incident edge"
        );
    }
    let mut ledger = Ledger::new();
    let sim = qdc_congest::Simulator::new(graph, cfg);
    let (nodes, report) = sim.run(
        |info| IndicatorExchange {
            claims: claims[info.id.index()].clone(),
            mismatch: false,
            started: false,
        },
        crate::flood::stage_cap(graph.node_count()),
    );
    ledger.absorb(&report);
    let leader = crate::flood::elect_leader(graph, cfg, &mut ledger);
    let bfs = crate::flood::build_bfs_tree(graph, cfg, leader, &mut ledger);
    let flags: Vec<u64> = nodes.iter().map(|s| u64::from(s.mismatch)).collect();
    let bad = aggregate_to_root(graph, cfg, &bfs, &flags, Agg::Or, 1, &mut ledger) == 1;
    let accept = !bad;
    let _ = broadcast_from_root(graph, cfg, &bfs, u64::from(accept), 1, &mut ledger);
    VerificationRun { accept, ledger }
}

/// Builds the consistent per-node claim rows for a subgraph `M` (the
/// honest input encoding of Appendix A.2).
pub fn claims_for_subgraph(graph: &Graph, m: &Subgraph) -> Vec<Vec<bool>> {
    graph
        .nodes()
        .map(|v| {
            graph
                .incident(v)
                .iter()
                .map(|&(e, _)| m.contains(e))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdc_graph::{generate, predicates, EdgeId, Graph};

    fn cfg() -> CongestConfig {
        CongestConfig::classical(64)
    }

    #[test]
    fn hamiltonian_cycle_accepted_and_rejected() {
        let g = Graph::cycle(12);
        let full = g.full_subgraph();
        assert!(verify_hamiltonian_cycle(&g, cfg(), &full).accept);
        let mut broken = full.clone();
        broken.remove(EdgeId(0));
        assert!(!verify_hamiltonian_cycle(&g, cfg(), &broken).accept);
    }

    #[test]
    fn two_cycles_rejected_despite_degrees() {
        // Network: two triangles plus a bridge making N connected; M = the
        // two triangles (all M-degrees 2, two components).
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
        let mut m = g.full_subgraph();
        m.remove(
            g.find_edge(qdc_graph::NodeId(2), qdc_graph::NodeId(3))
                .unwrap(),
        );
        assert!(!verify_hamiltonian_cycle(&g, cfg(), &m).accept);
        assert!(!verify_spanning_tree(&g, cfg(), &m).accept);
        assert!(!verify_connectivity(&g, cfg(), &m).accept);
    }

    #[test]
    fn spanning_tree_verification_matches_predicate() {
        for seed in 0..5 {
            let g = generate::random_connected(20, 15, seed);
            // Candidate M: a BFS tree (true case) or with one edge swapped
            // (false case).
            let tree = qdc_graph::algorithms::bfs_tree(&g, qdc_graph::NodeId(0));
            let m = tree.as_subgraph(&g);
            assert!(verify_spanning_tree(&g, cfg(), &m).accept, "seed {seed}");
            let mut bad = m.clone();
            bad.remove(m.edges().next().unwrap());
            assert_eq!(
                verify_spanning_tree(&g, cfg(), &bad).accept,
                predicates::is_spanning_tree(&g, &bad)
            );
        }
    }

    #[test]
    fn connectivity_ignores_isolated_nodes() {
        let g = generate::random_connected(12, 10, 3);
        // M = a single edge: connected in the paper's sense.
        let mut m = g.empty_subgraph();
        m.insert(EdgeId(0));
        assert!(verify_connectivity(&g, cfg(), &m).accept);
        assert!(!verify_spanning_connected(&g, cfg(), &m).accept);
    }

    #[test]
    fn verifiers_agree_with_predicates_on_random_subgraphs() {
        for seed in 0..8 {
            let g = generate::random_connected(18, 20, seed + 30);
            let mut m = g.empty_subgraph();
            for (k, e) in g.edges().enumerate() {
                if !(k * 7 + seed as usize).is_multiple_of(3) {
                    m.insert(e);
                }
            }
            assert_eq!(
                verify_hamiltonian_cycle(&g, cfg(), &m).accept,
                predicates::is_hamiltonian_cycle(&g, &m),
                "ham seed {seed}"
            );
            assert_eq!(
                verify_spanning_tree(&g, cfg(), &m).accept,
                predicates::is_spanning_tree(&g, &m),
                "st seed {seed}"
            );
            assert_eq!(
                verify_connectivity(&g, cfg(), &m).accept,
                predicates::is_connected(&g, &m),
                "conn seed {seed}"
            );
            assert_eq!(
                verify_spanning_connected(&g, cfg(), &m).accept,
                predicates::is_spanning_connected_subgraph(&g, &m),
                "span-conn seed {seed}"
            );
        }
    }

    #[test]
    fn consistent_claims_accepted() {
        let g = generate::random_connected(15, 12, 4);
        let mut m = g.empty_subgraph();
        for (k, e) in g.edges().enumerate() {
            if k % 2 == 0 {
                m.insert(e);
            }
        }
        let claims = claims_for_subgraph(&g, &m);
        assert!(check_indicator_consistency(&g, cfg(), &claims).accept);
    }

    #[test]
    fn corrupted_claims_rejected() {
        // Failure injection: one node lies about one incident edge — the
        // single-round exchange must catch it.
        let g = generate::random_connected(15, 12, 4);
        let m = g.full_subgraph();
        let mut claims = claims_for_subgraph(&g, &m);
        claims[7][0] = !claims[7][0];
        assert!(!check_indicator_consistency(&g, cfg(), &claims).accept);
    }

    #[test]
    fn verification_cost_is_accounted() {
        let g = generate::random_connected(25, 20, 2);
        let run = verify_hamiltonian_cycle(&g, cfg(), &g.full_subgraph());
        assert!(run.ledger.rounds > 0);
        assert!(run.ledger.stages >= 6);
    }
}
