//! Leader election and BFS-tree construction by flooding.

use crate::ledger::Ledger;
use crate::widths::id_width;
use qdc_congest::{CongestConfig, Inbox, Message, NodeAlgorithm, NodeInfo, Outbox, Simulator};
use qdc_graph::{Graph, NodeId};

/// Generous per-stage round cap (stages reach quiescence long before).
pub(crate) fn stage_cap(n: usize) -> usize {
    20 * n + 100
}

// ---------------------------------------------------------------------------
// Leader election
// ---------------------------------------------------------------------------

struct MaxFlood {
    best: u64,
    width: usize,
}

impl NodeAlgorithm for MaxFlood {
    fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
        out.broadcast(Message::from_uint(self.best, self.width));
    }
    fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        let incoming = inbox
            .iter()
            .filter_map(|(_, m)| m.as_uint(self.width))
            .max();
        if let Some(v) = incoming {
            if v > self.best {
                self.best = v;
                out.broadcast(Message::from_uint(v, self.width));
            }
        }
    }
    fn is_terminated(&self) -> bool {
        true // event-driven: the run ends at quiescence
    }
}

/// Elects the maximum-id node by event-driven flooding (≈ D rounds on an
/// n-node network; each message is one node id of `⌈log₂ n⌉` bits).
///
/// # Panics
///
/// Panics if an id does not fit in the `B`-bit budget.
pub fn elect_leader(graph: &Graph, cfg: CongestConfig, ledger: &mut Ledger) -> NodeId {
    let n = graph.node_count();
    let width = id_width(n);
    assert!(
        width <= cfg.bandwidth_bits,
        "node id ({width} bits) exceeds B"
    );
    let sim = Simulator::new(graph, cfg);
    let (nodes, report) = sim.run(
        |info| MaxFlood {
            best: info.id.0 as u64,
            width,
        },
        stage_cap(n),
    );
    ledger.absorb(&report);
    let max = nodes
        .iter()
        .map(|s| s.best)
        .max()
        .expect("non-empty network");
    NodeId(max as u32)
}

// ---------------------------------------------------------------------------
// BFS tree construction
// ---------------------------------------------------------------------------

/// A rooted BFS tree over the network, as produced distributedly.
#[derive(Clone, Debug)]
pub struct BfsTreeInfo {
    /// The root.
    pub root: NodeId,
    /// Parent port of each node (`None` for the root and unreachable
    /// nodes).
    pub parent_port: Vec<Option<usize>>,
    /// Hop depth of each node (`u64::MAX` if unreachable).
    pub depth: Vec<u64>,
    /// Ports leading to each node's tree children.
    pub children_ports: Vec<Vec<usize>>,
    /// Tree height (maximum finite depth).
    pub height: u64,
}

impl BfsTreeInfo {
    /// Whether node `v` participates in the tree.
    pub fn in_tree(&self, v: NodeId) -> bool {
        self.depth[v.index()] != u64::MAX
    }
}

struct BfsWave {
    is_root: bool,
    adopted: bool,
    parent_port: Option<usize>,
    round: u64,
    depth: u64,
}

impl NodeAlgorithm for BfsWave {
    fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
        if self.is_root {
            self.adopted = true;
            self.depth = 0;
            out.broadcast(Message::empty());
        }
    }
    fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        self.round += 1;
        if !self.adopted {
            if let Some((port, _)) = inbox.iter().next() {
                self.adopted = true;
                self.parent_port = Some(port);
                self.depth = self.round;
                for p in 0..out.port_count() {
                    if Some(p) != self.parent_port {
                        out.send(p, Message::empty());
                    }
                }
            }
        }
    }
    fn is_terminated(&self) -> bool {
        true
    }
}

struct ChildReport {
    parent_port: Option<usize>,
    in_tree: bool,
    children: Vec<usize>,
    sent: bool,
}

impl NodeAlgorithm for ChildReport {
    fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
        self.sent = true;
        if self.in_tree {
            if let Some(p) = self.parent_port {
                out.send(p, Message::from_bit(true));
            }
        }
    }
    fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, _out: &mut Outbox) {
        for (port, _) in inbox.iter() {
            self.children.push(port);
        }
    }
    fn is_terminated(&self) -> bool {
        self.sent
    }
}

/// One-round child discovery: every in-tree non-root node sends a bit to
/// its parent port; each node records the ports it heard from. Reused by
/// the fragment engine after each relabeling.
pub(crate) fn discover_children(
    graph: &Graph,
    cfg: CongestConfig,
    parent_port: &[Option<usize>],
    in_tree: &[bool],
    ledger: &mut Ledger,
) -> Vec<Vec<usize>> {
    let sim = Simulator::new(graph, cfg);
    let (nodes, report) = sim.run(
        |info| ChildReport {
            parent_port: parent_port[info.id.index()],
            in_tree: in_tree[info.id.index()],
            children: Vec::new(),
            sent: false,
        },
        stage_cap(graph.node_count()),
    );
    ledger.absorb(&report);
    nodes.into_iter().map(|s| s.children).collect()
}

/// Builds a BFS tree from `root` by wave flooding (0-bit messages; the
/// arrival round *is* the depth) followed by a one-round child-discovery
/// exchange. Costs ≈ eccentricity(root) + 1 rounds.
pub fn build_bfs_tree(
    graph: &Graph,
    cfg: CongestConfig,
    root: NodeId,
    ledger: &mut Ledger,
) -> BfsTreeInfo {
    let n = graph.node_count();
    let sim = Simulator::new(graph, cfg);
    let (nodes, report) = sim.run(
        |info| BfsWave {
            is_root: info.id == root,
            adopted: false,
            parent_port: None,
            round: 0,
            depth: u64::MAX,
        },
        stage_cap(n),
    );
    ledger.absorb(&report);
    let parent_port: Vec<Option<usize>> = nodes.iter().map(|s| s.parent_port).collect();
    let depth: Vec<u64> = nodes
        .iter()
        .map(|s| if s.adopted { s.depth } else { u64::MAX })
        .collect();

    let in_tree: Vec<bool> = nodes.iter().map(|s| s.adopted).collect();
    let children_ports = discover_children(graph, cfg, &parent_port, &in_tree, ledger);
    let height = depth
        .iter()
        .copied()
        .filter(|&d| d != u64::MAX)
        .max()
        .unwrap_or(0);
    BfsTreeInfo {
        root,
        parent_port,
        depth,
        children_ports,
        height,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdc_graph::{algorithms, Graph};

    fn cfg() -> CongestConfig {
        CongestConfig::classical(32)
    }

    #[test]
    fn leader_is_max_id() {
        let g = qdc_graph::generate::random_connected(40, 20, 5);
        let mut ledger = Ledger::new();
        let leader = elect_leader(&g, cfg(), &mut ledger);
        assert_eq!(leader, NodeId(39));
        assert!(ledger.rounds >= 1);
    }

    #[test]
    fn leader_flood_rounds_scale_with_diameter() {
        let path = Graph::path(50);
        let mut ledger = Ledger::new();
        let leader = elect_leader(&path, cfg(), &mut ledger);
        assert_eq!(leader, NodeId(49));
        // Information must travel the whole path (id 49 sits at one end).
        assert!(ledger.rounds >= 49, "rounds {}", ledger.rounds);
        assert!(ledger.rounds <= 60, "rounds {}", ledger.rounds);
    }

    #[test]
    fn bfs_tree_matches_reference_depths() {
        let g = qdc_graph::generate::random_connected(30, 25, 9);
        let mut ledger = Ledger::new();
        let tree = build_bfs_tree(&g, cfg(), NodeId(3), &mut ledger);
        let reference = algorithms::bfs_distances(&g, &g.full_subgraph(), NodeId(3));
        assert_eq!(tree.depth, reference);
        assert_eq!(tree.root, NodeId(3));
        // Parent ports really decrease depth by one.
        for v in g.nodes() {
            if v == NodeId(3) {
                assert!(tree.parent_port[v.index()].is_none());
                continue;
            }
            let p = tree.parent_port[v.index()].expect("connected");
            let parent = Simulator::new(&g, cfg()).info(v).neighbors[p];
            assert_eq!(tree.depth[parent.index()] + 1, tree.depth[v.index()]);
        }
    }

    #[test]
    fn bfs_children_are_inverse_of_parents() {
        let g = Graph::complete(8);
        let mut ledger = Ledger::new();
        let tree = build_bfs_tree(&g, cfg(), NodeId(0), &mut ledger);
        let total_children: usize = tree.children_ports.iter().map(Vec::len).sum();
        assert_eq!(total_children, 7); // every non-root is someone's child
        assert_eq!(tree.height, 1);
    }

    #[test]
    fn bfs_on_disconnected_graph_covers_component_only() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let mut ledger = Ledger::new();
        let tree = build_bfs_tree(&g, cfg(), NodeId(0), &mut ledger);
        assert!(tree.in_tree(NodeId(1)));
        assert!(!tree.in_tree(NodeId(2)));
        assert_eq!(tree.depth[2], u64::MAX);
    }
}
