//! Leader election and BFS-tree construction by flooding — plus a
//! chaos-hardened broadcast that stays correct when the network drops,
//! corrupts, or crash-loses messages.

use crate::ledger::Ledger;
use crate::widths::id_width;
use qdc_congest::{
    ChaosConfig, CongestConfig, Inbox, Message, NodeAlgorithm, NodeInfo, NullTelemetry, Outbox,
    RunOptions, RunReport, SimError, Simulator, Telemetry,
};
use qdc_graph::{Graph, NodeId};

/// Generous per-stage round cap (stages reach quiescence long before).
pub(crate) fn stage_cap(n: usize) -> usize {
    20 * n + 100
}

/// Chaos-aware round budget: [`stage_cap`] stretched by the expected
/// number of retransmissions per delivery, `1 / (1 − drop_prob)`, plus
/// slack. A retry-until-ack discipline (e.g. [`robust_broadcast`])
/// running within this budget succeeds with overwhelming probability
/// for any `drop_prob < 1` bounded away from 1 — at `p = 0.3` the
/// budget leaves hundreds of retries per edge, and a single edge
/// failing `r` consecutive times has probability `p^r`.
///
/// # Panics
///
/// Panics if `drop_prob` is not in `[0, 1)`.
pub fn chaos_round_budget(n: usize, drop_prob: f64) -> usize {
    assert!(
        (0.0..1.0).contains(&drop_prob),
        "drop_prob {drop_prob} outside [0, 1)"
    );
    (stage_cap(n) as f64 / (1.0 - drop_prob)).ceil() as usize + 50
}

// ---------------------------------------------------------------------------
// Leader election
// ---------------------------------------------------------------------------

struct MaxFlood {
    best: u64,
    width: usize,
}

impl NodeAlgorithm for MaxFlood {
    fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
        out.broadcast(Message::from_uint(self.best, self.width));
    }
    fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        let incoming = inbox
            .iter()
            .filter_map(|(_, m)| m.as_uint(self.width))
            .max();
        if let Some(v) = incoming {
            if v > self.best {
                self.best = v;
                out.broadcast(Message::from_uint(v, self.width));
            }
        }
    }
    fn is_terminated(&self) -> bool {
        true // event-driven: the run ends at quiescence
    }
}

/// Elects the maximum-id node by event-driven flooding (≈ D rounds on an
/// n-node network; each message is one node id of `⌈log₂ n⌉` bits).
///
/// # Panics
///
/// Panics if an id does not fit in the `B`-bit budget.
pub fn elect_leader(graph: &Graph, cfg: CongestConfig, ledger: &mut Ledger) -> NodeId {
    let n = graph.node_count();
    let width = id_width(n);
    assert!(
        width <= cfg.bandwidth_bits,
        "node id ({width} bits) exceeds B"
    );
    let sim = Simulator::new(graph, cfg);
    let (nodes, report) = sim.run(
        |info| MaxFlood {
            best: info.id.0 as u64,
            width,
        },
        stage_cap(n),
    );
    ledger.absorb(&report);
    let max = nodes
        .iter()
        .map(|s| s.best)
        .max()
        .expect("non-empty network");
    NodeId(max as u32)
}

// ---------------------------------------------------------------------------
// BFS tree construction
// ---------------------------------------------------------------------------

/// A rooted BFS tree over the network, as produced distributedly.
#[derive(Clone, Debug)]
pub struct BfsTreeInfo {
    /// The root.
    pub root: NodeId,
    /// Parent port of each node (`None` for the root and unreachable
    /// nodes).
    pub parent_port: Vec<Option<usize>>,
    /// Hop depth of each node (`u64::MAX` if unreachable).
    pub depth: Vec<u64>,
    /// Ports leading to each node's tree children.
    pub children_ports: Vec<Vec<usize>>,
    /// Tree height (maximum finite depth).
    pub height: u64,
}

impl BfsTreeInfo {
    /// Whether node `v` participates in the tree.
    pub fn in_tree(&self, v: NodeId) -> bool {
        self.depth[v.index()] != u64::MAX
    }
}

struct BfsWave {
    is_root: bool,
    adopted: bool,
    parent_port: Option<usize>,
    round: u64,
    depth: u64,
}

impl NodeAlgorithm for BfsWave {
    fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
        if self.is_root {
            self.adopted = true;
            self.depth = 0;
            out.broadcast(Message::empty());
        }
    }
    fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        self.round += 1;
        if !self.adopted {
            if let Some((port, _)) = inbox.iter().next() {
                self.adopted = true;
                self.parent_port = Some(port);
                self.depth = self.round;
                for p in 0..out.port_count() {
                    if Some(p) != self.parent_port {
                        out.send(p, Message::empty());
                    }
                }
            }
        }
    }
    fn is_terminated(&self) -> bool {
        true
    }
}

struct ChildReport {
    parent_port: Option<usize>,
    in_tree: bool,
    children: Vec<usize>,
    sent: bool,
}

impl NodeAlgorithm for ChildReport {
    fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
        self.sent = true;
        if self.in_tree {
            if let Some(p) = self.parent_port {
                out.send(p, Message::from_bit(true));
            }
        }
    }
    fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, _out: &mut Outbox) {
        for (port, _) in inbox.iter() {
            self.children.push(port);
        }
    }
    fn is_terminated(&self) -> bool {
        self.sent
    }
}

/// One-round child discovery: every in-tree non-root node sends a bit to
/// its parent port; each node records the ports it heard from. Reused by
/// the fragment engine after each relabeling.
pub(crate) fn discover_children(
    graph: &Graph,
    cfg: CongestConfig,
    parent_port: &[Option<usize>],
    in_tree: &[bool],
    ledger: &mut Ledger,
) -> Vec<Vec<usize>> {
    let sim = Simulator::new(graph, cfg);
    let (nodes, report) = sim.run(
        |info| ChildReport {
            parent_port: parent_port[info.id.index()],
            in_tree: in_tree[info.id.index()],
            children: Vec::new(),
            sent: false,
        },
        stage_cap(graph.node_count()),
    );
    ledger.absorb(&report);
    nodes.into_iter().map(|s| s.children).collect()
}

/// Builds a BFS tree from `root` by wave flooding (0-bit messages; the
/// arrival round *is* the depth) followed by a one-round child-discovery
/// exchange. Costs ≈ eccentricity(root) + 1 rounds.
pub fn build_bfs_tree(
    graph: &Graph,
    cfg: CongestConfig,
    root: NodeId,
    ledger: &mut Ledger,
) -> BfsTreeInfo {
    let n = graph.node_count();
    let sim = Simulator::new(graph, cfg);
    let (nodes, report) = sim.run(
        |info| BfsWave {
            is_root: info.id == root,
            adopted: false,
            parent_port: None,
            round: 0,
            depth: u64::MAX,
        },
        stage_cap(n),
    );
    ledger.absorb(&report);
    let parent_port: Vec<Option<usize>> = nodes.iter().map(|s| s.parent_port).collect();
    let depth: Vec<u64> = nodes
        .iter()
        .map(|s| if s.adopted { s.depth } else { u64::MAX })
        .collect();

    let in_tree: Vec<bool> = nodes.iter().map(|s| s.adopted).collect();
    let children_ports = discover_children(graph, cfg, &parent_port, &in_tree, ledger);
    let height = depth
        .iter()
        .copied()
        .filter(|&d| d != u64::MAX)
        .max()
        .unwrap_or(0);
    BfsTreeInfo {
        root,
        parent_port,
        depth,
        children_ports,
        height,
    }
}

// ---------------------------------------------------------------------------
// Chaos-hardened broadcast (retransmit until neighbor-ack)
// ---------------------------------------------------------------------------

/// Message kinds for [`robust_broadcast`], encoded in 2 bits at Hamming
/// distance 2 — a single flipped bit can never turn a token into an ack
/// or vice versa, it only produces an invalid word that receivers
/// ignore (so corruption degrades to a drop, which the retry discipline
/// already absorbs).
const ROBUST_TOKEN: u64 = 0b01;
const ROBUST_ACK: u64 = 0b10;

/// A drop-tolerant flooding broadcast: every informed node retransmits
/// the token on each port every round until that neighbor acknowledges
/// (or is learned to be informed), giving up after `give_up` rounds.
///
/// The naive flood sends each token once, so a single dropped message
/// permanently cuts off a subtree. Here the per-edge exchange is a
/// stop-and-wait retry loop — the minimal discipline that restores
/// correctness under message loss.
struct RobustFlood {
    informed: bool,
    /// Per port: this neighbor is known informed (token or ack seen), so
    /// retransmission to it stops.
    settled: Vec<bool>,
    /// Per port: an ack is owed in response to a token received last
    /// round (re-acked every time the token is re-received, so lost acks
    /// are retried too).
    owe_ack: Vec<bool>,
    round: usize,
    give_up: usize,
}

impl RobustFlood {
    fn retransmitting(&self) -> bool {
        self.round < self.give_up
    }
}

impl NodeAlgorithm for RobustFlood {
    fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
        if self.informed {
            for p in 0..out.port_count() {
                out.send(p, Message::from_uint(ROBUST_TOKEN, 2));
            }
        }
    }
    fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        self.round += 1;
        for (p, msg) in inbox.iter() {
            // Corrupted payloads (wrong width or invalid word) fall
            // through both arms and are treated as silence.
            match msg.as_uint(2) {
                Some(ROBUST_TOKEN) => {
                    self.informed = true;
                    self.settled[p] = true;
                    self.owe_ack[p] = true;
                }
                Some(ROBUST_ACK) => self.settled[p] = true,
                _ => {}
            }
        }
        if !self.informed || !self.retransmitting() {
            return;
        }
        for p in 0..out.port_count() {
            if self.owe_ack[p] {
                self.owe_ack[p] = false;
                out.send(p, Message::from_uint(ROBUST_ACK, 2));
            } else if !self.settled[p] {
                out.send(p, Message::from_uint(ROBUST_TOKEN, 2));
            }
        }
    }
    fn is_terminated(&self) -> bool {
        // Quiescence-driven: the run ends when every live node has
        // settled all its ports (or given up) and no retries are in
        // flight. `give_up` bounds the run even when a neighbor crashed
        // and will never acknowledge.
        true
    }
}

/// Outcome of a [`robust_broadcast`] run.
#[derive(Clone, Debug)]
pub struct RobustBroadcastOutcome {
    /// Whether each node held the token when the run ended.
    pub informed: Vec<bool>,
    /// The run's accounting, including the fault counters.
    pub report: RunReport,
}

/// Floods a token from `root` under the fault plan described by
/// `chaos`, retransmitting on every unacknowledged port each round
/// until `give_up` rounds have passed (use
/// [`chaos_round_budget`]`(n, drop_prob)` for a budget that makes
/// non-delivery astronomically unlikely). Reaches every non-crashed
/// node connected to `root` in the residual graph.
///
/// Requires `B ≥ 2` (messages are 2-bit words) and a
/// [`max_rounds_watchdog`](ChaosConfig::max_rounds_watchdog) above
/// `give_up + 1`, or the run cannot wind down before the watchdog.
pub fn robust_broadcast(
    graph: &Graph,
    cfg: CongestConfig,
    root: NodeId,
    chaos: &ChaosConfig,
    give_up: usize,
) -> Result<RobustBroadcastOutcome, SimError> {
    robust_broadcast_observed(graph, cfg, root, chaos, give_up, &mut NullTelemetry)
}

/// [`robust_broadcast`] with a [`Telemetry`] sink observing the run —
/// per-round deliveries, plus every drop, corruption and crash the fault
/// plan injects, attributed to the edge it struck. Observation never
/// perturbs: the outcome is bit-for-bit that of [`robust_broadcast`]
/// under the same config.
pub fn robust_broadcast_observed<T: Telemetry>(
    graph: &Graph,
    cfg: CongestConfig,
    root: NodeId,
    chaos: &ChaosConfig,
    give_up: usize,
    telemetry: &mut T,
) -> Result<RobustBroadcastOutcome, SimError> {
    robust_broadcast_with(
        graph,
        cfg,
        RunOptions::default(),
        root,
        chaos,
        give_up,
        telemetry,
    )
}

/// [`robust_broadcast_observed`] with explicit simulator [`RunOptions`]
/// (worker threads for the engine's compute phase). Thread count never
/// changes the outcome, the report, or the telemetry stream.
pub fn robust_broadcast_with<T: Telemetry>(
    graph: &Graph,
    cfg: CongestConfig,
    options: RunOptions,
    root: NodeId,
    chaos: &ChaosConfig,
    give_up: usize,
    telemetry: &mut T,
) -> Result<RobustBroadcastOutcome, SimError> {
    assert!(cfg.bandwidth_bits >= 2, "robust flood needs B >= 2");
    let sim = Simulator::with_options(graph, cfg, options);
    let (nodes, report) = sim.try_run_observed(
        |info| RobustFlood {
            informed: info.id == root,
            settled: vec![false; info.degree()],
            owe_ack: vec![false; info.degree()],
            round: 0,
            give_up,
        },
        chaos,
        telemetry,
    )?;
    Ok(RobustBroadcastOutcome {
        informed: nodes.into_iter().map(|s| s.informed).collect(),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdc_graph::{algorithms, Graph};

    fn cfg() -> CongestConfig {
        CongestConfig::classical(32)
    }

    #[test]
    fn leader_is_max_id() {
        let g = qdc_graph::generate::random_connected(40, 20, 5);
        let mut ledger = Ledger::new();
        let leader = elect_leader(&g, cfg(), &mut ledger);
        assert_eq!(leader, NodeId(39));
        assert!(ledger.rounds >= 1);
    }

    #[test]
    fn leader_flood_rounds_scale_with_diameter() {
        let path = Graph::path(50);
        let mut ledger = Ledger::new();
        let leader = elect_leader(&path, cfg(), &mut ledger);
        assert_eq!(leader, NodeId(49));
        // Information must travel the whole path (id 49 sits at one end).
        assert!(ledger.rounds >= 49, "rounds {}", ledger.rounds);
        assert!(ledger.rounds <= 60, "rounds {}", ledger.rounds);
    }

    #[test]
    fn bfs_tree_matches_reference_depths() {
        let g = qdc_graph::generate::random_connected(30, 25, 9);
        let mut ledger = Ledger::new();
        let tree = build_bfs_tree(&g, cfg(), NodeId(3), &mut ledger);
        let reference = algorithms::bfs_distances(&g, &g.full_subgraph(), NodeId(3));
        assert_eq!(tree.depth, reference);
        assert_eq!(tree.root, NodeId(3));
        // Parent ports really decrease depth by one.
        for v in g.nodes() {
            if v == NodeId(3) {
                assert!(tree.parent_port[v.index()].is_none());
                continue;
            }
            let p = tree.parent_port[v.index()].expect("connected");
            let parent = Simulator::new(&g, cfg()).info(v).neighbors[p];
            assert_eq!(tree.depth[parent.index()] + 1, tree.depth[v.index()]);
        }
    }

    #[test]
    fn bfs_children_are_inverse_of_parents() {
        let g = Graph::complete(8);
        let mut ledger = Ledger::new();
        let tree = build_bfs_tree(&g, cfg(), NodeId(0), &mut ledger);
        let total_children: usize = tree.children_ports.iter().map(Vec::len).sum();
        assert_eq!(total_children, 7); // every non-root is someone's child
        assert_eq!(tree.height, 1);
    }

    #[test]
    fn bfs_on_disconnected_graph_covers_component_only() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let mut ledger = Ledger::new();
        let tree = build_bfs_tree(&g, cfg(), NodeId(0), &mut ledger);
        assert!(tree.in_tree(NodeId(1)));
        assert!(!tree.in_tree(NodeId(2)));
        assert_eq!(tree.depth[2], u64::MAX);
    }

    // -----------------------------------------------------------------
    // Chaos-hardened broadcast
    // -----------------------------------------------------------------

    fn chaos(seed: u64, drop: f64, give_up: usize) -> ChaosConfig {
        ChaosConfig {
            seed,
            drop_prob: drop,
            crash_schedule: Vec::new(),
            corrupt_prob: 0.0,
            max_rounds_watchdog: give_up + 5,
        }
    }

    #[test]
    fn chaos_robust_broadcast_fault_free_informs_everyone_quickly() {
        let g = qdc_graph::generate::random_connected(30, 20, 4);
        let out = robust_broadcast(&g, cfg(), NodeId(0), &chaos(0, 0.0, 200), 200)
            .expect("fault-free run completes");
        assert!(out.informed.iter().all(|&i| i));
        assert_eq!(out.report.messages_dropped, 0);
        assert!(out.report.completed);
    }

    #[test]
    fn chaos_robust_broadcast_observed_matches_plain_and_accounts_faults() {
        let g = qdc_graph::generate::random_connected(15, 10, 8);
        let give_up = chaos_round_budget(15, 0.2);
        let cc = chaos(21, 0.2, give_up);
        let plain = robust_broadcast(&g, cfg(), NodeId(0), &cc, give_up).expect("completes");
        let mut prof = qdc_congest::RoundProfiler::new(g.node_count(), g.edge_count(), 32);
        let observed = robust_broadcast_observed(&g, cfg(), NodeId(0), &cc, give_up, &mut prof)
            .expect("completes");
        assert_eq!(plain.informed, observed.informed);
        assert_eq!(plain.report, observed.report);
        let telemetry = prof.finish();
        assert_eq!(telemetry.total_messages(), observed.report.messages_sent);
        assert_eq!(telemetry.total_bits(), observed.report.bits_sent);
        assert_eq!(telemetry.total_dropped(), observed.report.messages_dropped);
    }

    #[test]
    fn chaos_robust_broadcast_survives_heavy_drops() {
        // At 30% loss a fire-once flood reliably strands nodes; the
        // retry discipline must not.
        let g = Graph::path(12);
        let give_up = chaos_round_budget(12, 0.3);
        for seed in 0..5 {
            let out = robust_broadcast(&g, cfg(), NodeId(0), &chaos(seed, 0.3, give_up), give_up)
                .expect("run completes within the chaos budget");
            assert!(
                out.informed.iter().all(|&i| i),
                "seed {seed}: a node was stranded"
            );
            assert!(out.report.messages_dropped > 0, "seed {seed}: no drops");
        }
    }

    #[test]
    fn chaos_robust_broadcast_covers_residual_graph_around_crash() {
        // A leaf hangs off node 0 and crashes early; the rest of the
        // (connected) residual graph must still be fully informed, and
        // the run must wind down despite the never-acking dead leaf.
        let mut edges: Vec<(u32, u32)> = (0..9).map(|v| (v, v + 1)).collect();
        edges.extend([(0, 5), (2, 7), (3, 9)]);
        edges.push((0, 10)); // the doomed leaf
        let g = Graph::from_edges(11, &edges);
        let give_up = chaos_round_budget(11, 0.2);
        let mut cc = chaos(3, 0.2, give_up);
        cc.crash_schedule = vec![(NodeId(10), 2)];
        let out =
            robust_broadcast(&g, cfg(), NodeId(0), &cc, give_up).expect("winds down after give_up");
        assert_eq!(out.report.nodes_crashed, 1);
        for v in 0..10 {
            assert!(out.informed[v], "live node {v} was stranded");
        }
    }

    #[test]
    fn chaos_robust_broadcast_tolerates_corruption_as_loss() {
        // Corrupted tokens/acks decode to invalid words and are ignored;
        // the Hamming-distance-2 encoding means a single bit flip can
        // never forge the other message kind. Corruption therefore only
        // slows the flood down, like drops.
        let g = Graph::cycle(10);
        let give_up = chaos_round_budget(10, 0.2);
        let mut cc = chaos(11, 0.1, give_up);
        cc.corrupt_prob = 0.2;
        let out = robust_broadcast(&g, cfg(), NodeId(0), &cc, give_up).expect("completes");
        assert!(out.informed.iter().all(|&i| i));
        assert!(out.report.bits_corrupted > 0);
    }

    #[test]
    fn chaos_round_budget_scales_with_drop_rate() {
        assert_eq!(chaos_round_budget(10, 0.0), stage_cap(10) + 50);
        assert!(chaos_round_budget(10, 0.5) > chaos_round_budget(10, 0.1));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn chaos_round_budget_rejects_certain_loss() {
        chaos_round_budget(10, 1.0);
    }
}
