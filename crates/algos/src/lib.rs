//! Distributed CONGEST algorithms: the upper-bound side of the paper.
//!
//! The paper's lower bounds are meaningful because near-matching *upper*
//! bounds exist classically: MST in Õ(√n + D) (Kutten–Peleg), α-approximate
//! MST in O(W/α + D) (Elkin), Õ(√n + D) verification (Das Sarma et al.),
//! and the Grover-based quantum Disjointness protocol of Example 1.1.
//! This crate implements executable counterparts on the `qdc-congest`
//! simulator:
//!
//! * [`flood`] — leader election and BFS-tree construction;
//! * [`tree`] — convergecast / broadcast aggregation over a rooted tree;
//! * [`fragments`] — the two-phase fragment engine (Controlled-GHS-style
//!   local merging up to size √n, then globally pipelined Borůvka over a
//!   BFS tree), used for both MST and connected-component counting;
//! * [`mst`] — exact MST (Kutten–Peleg style) and the Elkin-style
//!   threshold-sweep α-approximation whose round count scales as `W/α`;
//! * [`verify`] / [`verify_ext`] — distributed verification of every
//!   Section 2.2 / Appendix A.2 problem: Hamiltonian cycle, spanning
//!   tree, connectivity, spanning connected subgraph, cycle and e-cycle
//!   containment, bipartiteness, s-t connectivity, cut, s-t cut,
//!   edge-on-all-paths and simple path, plus distributed least-element
//!   lists (Cohen's pruned flood) in [`lel`] — the full Corollary 3.7
//!   roster;
//! * [`sssp`] — distributed Bellman–Ford single-source distances, and
//!   [`apsp`] — pipelined-BFS all-pairs distances / diameter (the
//!   \[HW12\] upper bound the conclusion's open problems refer to);
//! * [`disjointness`] — Example 1.1: classical streaming vs quantum
//!   (Grover) distributed Set Disjointness.
//!
//! ## Composition and accounting conventions
//!
//! Multi-phase algorithms are composed of successive simulator runs with
//! state carried between stages; a [`Ledger`] accumulates rounds, messages
//! and bits across stages. Phase switches happen at global quiescence —
//! the standard synchronous-model idealization. Message widths are derived
//! from `n` and the maximum weight; stages assert that one logical message
//! fits in the `B`-bit budget (i.e. `B = Θ(log n)` as in the paper; the
//! lower-bound formulas take the same `B`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apsp;
pub mod disjointness;
pub mod flood;
pub mod fragments;
pub mod ledger;
pub mod lel;
pub mod mst;
pub mod sssp;
pub mod tree;
pub mod verify;
pub mod verify_ext;
pub mod widths;

pub use ledger::Ledger;
