//! The two-party graph instance type shared by all reductions.

use qdc_graph::{EdgeId, Graph, NodeId, Subgraph};

/// A graph whose edge set is partitioned between Carol and David
/// (Definition 3.3: `E(G) = E_C(G) ⊎ E_D(G)`).
#[derive(Clone, Debug)]
pub struct TwoPartyGraphInstance {
    graph: Graph,
    carol_edges: Vec<EdgeId>,
    david_edges: Vec<EdgeId>,
}

impl TwoPartyGraphInstance {
    /// Bundles a graph with its edge partition.
    ///
    /// # Panics
    ///
    /// Panics if the two edge lists do not partition `E(G)` exactly.
    pub fn new(graph: Graph, carol_edges: Vec<EdgeId>, david_edges: Vec<EdgeId>) -> Self {
        let mut seen = vec![false; graph.edge_count()];
        for &e in carol_edges.iter().chain(&david_edges) {
            assert!(
                !std::mem::replace(&mut seen[e.index()], true),
                "edge {e:?} assigned twice"
            );
        }
        assert!(
            seen.iter().all(|&s| s),
            "every edge must belong to Carol or David"
        );
        TwoPartyGraphInstance {
            graph,
            carol_edges,
            david_edges,
        }
    }

    /// The underlying graph `G`.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Carol's edges `E_C(G)`.
    pub fn carol_edges(&self) -> &[EdgeId] {
        &self.carol_edges
    }

    /// David's edges `E_D(G)`.
    pub fn david_edges(&self) -> &[EdgeId] {
        &self.david_edges
    }

    /// The full edge set as a subgraph of `G` (for the verification
    /// predicates, which test properties of `G` itself).
    pub fn full_subgraph(&self) -> Subgraph {
        self.graph.full_subgraph()
    }

    /// Whether a player's edge list is a perfect matching on `V(G)`.
    ///
    /// Definition 3.3 restricts Hamiltonian-cycle instances to the case
    /// where both `E_C` and `E_D` are perfect matchings; the Quantum
    /// Simulation Theorem's embedding (Section 8) relies on it.
    pub fn is_perfect_matching(&self, edges: &[EdgeId]) -> bool {
        let n = self.graph.node_count();
        if !n.is_multiple_of(2) || edges.len() != n / 2 {
            return false;
        }
        let mut covered = vec![false; n];
        for &e in edges {
            let (u, v) = self.graph.endpoints(e);
            if covered[u.index()] || covered[v.index()] {
                return false;
            }
            covered[u.index()] = true;
            covered[v.index()] = true;
        }
        covered.iter().all(|&c| c)
    }

    /// Checks the Definition 3.3 matching restriction for both players.
    pub fn both_sides_perfect_matchings(&self) -> bool {
        self.is_perfect_matching(&self.carol_edges) && self.is_perfect_matching(&self.david_edges)
    }

    /// Degree of `v` in `G`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.graph.degree(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdc_graph::Graph;

    #[test]
    fn partition_is_validated() {
        let g = Graph::cycle(4);
        let edges: Vec<EdgeId> = g.edges().collect();
        let inst =
            TwoPartyGraphInstance::new(g, vec![edges[0], edges[2]], vec![edges[1], edges[3]]);
        assert!(inst.both_sides_perfect_matchings());
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn double_assignment_rejected() {
        let g = Graph::cycle(4);
        let edges: Vec<EdgeId> = g.edges().collect();
        TwoPartyGraphInstance::new(g, vec![edges[0], edges[1]], vec![edges[1]]);
    }

    #[test]
    #[should_panic(expected = "every edge")]
    fn missing_edge_rejected() {
        let g = Graph::cycle(4);
        let edges: Vec<EdgeId> = g.edges().collect();
        TwoPartyGraphInstance::new(g, vec![edges[0]], vec![edges[1]]);
    }

    #[test]
    fn non_matching_detected() {
        let g = Graph::path(4); // 3 edges: a path is not two matchings
        let edges: Vec<EdgeId> = g.edges().collect();
        let inst = TwoPartyGraphInstance::new(g, vec![edges[0], edges[1]], vec![edges[2]]);
        assert!(!inst.is_perfect_matching(inst.carol_edges()));
        assert!(!inst.both_sides_perfect_matchings());
    }
}
