//! The gadget reductions of Section 7 (and Appendix C) of the paper.
//!
//! Two-party graph problems (Definition 3.3) split the edge set of a graph
//! `G` between Carol and David; here we build the graphs that *reduce*
//! hard communication problems to Hamiltonian-cycle verification:
//!
//! * [`ipmod3_ham`] — `IPmod3ₙ → Ham`: a chain of 3-track permutation
//!   gadgets (Figures 4–6, 12) such that `G` is a Hamiltonian cycle iff
//!   `Σᵢ xᵢyᵢ ≢ 0 (mod 3)` (Lemma C.3), with each player's edges forming a
//!   perfect matching (as Theorem 3.5's embedding requires);
//! * [`gapeq_ham`] — `(βn)-Eq → (βn)-Ham`: a chain of 2-track pass/turn
//!   gadgets (Figure 7) such that `G` is a Hamiltonian cycle iff `x = y`,
//!   and a Hamming distance of `δ` produces `δ + 1` disjoint cycles (the
//!   paper counts `δ`; the off-by-one is an artifact of the end caps and
//!   irrelevant to the Ω(βn) gap);
//! * [`ham_to_st`] — the Ham → spanning-tree reduction used in the proof
//!   of Theorem 3.6 (check degrees, delete one edge);
//! * [`corollaries`] — the Corollary 3.10 transfers: the same instances
//!   read as spanning-tree, connectivity and s-t-connectivity problems.
//!
//! The gadget wirings are our own (the paper's figures pin down only the
//! boundary interface); every stated invariant — Observation 7.1,
//! Lemma 7.2, Lemma C.3, the δ-cycle count — is verified by exhaustive and
//! property-based tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod corollaries;
pub mod gapeq_ham;
pub mod ham_to_st;
pub mod instance;
pub mod ipmod3_ham;

pub use campaign::{GadgetExperiment, GadgetFamily, GadgetPoint};
pub use gapeq_ham::gapeq_to_ham;
pub use instance::TwoPartyGraphInstance;
pub use ipmod3_ham::ipmod3_to_ham;
