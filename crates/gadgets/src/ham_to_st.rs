//! The Ham → spanning-tree reduction from the proof of Theorem 3.6.
//!
//! To verify that `M` is a Hamiltonian cycle using a spanning-tree
//! verifier: first check every node has degree 2 in `M` (locally, O(D)
//! rounds in the distributed setting); if so, `M` is a disjoint union of
//! cycles, and deleting one arbitrary edge yields a spanning tree **iff**
//! `M` was a single spanning cycle.

use qdc_graph::{predicates, EdgeId, Graph, Subgraph};

/// The outcome of the degree pre-check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DegreeCheck {
    /// All degrees are 2; the reduced instance is `M` minus the named edge.
    Reduced {
        /// `M` with one edge removed.
        reduced: Subgraph,
        /// The removed edge.
        removed: EdgeId,
    },
    /// Some node has degree ≠ 2, so `M` is certainly not a Hamiltonian
    /// cycle (no spanning-tree query needed).
    NotTwoRegular,
}

/// Performs the reduction: degree check, then delete one edge.
///
/// Returns [`DegreeCheck::NotTwoRegular`] if some node's `M`-degree is not
/// 2 (including the edgeless case).
pub fn ham_to_spanning_tree(host: &Graph, sub: &Subgraph) -> DegreeCheck {
    if host.nodes().any(|u| sub.degree_in(host, u) != 2) {
        return DegreeCheck::NotTwoRegular;
    }
    let removed = sub.edges().next().expect("2-regular subgraph has edges");
    let mut reduced = sub.clone();
    reduced.remove(removed);
    DegreeCheck::Reduced { reduced, removed }
}

/// The full reduction-based verifier: decides Hamiltonicity using only a
/// spanning-tree oracle (here the sequential predicate; in `qdc-algos`
/// the same shape runs distributed).
pub fn verify_ham_via_spanning_tree(host: &Graph, sub: &Subgraph) -> bool {
    match ham_to_spanning_tree(host, sub) {
        DegreeCheck::NotTwoRegular => false,
        DegreeCheck::Reduced { reduced, .. } => predicates::is_spanning_tree(host, &reduced),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdc_graph::Graph;

    #[test]
    fn cycle_reduces_to_spanning_tree() {
        let g = Graph::cycle(6);
        let sub = g.full_subgraph();
        match ham_to_spanning_tree(&g, &sub) {
            DegreeCheck::Reduced { reduced, removed } => {
                assert!(!reduced.contains(removed));
                assert!(predicates::is_spanning_tree(&g, &reduced));
            }
            other => panic!("expected reduction, got {other:?}"),
        }
        assert!(verify_ham_via_spanning_tree(&g, &sub));
    }

    #[test]
    fn two_cycles_fail_via_reduction() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let sub = g.full_subgraph();
        // Degrees are all 2, so the reduction proceeds — but the result is
        // not a spanning tree (disconnected).
        assert!(matches!(
            ham_to_spanning_tree(&g, &sub),
            DegreeCheck::Reduced { .. }
        ));
        assert!(!verify_ham_via_spanning_tree(&g, &sub));
    }

    #[test]
    fn wrong_degrees_short_circuit() {
        let g = Graph::path(4);
        assert_eq!(
            ham_to_spanning_tree(&g, &g.full_subgraph()),
            DegreeCheck::NotTwoRegular
        );
        assert!(!verify_ham_via_spanning_tree(&g, &g.full_subgraph()));
        assert_eq!(
            ham_to_spanning_tree(&g, &g.empty_subgraph()),
            DegreeCheck::NotTwoRegular
        );
    }

    #[test]
    fn agrees_with_direct_predicate_on_gadget_instances() {
        use crate::ipmod3_to_ham;
        use qdc_graph::generate::random_bits;
        for seed in 0..6 {
            let x = random_bits(30, 500 + seed);
            let y = random_bits(30, 600 + seed);
            let inst = ipmod3_to_ham(&x, &y);
            let sub = inst.full_subgraph();
            assert_eq!(
                verify_ham_via_spanning_tree(inst.graph(), &sub),
                predicates::is_hamiltonian_cycle(inst.graph(), &sub),
                "seed {seed}"
            );
        }
    }
}
