//! Corollary 3.10: carrying the Ham hardness to the other two-party
//! graph problems.
//!
//! The paper notes that Hamiltonian-cycle hardness transfers by cheap
//! deterministic reductions to spanning tree, connectivity and
//! s-t connectivity in the communication setting. This module makes those
//! reductions executable on the gadget instances:
//!
//! * **Ham → ST**: after the (free) degree-2 check, deleting one fixed
//!   edge turns "is a Hamiltonian cycle" into "is a spanning tree";
//! * **Gap-Eq → Gap-Connectivity**: the [`crate::gapeq_to_ham`] instance
//!   *is* a connectivity instance — connected iff `x = y`, and `Δ(x, y)`
//!   mismatches leave it exactly `Δ` edge-additions away from connected;
//! * **Gap-Eq → s-t connectivity**: the two end caps of the same instance
//!   are connected iff `x = y`.

use crate::gapeq_ham::{gapeq_to_ham, node_count_for};
use crate::instance::TwoPartyGraphInstance;
use qdc_graph::{EdgeId, NodeId, Subgraph};

/// The Ham → ST instance: the same graph with one designated edge
/// removed from the evaluated subgraph. For inputs where every node has
/// degree 2 (all gadget instances), the remainder is a spanning tree iff
/// the original was a Hamiltonian cycle.
///
/// Returns `(subgraph-with-edge-removed, removed-edge)`.
///
/// # Panics
///
/// Panics if the instance has no edges.
pub fn ham_to_st_instance(inst: &TwoPartyGraphInstance) -> (Subgraph, EdgeId) {
    let mut sub = inst.full_subgraph();
    let removed = *inst
        .carol_edges()
        .first()
        .expect("gadget instances have Carol edges");
    sub.remove(removed);
    (sub, removed)
}

/// The s-t pair for the Gap-Eq instance's s-t connectivity reading: the
/// left cap node and the right cap node (`x = y` ⟺ they share the single
/// Hamiltonian cycle; any mismatch strands them in different cycles).
pub fn gapeq_st_pair(n_bits: usize) -> (NodeId, NodeId) {
    let base = node_count_for(n_bits) - 4; // caps are the last 4 nodes
    (NodeId::from(base), NodeId::from(base + 2))
}

/// Convenience: builds the Gap-Eq instance together with its
/// connectivity/s-t-connectivity reading.
pub fn gapeq_connectivity_instance(
    x: &[bool],
    y: &[bool],
) -> (TwoPartyGraphInstance, NodeId, NodeId) {
    let inst = gapeq_to_ham(x, y);
    let (s, t) = gapeq_st_pair(x.len());
    (inst, s, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipmod3_to_ham;
    use qdc_graph::{generate, predicates};

    #[test]
    fn ham_to_st_instance_flips_correctly() {
        for seed in 0..6 {
            let x = generate::random_bits(24, seed);
            let y = generate::random_bits(24, seed + 50);
            let inst = ipmod3_to_ham(&x, &y);
            let was_ham = predicates::is_hamiltonian_cycle(inst.graph(), &inst.full_subgraph());
            let (st_sub, removed) = ham_to_st_instance(&inst);
            assert!(!st_sub.contains(removed));
            assert_eq!(
                predicates::is_spanning_tree(inst.graph(), &st_sub),
                was_ham,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn gapeq_connectivity_reads_equality() {
        let n = 20;
        let x = generate::random_bits(n, 7);
        // Equal: connected (spanning).
        let (inst, s, t) = gapeq_connectivity_instance(&x, &x.clone());
        let sub = inst.full_subgraph();
        assert!(predicates::is_spanning_connected_subgraph(
            inst.graph(),
            &sub
        ));
        assert!(predicates::st_connected(inst.graph(), &sub, s, t));
        // Mismatched: disconnected, with farness = Δ.
        let mut y = x.clone();
        for j in 0..4 {
            y[5 * j] = !y[5 * j];
        }
        let (inst, s, t) = gapeq_connectivity_instance(&x, &y);
        let sub = inst.full_subgraph();
        assert!(!predicates::st_connected(inst.graph(), &sub, s, t));
        assert_eq!(
            predicates::distance_from_spanning_connected(inst.graph(), &sub),
            4
        );
    }

    #[test]
    fn st_pair_lands_on_the_caps() {
        let n = 10;
        let (s, t) = gapeq_st_pair(n);
        let inst = gapeq_to_ham(&vec![false; n], &vec![false; n]);
        // Caps have degree 2 (like everything) and sit past the internal
        // nodes.
        assert!(s.index() >= 2 * (n + 1) + 4 * n);
        assert!(t.index() > s.index());
        assert!(inst.graph().node_count() > t.index());
    }
}
