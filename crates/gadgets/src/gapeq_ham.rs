//! The `Gap-Eq → Gap-Ham` reduction (Section 7, Figure 7).
//!
//! Given `x, y ∈ {0,1}ⁿ`, we build a graph `G` on `6n + 6` nodes from a
//! chain of 2-track gadgets plus two end caps, such that each gadget
//! **passes** (connects its left boundary pair to its right boundary
//! pair) when `xᵢ = yᵢ` and **turns** (connects left-to-left and
//! right-to-right) when `xᵢ ≠ yᵢ`:
//!
//! * `x = y` ⟹ `G` is a Hamiltonian cycle;
//! * `Δ(x, y) = δ > 0` ⟹ `G` consists of exactly `δ + 1` disjoint cycles
//!   (the paper states `δ`; our end caps shift the count by one — the
//!   `Ω(βn)`-farness is unaffected), so `G` is Ω(δ)-far from being a
//!   Hamiltonian cycle;
//! * Carol's edges depend only on `x`, David's only on `y`, and both form
//!   perfect matchings of `G`.
//!
//! ## The gadget wiring
//!
//! Each gadget has boundary pairs `L₀,L₁` (shared with the previous
//! gadget) and `R₀,R₁` (shared with the next), and internal nodes
//! `m₀, m₁, f, g`. Carol plays `A₀ = {L₀m₀, L₁m₁, fg}` or
//! `A₁ = {L₀g, L₁m₀, m₁f}`; David plays `B₀ = {gm₀, R₀m₁, fR₁}` or
//! `B₁ = {m₀m₁, R₀f, gR₁}`. Exhaustive case analysis (see tests):
//! `A₀∪B₀` and `A₁∪B₁` are crossed passes; `A₀∪B₁` and `A₁∪B₀` are turns.
//! The left cap is a David-owned U-turn (`v₀⁰c₀, v₀¹c₁` plus Carol's
//! `c₀c₁`), the right cap a Carol-owned U-turn — so both players' edges
//! remain perfect matchings.

use crate::instance::TwoPartyGraphInstance;
use qdc_graph::{GraphBuilder, NodeId};

/// Nodes of `G`: `6n + 6` for `n` input bits.
pub fn node_count_for(n: usize) -> usize {
    6 * n + 6
}

/// Builds the `Gap-Eq → Ham` instance for inputs `x, y`.
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths or are empty.
pub fn gapeq_to_ham(x: &[bool], y: &[bool]) -> TwoPartyGraphInstance {
    assert_eq!(x.len(), y.len(), "inputs must have equal length");
    let n = x.len();
    assert!(n >= 1, "need at least one input bit");

    let mut b = GraphBuilder::new(node_count_for(n));
    // Boundary column c ∈ 0..=n, track j ∈ {0, 1}.
    let bd = |c: usize, j: usize| NodeId::from(2 * c + j);
    // Internal node k ∈ {0 = m₀, 1 = m₁, 2 = f, 3 = g} of gadget i.
    let inner = |i: usize, k: usize| NodeId::from(2 * (n + 1) + 4 * i + k);
    // Cap nodes.
    let cap = |k: usize| NodeId::from(2 * (n + 1) + 4 * n + k); // k ∈ 0..4

    let mut carol = Vec::new();
    let mut david = Vec::new();
    for i in 0..n {
        let (l0, l1) = (bd(i, 0), bd(i, 1));
        let (r0, r1) = (bd(i + 1, 0), bd(i + 1, 1));
        let (m0, m1, f, g) = (inner(i, 0), inner(i, 1), inner(i, 2), inner(i, 3));
        if x[i] {
            // A₁ = {L₀g, L₁m₀, m₁f}
            carol.push(b.add_edge(l0, g));
            carol.push(b.add_edge(l1, m0));
            carol.push(b.add_edge(m1, f));
        } else {
            // A₀ = {L₀m₀, L₁m₁, fg}
            carol.push(b.add_edge(l0, m0));
            carol.push(b.add_edge(l1, m1));
            carol.push(b.add_edge(f, g));
        }
        if y[i] {
            // B₁ = {m₀m₁, R₀f, gR₁}
            david.push(b.add_edge(m0, m1));
            david.push(b.add_edge(r0, f));
            david.push(b.add_edge(g, r1));
        } else {
            // B₀ = {gm₀, R₀m₁, fR₁}
            david.push(b.add_edge(g, m0));
            david.push(b.add_edge(r0, m1));
            david.push(b.add_edge(f, r1));
        }
    }
    // Left cap (David owns the boundary-touching edges).
    david.push(b.add_edge(bd(0, 0), cap(0)));
    david.push(b.add_edge(bd(0, 1), cap(1)));
    carol.push(b.add_edge(cap(0), cap(1)));
    // Right cap (Carol owns the boundary-touching edges).
    carol.push(b.add_edge(bd(n, 0), cap(2)));
    carol.push(b.add_edge(bd(n, 1), cap(3)));
    david.push(b.add_edge(cap(2), cap(3)));

    TwoPartyGraphInstance::new(b.build(), carol, david)
}

/// Predicted cycle decomposition: `1` cycle if `x = y`, otherwise
/// `Δ(x, y) + 1` cycles.
pub fn predicted_cycle_count(x: &[bool], y: &[bool]) -> usize {
    let d = x.iter().zip(y).filter(|&(&a, &b)| a != b).count();
    d + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdc_graph::predicates;

    #[test]
    fn all_four_gadget_cases_give_two_regular_perfect_matchings() {
        for &(xb, yb) in &[(false, false), (false, true), (true, false), (true, true)] {
            let inst = gapeq_to_ham(&[xb], &[yb]);
            let g = inst.graph();
            assert_eq!(g.node_count(), 12);
            assert_eq!(g.edge_count(), 12);
            for v in g.nodes() {
                assert_eq!(g.degree(v), 2, "case ({xb},{yb}) node {v}");
            }
            assert!(inst.both_sides_perfect_matchings(), "case ({xb},{yb})");
        }
    }

    #[test]
    fn equal_bits_pass_unequal_bits_turn() {
        // n = 1 with caps: pass ⇒ 1 Hamiltonian cycle; turn ⇒ 2 cycles.
        for &(xb, yb) in &[(false, false), (true, true)] {
            let inst = gapeq_to_ham(&[xb], &[yb]);
            assert!(
                predicates::is_hamiltonian_cycle(inst.graph(), &inst.full_subgraph()),
                "case ({xb},{yb}) should be Hamiltonian"
            );
        }
        for &(xb, yb) in &[(false, true), (true, false)] {
            let inst = gapeq_to_ham(&[xb], &[yb]);
            assert_eq!(
                predicates::cycle_count_two_regular(inst.graph(), &inst.full_subgraph()),
                Ok(2),
                "case ({xb},{yb}) should split into 2 cycles"
            );
        }
    }

    #[test]
    fn hamiltonicity_iff_equal_exhaustively_n4() {
        for xb in 0..16u8 {
            for yb in 0..16u8 {
                let x: Vec<bool> = (0..4).map(|i| xb >> i & 1 == 1).collect();
                let y: Vec<bool> = (0..4).map(|i| yb >> i & 1 == 1).collect();
                let inst = gapeq_to_ham(&x, &y);
                let sub = inst.full_subgraph();
                assert_eq!(
                    predicates::is_hamiltonian_cycle(inst.graph(), &sub),
                    x == y,
                    "x={x:?} y={y:?}"
                );
                assert_eq!(
                    predicates::cycle_count_two_regular(inst.graph(), &sub),
                    Ok(predicted_cycle_count(&x, &y)),
                    "x={x:?} y={y:?}"
                );
            }
        }
    }

    #[test]
    fn hamming_distance_controls_cycle_count_on_random_inputs() {
        use qdc_graph::generate::random_bits;
        for seed in 0..8 {
            let n = 60;
            let x = random_bits(n, 300 + seed);
            let mut y = x.clone();
            // Plant exactly `seed + 1` mismatches.
            for j in 0..(seed as usize + 1) {
                y[7 * j % n] = !y[7 * j % n];
            }
            let d = x.iter().zip(&y).filter(|&(&a, &b)| a != b).count();
            let inst = gapeq_to_ham(&x, &y);
            assert_eq!(
                predicates::cycle_count_two_regular(inst.graph(), &inst.full_subgraph()),
                Ok(d + 1),
                "seed {seed}, d {d}"
            );
            assert!(inst.both_sides_perfect_matchings());
        }
    }

    #[test]
    fn far_inputs_are_far_from_hamiltonian() {
        // δ-farness: merging k disjoint cycles into one Hamiltonian cycle
        // needs at least k edge additions; so cycle count certifies
        // distance. With Δ = n (complement), cycles = n + 1.
        let n = 20;
        let x = vec![false; n];
        let y = vec![true; n];
        let inst = gapeq_to_ham(&x, &y);
        assert_eq!(
            predicates::cycle_count_two_regular(inst.graph(), &inst.full_subgraph()),
            Ok(n + 1)
        );
    }

    #[test]
    fn david_edges_depend_only_on_y() {
        let y = vec![true, false, true, true];
        let a = gapeq_to_ham(&[false; 4], &y);
        let b = gapeq_to_ham(&[true; 4], &y);
        let ends = |inst: &TwoPartyGraphInstance| -> Vec<_> {
            inst.david_edges()
                .iter()
                .map(|&e| inst.graph().endpoints(e))
                .collect()
        };
        assert_eq!(ends(&a), ends(&b));
    }
}
