//! The `IPmod3 → Ham` reduction (Section 7, Figures 4–6 and 12).
//!
//! Given `x, y ∈ {0,1}ⁿ`, we build a graph `G` on `12n` nodes out of `n`
//! gadgets `G₁ … Gₙ` chained on shared 3-node boundary columns
//! `v_i⁰, v_i¹, v_i²` (with the wrap-around identification
//! `v_n^j = v_0^j`), such that:
//!
//! * **Observation 7.1**: each gadget consists of three disjoint paths
//!   connecting `v_{i-1}^j` to `v_i^{σᵢ(j)}` where `σᵢ` is a cyclic shift
//!   by `2·xᵢyᵢ (mod 3)`; Carol's edges form a matching covering all
//!   gadget nodes except the right boundary, David's all except the left;
//! * **Lemma 7.2**: the chain composes the shifts, so `v_0^j` is joined by
//!   a path to `v_n^{(j + 2Σxᵢyᵢ) mod 3}`;
//! * **Lemma C.3**: after the wrap-around, `G` is a Hamiltonian cycle iff
//!   `Σᵢ xᵢyᵢ ≢ 0 (mod 3)` (a shift by 2s is nonzero iff `s ≢ 0` since 2
//!   is invertible mod 3), and otherwise consists of exactly 3 cycles;
//!   both players' edge sets are perfect matchings of `G`.
//!
//! The paper's gadget realizes a shift by `xᵢyᵢ`; ours realizes `2·xᵢyᵢ`
//! via the commutator-style wiring `(β^y α^x)²` with transpositions
//! `α = (0 1)`, `β = (0 2)` — an equivalent relabeling with the same
//! Hamiltonicity criterion.

use crate::instance::TwoPartyGraphInstance;
use qdc_graph::{GraphBuilder, NodeId};

/// Nodes of `G` per input bit: 3 boundary + 9 internal.
pub const NODES_PER_INPUT_BIT: usize = 12;

/// The transposition `α = (0 1)` (applied when `xᵢ = 1`).
fn alpha(apply: bool, j: usize) -> usize {
    if apply {
        [1, 0, 2][j]
    } else {
        j
    }
}

/// The transposition `β = (0 2)` (applied when `yᵢ = 1`).
fn beta(apply: bool, j: usize) -> usize {
    if apply {
        [2, 1, 0][j]
    } else {
        j
    }
}

/// The per-gadget track permutation `σ = (β^y α^x)²`: a cyclic shift by
/// `2·x·y (mod 3)`.
pub fn gadget_permutation(x: bool, y: bool) -> [usize; 3] {
    let mut sigma = [0usize; 3];
    for (j, out) in sigma.iter_mut().enumerate() {
        let mut t = j;
        for _ in 0..2 {
            t = beta(y, alpha(x, t));
        }
        *out = t;
    }
    sigma
}

/// Builds the `IPmod3 → Ham` instance for inputs `x, y`.
///
/// Carol's edges depend only on `x`, David's only on `y` (each player can
/// construct their side without communication — the crux of the
/// reduction).
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths or are empty.
pub fn ipmod3_to_ham(x: &[bool], y: &[bool]) -> TwoPartyGraphInstance {
    assert_eq!(x.len(), y.len(), "inputs must have equal length");
    let n = x.len();
    assert!(n >= 1, "need at least one input bit");

    let mut b = GraphBuilder::new(NODES_PER_INPUT_BIT * n);
    // Boundary column `c` (0..n), wrapping: node (c mod n)*3 + j.
    let boundary = |c: usize, j: usize| NodeId::from((c % n) * 3 + j);
    // Internal stage s ∈ {0 = P, 1 = Q, 2 = S} of gadget i, track j.
    let internal = |i: usize, s: usize, j: usize| NodeId::from(3 * n + 9 * i + 3 * s + j);

    let mut carol = Vec::with_capacity(6 * n);
    let mut david = Vec::with_capacity(6 * n);
    for i in 0..n {
        for j in 0..3 {
            // Carol: L_j — P_{α^x(j)} and Q_j — S_{α^x(j)}.
            carol.push(b.add_edge(boundary(i, j), internal(i, 0, alpha(x[i], j))));
            carol.push(b.add_edge(internal(i, 1, j), internal(i, 2, alpha(x[i], j))));
            // David: P_j — Q_{β^y(j)} and S_j — R_{β^y(j)}.
            david.push(b.add_edge(internal(i, 0, j), internal(i, 1, beta(y[i], j))));
            david.push(b.add_edge(internal(i, 2, j), boundary(i + 1, beta(y[i], j))));
        }
    }
    TwoPartyGraphInstance::new(b.build(), carol, david)
}

/// The number of cycles `G` decomposes into: 1 if `Σ xᵢyᵢ ≢ 0 (mod 3)`
/// (Hamiltonian), 3 otherwise (Lemma C.3 / Figure 12).
pub fn predicted_cycle_count(x: &[bool], y: &[bool]) -> usize {
    let s = x.iter().zip(y).filter(|&(&a, &b)| a && b).count();
    if s % 3 == 0 {
        3
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdc_graph::predicates;

    #[test]
    fn gadget_permutation_is_shift_by_2xy() {
        assert_eq!(gadget_permutation(false, false), [0, 1, 2]);
        assert_eq!(gadget_permutation(true, false), [0, 1, 2]);
        assert_eq!(gadget_permutation(false, true), [0, 1, 2]);
        assert_eq!(gadget_permutation(true, true), [2, 0, 1]); // j → j+2 mod 3
    }

    #[test]
    fn union_is_two_regular_and_matchings_are_perfect() {
        for bits in 0..16u8 {
            let x = vec![bits & 1 == 1, bits & 2 == 2];
            let y = vec![bits & 4 == 4, bits & 8 == 8];
            let inst = ipmod3_to_ham(&x, &y);
            let g = inst.graph();
            assert_eq!(g.node_count(), 24);
            assert_eq!(g.edge_count(), 24);
            for v in g.nodes() {
                assert_eq!(g.degree(v), 2, "node {v} in case {bits:04b}");
            }
            assert!(inst.both_sides_perfect_matchings(), "case {bits:04b}");
        }
    }

    #[test]
    fn hamiltonicity_matches_residue_exhaustively_n3() {
        // All 64 input pairs for n = 3.
        for xb in 0..8u8 {
            for yb in 0..8u8 {
                let x: Vec<bool> = (0..3).map(|i| xb >> i & 1 == 1).collect();
                let y: Vec<bool> = (0..3).map(|i| yb >> i & 1 == 1).collect();
                let inst = ipmod3_to_ham(&x, &y);
                let sub = inst.full_subgraph();
                let s: usize = x.iter().zip(&y).filter(|&(&a, &b)| a && b).count();
                let expect_ham = !s.is_multiple_of(3);
                assert_eq!(
                    predicates::is_hamiltonian_cycle(inst.graph(), &sub),
                    expect_ham,
                    "x={x:?} y={y:?} s={s}"
                );
                assert_eq!(
                    predicates::cycle_count_two_regular(inst.graph(), &sub),
                    Ok(predicted_cycle_count(&x, &y)),
                    "x={x:?} y={y:?}"
                );
            }
        }
    }

    #[test]
    fn large_random_instances_match_residue() {
        use qdc_graph::generate::{random_bits, rng};
        use rand::Rng;
        let mut r = rng(42);
        for trial in 0..10 {
            let n = 50 + r.gen_range(0..100usize);
            let x = random_bits(n, 100 + trial);
            let y = random_bits(n, 200 + trial);
            let inst = ipmod3_to_ham(&x, &y);
            let sub = inst.full_subgraph();
            let s: usize = x.iter().zip(&y).filter(|&(&a, &b)| a && b).count();
            assert_eq!(
                predicates::is_hamiltonian_cycle(inst.graph(), &sub),
                !s.is_multiple_of(3),
                "n={n}, s={s}"
            );
            assert!(inst.both_sides_perfect_matchings());
        }
    }

    #[test]
    fn single_bit_instances() {
        // n = 1: x·y = 1 gives shift 2 ≠ 0 → Hamiltonian 12-cycle.
        let inst = ipmod3_to_ham(&[true], &[true]);
        assert!(predicates::is_hamiltonian_cycle(
            inst.graph(),
            &inst.full_subgraph()
        ));
        // x·y = 0 → three 4-cycles.
        let inst0 = ipmod3_to_ham(&[true], &[false]);
        assert_eq!(
            predicates::cycle_count_two_regular(inst0.graph(), &inst0.full_subgraph()),
            Ok(3)
        );
    }

    #[test]
    fn carol_edges_depend_only_on_x() {
        let x = vec![true, false, true];
        let a = ipmod3_to_ham(&x, &[false, false, false]);
        let b = ipmod3_to_ham(&x, &[true, true, true]);
        // Same Carol endpoints in both instances.
        let ends = |inst: &TwoPartyGraphInstance| -> Vec<_> {
            inst.carol_edges()
                .iter()
                .map(|&e| inst.graph().endpoints(e))
                .collect()
        };
        assert_eq!(ends(&a), ends(&b));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_rejected() {
        ipmod3_to_ham(&[true], &[true, false]);
    }
}
