//! Campaign adapter: one seeded gadget point → one verification instance.
//!
//! The campaign harness (`qdc-harness`) sweeps gadget reductions over
//! input sizes and seeds; this module turns a plain-data
//! [`GadgetPoint`] into a concrete [`TwoPartyGraphInstance`] plus the
//! *expected* Hamiltonicity verdict, computed from the reduction's own
//! predicted cycle count (Lemma C.3 for `IPmod3 → Ham`, the Figure 7
//! invariant for `Gap-Eq → Ham`). The harness runs a distributed
//! verifier on the instance and cross-checks its answer against the
//! prediction — every campaign point is therefore also a correctness
//! probe of the whole reduction-plus-verifier pipeline.
//!
//! Instances are generated from a seeded ChaCha8 stream, so a point is
//! a pure function of `(family, bits, seed)` and campaigns replay
//! byte-identically regardless of sharding.

use crate::gapeq_ham;
use crate::instance::TwoPartyGraphInstance;
use crate::ipmod3_ham;
use qdc_graph::predicates;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Which Section 7 reduction a point exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GadgetFamily {
    /// `IPmod3ₙ → Ham` (Figures 4–6, 12; Lemma C.3).
    Ipmod3,
    /// `(βn)-Eq → (βn)-Ham` (Figure 7).
    GapEq,
}

impl GadgetFamily {
    /// Stable lowercase name, used in campaign records.
    pub fn name(self) -> &'static str {
        match self {
            GadgetFamily::Ipmod3 => "ipmod3",
            GadgetFamily::GapEq => "gapeq",
        }
    }
}

/// One cell of a gadget campaign grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GadgetPoint {
    /// The reduction family.
    pub family: GadgetFamily,
    /// Input length `n` of the two-party problem (one gadget per bit).
    pub bits: usize,
    /// Seed for the ChaCha8 stream generating `x` and `y`.
    pub seed: u64,
}

/// A generated instance with its predicted verdict.
#[derive(Clone, Debug)]
pub struct GadgetExperiment {
    /// The reduced two-party graph instance.
    pub instance: TwoPartyGraphInstance,
    /// Whether the reduction predicts `G` is a Hamiltonian cycle
    /// (cycle count 1).
    pub expected_ham: bool,
    /// The reduction's predicted cycle count.
    pub predicted_cycles: u64,
    /// Whether the sequential reference predicate agrees with the
    /// prediction — `false` would mean the reduction itself is broken.
    pub prediction_holds: bool,
}

/// Builds the instance for one point and checks the reduction's cycle
/// prediction against the sequential reference predicate.
///
/// # Panics
///
/// Panics if `bits == 0` (the reductions need at least one input bit).
/// Campaign specs are validated before any point runs.
pub fn run_point(point: &GadgetPoint) -> GadgetExperiment {
    let mut rng = ChaCha8Rng::seed_from_u64(point.seed);
    let x: Vec<bool> = (0..point.bits).map(|_| rng.gen_bool(0.5)).collect();
    let mut y: Vec<bool> = (0..point.bits).map(|_| rng.gen_bool(0.5)).collect();
    // Half the GapEq points get y = x, otherwise random y's are almost
    // never equal and the accept branch would go unexercised.
    if point.family == GadgetFamily::GapEq && rng.gen_bool(0.5) {
        y = x.clone();
    }
    let (instance, predicted) = match point.family {
        GadgetFamily::Ipmod3 => (
            ipmod3_ham::ipmod3_to_ham(&x, &y),
            ipmod3_ham::predicted_cycle_count(&x, &y),
        ),
        GadgetFamily::GapEq => (
            gapeq_ham::gapeq_to_ham(&x, &y),
            gapeq_ham::predicted_cycle_count(&x, &y),
        ),
    };
    let sub = instance.full_subgraph();
    let is_ham = predicates::is_hamiltonian_cycle(instance.graph(), &sub);
    GadgetExperiment {
        expected_ham: predicted == 1,
        predicted_cycles: predicted as u64,
        prediction_holds: is_ham == (predicted == 1),
        instance,
    }
}

/// Packages a point as a `FnOnce` experiment closure that can be shipped
/// to a worker thread.
pub fn experiment(point: GadgetPoint) -> impl FnOnce() -> GadgetExperiment + Send + 'static {
    move || run_point(&point)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gadget_points_are_deterministic() {
        for family in [GadgetFamily::Ipmod3, GadgetFamily::GapEq] {
            let p = GadgetPoint {
                family,
                bits: 6,
                seed: 3,
            };
            let a = run_point(&p);
            let b = run_point(&p);
            assert_eq!(a.expected_ham, b.expected_ham);
            assert_eq!(a.predicted_cycles, b.predicted_cycles);
            assert_eq!(
                a.instance.graph().edge_count(),
                b.instance.graph().edge_count()
            );
        }
    }

    #[test]
    fn gadget_prediction_matches_sequential_reference() {
        for family in [GadgetFamily::Ipmod3, GadgetFamily::GapEq] {
            for seed in 0..16 {
                let p = GadgetPoint {
                    family,
                    bits: 5,
                    seed,
                };
                let exp = run_point(&p);
                assert!(
                    exp.prediction_holds,
                    "{} seed {seed}: predicted {} cycles but reference disagrees",
                    family.name(),
                    exp.predicted_cycles
                );
            }
        }
    }

    #[test]
    fn gadget_gapeq_seeds_cover_both_verdicts() {
        let verdicts: Vec<bool> = (0..32)
            .map(|seed| {
                run_point(&GadgetPoint {
                    family: GadgetFamily::GapEq,
                    bits: 6,
                    seed,
                })
                .expected_ham
            })
            .collect();
        assert!(verdicts.iter().any(|&v| v));
        assert!(verdicts.iter().any(|&v| !v));
    }

    #[test]
    fn gadget_experiment_closure_is_send() {
        fn assert_send<T: Send>(_: &T) {}
        let e = experiment(GadgetPoint {
            family: GadgetFamily::Ipmod3,
            bits: 3,
            seed: 0,
        });
        assert_send(&e);
        assert!(e().instance.both_sides_perfect_matchings());
    }
}
