//! Communication-complexity substrate: two-party and Server models.
//!
//! The paper's lower-bound pipeline starts in communication complexity:
//!
//! * concrete **problems** — Equality, Set Disjointness, Inner Product,
//!   `IPmod3` and the gap version `δ-Eq` (Section 6) — in [`problems`];
//! * executable **two-party protocols** with bit-exact cost accounting in
//!   [`twoparty`];
//! * the **Server model** (Definition 3.1: Carol, David, and a server that
//!   talks for free) in [`server`], including the classical
//!   two-party ⇄ server equivalence simulation sketched in Section 3.1;
//! * **fooling sets** and the one-sided quantum bound of Klauck–de Wolf
//!   used for `δ-Eq` in [`fooling`];
//! * greedy **Gilbert–Varshamov codes** (the fooling-set raw material,
//!   Section 6) in [`codes`];
//! * **communication matrices and rank bounds** (log-rank over GF(2) and
//!   the reals) in [`rank`], and **protocol trees with their rectangle
//!   decomposition** (the KN97 foundations) in [`trees`];
//! * the **spectral quantities of Appendix B.3** (the strongly balanced
//!   4×4 gadget matrix with ‖A_g‖ = 2√2, Paturi's degree bound, and the
//!   composed `IPmod3` lower bound) in [`norms`].
//!
//! # Example
//!
//! ```
//! use qdc_cc::problems::{IpMod3, TwoPartyFunction};
//!
//! let f = IpMod3::new(4);
//! // ⟨x, y⟩ = 3 ≡ 0 (mod 3) ⇒ output 1 (per the paper's convention).
//! let x = vec![true, true, true, false];
//! let y = vec![true, true, true, true];
//! assert!(f.evaluate(&x, &y));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codes;
pub mod fooling;
pub mod norms;
pub mod problems;
pub mod rank;
pub mod server;
pub mod trees;
pub mod twoparty;
