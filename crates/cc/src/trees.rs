//! Deterministic protocol trees and their rectangle decomposition.
//!
//! The foundational facts of two-party communication complexity (the
//! \[KN97\] background the paper builds on), executable: a deterministic
//! protocol is a binary tree whose nodes are owned by the speaking party;
//! the inputs reaching any node form a **combinatorial rectangle**
//! `A × B`; the leaves therefore partition the input space into
//! monochromatic rectangles, so `D(f) = depth ≥ log₂(#monochromatic
//! rectangles needed) ≥ log₂ rank(M_f)` and `#leaves ≥ fool¹(f)`.
//! These identities are verified by exhaustive enumeration for small `n`.

use crate::problems::TwoPartyFunction;
use std::rc::Rc;

/// The bit a speaker announces, as a function of their own input.
pub type DecideFn = Rc<dyn Fn(&[bool]) -> bool>;

/// Which party speaks at a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Speaker {
    /// Alice (sees `x`).
    Alice,
    /// Bob (sees `y`).
    Bob,
}

/// A deterministic two-party protocol tree.
#[derive(Clone)]
pub enum ProtocolTree {
    /// A leaf with the protocol's output.
    Leaf(bool),
    /// An internal node: `speaker` computes a bit from their own input
    /// (the node identity encodes the transcript so far) and the protocol
    /// branches on it.
    Node {
        /// Who speaks.
        speaker: Speaker,
        /// The spoken bit as a function of the speaker's input.
        decide: DecideFn,
        /// Subtree on bit 0.
        on_zero: Box<ProtocolTree>,
        /// Subtree on bit 1.
        on_one: Box<ProtocolTree>,
    },
}

impl std::fmt::Debug for ProtocolTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolTree::Leaf(b) => write!(f, "Leaf({b})"),
            ProtocolTree::Node { speaker, .. } => f
                .debug_struct("Node")
                .field("speaker", speaker)
                .finish_non_exhaustive(),
        }
    }
}

impl ProtocolTree {
    /// Runs the protocol; returns the output and the transcript bits.
    pub fn run(&self, x: &[bool], y: &[bool]) -> (bool, Vec<bool>) {
        let mut node = self;
        let mut transcript = Vec::new();
        loop {
            match node {
                ProtocolTree::Leaf(out) => return (*out, transcript),
                ProtocolTree::Node {
                    speaker,
                    decide,
                    on_zero,
                    on_one,
                } => {
                    let bit = match speaker {
                        Speaker::Alice => decide(x),
                        Speaker::Bob => decide(y),
                    };
                    transcript.push(bit);
                    node = if bit { on_one } else { on_zero };
                }
            }
        }
    }

    /// Worst-case depth = deterministic communication cost in bits.
    pub fn depth(&self) -> usize {
        match self {
            ProtocolTree::Leaf(_) => 0,
            ProtocolTree::Node {
                on_zero, on_one, ..
            } => 1 + on_zero.depth().max(on_one.depth()),
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        match self {
            ProtocolTree::Leaf(_) => 1,
            ProtocolTree::Node {
                on_zero, on_one, ..
            } => on_zero.leaf_count() + on_one.leaf_count(),
        }
    }

    /// Whether the protocol computes `f` on every input (exhaustive;
    /// `n ≤ 10`).
    pub fn computes<F: TwoPartyFunction>(&self, f: &F) -> bool {
        let n = f.input_bits();
        let size = 1usize << n;
        let decode = |v: usize| -> Vec<bool> { (0..n).map(|i| v >> i & 1 == 1).collect() };
        for xv in 0..size {
            let x = decode(xv);
            for yv in 0..size {
                let y = decode(yv);
                if !f.in_promise(&x, &y) {
                    continue;
                }
                if self.run(&x, &y).0 != f.evaluate(&x, &y) {
                    return false;
                }
            }
        }
        true
    }

    /// The leaf-rectangle decomposition over all `2ⁿ × 2ⁿ` inputs: for
    /// each leaf (identified by its transcript) the reaching input pairs.
    ///
    /// Returns `(transcript, output, xs, ys)` per nonempty leaf, where
    /// the reaching set is exactly `xs × ys` (the rectangle property —
    /// asserted, since it is a theorem about *all* protocol trees).
    ///
    /// # Panics
    ///
    /// Panics if `n > 10`, or — impossible for a genuine protocol tree —
    /// some leaf's reaching set is not a rectangle.
    pub fn leaf_rectangles(&self, n: usize) -> Vec<LeafRectangle> {
        assert!(n <= 10, "exhaustive decomposition limited to n ≤ 10");
        let size = 1usize << n;
        let decode = |v: usize| -> Vec<bool> { (0..n).map(|i| v >> i & 1 == 1).collect() };
        use std::collections::BTreeMap;
        let mut by_leaf: BTreeMap<Vec<bool>, (bool, Vec<usize>, Vec<usize>)> = BTreeMap::new();
        for xv in 0..size {
            let x = decode(xv);
            for yv in 0..size {
                let (out, transcript) = self.run(&x, &decode(yv));
                let entry = by_leaf
                    .entry(transcript)
                    .or_insert((out, Vec::new(), Vec::new()));
                assert_eq!(entry.0, out, "leaf output must be constant");
                if !entry.1.contains(&xv) {
                    entry.1.push(xv);
                }
                if !entry.2.contains(&yv) {
                    entry.2.push(yv);
                }
            }
        }
        // Rectangle check: every (x, y) ∈ xs × ys must reach this leaf.
        let mut out = Vec::new();
        for (transcript, (output, xs, ys)) in by_leaf {
            for &xv in &xs {
                let x = decode(xv);
                for &yv in &ys {
                    let (_, t) = self.run(&x, &decode(yv));
                    assert_eq!(
                        t, transcript,
                        "protocol-tree leaves always induce rectangles"
                    );
                }
            }
            out.push(LeafRectangle {
                transcript,
                output,
                xs,
                ys,
            });
        }
        out
    }
}

/// One leaf's rectangle in the decomposition.
#[derive(Clone, Debug)]
pub struct LeafRectangle {
    /// The transcript identifying the leaf.
    pub transcript: Vec<bool>,
    /// The leaf's output.
    pub output: bool,
    /// Alice inputs reaching the leaf (as integers).
    pub xs: Vec<usize>,
    /// Bob inputs reaching the leaf.
    pub ys: Vec<usize>,
}

/// The trivial protocol for any total function: Alice announces `x` bit
/// by bit (the node closures capture the prefix), then Bob announces
/// `f(x, y)`. Depth `n + 1`.
pub fn trivial_tree<F>(f: Rc<F>) -> ProtocolTree
where
    F: TwoPartyFunction + 'static,
{
    fn build<F: TwoPartyFunction + 'static>(f: Rc<F>, prefix: Vec<bool>) -> ProtocolTree {
        let n = f.input_bits();
        if prefix.len() == n {
            // Bob computes f(prefix, y) and announces it.
            let f0 = Rc::clone(&f);
            let p0 = prefix.clone();
            ProtocolTree::Node {
                speaker: Speaker::Bob,
                decide: Rc::new(move |y: &[bool]| f0.evaluate(&p0, y)),
                on_zero: Box::new(ProtocolTree::Leaf(false)),
                on_one: Box::new(ProtocolTree::Leaf(true)),
            }
        } else {
            let i = prefix.len();
            let mut zero = prefix.clone();
            zero.push(false);
            let mut one = prefix;
            one.push(true);
            ProtocolTree::Node {
                speaker: Speaker::Alice,
                decide: Rc::new(move |x: &[bool]| x[i]),
                on_zero: Box::new(build(Rc::clone(&f), zero)),
                on_one: Box::new(build(f, one)),
            }
        }
    }
    build(f, Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fooling::equality_fooling_set;
    use crate::problems::{Equality, InnerProduct};
    use crate::rank::CommunicationMatrix;

    #[test]
    fn trivial_tree_computes_equality() {
        let f = Rc::new(Equality::new(4));
        let tree = trivial_tree(Rc::clone(&f));
        assert!(tree.computes(&*f));
        assert_eq!(tree.depth(), 5);
    }

    #[test]
    fn trivial_tree_computes_inner_product() {
        let f = Rc::new(InnerProduct::new(3));
        let tree = trivial_tree(Rc::clone(&f));
        assert!(tree.computes(&*f));
        let (out, transcript) = tree.run(&[true, false, true], &[true, true, true]);
        assert_eq!(transcript.len(), 4);
        assert!(!out); // ⟨x,y⟩ = 2, even
    }

    #[test]
    fn leaves_induce_monochromatic_rectangles_partitioning_inputs() {
        let n = 3;
        let f = Rc::new(Equality::new(n));
        let tree = trivial_tree(Rc::clone(&f));
        let rects = tree.leaf_rectangles(n);
        // Partition: sizes sum to 2^n × 2^n.
        let total: usize = rects.iter().map(|r| r.xs.len() * r.ys.len()).sum();
        assert_eq!(total, 64);
        // Monochromatic with respect to f.
        let decode = |v: usize| -> Vec<bool> { (0..n).map(|i| v >> i & 1 == 1).collect() };
        for r in &rects {
            for &xv in &r.xs {
                for &yv in &r.ys {
                    assert_eq!(f.evaluate(&decode(xv), &decode(yv)), r.output);
                }
            }
        }
    }

    #[test]
    fn leaf_count_dominates_fooling_set_size() {
        // #1-leaves ≥ fool¹(f): each fooling pair reaches a distinct
        // 1-rectangle.
        let n = 4;
        let f = Rc::new(Equality::new(n));
        let tree = trivial_tree(Rc::clone(&f));
        let rects = tree.leaf_rectangles(n);
        let one_rects = rects.iter().filter(|r| r.output).count();
        let fooling = equality_fooling_set(n, n);
        assert!(
            one_rects >= fooling.len(),
            "{one_rects} 1-rectangles vs fooling set of {}",
            fooling.len()
        );
    }

    #[test]
    fn depth_dominates_log_rank() {
        for n in 2..=5 {
            let f = Rc::new(Equality::new(n));
            let tree = trivial_tree(Rc::clone(&f));
            let bound = CommunicationMatrix::from_function(&*f).log_rank_bound();
            assert!(
                tree.depth() >= bound,
                "n={n}: depth {} < log-rank {bound}",
                tree.depth()
            );
        }
    }

    #[test]
    fn handcrafted_one_bit_protocol() {
        // f(x, y) = x₀ needs exactly one bit: Alice announces x₀.
        #[derive(Clone)]
        struct FirstBit;
        impl TwoPartyFunction for FirstBit {
            fn input_bits(&self) -> usize {
                2
            }
            fn evaluate(&self, x: &[bool], _y: &[bool]) -> bool {
                x[0]
            }
            fn name(&self) -> String {
                "x0".into()
            }
        }
        let tree = ProtocolTree::Node {
            speaker: Speaker::Alice,
            decide: Rc::new(|x: &[bool]| x[0]),
            on_zero: Box::new(ProtocolTree::Leaf(false)),
            on_one: Box::new(ProtocolTree::Leaf(true)),
        };
        assert!(tree.computes(&FirstBit));
        assert_eq!(tree.depth(), 1);
        assert_eq!(tree.leaf_count(), 2);
        // Its two leaf rectangles cover everything.
        let rects = tree.leaf_rectangles(2);
        assert_eq!(rects.len(), 2);
        let total: usize = rects.iter().map(|r| r.xs.len() * r.ys.len()).sum();
        assert_eq!(total, 16);
    }
}
