//! Communication matrices and rank-based lower bounds.
//!
//! Besides fooling sets and γ₂-style norms, the classic lower-bound tools
//! the paper's framework compares against are rank bounds: deterministic
//! communication is at least `log₂ rank(M_f)` (over any field). This
//! module builds the communication matrix of a small two-party function
//! and computes its rank over GF(2) (exact, bitset Gaussian elimination)
//! and over the reals (floating-point elimination with pivoting) — the
//! quantities behind the "log-rank" row of the literature the paper's
//! Figure 2 situates itself in.

use crate::problems::TwoPartyFunction;

/// The 0/1 communication matrix of `f` on all `2ⁿ × 2ⁿ` inputs.
///
/// Rows are Alice's inputs, columns Bob's, little-endian bit order.
#[derive(Clone, Debug)]
pub struct CommunicationMatrix {
    n: usize,
    /// Row-major 0/1 entries, one `u64` word chunk per 64 columns.
    rows: Vec<Vec<u64>>,
}

impl CommunicationMatrix {
    /// Builds the matrix of `f`. Limited to `n ≤ 12` (a 4096×4096 table).
    ///
    /// # Panics
    ///
    /// Panics if `n > 12` or `f` is partial on some pair (promise
    /// violations).
    pub fn from_function<F: TwoPartyFunction>(f: &F) -> Self {
        let n = f.input_bits();
        assert!(n <= 12, "communication matrix limited to n ≤ 12");
        let size = 1usize << n;
        let words = size.div_ceil(64);
        let decode = |v: usize| -> Vec<bool> { (0..n).map(|i| v >> i & 1 == 1).collect() };
        let mut rows = Vec::with_capacity(size);
        for x in 0..size {
            let xb = decode(x);
            let mut row = vec![0u64; words];
            for y in 0..size {
                if f.evaluate(&xb, &decode(y)) {
                    row[y / 64] |= 1 << (y % 64);
                }
            }
            rows.push(row);
        }
        CommunicationMatrix { n, rows }
    }

    /// Input length `n`.
    pub fn input_bits(&self) -> usize {
        self.n
    }

    /// Matrix dimension `2ⁿ`.
    pub fn size(&self) -> usize {
        1 << self.n
    }

    /// Entry `(x, y)`.
    pub fn get(&self, x: usize, y: usize) -> bool {
        self.rows[x][y / 64] >> (y % 64) & 1 == 1
    }

    /// Rank over GF(2) by bitset Gaussian elimination.
    pub fn rank_gf2(&self) -> usize {
        let mut rows = self.rows.clone();
        let size = self.size();
        let mut rank = 0;
        for col in 0..size {
            let word = col / 64;
            let bit = 1u64 << (col % 64);
            let Some(pivot) = (rank..rows.len()).find(|&r| rows[r][word] & bit != 0) else {
                continue;
            };
            rows.swap(rank, pivot);
            let pivot_row = rows[rank].clone();
            for (r, row) in rows.iter_mut().enumerate() {
                if r != rank && row[word] & bit != 0 {
                    for (a, b) in row.iter_mut().zip(&pivot_row) {
                        *a ^= b;
                    }
                }
            }
            rank += 1;
            if rank == rows.len() {
                break;
            }
        }
        rank
    }

    /// Rank over the reals by partial-pivot Gaussian elimination
    /// (tolerance 1e-9).
    pub fn rank_real(&self) -> usize {
        let size = self.size();
        let mut m: Vec<Vec<f64>> = (0..size)
            .map(|x| {
                (0..size)
                    .map(|y| f64::from(u8::from(self.get(x, y))))
                    .collect()
            })
            .collect();
        let mut rank = 0;
        for col in 0..size {
            // Partial pivot.
            let Some(pivot) = (rank..size)
                .filter(|&r| m[r][col].abs() > 1e-9)
                .max_by(|&a, &b| m[a][col].abs().total_cmp(&m[b][col].abs()))
            else {
                continue;
            };
            m.swap(rank, pivot);
            let p = m[rank][col];
            let pivot_row = m[rank].clone();
            for (r, row) in m.iter_mut().enumerate() {
                if r != rank && row[col].abs() > 1e-12 {
                    let factor = row[col] / p;
                    for (cell, &pv) in row[col..].iter_mut().zip(&pivot_row[col..]) {
                        *cell -= factor * pv;
                    }
                }
            }
            rank += 1;
            if rank == size {
                break;
            }
        }
        rank
    }

    /// The deterministic log-rank lower bound `⌈log₂ rank_R(M_f)⌉` bits.
    pub fn log_rank_bound(&self) -> usize {
        let r = self.rank_real();
        if r <= 1 {
            0
        } else {
            (r as f64).log2().ceil() as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{Disjointness, Equality, InnerProduct, IpMod3};

    #[test]
    fn equality_matrix_is_identity() {
        let m = CommunicationMatrix::from_function(&Equality::new(4));
        assert_eq!(m.size(), 16);
        for x in 0..16 {
            for y in 0..16 {
                assert_eq!(m.get(x, y), x == y);
            }
        }
        assert_eq!(m.rank_gf2(), 16);
        assert_eq!(m.rank_real(), 16);
        assert_eq!(m.log_rank_bound(), 4); // D(Eq_n) ≥ n
    }

    #[test]
    fn inner_product_has_full_real_rank() {
        // M_IP(x,y) = ⟨x,y⟩ mod 2. Over the reals, rank is 2ⁿ − 1 (the
        // ±1 version is a scaled Hadamard matrix). Over GF(2) the rank is
        // n (it is the product of the n-column input matrices).
        let m = CommunicationMatrix::from_function(&InnerProduct::new(4));
        assert_eq!(m.rank_gf2(), 4);
        let rr = m.rank_real();
        assert!(rr >= 15, "real rank {rr}");
        assert_eq!(m.log_rank_bound(), 4);
    }

    #[test]
    fn disjointness_rank_is_full() {
        // M_Disj is (after reordering) a triangular-ish matrix; its real
        // rank is 2ⁿ, certifying D(Disj) ≥ n.
        let m = CommunicationMatrix::from_function(&Disjointness::new(4));
        assert_eq!(m.rank_real(), 16);
        assert_eq!(m.log_rank_bound(), 4);
    }

    #[test]
    fn ipmod3_matrix_has_large_rank() {
        let m = CommunicationMatrix::from_function(&IpMod3::new(5));
        // The exact value is not the point; Ω(n) bits is.
        assert!(m.log_rank_bound() >= 4, "bound {}", m.log_rank_bound());
    }

    #[test]
    fn rank_is_monotone_in_n_for_equality() {
        let r3 = CommunicationMatrix::from_function(&Equality::new(3)).rank_gf2();
        let r5 = CommunicationMatrix::from_function(&Equality::new(5)).rank_gf2();
        assert_eq!(r3, 8);
        assert_eq!(r5, 32);
    }

    #[test]
    #[should_panic(expected = "limited")]
    fn oversized_matrix_rejected() {
        CommunicationMatrix::from_function(&Equality::new(13));
    }
}
