//! The Server model (Definition 3.1) and its two-party simulation.
//!
//! Three players: Carol (input `x`), David (input `y`), and a server with
//! **no input** whose messages are **free**; the cost counts only the bits
//! Carol and David send. The model is at least as strong as two-party
//! communication with entanglement (the server can dispense any entangled
//! state for free), which is why the paper must prove hardness here rather
//! than inherit it from the two-party model.
//!
//! Protocols use the *normal form* of Lemma 3.2 / Appendix B (after
//! teleportation): each round Carol and David send two classical bits to
//! the server, and the server answers with arbitrarily large messages.
//! The normal-form trait lives in [`qdc_quantum::games`] (the abort-game
//! machinery consumes it there); this module re-exports it, adds cost
//! accounting, a generic streaming protocol, and the **classical
//! two-party ⇄ server equivalence simulation** sketched in Section 3.1:
//! Alice simulates Carol plus a copy of the server, Bob simulates David
//! plus a copy of the server, and they exchange exactly the bits that
//! Carol and David would have sent — so the two-party cost equals the
//! server-model cost, bit for bit.

pub use qdc_quantum::games::{run_protocol, NormalFormProtocol};

use crate::problems::TwoPartyFunction;
use crate::twoparty::{Party, TwoPartyRun};

/// The record of one Server-model execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerRun {
    /// The computed output (held by Carol).
    pub output: bool,
    /// Bits Carol sent (2 per round in normal form).
    pub carol_bits: usize,
    /// Bits David sent.
    pub david_bits: usize,
}

impl ServerRun {
    /// The Server-model cost: bits sent by Carol and David only — server
    /// messages are free (Definition 3.1).
    pub fn cost(&self) -> usize {
        self.carol_bits + self.david_bits
    }
}

/// Runs a normal-form protocol in the Server model and accounts its cost.
pub fn run_server<P: NormalFormProtocol>(p: &P, x: &[bool], y: &[bool]) -> ServerRun {
    let output = run_protocol(p, x, y);
    ServerRun {
        output,
        carol_bits: 2 * p.rounds(),
        david_bits: 2 * p.rounds(),
    }
}

/// The Section 3.1 simulation: two parties (Alice = Carol + server copy,
/// Bob = David + server copy) run the server protocol by exchanging
/// exactly the bits Carol and David send. Returns a [`TwoPartyRun`] whose
/// cost provably equals [`ServerRun::cost`].
///
/// This is the *classical* equivalence — the paper explains why the same
/// simulation fails for quantum protocols (a server copy cannot be
/// maintained in superposition by both parties), which is exactly why the
/// Server model is needed.
pub fn simulate_in_two_party<P: NormalFormProtocol>(p: &P, x: &[bool], y: &[bool]) -> TwoPartyRun {
    let c = p.rounds();
    // Alice's copy of the server state is (received pairs so far); Bob
    // keeps an identical copy. Both evolve deterministically from the
    // exchanged bits, so the two copies agree at every step.
    let mut alice_received = Vec::with_capacity(c);
    let mut bob_received = Vec::with_capacity(c);
    let mut alice_to_carol = Vec::with_capacity(c);
    let mut bob_to_david = Vec::with_capacity(c);
    let mut transcript = Vec::new();
    for t in 0..c {
        // Alice computes Carol's bits from her server copy and sends them.
        let cb = p.carol_bits(x, &alice_to_carol, t);
        transcript.push((Party::Alice, cb.0));
        transcript.push((Party::Alice, cb.1));
        // Bob computes David's bits and sends them.
        let db = p.david_bits(y, &bob_to_david, t);
        transcript.push((Party::Bob, db.0));
        transcript.push((Party::Bob, db.1));
        // Both parties advance their server copies identically.
        alice_received.push((cb, db));
        bob_received.push((cb, db));
        let (to_carol_a, _) = p.server_messages(&alice_received, t);
        let (_, to_david_b) = p.server_messages(&bob_received, t);
        alice_to_carol.push(to_carol_a);
        bob_to_david.push(to_david_b);
    }
    let output = p.carol_output(x, &alice_to_carol);
    TwoPartyRun {
        output,
        alice_bits: 2 * c,
        bob_bits: 2 * c,
        transcript,
    }
}

/// A generic normal-form streaming protocol for any total two-party
/// function: Carol and David stream their inputs two bits per round; the
/// server echoes David's bits to Carol; Carol reconstructs `y` and
/// evaluates `f`. Cost `4·⌈n/2⌉` — the generic upper bound against which
/// the Ω(n) Server-model lower bounds are tight up to constants.
#[derive(Clone, Debug)]
pub struct StreamedServerProtocol<F> {
    f: F,
}

impl<F: TwoPartyFunction> StreamedServerProtocol<F> {
    /// Wraps `f`.
    pub fn new(f: F) -> Self {
        StreamedServerProtocol { f }
    }

    fn bit(input: &[bool], i: usize) -> bool {
        input.get(i).copied().unwrap_or(false)
    }
}

impl<F: TwoPartyFunction> NormalFormProtocol for StreamedServerProtocol<F> {
    fn rounds(&self) -> usize {
        self.f.input_bits().div_ceil(2)
    }

    fn carol_bits(&self, x: &[bool], _server_to_carol: &[u64], t: usize) -> (bool, bool) {
        (Self::bit(x, 2 * t), Self::bit(x, 2 * t + 1))
    }

    fn david_bits(&self, y: &[bool], _server_to_david: &[u64], t: usize) -> (bool, bool) {
        (Self::bit(y, 2 * t), Self::bit(y, 2 * t + 1))
    }

    fn server_messages(&self, received: &[qdc_quantum::games::RoundBits], t: usize) -> (u64, u64) {
        let ((c0, c1), (d0, d1)) = received[t];
        (
            u64::from(d0) | (u64::from(d1) << 1),
            u64::from(c0) | (u64::from(c1) << 1),
        )
    }

    fn carol_output(&self, x: &[bool], server_to_carol: &[u64]) -> bool {
        let n = self.f.input_bits();
        let mut y = Vec::with_capacity(n);
        for &msg in server_to_carol {
            y.push(msg & 1 == 1);
            y.push(msg & 2 == 2);
        }
        y.truncate(n);
        self.f.evaluate(x, &y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{Equality, IpMod3, TwoPartyFunction};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn streamed_protocol_computes_equality() {
        let p = StreamedServerProtocol::new(Equality::new(7));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..40 {
            let x: Vec<bool> = (0..7).map(|_| rng.gen()).collect();
            let y: Vec<bool> = if rng.gen() {
                x.clone()
            } else {
                (0..7).map(|_| rng.gen()).collect()
            };
            let run = run_server(&p, &x, &y);
            assert_eq!(run.output, x == y);
            assert_eq!(run.cost(), 4 * 4); // ⌈7/2⌉ = 4 rounds, 4 bits each
        }
    }

    #[test]
    fn streamed_protocol_computes_ipmod3() {
        let f = IpMod3::new(10);
        let p = StreamedServerProtocol::new(f);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..40 {
            let x: Vec<bool> = (0..10).map(|_| rng.gen()).collect();
            let y: Vec<bool> = (0..10).map(|_| rng.gen()).collect();
            assert_eq!(run_server(&p, &x, &y).output, f.evaluate(&x, &y));
        }
    }

    #[test]
    fn two_party_simulation_matches_output_and_cost() {
        // The Section 3.1 equivalence: identical outputs, identical cost.
        let p = StreamedServerProtocol::new(IpMod3::new(9));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..40 {
            let x: Vec<bool> = (0..9).map(|_| rng.gen()).collect();
            let y: Vec<bool> = (0..9).map(|_| rng.gen()).collect();
            let server = run_server(&p, &x, &y);
            let two_party = simulate_in_two_party(&p, &x, &y);
            assert_eq!(server.output, two_party.output);
            assert_eq!(server.cost(), two_party.total_bits());
            assert_eq!(two_party.transcript.len(), two_party.total_bits());
        }
    }

    #[test]
    fn server_cost_counts_only_carol_and_david() {
        let p = StreamedServerProtocol::new(Equality::new(4));
        let run = run_server(&p, &[true; 4], &[true; 4]);
        // 2 rounds × 2 bits × 2 players; server messages (u64s) are free.
        assert_eq!(run.carol_bits, 4);
        assert_eq!(run.david_bits, 4);
        assert_eq!(run.cost(), 8);
    }

    #[test]
    fn odd_length_inputs_are_padded() {
        let f = Equality::new(5);
        let p = StreamedServerProtocol::new(f);
        assert_eq!(p.rounds(), 3);
        let x = vec![true, false, true, false, true];
        assert!(run_server(&p, &x, &x.clone()).output);
    }
}
