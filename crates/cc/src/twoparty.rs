//! Executable two-party protocols with bit-exact cost accounting.
//!
//! The standard model (Kushilevitz–Nisan, referenced as \[KN97\] by the
//! paper): Alice holds `x`, Bob holds `y`, they alternate messages, and
//! the cost is the total number of bits exchanged. Protocols here are
//! state machines producing explicit transcripts, so tests can check both
//! correctness and cost, and the Server-model equivalence simulation can
//! replay them.

use crate::problems::TwoPartyFunction;
use rand::Rng;

/// Which party moves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Party {
    /// Alice (holds `x`).
    Alice,
    /// Bob (holds `y`).
    Bob,
}

/// The record of one protocol execution.
#[derive(Clone, Debug)]
pub struct TwoPartyRun {
    /// The computed output.
    pub output: bool,
    /// Bits sent by Alice.
    pub alice_bits: usize,
    /// Bits sent by Bob.
    pub bob_bits: usize,
    /// The full transcript as `(sender, bit)` pairs.
    pub transcript: Vec<(Party, bool)>,
}

impl TwoPartyRun {
    /// Total communication cost in bits.
    pub fn total_bits(&self) -> usize {
        self.alice_bits + self.bob_bits
    }
}

/// A two-party protocol for some boolean function.
pub trait TwoPartyProtocol {
    /// Runs on `(x, y)` with the given randomness source (public coins).
    fn run<R: Rng + ?Sized>(&self, x: &[bool], y: &[bool], rng: &mut R) -> TwoPartyRun;

    /// Worst-case communication in bits (for cost assertions).
    fn worst_case_bits(&self) -> usize;
}

/// The trivial deterministic protocol: Alice sends all of `x`, Bob
/// computes `f(x, y)` and sends the answer back. Cost `n + 1`. Works for
/// any total function; it is the upper bound every lower bound is
/// compared against.
#[derive(Clone, Debug)]
pub struct TrivialProtocol<F> {
    f: F,
}

impl<F: TwoPartyFunction> TrivialProtocol<F> {
    /// Wraps `f`.
    pub fn new(f: F) -> Self {
        TrivialProtocol { f }
    }
}

impl<F: TwoPartyFunction> TwoPartyProtocol for TrivialProtocol<F> {
    fn run<R: Rng + ?Sized>(&self, x: &[bool], y: &[bool], _rng: &mut R) -> TwoPartyRun {
        let mut transcript: Vec<(Party, bool)> = x.iter().map(|&b| (Party::Alice, b)).collect();
        let output = self.f.evaluate(x, y);
        transcript.push((Party::Bob, output));
        TwoPartyRun {
            output,
            alice_bits: x.len(),
            bob_bits: 1,
            transcript,
        }
    }

    fn worst_case_bits(&self) -> usize {
        self.f.input_bits() + 1
    }
}

/// Public-coin randomized Equality: `k` rounds of random-inner-product
/// fingerprinting. Each round, a shared random string `r` is drawn; Alice
/// sends `⟨x, r⟩ mod 2`, Bob compares with `⟨y, r⟩ mod 2` and replies
/// with the comparison. One-sided error: if `x = y` the protocol always
/// accepts; if `x ≠ y` each round catches the difference with probability
/// 1/2, so it errs with probability `2^{-k}`. Cost `2k` bits.
#[derive(Clone, Copy, Debug)]
pub struct FingerprintEquality {
    n: usize,
    repetitions: usize,
}

impl FingerprintEquality {
    /// Equality on `n`-bit strings with `repetitions` fingerprint rounds.
    ///
    /// # Panics
    ///
    /// Panics if `repetitions == 0`.
    pub fn new(n: usize, repetitions: usize) -> Self {
        assert!(repetitions > 0, "need at least one repetition");
        FingerprintEquality { n, repetitions }
    }

    /// Error probability on unequal inputs: `2^{-repetitions}`.
    pub fn error_probability(&self) -> f64 {
        2f64.powi(-(self.repetitions as i32))
    }
}

impl TwoPartyProtocol for FingerprintEquality {
    fn run<R: Rng + ?Sized>(&self, x: &[bool], y: &[bool], rng: &mut R) -> TwoPartyRun {
        assert_eq!(x.len(), self.n, "x has wrong length");
        assert_eq!(y.len(), self.n, "y has wrong length");
        let mut transcript = Vec::new();
        let mut alice_bits = 0;
        let mut bob_bits = 0;
        let mut equal = true;
        for _ in 0..self.repetitions {
            // Public coin: both parties see the same random string.
            let r: Vec<bool> = (0..self.n).map(|_| rng.gen()).collect();
            let ax = x.iter().zip(&r).filter(|&(&a, &b)| a && b).count() % 2 == 1;
            let by = y.iter().zip(&r).filter(|&(&a, &b)| a && b).count() % 2 == 1;
            transcript.push((Party::Alice, ax));
            alice_bits += 1;
            let agree = ax == by;
            transcript.push((Party::Bob, agree));
            bob_bits += 1;
            if !agree {
                equal = false;
                break;
            }
        }
        TwoPartyRun {
            output: equal,
            alice_bits,
            bob_bits,
            transcript,
        }
    }

    fn worst_case_bits(&self) -> usize {
        2 * self.repetitions
    }
}

/// Deterministic block protocol for Inner Product mod 3: Alice streams
/// `x` in `w`-bit blocks; Bob accumulates partial inner products and
/// finally announces the 2-bit residue. Cost `n + 2`. (No deterministic
/// protocol can do substantially better — that is Theorem 6.1.)
#[derive(Clone, Copy, Debug)]
pub struct StreamingIpMod3 {
    n: usize,
}

impl StreamingIpMod3 {
    /// `IPmod3` protocol on `n`-bit inputs.
    pub fn new(n: usize) -> Self {
        StreamingIpMod3 { n }
    }
}

impl TwoPartyProtocol for StreamingIpMod3 {
    fn run<R: Rng + ?Sized>(&self, x: &[bool], y: &[bool], _rng: &mut R) -> TwoPartyRun {
        assert_eq!(x.len(), self.n, "x has wrong length");
        assert_eq!(y.len(), self.n, "y has wrong length");
        let mut transcript: Vec<(Party, bool)> = x.iter().map(|&b| (Party::Alice, b)).collect();
        let residue = x.iter().zip(y).filter(|&(&a, &b)| a && b).count() % 3;
        transcript.push((Party::Bob, residue & 1 == 1));
        transcript.push((Party::Bob, residue & 2 == 2));
        TwoPartyRun {
            output: residue == 0,
            alice_bits: self.n,
            bob_bits: 2,
            transcript,
        }
    }

    fn worst_case_bits(&self) -> usize {
        self.n + 2
    }
}

/// Empirical error rate of a protocol against the truth function over
/// random inputs — used to validate randomized protocols' stated error.
pub fn measure_error<P, F, R>(protocol: &P, truth: &F, trials: usize, rng: &mut R) -> f64
where
    P: TwoPartyProtocol,
    F: TwoPartyFunction,
    R: Rng + ?Sized,
{
    let n = truth.input_bits();
    let mut errors = 0usize;
    let mut counted = 0usize;
    for _ in 0..trials {
        let x: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
        let y: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
        if !truth.in_promise(&x, &y) {
            continue;
        }
        counted += 1;
        let run = protocol.run(&x, &y, rng);
        if run.output != truth.evaluate(&x, &y) {
            errors += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        errors as f64 / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{Equality, InnerProduct, IpMod3};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn trivial_protocol_is_exact_with_stated_cost() {
        let p = TrivialProtocol::new(InnerProduct::new(6));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..30 {
            let x: Vec<bool> = (0..6).map(|_| rng.gen()).collect();
            let y: Vec<bool> = (0..6).map(|_| rng.gen()).collect();
            let run = p.run(&x, &y, &mut rng);
            assert_eq!(run.output, InnerProduct::new(6).evaluate(&x, &y));
            assert_eq!(run.total_bits(), 7);
            assert_eq!(run.transcript.len(), 7);
        }
        assert_eq!(p.worst_case_bits(), 7);
    }

    #[test]
    fn fingerprint_equality_never_rejects_equal_inputs() {
        let p = FingerprintEquality::new(32, 10);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..50 {
            let x: Vec<bool> = (0..32).map(|_| rng.gen()).collect();
            let run = p.run(&x, &x.clone(), &mut rng);
            assert!(run.output, "one-sided error: equal inputs always accepted");
        }
    }

    #[test]
    fn fingerprint_equality_error_rate_matches_bound() {
        // With 1 repetition the error on unequal inputs is exactly 1/2 in
        // expectation over the coin (for x ≠ y, ⟨x−y, r⟩ is balanced).
        let p = FingerprintEquality::new(16, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let x: Vec<bool> = (0..16).map(|_| rng.gen()).collect();
        let mut y = x.clone();
        y[5] = !y[5];
        let mut wrong = 0;
        for _ in 0..4000 {
            if p.run(&x, &y, &mut rng).output {
                wrong += 1;
            }
        }
        let rate = wrong as f64 / 4000.0;
        assert!((rate - 0.5).abs() < 0.05, "round error rate {rate}");
        assert!((p.error_probability() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fingerprint_cost_is_logarithmic_not_linear() {
        let p = FingerprintEquality::new(1 << 16, 20);
        assert_eq!(p.worst_case_bits(), 40);
        // Versus the trivial protocol's 65537 bits.
        assert!(
            p.worst_case_bits() < TrivialProtocol::new(Equality::new(1 << 16)).worst_case_bits()
        );
    }

    #[test]
    fn measured_error_of_fingerprinting_is_small() {
        let p = FingerprintEquality::new(12, 8);
        let truth = Equality::new(12);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let err = measure_error(&p, &truth, 2000, &mut rng);
        assert!(err < 0.02, "measured error {err}");
    }

    #[test]
    fn streaming_ipmod3_is_exact() {
        let p = StreamingIpMod3::new(9);
        let f = IpMod3::new(9);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..50 {
            let x: Vec<bool> = (0..9).map(|_| rng.gen()).collect();
            let y: Vec<bool> = (0..9).map(|_| rng.gen()).collect();
            let run = p.run(&x, &y, &mut rng);
            assert_eq!(run.output, f.evaluate(&x, &y));
            assert_eq!(run.total_bits(), 11);
        }
    }
}
