//! Binary codes via the greedy Gilbert–Varshamov construction.
//!
//! Section 6 builds the fooling set for `(βn)-Eq` from a code `C ⊆ {0,1}ⁿ`
//! with pairwise Hamming distance at least `2βn`; Gilbert–Varshamov
//! guarantees `|C| ≥ 2^{(1−H(2β))n}`. The greedy constructions here
//! realize such codes executably: exhaustive-lexicographic for small `n`,
//! randomized-greedy for larger `n`.

use crate::problems::hamming_distance;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// The binary entropy function `H(p) = −p·log₂p − (1−p)·log₂(1−p)`,
/// with `H(0) = H(1) = 0`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn binary_entropy(p: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "entropy argument must be in [0,1]"
    );
    if p == 0.0 || p == 1.0 {
        return 0.0;
    }
    -p * p.log2() - (1.0 - p) * (1.0 - p).log2()
}

/// The Gilbert–Varshamov guarantee: a distance-`d` code of size at least
/// `2ⁿ / Vol(n, d−1)` exists, where `Vol` is the Hamming-ball volume.
/// Returned as `log₂` of the size bound (can be fractional).
pub fn gv_log2_size_bound(n: usize, d: usize) -> f64 {
    assert!(d >= 1 && d <= n, "need 1 ≤ d ≤ n");
    // log2 Vol(n, d-1) via log-sum-exp over binomials.
    let mut log_binom = 0.0f64; // log2 C(n, 0)
    let mut vol_terms = vec![0.0f64]; // log2 of each term
    for k in 1..d {
        log_binom += ((n - k + 1) as f64).log2() - (k as f64).log2();
        vol_terms.push(log_binom);
    }
    let max = vol_terms.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let log_vol = max
        + vol_terms
            .iter()
            .map(|&t| 2f64.powf(t - max))
            .sum::<f64>()
            .log2();
    n as f64 - log_vol
}

/// A binary code: a set of `n`-bit codewords with a certified minimum
/// pairwise Hamming distance.
#[derive(Clone, Debug)]
pub struct BinaryCode {
    n: usize,
    min_distance: usize,
    words: Vec<Vec<bool>>,
}

impl BinaryCode {
    /// Block length.
    pub fn block_length(&self) -> usize {
        self.n
    }

    /// Certified minimum distance.
    pub fn min_distance(&self) -> usize {
        self.min_distance
    }

    /// The codewords.
    pub fn words(&self) -> &[Vec<bool>] {
        &self.words
    }

    /// Number of codewords.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the code is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// `log₂ |C|`.
    pub fn log2_size(&self) -> f64 {
        (self.words.len() as f64).log2()
    }

    /// Exhaustively re-checks the distance property (test helper; `O(|C|²n)`).
    pub fn validate(&self) -> bool {
        for i in 0..self.words.len() {
            for j in (i + 1)..self.words.len() {
                if hamming_distance(&self.words[i], &self.words[j]) < self.min_distance {
                    return false;
                }
            }
        }
        true
    }
}

/// Greedy lexicographic Gilbert–Varshamov code: scans all `2ⁿ` strings in
/// order, keeping each that is ≥ `d` away from everything kept so far.
/// Meets the GV size bound. Only for `n ≤ 22`.
///
/// # Panics
///
/// Panics if `n > 22` (use [`greedy_random_code`]) or `d` is out of range.
pub fn greedy_lexicographic_code(n: usize, d: usize) -> BinaryCode {
    assert!(n <= 22, "exhaustive greedy limited to n ≤ 22");
    assert!(d >= 1 && d <= n, "need 1 ≤ d ≤ n");
    let mut words: Vec<Vec<bool>> = Vec::new();
    for v in 0u64..(1 << n) {
        let cand: Vec<bool> = (0..n).map(|i| v >> i & 1 == 1).collect();
        if words.iter().all(|w| hamming_distance(w, &cand) >= d) {
            words.push(cand);
        }
    }
    BinaryCode {
        n,
        min_distance: d,
        words,
    }
}

/// Randomized greedy code for larger `n`: samples random candidates and
/// keeps those far from everything kept, until `target` words are found
/// or `max_attempts` candidates have been tried. Deterministic in `seed`.
pub fn greedy_random_code(
    n: usize,
    d: usize,
    target: usize,
    max_attempts: usize,
    seed: u64,
) -> BinaryCode {
    assert!(d >= 1 && d <= n, "need 1 ≤ d ≤ n");
    use rand::SeedableRng;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut words: Vec<Vec<bool>> = Vec::new();
    let mut attempts = 0;
    while words.len() < target && attempts < max_attempts {
        attempts += 1;
        let cand: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
        if words.iter().all(|w| hamming_distance(w, &cand) >= d) {
            words.push(cand);
        }
    }
    BinaryCode {
        n,
        min_distance: d,
        words,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_endpoints_and_peak() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
        assert!((binary_entropy(0.11) - binary_entropy(0.89)).abs() < 1e-12);
    }

    #[test]
    fn gv_bound_sane_values() {
        // d = 1: every string is a codeword; bound = n.
        assert!((gv_log2_size_bound(10, 1) - 10.0).abs() < 1e-9);
        // d = n: bound ≥ log2(2^n / 2^{n-?}) — at least 0, at most n.
        let b = gv_log2_size_bound(10, 10);
        assert!((0.0..=10.0).contains(&b));
        // Asymptotic flavor: rate ≥ 1 − H(d/n) approximately.
        let n = 200usize;
        let d = 20usize;
        let rate = gv_log2_size_bound(n, d) / n as f64;
        let asym = 1.0 - binary_entropy(d as f64 / n as f64);
        assert!(rate > asym - 0.08, "rate {rate} vs asymptotic {asym}");
    }

    #[test]
    fn lexicographic_code_has_distance_and_meets_gv() {
        let code = greedy_lexicographic_code(10, 4);
        assert!(code.validate());
        assert!(
            code.log2_size() >= gv_log2_size_bound(10, 4).floor(),
            "greedy {} vs GV {}",
            code.log2_size(),
            gv_log2_size_bound(10, 4)
        );
    }

    #[test]
    fn lexicographic_distance_one_is_everything() {
        let code = greedy_lexicographic_code(5, 1);
        assert_eq!(code.len(), 32);
    }

    #[test]
    fn lexicographic_distance_n_is_two_words() {
        // Only 0…0 and 1…1 are at distance n.
        let code = greedy_lexicographic_code(6, 6);
        assert_eq!(code.len(), 2);
        assert!(code.validate());
    }

    #[test]
    fn random_code_respects_distance_and_grows_exponentially() {
        let n = 64;
        let beta = 0.125; // distance 2βn = 16
        let d = (2.0 * beta * n as f64) as usize;
        let code = greedy_random_code(n, d, 200, 20_000, 7);
        assert!(code.validate());
        // GV predicts ≥ 2^{(1-H(0.25))·64} ≈ 2^{12}; the randomized greedy
        // with a 200 target should have no trouble reaching its target.
        assert!(code.len() >= 190, "got only {} codewords", code.len());
    }

    #[test]
    fn random_code_is_deterministic_in_seed() {
        let a = greedy_random_code(32, 8, 50, 5000, 3);
        let b = greedy_random_code(32, 8, 50, 5000, 3);
        assert_eq!(a.words(), b.words());
    }

    #[test]
    fn code_accessors() {
        let code = greedy_lexicographic_code(4, 2);
        assert_eq!(code.block_length(), 4);
        assert_eq!(code.min_distance(), 2);
        assert!(!code.is_empty());
    }
}
