//! Spectral quantities of Appendix B.3: the strongly balanced gadget
//! matrix, its spectral norm, and the composed `IPmod3` lower bound.
//!
//! Appendix B.3 writes `IPmod3` (on promise inputs) as a block composition
//! `f ∘ gⁿ/⁴` where `g` is a 4×4 two-party gadget whose sign matrix `A_g`
//! is **strongly balanced** (all rows and columns sum to zero) with
//! `‖A_g‖ = 2√2`, and `f` counts ones mod 3 — a symmetric function with
//! approximate degree `Θ(m)` on `m` variables (Paturi). Lemma B.4 then
//! gives `Q*ˢᵛ(f ∘ gⁿ) ≥ deg(f) · log₂(√(|X||Y|)/‖A_g‖) − O(1)`.
//! This module computes each ingredient exactly or numerically and
//! composes them.

/// A small dense real matrix (row-major).
#[derive(Clone, Debug, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Builds from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data size mismatch");
        Mat { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "index out of range");
        self.data[i * self.cols + j]
    }

    /// Whether all rows and all columns sum to zero (tolerance 1e-9):
    /// the paper's "strongly balanced" condition on sign matrices.
    pub fn is_strongly_balanced(&self) -> bool {
        for i in 0..self.rows {
            let s: f64 = (0..self.cols).map(|j| self.get(i, j)).sum();
            if s.abs() > 1e-9 {
                return false;
            }
        }
        for j in 0..self.cols {
            let s: f64 = (0..self.rows).map(|i| self.get(i, j)).sum();
            if s.abs() > 1e-9 {
                return false;
            }
        }
        true
    }

    /// Spectral norm `‖A‖` (largest singular value) by power iteration on
    /// `AᵀA`. Deterministic start vector; `iters` iterations (100 is ample
    /// for the tiny matrices used here).
    pub fn spectral_norm(&self, iters: usize) -> f64 {
        let n = self.cols;
        let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 0.1).collect();
        let norm = |x: &[f64]| x.iter().map(|a| a * a).sum::<f64>().sqrt();
        let nv = norm(&v);
        for x in &mut v {
            *x /= nv;
        }
        let mut lambda = 0.0;
        for _ in 0..iters {
            // w = A v ; u = Aᵀ w  (power iteration on AᵀA)
            let mut w = vec![0.0; self.rows];
            for (i, wi) in w.iter_mut().enumerate() {
                for (j, &vj) in v.iter().enumerate() {
                    *wi += self.get(i, j) * vj;
                }
            }
            let mut u = vec![0.0; n];
            for (j, uj) in u.iter_mut().enumerate() {
                for (i, &wi) in w.iter().enumerate() {
                    *uj += self.get(i, j) * wi;
                }
            }
            let nu = norm(&u);
            if nu < 1e-300 {
                return 0.0;
            }
            lambda = nu;
            for (x, &y) in v.iter_mut().zip(&u) {
                *x = y / nu;
            }
        }
        lambda.sqrt()
    }
}

/// The 4×4 sign matrix `A_g` of Appendix B.3: rows indexed by `x`-blocks
/// `{0011, 0101, 1100, 1010}`, columns by `y`-blocks
/// `{0001, 0010, 1000, 0100}`; entry `(−1)^{g}` where
/// `g = ∨ᵢ (xᵢ ∧ yᵢ)` for the block.
pub fn ag_matrix() -> Mat {
    // Transcribed from the paper (Appendix B.3).
    Mat::new(
        4,
        4,
        vec![
            -1.0, -1.0, 1.0, 1.0, //
            -1.0, 1.0, 1.0, -1.0, //
            1.0, 1.0, -1.0, -1.0, //
            1.0, -1.0, -1.0, 1.0,
        ],
    )
}

/// Recomputes `A_g` from the block definitions (rather than transcribing),
/// as a cross-check: entry is `+1` if the block inner product is 0, `−1`
/// if it is 1.
pub fn ag_matrix_from_definition() -> Mat {
    use crate::problems::IpMod3PromiseSampler as S;
    let mut data = Vec::with_capacity(16);
    for xb in &S::X_BLOCKS {
        for yb in &S::Y_BLOCKS {
            let g = xb.iter().zip(yb).any(|(&a, &b)| a && b);
            data.push(if g { -1.0 } else { 1.0 });
        }
    }
    Mat::new(4, 4, data)
}

/// Paturi's approximate-degree lower bound for the "sum ≡ 0 (mod 3)"
/// symmetric function on `m` variables: `deg_{1/3}(f) ≥ c·m` for a
/// universal constant `c`. We expose the linear lower bound with the
/// (conservative, documented) normalization `c = 1/4`: the function flips
/// value within O(1) of the middle of the range, so Paturi's
/// `Θ(√(m(m−Γ)))` with `Γ = O(1)` is `Θ(m)`.
pub fn paturi_mod3_degree_lower(m: usize) -> f64 {
    m as f64 / 4.0
}

/// Lemma B.4's composed Server-model bound:
/// `Q ≥ deg · log₂(√(|X||Y|)/‖A_g‖) − O(1)`, with the O(1) dropped.
pub fn lemma_b4_bound(deg: f64, x_size: usize, y_size: usize, ag_norm: f64) -> f64 {
    deg * (((x_size * y_size) as f64).sqrt() / ag_norm).log2()
}

/// The composed `IPmod3` Server-model lower bound of Theorem 6.1 (up to
/// the additive O(1)): on `n`-bit promise inputs, `m = n/4` blocks, the
/// gadget factor is `log₂(4/(2√2)) = 1/2`, so the bound is
/// `paturi(n/4) / 2 = n/32` qubits of Carol+David communication.
pub fn ipmod3_server_lower_bound(n: usize) -> f64 {
    let m = n / 4;
    let ag = ag_matrix();
    lemma_b4_bound(paturi_mod3_degree_lower(m), 4, 4, ag.spectral_norm(200))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ag_matrix_matches_definition() {
        assert_eq!(ag_matrix(), ag_matrix_from_definition());
    }

    #[test]
    fn ag_is_strongly_balanced() {
        assert!(ag_matrix().is_strongly_balanced());
    }

    #[test]
    fn ag_spectral_norm_is_two_sqrt_two() {
        let norm = ag_matrix().spectral_norm(300);
        assert!(
            (norm - 2.0 * 2f64.sqrt()).abs() < 1e-9,
            "‖A_g‖ = {norm}, paper says 2√2 ≈ 2.828"
        );
    }

    #[test]
    fn spectral_norm_of_identity_and_scaled() {
        let id = Mat::new(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert!((id.spectral_norm(100) - 1.0).abs() < 1e-9);
        let sc = Mat::new(2, 2, vec![3.0, 0.0, 0.0, 1.0]);
        assert!((sc.spectral_norm(100) - 3.0).abs() < 1e-9);
        // Rank-1 all-ones 3x3 has norm 3.
        let ones = Mat::new(3, 3, vec![1.0; 9]);
        assert!((ones.spectral_norm(100) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn unbalanced_matrix_detected() {
        let m = Mat::new(2, 2, vec![1.0, 1.0, -1.0, 1.0]);
        assert!(!m.is_strongly_balanced());
    }

    #[test]
    fn gadget_factor_is_half_a_bit() {
        // log2(√16 / 2√2) = log2(√2) = 1/2.
        let ag = ag_matrix();
        let factor = ((4.0 * 4.0f64).sqrt() / ag.spectral_norm(300)).log2();
        assert!((factor - 0.5).abs() < 1e-9, "factor {factor}");
    }

    #[test]
    fn ipmod3_bound_is_linear_in_n() {
        let b256 = ipmod3_server_lower_bound(256);
        let b512 = ipmod3_server_lower_bound(512);
        assert!((b512 / b256 - 2.0).abs() < 1e-6, "{b256} {b512}");
        // With c = 1/4 and factor 1/2: n/32.
        assert!((b256 - 8.0).abs() < 1e-6, "{b256}");
    }

    #[test]
    fn zero_matrix_norm_is_zero() {
        let z = Mat::new(2, 3, vec![0.0; 6]);
        assert_eq!(z.spectral_norm(50), 0.0);
    }
}
