//! Fooling sets and the lower bounds they certify.
//!
//! A **1-fooling set** for `f` is a set `F` of input pairs with
//! `f(x, y) = 1` for every `(x, y) ∈ F`, and for every two pairs
//! `(x, y), (x′, y′) ∈ F`, `f(x, y′) = 0` or `f(x′, y) = 0` (Section 6).
//! Fooling sets certify:
//!
//! * the classic deterministic bound `D(f) ≥ log₂|F|`;
//! * the Klauck–de Wolf one-sided-error *quantum* bound
//!   `Q*₀,½(f) ≥ (log₂ fool¹(f))/4 − 1/2`, which the paper routes through
//!   Lemma 3.2 to get the same bound in the **Server model**
//!   (`(1−ε)·4^{−2Q} ≤ 1/fool¹(f)`).

use crate::codes::BinaryCode;
use crate::problems::TwoPartyFunction;

/// An explicit 1-fooling set: a list of `(x, y)` pairs.
#[derive(Clone, Debug, Default)]
pub struct FoolingSet {
    pairs: Vec<(Vec<bool>, Vec<bool>)>,
}

impl FoolingSet {
    /// Builds from explicit pairs.
    pub fn from_pairs(pairs: Vec<(Vec<bool>, Vec<bool>)>) -> Self {
        FoolingSet { pairs }
    }

    /// The pairs.
    pub fn pairs(&self) -> &[(Vec<bool>, Vec<bool>)] {
        &self.pairs
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// `log₂` of the size.
    pub fn log2_size(&self) -> f64 {
        (self.pairs.len() as f64).log2()
    }

    /// Checks the 1-fooling conditions against `f`. For promise problems,
    /// cross pairs outside the promise make the set invalid (the bound
    /// argument needs `f` defined there), so the builder must guarantee
    /// cross pairs stay inside the promise — the GV-code construction
    /// does, which is exactly why the paper uses codes.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated condition.
    pub fn verify<F: TwoPartyFunction>(&self, f: &F) -> Result<(), String> {
        for (i, (x, y)) in self.pairs.iter().enumerate() {
            if !f.in_promise(x, y) {
                return Err(format!("pair {i} violates the promise"));
            }
            if !f.evaluate(x, y) {
                return Err(format!("pair {i} is not a 1-input"));
            }
        }
        for i in 0..self.pairs.len() {
            for j in (i + 1)..self.pairs.len() {
                let (xi, yi) = &self.pairs[i];
                let (xj, yj) = &self.pairs[j];
                let cross_ij_ok = f.in_promise(xi, yj) && !f.evaluate(xi, yj);
                let cross_ji_ok = f.in_promise(xj, yi) && !f.evaluate(xj, yi);
                if !cross_ij_ok && !cross_ji_ok {
                    return Err(format!(
                        "pairs {i} and {j}: neither cross pair is a (promise-valid) 0-input"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Deterministic communication lower bound `⌈log₂|F|⌉` bits.
    pub fn deterministic_bound(&self) -> usize {
        if self.pairs.len() <= 1 {
            0
        } else {
            self.log2_size().ceil() as usize
        }
    }

    /// The Klauck–de Wolf one-sided-error quantum bound
    /// `Q*₀,½ ≥ (log₂|F|)/4 − 1/2` (in bits; can be ≤ 0 for tiny sets).
    pub fn kdw_quantum_bound(&self) -> f64 {
        self.log2_size() / 4.0 - 0.5
    }

    /// The Server-model one-sided bound from Lemma 3.2 + Klauck–de Wolf:
    /// from `(1−ε)·4^{−2Q} ≤ 1/|F|`,
    /// `Q ≥ (log₂|F| + log₂(1−ε)) / 4`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `[0, 1)`.
    pub fn server_model_bound(&self, epsilon: f64) -> f64 {
        assert!((0.0..1.0).contains(&epsilon), "ε must be in [0,1)");
        (self.log2_size() + (1.0 - epsilon).log2()) / 4.0
    }
}

/// The diagonal fooling set `{(c, c) : c ∈ C}` for `δ-Eq` built from a
/// code of minimum distance `> δ`: cross pairs `(c, c′)` have Hamming
/// distance ≥ d > δ, so they satisfy the promise and are 0-inputs.
///
/// # Panics
///
/// Panics if the code's distance is not strictly larger than `delta`.
pub fn gap_equality_fooling_set(code: &BinaryCode, delta: usize) -> FoolingSet {
    assert!(
        code.min_distance() > delta,
        "code distance {} must exceed the gap {delta}",
        code.min_distance()
    );
    FoolingSet::from_pairs(
        code.words()
            .iter()
            .map(|w| (w.clone(), w.clone()))
            .collect(),
    )
}

/// The classic fooling set for Set Disjointness on `n` bits:
/// `{(S, complement(S)) : S ⊆ [n]}`, of size `2ⁿ`. For testability the
/// size is capped by enumerating only `2^min(n, cap)` subsets (prefix
/// subsets), which is still a valid fooling set.
pub fn disjointness_fooling_set(n: usize, cap: usize) -> FoolingSet {
    let k = n.min(cap).min(20);
    let mut pairs = Vec::with_capacity(1 << k);
    for s in 0u64..(1 << k) {
        let x: Vec<bool> = (0..n).map(|i| i < k && s >> i & 1 == 1).collect();
        let y: Vec<bool> = x.iter().map(|&b| !b).collect();
        pairs.push((x, y));
    }
    FoolingSet::from_pairs(pairs)
}

/// The diagonal fooling set for exact Equality: `{(x, x)}` over all
/// `2^min(n, cap)` prefix-supported strings.
pub fn equality_fooling_set(n: usize, cap: usize) -> FoolingSet {
    let k = n.min(cap).min(20);
    let mut pairs = Vec::with_capacity(1 << k);
    for s in 0u64..(1 << k) {
        let x: Vec<bool> = (0..n).map(|i| i < k && s >> i & 1 == 1).collect();
        pairs.push((x.clone(), x));
    }
    FoolingSet::from_pairs(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::greedy_lexicographic_code;
    use crate::problems::{Disjointness, Equality, GapEquality};

    #[test]
    fn equality_fooling_set_is_valid() {
        let fs = equality_fooling_set(8, 6);
        assert_eq!(fs.len(), 64);
        assert!(fs.verify(&Equality::new(8)).is_ok());
        assert_eq!(fs.deterministic_bound(), 6);
    }

    #[test]
    fn disjointness_fooling_set_is_valid() {
        let fs = disjointness_fooling_set(10, 8);
        assert_eq!(fs.len(), 256);
        assert!(fs.verify(&Disjointness::new(10)).is_ok());
        assert_eq!(fs.deterministic_bound(), 8);
    }

    #[test]
    fn gap_equality_fooling_set_from_code() {
        // n = 12, δ = 3; code distance 4 > δ.
        let code = greedy_lexicographic_code(12, 4);
        let fs = gap_equality_fooling_set(&code, 3);
        let f = GapEquality::new(12, 3);
        assert!(fs.verify(&f).is_ok());
        // Size is exponential: GV with d=4 on n=12 gives ≥ 2^5.
        assert!(fs.log2_size() >= 5.0, "log size {}", fs.log2_size());
        assert!(fs.kdw_quantum_bound() > 0.0);
        assert!(fs.server_model_bound(0.5) > 0.0);
    }

    #[test]
    #[should_panic(expected = "must exceed the gap")]
    fn insufficient_code_distance_rejected() {
        let code = greedy_lexicographic_code(8, 2);
        gap_equality_fooling_set(&code, 3);
    }

    #[test]
    fn invalid_fooling_set_detected() {
        // Two pairs whose cross inputs are both 1-inputs for Equality:
        // impossible for Eq's diagonal, so craft one with a repeated x.
        let x = vec![true, false];
        let fs = FoolingSet::from_pairs(vec![(x.clone(), x.clone()), (x.clone(), x.clone())]);
        assert!(fs.verify(&Equality::new(2)).is_err());
    }

    #[test]
    fn zero_input_pair_detected() {
        let fs = FoolingSet::from_pairs(vec![(vec![true], vec![false])]);
        let err = fs.verify(&Equality::new(1)).unwrap_err();
        assert!(err.contains("not a 1-input"));
    }

    #[test]
    fn promise_violation_detected() {
        // δ-Eq with δ=2 on n=4: a pair at distance 1 violates the promise.
        let f = GapEquality::new(4, 2);
        let x = vec![false; 4];
        let mut y = x.clone();
        y[0] = true;
        let fs = FoolingSet::from_pairs(vec![(x, y)]);
        let err = fs.verify(&f).unwrap_err();
        assert!(err.contains("promise"));
    }

    #[test]
    fn bounds_scale_with_log_size() {
        let small = equality_fooling_set(4, 2);
        let large = equality_fooling_set(12, 12);
        assert!(large.kdw_quantum_bound() > small.kdw_quantum_bound());
        assert!(large.server_model_bound(0.25) > small.server_model_bound(0.25));
        assert_eq!(FoolingSet::default().deterministic_bound(), 0);
    }
}
