//! Concrete two-party problems from Sections 1 and 6.

use rand::Rng;

/// A (possibly partial) boolean two-party function on equal-length bit
/// strings.
pub trait TwoPartyFunction {
    /// Input length `n` for each party.
    fn input_bits(&self) -> usize;

    /// Evaluates `f(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the inputs have the wrong length or (for promise
    /// problems) violate the promise.
    fn evaluate(&self, x: &[bool], y: &[bool]) -> bool;

    /// Whether `(x, y)` satisfies the promise (total functions: always).
    fn in_promise(&self, x: &[bool], y: &[bool]) -> bool {
        x.len() == self.input_bits() && y.len() == self.input_bits()
    }

    /// Short human-readable name.
    fn name(&self) -> String;
}

fn check_lengths(n: usize, x: &[bool], y: &[bool]) {
    assert_eq!(x.len(), n, "x has wrong length");
    assert_eq!(y.len(), n, "y has wrong length");
}

/// **Equality**: `Eq(x, y) = 1` iff `x = y`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Equality {
    n: usize,
}

impl Equality {
    /// Equality on `n`-bit strings.
    pub fn new(n: usize) -> Self {
        Equality { n }
    }
}

impl TwoPartyFunction for Equality {
    fn input_bits(&self) -> usize {
        self.n
    }
    fn evaluate(&self, x: &[bool], y: &[bool]) -> bool {
        check_lengths(self.n, x, y);
        x == y
    }
    fn name(&self) -> String {
        format!("Eq_{}", self.n)
    }
}

/// **Set Disjointness**: `Disj(x, y) = 1` iff `⟨x, y⟩ = 0`, i.e. the
/// supports are disjoint (Example 1.1's convention: output whether the
/// inner product is zero).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Disjointness {
    n: usize,
}

impl Disjointness {
    /// Disjointness on `n`-bit strings.
    pub fn new(n: usize) -> Self {
        Disjointness { n }
    }
}

impl TwoPartyFunction for Disjointness {
    fn input_bits(&self) -> usize {
        self.n
    }
    fn evaluate(&self, x: &[bool], y: &[bool]) -> bool {
        check_lengths(self.n, x, y);
        !x.iter().zip(y).any(|(&a, &b)| a && b)
    }
    fn name(&self) -> String {
        format!("Disj_{}", self.n)
    }
}

/// **Inner product mod 2**: `IP(x, y) = ⟨x, y⟩ mod 2`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InnerProduct {
    n: usize,
}

impl InnerProduct {
    /// Inner product on `n`-bit strings.
    pub fn new(n: usize) -> Self {
        InnerProduct { n }
    }
}

impl TwoPartyFunction for InnerProduct {
    fn input_bits(&self) -> usize {
        self.n
    }
    fn evaluate(&self, x: &[bool], y: &[bool]) -> bool {
        check_lengths(self.n, x, y);
        x.iter().zip(y).filter(|&(&a, &b)| a && b).count() % 2 == 1
    }
    fn name(&self) -> String {
        format!("IP_{}", self.n)
    }
}

/// **Inner product mod 3** (Section 6): output 1 iff `Σᵢ xᵢyᵢ ≡ 0 (mod 3)`.
///
/// This is the function the paper proves hard in the Server model
/// (Theorem 6.1) and reduces to Hamiltonian-cycle verification
/// (Theorem 3.4). Note the convention: the graph `G` built from `(x, y)`
/// is a Hamiltonian cycle iff the sum is **non**-zero mod 3 (Lemma C.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IpMod3 {
    n: usize,
}

impl IpMod3 {
    /// `IPmod3` on `n`-bit strings.
    pub fn new(n: usize) -> Self {
        IpMod3 { n }
    }

    /// `Σᵢ xᵢyᵢ mod 3` as an integer in `{0, 1, 2}`.
    pub fn residue(&self, x: &[bool], y: &[bool]) -> u8 {
        check_lengths(self.n, x, y);
        (x.iter().zip(y).filter(|&(&a, &b)| a && b).count() % 3) as u8
    }
}

impl TwoPartyFunction for IpMod3 {
    fn input_bits(&self) -> usize {
        self.n
    }
    fn evaluate(&self, x: &[bool], y: &[bool]) -> bool {
        self.residue(x, y) == 0
    }
    fn name(&self) -> String {
        format!("IPmod3_{}", self.n)
    }
}

/// **Gap Equality** `δ-Eq` (Section 6): promise that either `x = y` or the
/// Hamming distance `Δ(x, y) > δ`; output 1 iff `x = y`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GapEquality {
    n: usize,
    delta: usize,
}

impl GapEquality {
    /// `δ-Eq` on `n`-bit strings with gap `delta`.
    ///
    /// # Panics
    ///
    /// Panics if `delta >= n`.
    pub fn new(n: usize, delta: usize) -> Self {
        assert!(delta < n, "gap must be smaller than the input length");
        GapEquality { n, delta }
    }

    /// The gap parameter δ.
    pub fn delta(&self) -> usize {
        self.delta
    }
}

/// Hamming distance between equal-length bit strings.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn hamming_distance(x: &[bool], y: &[bool]) -> usize {
    assert_eq!(x.len(), y.len(), "hamming distance needs equal lengths");
    x.iter().zip(y).filter(|&(&a, &b)| a != b).count()
}

impl TwoPartyFunction for GapEquality {
    fn input_bits(&self) -> usize {
        self.n
    }
    fn evaluate(&self, x: &[bool], y: &[bool]) -> bool {
        check_lengths(self.n, x, y);
        assert!(
            self.in_promise(x, y),
            "δ-Eq promise violated: 0 < Δ(x,y) ≤ δ"
        );
        x == y
    }
    fn in_promise(&self, x: &[bool], y: &[bool]) -> bool {
        x.len() == self.n && y.len() == self.n && {
            let d = hamming_distance(x, y);
            d == 0 || d > self.delta
        }
    }
    fn name(&self) -> String {
        format!("{}-Eq_{}", self.delta, self.n)
    }
}

/// The promise-input family of Appendix B.3 for `IPmod3`: inputs come in
/// 4-bit blocks with `x`-blocks in `{0011, 0101, 1100, 1010}` and
/// `y`-blocks in `{0001, 0010, 1000, 0100}`, so each block contributes
/// exactly 0 or 1 to `⟨x, y⟩`.
#[derive(Clone, Copy, Debug)]
pub struct IpMod3PromiseSampler {
    /// Number of 4-bit blocks.
    pub blocks: usize,
}

impl IpMod3PromiseSampler {
    /// Bit patterns allowed for `x` blocks (as 4-bit values, MSB-first as
    /// written in the paper: `0011` means bits `(0,0,1,1)`).
    pub const X_BLOCKS: [[bool; 4]; 4] = [
        [false, false, true, true],
        [false, true, false, true],
        [true, true, false, false],
        [true, false, true, false],
    ];
    /// Bit patterns allowed for `y` blocks.
    pub const Y_BLOCKS: [[bool; 4]; 4] = [
        [false, false, false, true],
        [false, false, true, false],
        [true, false, false, false],
        [false, true, false, false],
    ];

    /// Samples a promise-respecting input pair of `4·blocks` bits.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (Vec<bool>, Vec<bool>) {
        let mut x = Vec::with_capacity(4 * self.blocks);
        let mut y = Vec::with_capacity(4 * self.blocks);
        for _ in 0..self.blocks {
            x.extend_from_slice(&Self::X_BLOCKS[rng.gen_range(0..4usize)]);
            y.extend_from_slice(&Self::Y_BLOCKS[rng.gen_range(0..4usize)]);
        }
        (x, y)
    }

    /// Whether `(x, y)` lies in the block promise.
    pub fn in_promise(&self, x: &[bool], y: &[bool]) -> bool {
        x.len() == 4 * self.blocks
            && y.len() == 4 * self.blocks
            && x.chunks(4).all(|c| Self::X_BLOCKS.iter().any(|b| b == c))
            && y.chunks(4).all(|c| Self::Y_BLOCKS.iter().any(|b| b == c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn equality_basic() {
        let f = Equality::new(3);
        assert!(f.evaluate(&[true, false, true], &[true, false, true]));
        assert!(!f.evaluate(&[true, false, true], &[true, true, true]));
        assert_eq!(f.name(), "Eq_3");
    }

    #[test]
    fn disjointness_matches_inner_product_zero() {
        let f = Disjointness::new(4);
        assert!(f.evaluate(&[true, false, true, false], &[false, true, false, true]));
        assert!(!f.evaluate(&[true, false, false, false], &[true, false, false, false]));
    }

    #[test]
    fn inner_product_parity() {
        let f = InnerProduct::new(4);
        // Two agreeing positions → even.
        assert!(!f.evaluate(&[true, true, false, false], &[true, true, false, false]));
        // One agreeing position → odd.
        assert!(f.evaluate(&[true, false, false, false], &[true, false, true, false]));
    }

    #[test]
    fn ipmod3_residues() {
        let f = IpMod3::new(5);
        let ones = vec![true; 5];
        assert_eq!(f.residue(&ones, &ones), 2); // 5 mod 3
        assert!(!f.evaluate(&ones, &ones));
        let x = vec![true, true, true, false, false];
        assert_eq!(f.residue(&x, &ones), 0);
        assert!(f.evaluate(&x, &ones));
    }

    #[test]
    fn gap_equality_promise() {
        let f = GapEquality::new(8, 3);
        let x = vec![false; 8];
        assert!(f.in_promise(&x, &x));
        assert!(f.evaluate(&x, &x));
        let mut far = x.clone();
        for slot in far.iter_mut().take(4) {
            *slot = true;
        }
        assert!(f.in_promise(&x, &far));
        assert!(!f.evaluate(&x, &far));
        let mut near = x.clone();
        near[0] = true;
        assert!(!f.in_promise(&x, &near));
    }

    #[test]
    #[should_panic(expected = "promise violated")]
    fn gap_equality_rejects_promise_violation() {
        let f = GapEquality::new(4, 2);
        let x = vec![false; 4];
        let mut near = x.clone();
        near[0] = true;
        f.evaluate(&x, &near);
    }

    #[test]
    fn hamming_distance_counts_flips() {
        assert_eq!(hamming_distance(&[true, false], &[true, false]), 0);
        assert_eq!(hamming_distance(&[true, false], &[false, true]), 2);
    }

    #[test]
    fn promise_sampler_respects_blocks_and_contribution() {
        let s = IpMod3PromiseSampler { blocks: 6 };
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        for _ in 0..50 {
            let (x, y) = s.sample(&mut rng);
            assert!(s.in_promise(&x, &y));
            // Each block contributes 0 or 1 to the inner product.
            for (xb, yb) in x.chunks(4).zip(y.chunks(4)) {
                let c = xb.iter().zip(yb).filter(|&(&a, &b)| a && b).count();
                assert!(c <= 1, "block contribution {c}");
            }
        }
    }

    #[test]
    fn promise_sampler_rejects_garbage() {
        let s = IpMod3PromiseSampler { blocks: 1 };
        assert!(!s.in_promise(&[true; 4], &[false, false, false, true]));
        assert!(!s.in_promise(&[false, false, true, true], &[true; 4]));
    }
}
