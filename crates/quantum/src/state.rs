//! Dense state-vector simulation of small quantum registers.

use crate::complex::Complex;
use rand::Rng;

/// Maximum register size (design decision D3 in DESIGN.md): 24 qubits is a
/// 16 M-amplitude vector, 256 MiB — well beyond anything the paper's
/// primitives need (≤ 4) and comfortable for Grover demos (8–16).
pub const MAX_QUBITS: usize = 24;

/// A pure state of `n` qubits as a dense vector of 2ⁿ amplitudes.
///
/// Qubit `q` corresponds to bit `q` of the basis-state index (qubit 0 is
/// the least-significant bit).
///
/// # Example
///
/// ```
/// use qdc_quantum::{StateVector, gates};
///
/// let mut psi = StateVector::zeros(1);
/// psi.apply_single(gates::X, 0);
/// assert_eq!(psi.probability_of(1), 1.0);
/// ```
#[derive(Clone)]
pub struct StateVector {
    n: usize,
    amps: Vec<Complex>,
}

impl std::fmt::Debug for StateVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateVector")
            .field("qubits", &self.n)
            .finish()
    }
}

impl StateVector {
    /// The all-zeros computational basis state `|0…0⟩` on `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > MAX_QUBITS`.
    pub fn zeros(n: usize) -> Self {
        assert!(n > 0, "register needs at least one qubit");
        assert!(n <= MAX_QUBITS, "register capped at {MAX_QUBITS} qubits");
        let mut amps = vec![Complex::ZERO; 1 << n];
        amps[0] = Complex::ONE;
        StateVector { n, amps }
    }

    /// The computational basis state `|index⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n` or `n` is out of range.
    pub fn basis(n: usize, index: usize) -> Self {
        let mut s = StateVector::zeros(n);
        assert!(index < s.amps.len(), "basis index out of range");
        s.amps[0] = Complex::ZERO;
        s.amps[index] = Complex::ONE;
        s
    }

    /// Builds a state from raw amplitudes, normalizing them.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two in `2..=2^MAX_QUBITS`, or
    /// the vector is (numerically) zero.
    pub fn from_amplitudes(amps: Vec<Complex>) -> Self {
        let len = amps.len();
        assert!(
            len >= 2 && len.is_power_of_two(),
            "amplitude vector length must be a power of two ≥ 2"
        );
        let n = len.trailing_zeros() as usize;
        assert!(n <= MAX_QUBITS, "register capped at {MAX_QUBITS} qubits");
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        assert!(norm > 1e-12, "cannot normalize the zero vector");
        let amps = amps.into_iter().map(|a| a.scale(1.0 / norm)).collect();
        StateVector { n, amps }
    }

    /// Number of qubits.
    #[inline]
    pub fn qubit_count(&self) -> usize {
        self.n
    }

    /// Amplitude of basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n`.
    #[inline]
    pub fn amplitude(&self, index: usize) -> Complex {
        self.amps[index]
    }

    /// Probability of observing the full basis state `index`.
    pub fn probability_of(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// Probability that measuring qubit `q` yields `1`.
    pub fn probability_one(&self, q: usize) -> f64 {
        assert!(q < self.n, "qubit index out of range");
        let mask = 1usize << q;
        self.amps
            .iter()
            .enumerate()
            .filter(|&(i, _)| i & mask != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Applies a single-qubit gate (2×2 unitary, row-major) to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_single(&mut self, gate: [[Complex; 2]; 2], q: usize) {
        assert!(q < self.n, "qubit index out of range");
        let mask = 1usize << q;
        for i in 0..self.amps.len() {
            if i & mask == 0 {
                let j = i | mask;
                let a0 = self.amps[i];
                let a1 = self.amps[j];
                self.amps[i] = gate[0][0] * a0 + gate[0][1] * a1;
                self.amps[j] = gate[1][0] * a0 + gate[1][1] * a1;
            }
        }
    }

    /// Applies a single-qubit gate to `target`, controlled on `control`.
    ///
    /// # Panics
    ///
    /// Panics if the indices coincide or are out of range.
    pub fn apply_controlled(&mut self, gate: [[Complex; 2]; 2], control: usize, target: usize) {
        assert!(
            control < self.n && target < self.n,
            "qubit index out of range"
        );
        assert_ne!(control, target, "control and target must differ");
        let cmask = 1usize << control;
        let tmask = 1usize << target;
        for i in 0..self.amps.len() {
            if i & cmask != 0 && i & tmask == 0 {
                let j = i | tmask;
                let a0 = self.amps[i];
                let a1 = self.amps[j];
                self.amps[i] = gate[0][0] * a0 + gate[0][1] * a1;
                self.amps[j] = gate[1][0] * a0 + gate[1][1] * a1;
            }
        }
    }

    /// CNOT with the given control and target.
    pub fn apply_cnot(&mut self, control: usize, target: usize) {
        self.apply_controlled(crate::gates::X, control, target);
    }

    /// Controlled-Z (symmetric in its arguments).
    pub fn apply_cz(&mut self, a: usize, b: usize) {
        self.apply_controlled(crate::gates::Z, a, b);
    }

    /// Measures qubit `q` in the computational basis, collapsing the state.
    /// Returns the observed bit.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn measure<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> bool {
        let p1 = self.probability_one(q);
        let outcome = rng.gen_bool(p1.clamp(0.0, 1.0));
        self.collapse(q, outcome);
        outcome
    }

    /// Forces qubit `q` into classical value `bit` (post-selection),
    /// renormalizing.
    ///
    /// # Panics
    ///
    /// Panics if the requested outcome has (numerically) zero probability.
    pub fn collapse(&mut self, q: usize, bit: bool) {
        assert!(q < self.n, "qubit index out of range");
        let mask = 1usize << q;
        let keep = if bit { mask } else { 0 };
        let mut norm_sqr = 0.0;
        for (i, a) in self.amps.iter_mut().enumerate() {
            if i & mask == keep {
                norm_sqr += a.norm_sqr();
            } else {
                *a = Complex::ZERO;
            }
        }
        assert!(
            norm_sqr > 1e-12,
            "collapsing onto a zero-probability branch"
        );
        let scale = 1.0 / norm_sqr.sqrt();
        for a in &mut self.amps {
            *a = a.scale(scale);
        }
    }

    /// Measures every qubit, collapsing to a single basis state. Returns
    /// the observed basis index.
    pub fn measure_all<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        let x: f64 = rng.gen();
        let mut acc = 0.0;
        let mut outcome = self.amps.len() - 1;
        for (i, a) in self.amps.iter().enumerate() {
            acc += a.norm_sqr();
            if x < acc {
                outcome = i;
                break;
            }
        }
        for (i, a) in self.amps.iter_mut().enumerate() {
            *a = if i == outcome {
                Complex::ONE
            } else {
                Complex::ZERO
            };
        }
        outcome
    }

    /// `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the registers have different sizes.
    pub fn inner_product(&self, other: &StateVector) -> Complex {
        assert_eq!(self.n, other.n, "inner product needs equal register sizes");
        let mut acc = Complex::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            acc += a.conj() * *b;
        }
        acc
    }

    /// Fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Expectation value of the tensor product of single-qubit observables
    /// given as 2×2 Hermitian matrices applied at `(qubit, matrix)` pairs
    /// (identity elsewhere). Returns the real part (imaginary part is ~0
    /// for Hermitian inputs).
    pub fn expectation(&self, observables: &[(usize, [[Complex; 2]; 2])]) -> f64 {
        let mut transformed = self.clone();
        for &(q, m) in observables {
            transformed.apply_single(m, q);
        }
        self.inner_product(&transformed).re
    }

    /// Total probability mass (should be 1 up to float error); exposed for
    /// testing invariants.
    pub fn total_probability(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    const EPS: f64 = 1e-12;

    #[test]
    fn zeros_is_normalized_basis_zero() {
        let s = StateVector::zeros(3);
        assert_eq!(s.qubit_count(), 3);
        assert!((s.probability_of(0) - 1.0).abs() < EPS);
        assert!((s.total_probability() - 1.0).abs() < EPS);
    }

    #[test]
    fn x_flips() {
        let mut s = StateVector::zeros(2);
        s.apply_single(gates::X, 1);
        assert!((s.probability_of(0b10) - 1.0).abs() < EPS);
    }

    #[test]
    fn hadamard_superposition_and_inverse() {
        let mut s = StateVector::zeros(1);
        s.apply_single(gates::H, 0);
        assert!((s.probability_of(0) - 0.5).abs() < EPS);
        s.apply_single(gates::H, 0);
        assert!((s.probability_of(0) - 1.0).abs() < EPS);
    }

    #[test]
    fn epr_pair_correlations() {
        let mut s = StateVector::zeros(2);
        s.apply_single(gates::H, 0);
        s.apply_cnot(0, 1);
        assert!((s.probability_of(0b00) - 0.5).abs() < EPS);
        assert!((s.probability_of(0b11) - 0.5).abs() < EPS);
        assert!(s.probability_of(0b01) < EPS);
        // ZZ correlation is +1.
        let zz = s.expectation(&[(0, gates::Z), (1, gates::Z)]);
        assert!((zz - 1.0).abs() < EPS);
    }

    #[test]
    fn measurement_collapses_consistently() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut ones = 0;
        for _ in 0..200 {
            let mut s = StateVector::zeros(2);
            s.apply_single(gates::H, 0);
            s.apply_cnot(0, 1);
            let a = s.measure(0, &mut rng);
            let b = s.measure(1, &mut rng);
            assert_eq!(a, b, "EPR halves must agree");
            ones += usize::from(a);
        }
        assert!(
            ones > 60 && ones < 140,
            "should be roughly balanced, got {ones}"
        );
    }

    #[test]
    fn collapse_renormalizes() {
        let mut s = StateVector::zeros(1);
        s.apply_single(gates::H, 0);
        s.collapse(0, true);
        assert!((s.probability_of(1) - 1.0).abs() < EPS);
    }

    #[test]
    #[should_panic(expected = "zero-probability")]
    fn collapse_on_impossible_branch_panics() {
        let mut s = StateVector::zeros(1);
        s.collapse(0, true);
    }

    #[test]
    fn measure_all_matches_distribution() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut counts = [0usize; 4];
        for _ in 0..400 {
            let mut s = StateVector::zeros(2);
            s.apply_single(gates::H, 0);
            s.apply_single(gates::H, 1);
            counts[s.measure_all(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(c > 50, "uniform over 4 outcomes, got {counts:?}");
        }
    }

    #[test]
    fn controlled_gate_only_acts_when_control_set() {
        let mut s = StateVector::zeros(2);
        s.apply_controlled(gates::X, 0, 1);
        assert!((s.probability_of(0b00) - 1.0).abs() < EPS);
        s.apply_single(gates::X, 0);
        s.apply_controlled(gates::X, 0, 1);
        assert!((s.probability_of(0b11) - 1.0).abs() < EPS);
    }

    #[test]
    fn cz_is_symmetric() {
        let mut a = StateVector::zeros(2);
        a.apply_single(gates::H, 0);
        a.apply_single(gates::H, 1);
        let mut b = a.clone();
        a.apply_cz(0, 1);
        b.apply_cz(1, 0);
        assert!((a.fidelity(&b) - 1.0).abs() < EPS);
    }

    #[test]
    fn from_amplitudes_normalizes() {
        let s = StateVector::from_amplitudes(vec![Complex::real(3.0), Complex::real(4.0)]);
        assert!((s.probability_of(0) - 0.36).abs() < EPS);
        assert!((s.probability_of(1) - 0.64).abs() < EPS);
    }

    #[test]
    fn basis_state_constructor() {
        let s = StateVector::basis(3, 5);
        assert!((s.probability_of(5) - 1.0).abs() < EPS);
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn oversized_register_rejected() {
        StateVector::zeros(MAX_QUBITS + 1);
    }

    #[test]
    fn fidelity_of_orthogonal_states_is_zero() {
        let a = StateVector::basis(2, 0);
        let b = StateVector::basis(2, 3);
        assert!(a.fidelity(&b) < EPS);
        assert!((a.fidelity(&a) - 1.0).abs() < EPS);
    }
}
