//! The quantum communication primitives the paper's proofs invoke.
//!
//! * [`epr_pair`] / [`shared_random_bit`] — entanglement as shared
//!   randomness (paper footnote 2);
//! * [`teleport`] — quantum teleportation, the step in Appendix B that
//!   converts "T qubits to the server" into "2T classical bits to the
//!   server" (with server-provided entanglement);
//! * [`superdense_decode`] / [`superdense_send`] — superdense coding, the
//!   converse primitive (2 classical bits per qubit), which together with
//!   Holevo's theorem motivates the factor-2 bookkeeping throughout.

use crate::gates;
use crate::state::StateVector;
use crate::Complex;
use rand::Rng;

/// Creates a fresh EPR pair `(|00⟩ + |11⟩)/√2` on a 2-qubit register.
pub fn epr_pair() -> StateVector {
    let mut s = StateVector::zeros(2);
    s.apply_single(gates::H, 0);
    s.apply_cnot(0, 1);
    s
}

/// Samples a shared random bit from a fresh EPR pair: both parties measure
/// their half and obtain the *same* uniformly random bit.
pub fn shared_random_bit<R: Rng + ?Sized>(rng: &mut R) -> (bool, bool) {
    let mut s = epr_pair();
    let a = s.measure(0, rng);
    let b = s.measure(1, rng);
    (a, b)
}

/// Prepares the single-qubit state `RY(θ)` then `RZ(φ)` applied to `|0⟩`,
/// as a 1-qubit register. Any pure qubit state arises this way.
pub fn prepare_qubit(theta: f64, phi: f64) -> StateVector {
    let mut s = StateVector::zeros(1);
    s.apply_single(gates::ry(theta), 0);
    s.apply_single(gates::rz(phi), 0);
    s
}

/// Outcome of one run of the teleportation protocol.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TeleportOutcome {
    /// The two classical bits Alice sends to Bob.
    pub classical_bits: (bool, bool),
    /// Fidelity of Bob's received qubit with the original state (1.0 up to
    /// float error — teleportation is exact).
    pub fidelity: f64,
}

/// Teleports the qubit state `prepare_qubit(theta, phi)` from Alice to Bob
/// using one EPR pair and two classical bits.
///
/// Register layout: qubit 0 = Alice's message qubit, qubit 1 = Alice's EPR
/// half, qubit 2 = Bob's EPR half. Returns the classical bits sent and the
/// fidelity of Bob's final qubit with the intended state.
pub fn teleport<R: Rng + ?Sized>(theta: f64, phi: f64, rng: &mut R) -> TeleportOutcome {
    // Prepare |ψ⟩ ⊗ EPR on three qubits.
    let mut s = StateVector::zeros(3);
    s.apply_single(gates::ry(theta), 0);
    s.apply_single(gates::rz(phi), 0);
    s.apply_single(gates::H, 1);
    s.apply_cnot(1, 2);
    // Alice's Bell measurement on qubits 0 and 1.
    s.apply_cnot(0, 1);
    s.apply_single(gates::H, 0);
    let m0 = s.measure(0, rng);
    let m1 = s.measure(1, rng);
    // Bob's Pauli correction on qubit 2.
    if m1 {
        s.apply_single(gates::X, 2);
    }
    if m0 {
        s.apply_single(gates::Z, 2);
    }
    // Compare Bob's qubit with the reference state. Qubits 0 and 1 are
    // classical after measurement, so the 3-qubit state factorizes; the
    // fidelity with |m0 m1⟩ ⊗ |ψ⟩ captures qubit 2 alone.
    let reference = prepare_qubit(theta, phi);
    // Build |m0⟩|m1⟩|ψ⟩: amplitudes of ψ at (q2 = 0, 1) with q0/q1 fixed.
    let base = usize::from(m0) | (usize::from(m1) << 1);
    let mut amps = vec![Complex::ZERO; 8];
    amps[base] = reference.amplitude(0);
    amps[base | 4] = reference.amplitude(1);
    let expected = StateVector::from_amplitudes(amps);
    let fidelity = s.fidelity(&expected);
    TeleportOutcome {
        classical_bits: (m0, m1),
        fidelity,
    }
}

/// Superdense coding, sender side: starting from a shared EPR pair
/// (qubit 0 = Alice, qubit 1 = Bob), Alice encodes two classical bits by a
/// Pauli on her half. Returns the full 2-qubit state "in transit".
pub fn superdense_send(bits: (bool, bool)) -> StateVector {
    let mut s = epr_pair();
    if bits.1 {
        s.apply_single(gates::X, 0);
    }
    if bits.0 {
        s.apply_single(gates::Z, 0);
    }
    s
}

/// Superdense coding, receiver side: Bell-measures the pair and recovers
/// the two encoded classical bits with certainty.
pub fn superdense_decode<R: Rng + ?Sized>(mut s: StateVector, rng: &mut R) -> (bool, bool) {
    s.apply_cnot(0, 1);
    s.apply_single(gates::H, 0);
    let b0 = s.measure(0, rng);
    let b1 = s.measure(1, rng);
    (b0, b1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn shared_random_bits_agree_and_are_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut ones = 0;
        for _ in 0..300 {
            let (a, b) = shared_random_bit(&mut rng);
            assert_eq!(a, b);
            ones += usize::from(a);
        }
        assert!(ones > 100 && ones < 200, "got {ones}");
    }

    #[test]
    fn teleportation_is_exact_for_many_states() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for k in 0..12 {
            let theta = k as f64 * 0.53;
            let phi = k as f64 * 1.13;
            for _ in 0..4 {
                let out = teleport(theta, phi, &mut rng);
                assert!(
                    (out.fidelity - 1.0).abs() < 1e-10,
                    "teleport fidelity {} for θ={theta}, φ={phi}",
                    out.fidelity
                );
            }
        }
    }

    #[test]
    fn teleportation_uses_two_classical_bits_all_four_syndromes_occur() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..100 {
            let out = teleport(1.0, 0.5, &mut rng);
            let idx = usize::from(out.classical_bits.0) * 2 + usize::from(out.classical_bits.1);
            seen[idx] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all Bell syndromes should occur: {seen:?}"
        );
    }

    #[test]
    fn superdense_roundtrip_all_four_messages() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for &bits in &[(false, false), (false, true), (true, false), (true, true)] {
            for _ in 0..5 {
                let in_transit = superdense_send(bits);
                let decoded = superdense_decode(in_transit, &mut rng);
                assert_eq!(decoded, bits);
            }
        }
    }

    #[test]
    fn epr_pair_has_unit_norm() {
        let s = epr_pair();
        assert!((s.total_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prepare_qubit_covers_bloch_sphere_poles() {
        let zero = prepare_qubit(0.0, 0.0);
        assert!((zero.probability_of(0) - 1.0).abs() < 1e-12);
        let one = prepare_qubit(std::f64::consts::PI, 0.0);
        assert!((one.probability_of(1) - 1.0).abs() < 1e-12);
    }
}
