//! Density matrices, partial traces, entropies and the Holevo bound.
//!
//! The paper's "limited sight" discussion (Section 1) rests on Holevo's
//! theorem: entanglement cannot replace communication — `n` qubits convey
//! at most `n` bits of accessible information, so the Ω(D) argument
//! survives prior entanglement. This module makes that quantitative:
//! reduced states via partial trace, von Neumann entropy (in bits), the
//! entanglement entropy of shared states (EPR = exactly 1 ebit), and the
//! Holevo quantity `χ` of qubit ensembles, which never exceeds the number
//! of qubits sent.

use crate::complex::Complex;
use crate::state::StateVector;

/// A density matrix on `n` qubits (`2ⁿ × 2ⁿ`, row-major, Hermitian PSD
/// with unit trace).
#[derive(Clone)]
pub struct DensityMatrix {
    n: usize,
    data: Vec<Complex>,
}

impl std::fmt::Debug for DensityMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DensityMatrix")
            .field("qubits", &self.n)
            .finish()
    }
}

impl DensityMatrix {
    /// The pure-state density matrix `|ψ⟩⟨ψ|`.
    pub fn from_pure(psi: &StateVector) -> Self {
        let n = psi.qubit_count();
        let d = 1usize << n;
        let mut data = vec![Complex::ZERO; d * d];
        for i in 0..d {
            for j in 0..d {
                data[i * d + j] = psi.amplitude(i) * psi.amplitude(j).conj();
            }
        }
        DensityMatrix { n, data }
    }

    /// The maximally mixed state `I/2ⁿ`.
    pub fn maximally_mixed(n: usize) -> Self {
        let d = 1usize << n;
        let mut data = vec![Complex::ZERO; d * d];
        for i in 0..d {
            data[i * d + i] = Complex::real(1.0 / d as f64);
        }
        DensityMatrix { n, data }
    }

    /// A probabilistic mixture of density matrices.
    ///
    /// # Panics
    ///
    /// Panics if the ensemble is empty, dimensions disagree, or the
    /// probabilities do not sum to 1 (tolerance 1e-9).
    pub fn mixture(ensemble: &[(f64, DensityMatrix)]) -> Self {
        assert!(!ensemble.is_empty(), "empty ensemble");
        let n = ensemble[0].1.n;
        let total: f64 = ensemble.iter().map(|(p, _)| p).sum();
        assert!((total - 1.0).abs() < 1e-9, "probabilities must sum to 1");
        let d = 1usize << n;
        let mut data = vec![Complex::ZERO; d * d];
        for (p, rho) in ensemble {
            assert_eq!(rho.n, n, "ensemble dimension mismatch");
            for (acc, &x) in data.iter_mut().zip(&rho.data) {
                *acc += x.scale(*p);
            }
        }
        DensityMatrix { n, data }
    }

    /// Number of qubits.
    pub fn qubit_count(&self) -> usize {
        self.n
    }

    /// Matrix dimension `2ⁿ`.
    pub fn dim(&self) -> usize {
        1 << self.n
    }

    /// Entry `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> Complex {
        self.data[i * self.dim() + j]
    }

    /// Trace (should be 1).
    pub fn trace(&self) -> f64 {
        (0..self.dim()).map(|i| self.get(i, i).re).sum()
    }

    /// Purity `Tr(ρ²)`: 1 for pure states, `1/2ⁿ` for maximally mixed.
    pub fn purity(&self) -> f64 {
        let d = self.dim();
        let mut acc = 0.0;
        for i in 0..d {
            for j in 0..d {
                acc += (self.get(i, j) * self.get(j, i)).re;
            }
        }
        acc
    }

    /// Traces out one qubit, returning the reduced state on the rest
    /// (qubit indices above `qubit` shift down by one).
    ///
    /// # Panics
    ///
    /// Panics if this is a single-qubit state or `qubit` is out of range.
    pub fn partial_trace_out(&self, qubit: usize) -> DensityMatrix {
        assert!(self.n > 1, "cannot trace out the last qubit");
        assert!(qubit < self.n, "qubit index out of range");
        let nd = self.n - 1;
        let dd = 1usize << nd;
        let expand = |idx: usize, bit: usize| -> usize {
            let low = idx & ((1 << qubit) - 1);
            let high = idx >> qubit;
            low | (bit << qubit) | (high << (qubit + 1))
        };
        let mut data = vec![Complex::ZERO; dd * dd];
        for i in 0..dd {
            for j in 0..dd {
                let mut acc = Complex::ZERO;
                for b in 0..2 {
                    acc += self.get(expand(i, b), expand(j, b));
                }
                data[i * dd + j] = acc;
            }
        }
        DensityMatrix { n: nd, data }
    }

    /// Reduces to the given subsystem by tracing out every other qubit.
    ///
    /// # Panics
    ///
    /// Panics if `keep` is empty, has duplicates, or indexes out of range.
    pub fn reduce_to(&self, keep: &[usize]) -> DensityMatrix {
        assert!(!keep.is_empty(), "must keep at least one qubit");
        let mut keep_sorted = keep.to_vec();
        keep_sorted.sort_unstable();
        keep_sorted.dedup();
        assert_eq!(keep_sorted.len(), keep.len(), "duplicate qubit in keep set");
        let mut rho = self.clone();
        // Trace out from the highest index down so lower indices stay
        // stable.
        for q in (0..self.n).rev() {
            if !keep_sorted.contains(&q) {
                rho = rho.partial_trace_out(q);
            }
        }
        rho
    }

    /// Eigenvalues via power iteration with deflation (valid for the PSD
    /// matrices density operators are). Sorted descending; clamped to
    /// `[0, 1]`.
    pub fn eigenvalues(&self) -> Vec<f64> {
        let d = self.dim();
        let mut m = self.data.clone();
        let get = |m: &[Complex], i: usize, j: usize| m[i * d + j];
        let mut eigs = Vec::with_capacity(d);
        let mut remaining = self.trace();
        for k in 0..d {
            if remaining < 1e-12 {
                eigs.push(0.0);
                continue;
            }
            // Deterministic start vector, varied per deflation step.
            let mut v: Vec<Complex> = (0..d)
                .map(|i| {
                    Complex::new(
                        1.0 + ((i + k) % 7) as f64 * 0.13,
                        ((i * 3 + k) % 5) as f64 * 0.07,
                    )
                })
                .collect();
            let mut lambda = 0.0;
            for _ in 0..600 {
                let mut w = vec![Complex::ZERO; d];
                for (i, wi) in w.iter_mut().enumerate() {
                    for (j, &vj) in v.iter().enumerate() {
                        *wi += get(&m, i, j) * vj;
                    }
                }
                let norm: f64 = w.iter().map(|x| x.norm_sqr()).sum::<f64>().sqrt();
                if norm < 1e-14 {
                    lambda = 0.0;
                    break;
                }
                lambda = norm;
                for (x, y) in v.iter_mut().zip(&w) {
                    *x = y.scale(1.0 / norm);
                }
            }
            // Rayleigh quotient for accuracy.
            let mut num = Complex::ZERO;
            for i in 0..d {
                for j in 0..d {
                    num += v[i].conj() * get(&m, i, j) * v[j];
                }
            }
            let lam = num.re.clamp(0.0, 1.0);
            let _ = lambda;
            eigs.push(lam);
            remaining -= lam;
            // Deflate: m ← m − λ·v·vᴴ.
            for i in 0..d {
                for j in 0..d {
                    let outer = v[i] * v[j].conj();
                    m[i * d + j] = m[i * d + j] - outer.scale(lam);
                }
            }
        }
        eigs.sort_by(|a, b| b.total_cmp(a));
        eigs
    }

    /// Von Neumann entropy `S(ρ) = −Σ λ log₂ λ`, in bits.
    pub fn von_neumann_entropy(&self) -> f64 {
        self.eigenvalues()
            .iter()
            .filter(|&&l| l > 1e-12)
            .map(|&l| -l * l.log2())
            .sum()
    }
}

/// Entanglement entropy of a pure state across the cut
/// `keep | complement`: the entropy of the reduced state. For an EPR pair
/// and either single qubit this is exactly 1 ebit.
pub fn entanglement_entropy(psi: &StateVector, keep: &[usize]) -> f64 {
    DensityMatrix::from_pure(psi)
        .reduce_to(keep)
        .von_neumann_entropy()
}

/// The Holevo quantity `χ = S(Σ pᵢ ρᵢ) − Σ pᵢ S(ρᵢ)` of an ensemble:
/// an upper bound on the classical information extractable from the
/// quantum states, and at most the number of qubits — the reason
/// entanglement cannot shortcut the paper's Ω(D) information-travel
/// argument.
pub fn holevo_chi(ensemble: &[(f64, DensityMatrix)]) -> f64 {
    let avg = DensityMatrix::mixture(ensemble);
    let mixed: f64 = ensemble
        .iter()
        .map(|(p, rho)| p * rho.von_neumann_entropy())
        .sum();
    avg.von_neumann_entropy() - mixed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use crate::protocols::{epr_pair, prepare_qubit};

    const EPS: f64 = 1e-6;

    #[test]
    fn pure_state_properties() {
        let psi = prepare_qubit(0.7, 1.3);
        let rho = DensityMatrix::from_pure(&psi);
        assert!((rho.trace() - 1.0).abs() < EPS);
        assert!((rho.purity() - 1.0).abs() < EPS);
        assert!(rho.von_neumann_entropy() < EPS);
    }

    #[test]
    fn maximally_mixed_properties() {
        let rho = DensityMatrix::maximally_mixed(2);
        assert!((rho.trace() - 1.0).abs() < EPS);
        assert!((rho.purity() - 0.25).abs() < EPS);
        assert!((rho.von_neumann_entropy() - 2.0).abs() < EPS);
    }

    #[test]
    fn epr_reduced_state_is_maximally_mixed() {
        let epr = epr_pair();
        let rho = DensityMatrix::from_pure(&epr);
        for q in 0..2 {
            let reduced = rho.partial_trace_out(q);
            assert!((reduced.purity() - 0.5).abs() < EPS, "qubit {q}");
            assert!((reduced.von_neumann_entropy() - 1.0).abs() < EPS);
        }
        assert!((entanglement_entropy(&epr, &[0]) - 1.0).abs() < EPS);
    }

    #[test]
    fn product_state_has_zero_entanglement() {
        let mut psi = StateVector::zeros(2);
        psi.apply_single(gates::H, 0);
        psi.apply_single(gates::ry(0.9), 1);
        assert!(entanglement_entropy(&psi, &[0]) < EPS);
        assert!(entanglement_entropy(&psi, &[1]) < EPS);
    }

    #[test]
    fn ghz_single_qubit_entropy_is_one() {
        let mut ghz = StateVector::zeros(3);
        ghz.apply_single(gates::H, 0);
        ghz.apply_cnot(0, 1);
        ghz.apply_cnot(1, 2);
        for q in 0..3 {
            assert!(
                (entanglement_entropy(&ghz, &[q]) - 1.0).abs() < EPS,
                "qubit {q}"
            );
        }
        // Two-qubit marginal of GHZ also has entropy 1 (classical
        // correlation only).
        assert!((entanglement_entropy(&ghz, &[0, 1]) - 1.0).abs() < EPS);
    }

    #[test]
    fn holevo_of_orthogonal_qubit_ensemble_is_one_bit() {
        let zero = DensityMatrix::from_pure(&StateVector::basis(1, 0));
        let one = DensityMatrix::from_pure(&StateVector::basis(1, 1));
        let chi = holevo_chi(&[(0.5, zero), (0.5, one)]);
        assert!((chi - 1.0).abs() < EPS, "χ = {chi}");
    }

    #[test]
    fn holevo_of_nonorthogonal_ensemble_is_below_one_bit() {
        // {|0⟩, |+⟩} uniform: χ = H₂((1 + 1/√2)/2) ≈ 0.60088.
        let zero = DensityMatrix::from_pure(&StateVector::basis(1, 0));
        let mut plus_state = StateVector::zeros(1);
        plus_state.apply_single(gates::H, 0);
        let plus = DensityMatrix::from_pure(&plus_state);
        let chi = holevo_chi(&[(0.5, zero), (0.5, plus)]);
        let p = (1.0 + std::f64::consts::FRAC_1_SQRT_2) / 2.0;
        let expected = -p * p.log2() - (1.0 - p) * (1.0 - p).log2();
        assert!(
            (chi - expected).abs() < 1e-4,
            "χ = {chi}, expected {expected}"
        );
        assert!(chi < 1.0);
    }

    #[test]
    fn holevo_never_exceeds_qubit_count() {
        // Four states crammed into one qubit still carry ≤ 1 bit: the
        // quantitative form of "entanglement/qubits are not free bits".
        let states = [
            prepare_qubit(0.0, 0.0),
            prepare_qubit(std::f64::consts::PI, 0.0),
            prepare_qubit(std::f64::consts::FRAC_PI_2, 0.0),
            prepare_qubit(std::f64::consts::FRAC_PI_2, std::f64::consts::FRAC_PI_2),
        ];
        let ensemble: Vec<(f64, DensityMatrix)> = states
            .iter()
            .map(|s| (0.25, DensityMatrix::from_pure(s)))
            .collect();
        let chi = holevo_chi(&ensemble);
        assert!(chi <= 1.0 + EPS, "χ = {chi}");
        assert!(chi > 0.5, "the BB84-style ensemble is informative: {chi}");
    }

    #[test]
    fn reduce_to_matches_iterated_partial_trace() {
        let mut psi = StateVector::zeros(3);
        psi.apply_single(gates::H, 0);
        psi.apply_cnot(0, 2);
        psi.apply_single(gates::ry(0.4), 1);
        let rho = DensityMatrix::from_pure(&psi);
        let a = rho.reduce_to(&[0, 2]);
        let b = rho.partial_trace_out(1);
        for i in 0..4 {
            for j in 0..4 {
                assert!((a.get(i, j) - b.get(i, j)).norm() < EPS);
            }
        }
        // Qubits 0 and 2 are maximally entangled with each other.
        assert!((a.purity() - 1.0).abs() < EPS);
    }

    #[test]
    fn eigenvalues_of_known_states() {
        let eigs = DensityMatrix::maximally_mixed(1).eigenvalues();
        assert!((eigs[0] - 0.5).abs() < EPS && (eigs[1] - 0.5).abs() < EPS);
        let pure = DensityMatrix::from_pure(&prepare_qubit(1.0, 2.0));
        let eigs = pure.eigenvalues();
        assert!((eigs[0] - 1.0).abs() < EPS);
        assert!(eigs[1].abs() < EPS);
    }
}
