//! Grover search, the engine behind Example 1.1's quantum advantage.
//!
//! Example 1.1 of the paper: distributed Set Disjointness on `b`-bit inputs
//! held by two nodes at distance `D` has a classical lower bound Ω̃(b) but a
//! quantum protocol with O(√b) communication (Aaronson–Ambainis), hence
//! O(√b·D) rounds — a genuine quantum speedup. The quantum protocol is a
//! distributed Grover search for an index `i` with `x_i = y_i = 1`. This
//! module provides the exact small-scale simulation and the query-count
//! arithmetic used by the Example 1.1 benchmark.

use crate::state::StateVector;
use crate::Complex;
use rand::Rng;

/// Number of Grover iterations maximizing success probability for `marked`
/// out of `n_items` elements: `⌊(π/4)·√(n_items/marked)⌋`, at least 1 when
/// something is marked.
///
/// Returns 0 if `marked == 0` (nothing to find) and panics if
/// `marked > n_items`.
pub fn optimal_iterations(n_items: usize, marked: usize) -> usize {
    assert!(marked <= n_items, "cannot mark more items than exist");
    if marked == 0 {
        return 0;
    }
    let ratio = (n_items as f64 / marked as f64).sqrt();
    let k = (std::f64::consts::FRAC_PI_4 * ratio).floor() as usize;
    k.max(1)
}

/// Closed-form success probability of Grover after `k` iterations with
/// `marked` of `n_items` marked: `sin²((2k+1)·θ)` where `sin θ = √(M/N)`.
pub fn success_probability(n_items: usize, marked: usize, k: usize) -> f64 {
    if marked == 0 {
        return 0.0;
    }
    if marked >= n_items {
        return 1.0;
    }
    let theta = (marked as f64 / n_items as f64).sqrt().asin();
    ((2 * k + 1) as f64 * theta).sin().powi(2)
}

/// An exact Grover run over `2^n_qubits` items.
#[derive(Clone, Debug)]
pub struct Grover {
    n_qubits: usize,
    marked: Vec<bool>,
}

impl Grover {
    /// Creates a search over `2^n_qubits` items with the given marked set.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` exceeds [`crate::MAX_QUBITS`] or a marked index
    /// is out of range.
    pub fn new(n_qubits: usize, marked_indices: &[usize]) -> Self {
        assert!(n_qubits <= crate::MAX_QUBITS, "register too large");
        let n = 1usize << n_qubits;
        let mut marked = vec![false; n];
        for &i in marked_indices {
            assert!(i < n, "marked index {i} out of range for {n} items");
            marked[i] = true;
        }
        Grover { n_qubits, marked }
    }

    /// Number of items searched over.
    pub fn item_count(&self) -> usize {
        1 << self.n_qubits
    }

    /// Number of marked items.
    pub fn marked_count(&self) -> usize {
        self.marked.iter().filter(|&&m| m).count()
    }

    /// Runs `iterations` Grover iterations starting from the uniform
    /// superposition and returns the final state.
    pub fn run(&self, iterations: usize) -> StateVector {
        let n = self.item_count();
        let amp = Complex::real(1.0 / (n as f64).sqrt());
        let mut amps = vec![amp; n];
        for _ in 0..iterations {
            // Oracle: phase-flip marked items.
            for (i, a) in amps.iter_mut().enumerate() {
                if self.marked[i] {
                    *a = -*a;
                }
            }
            // Diffusion: reflect about the mean.
            let mut mean = Complex::ZERO;
            for a in &amps {
                mean += *a;
            }
            mean = mean.scale(1.0 / n as f64);
            for a in &mut amps {
                *a = mean.scale(2.0) - *a;
            }
        }
        StateVector::from_amplitudes(amps)
    }

    /// Probability that measuring after `iterations` yields a marked item.
    pub fn marked_probability(&self, iterations: usize) -> f64 {
        let s = self.run(iterations);
        (0..self.item_count())
            .filter(|&i| self.marked[i])
            .map(|i| s.probability_of(i))
            .sum()
    }

    /// Runs the optimal number of iterations and measures. Returns the
    /// measured index, whether it is marked, and the query count used.
    pub fn search<R: Rng + ?Sized>(&self, rng: &mut R) -> GroverOutcome {
        let k = optimal_iterations(self.item_count(), self.marked_count());
        let mut s = self.run(k);
        let index = s.measure_all(rng);
        GroverOutcome {
            index,
            found_marked: self.marked[index],
            queries: k,
        }
    }
}

/// Result of a measured Grover search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroverOutcome {
    /// The measured basis index.
    pub index: usize,
    /// Whether the measured index was marked.
    pub found_marked: bool,
    /// Oracle queries (Grover iterations) used.
    pub queries: usize,
}

/// Query count of the quantum Disjointness protocol on `b`-bit inputs:
/// `⌈(π/4)·√b⌉` Grover queries (each a round trip between the two input
/// holders). With constant-probability amplification this is the O(√b)
/// communication of Example 1.1.
pub fn disjointness_queries(b: usize) -> usize {
    if b == 0 {
        return 0;
    }
    (std::f64::consts::FRAC_PI_4 * (b as f64).sqrt()).ceil() as usize
}

/// Exact simulated Disjointness decision via Grover: searches for an index
/// with `x_i ∧ y_i`, repeating `repetitions` times to amplify. Returns
/// `true` iff the inputs intersect (i.e. are **not** disjoint), together
/// with the total number of oracle queries spent.
///
/// # Panics
///
/// Panics if the inputs differ in length or the padded length exceeds the
/// simulator cap.
pub fn disjointness_grover<R: Rng + ?Sized>(
    x: &[bool],
    y: &[bool],
    repetitions: usize,
    rng: &mut R,
) -> (bool, usize) {
    assert_eq!(x.len(), y.len(), "inputs must have equal length");
    let b = x.len().max(1);
    let n_qubits = (usize::BITS - (b - 1).leading_zeros()).max(1) as usize;
    let marked: Vec<usize> = (0..x.len()).filter(|&i| x[i] && y[i]).collect();
    let grover = Grover::new(n_qubits, &marked);
    let mut queries = 0;
    for _ in 0..repetitions.max(1) {
        let out = grover.search(rng);
        queries += out.queries;
        // Verify the candidate classically (one extra exchange, O(log b)
        // bits, absorbed in the Õ).
        if out.index < x.len() && x[out.index] && y[out.index] {
            return (true, queries);
        }
    }
    (false, queries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn single_marked_item_found_with_high_probability() {
        let g = Grover::new(8, &[137]);
        let k = optimal_iterations(256, 1);
        let p = g.marked_probability(k);
        assert!(p > 0.99, "success probability {p}");
    }

    #[test]
    fn closed_form_matches_simulation() {
        let g = Grover::new(6, &[3, 17, 40]);
        for k in 0..8 {
            let sim = g.marked_probability(k);
            let formula = success_probability(64, 3, k);
            assert!(
                (sim - formula).abs() < 1e-9,
                "k={k}: sim {sim} vs formula {formula}"
            );
        }
    }

    #[test]
    fn iteration_count_scales_as_sqrt() {
        let k16 = optimal_iterations(16, 1);
        let k64 = optimal_iterations(64, 1);
        let k256 = optimal_iterations(256, 1);
        // Quadrupling items doubles iterations (within floor rounding).
        assert!(k64 >= 2 * k16 - 1 && k64 <= 2 * k16 + 2, "{k16} {k64}");
        assert!(k256 >= 2 * k64 - 1 && k256 <= 2 * k64 + 2, "{k64} {k256}");
    }

    #[test]
    fn no_marked_items_means_zero_iterations_and_probability() {
        assert_eq!(optimal_iterations(64, 0), 0);
        assert_eq!(success_probability(64, 0, 5), 0.0);
        let g = Grover::new(4, &[]);
        assert_eq!(g.marked_probability(3), 0.0);
    }

    #[test]
    fn search_finds_marked_item() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let g = Grover::new(7, &[99]);
        let mut hits = 0;
        for _ in 0..20 {
            let out = g.search(&mut rng);
            if out.found_marked {
                assert_eq!(out.index, 99);
                hits += 1;
            }
        }
        assert!(
            hits >= 18,
            "Grover should almost always succeed, got {hits}/20"
        );
    }

    #[test]
    fn disjointness_grover_detects_intersection() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut x = vec![false; 100];
        let mut y = vec![false; 100];
        x[73] = true;
        y[73] = true;
        x[10] = true; // not matched in y
        let (intersects, queries) = disjointness_grover(&x, &y, 3, &mut rng);
        assert!(intersects);
        assert!(
            queries >= disjointness_queries(100) / 2,
            "queries {queries}"
        );
    }

    #[test]
    fn disjointness_grover_rejects_disjoint_inputs() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let x: Vec<bool> = (0..64).map(|i| i % 2 == 0).collect();
        let y: Vec<bool> = (0..64).map(|i| i % 2 == 1).collect();
        let (intersects, _) = disjointness_grover(&x, &y, 3, &mut rng);
        assert!(!intersects);
    }

    #[test]
    fn disjointness_query_count_is_sqrt_scale() {
        assert_eq!(disjointness_queries(0), 0);
        let q100 = disjointness_queries(100);
        let q10000 = disjointness_queries(10_000);
        assert!((8..=9).contains(&q100), "π/4·10 ≈ 7.85 → 8, got {q100}");
        assert!((q10000 as f64 / q100 as f64 - 10.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn marked_index_out_of_range_rejected() {
        Grover::new(3, &[8]);
    }
}
