//! Standard single-qubit gates as 2×2 row-major matrices.

use crate::complex::Complex;

/// Shorthand for a real matrix entry.
const fn r(x: f64) -> Complex {
    Complex::new(x, 0.0)
}

/// `1/√2`, the Hadamard normalization.
pub const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// Identity.
pub const I: [[Complex; 2]; 2] = [[r(1.0), r(0.0)], [r(0.0), r(1.0)]];

/// Pauli X (bit flip).
pub const X: [[Complex; 2]; 2] = [[r(0.0), r(1.0)], [r(1.0), r(0.0)]];

/// Pauli Y.
pub const Y: [[Complex; 2]; 2] = [
    [Complex::ZERO, Complex::new(0.0, -1.0)],
    [Complex::new(0.0, 1.0), Complex::ZERO],
];

/// Pauli Z (phase flip).
pub const Z: [[Complex; 2]; 2] = [[r(1.0), r(0.0)], [r(0.0), r(-1.0)]];

/// Hadamard.
pub const H: [[Complex; 2]; 2] = [
    [r(FRAC_1_SQRT_2), r(FRAC_1_SQRT_2)],
    [r(FRAC_1_SQRT_2), r(-FRAC_1_SQRT_2)],
];

/// Phase gate S = diag(1, i).
pub const S: [[Complex; 2]; 2] = [[r(1.0), r(0.0)], [Complex::ZERO, Complex::I]];

/// Rotation about the Y axis by angle `theta`:
/// `RY(θ) = [[cos θ/2, −sin θ/2], [sin θ/2, cos θ/2]]`.
pub fn ry(theta: f64) -> [[Complex; 2]; 2] {
    let (s, c) = (theta / 2.0).sin_cos();
    [[r(c), r(-s)], [r(s), r(c)]]
}

/// Rotation about the Z axis by angle `theta` (global-phase-free form):
/// `RZ(θ) = diag(e^{−iθ/2}, e^{iθ/2})`.
pub fn rz(theta: f64) -> [[Complex; 2]; 2] {
    [
        [Complex::from_phase(-theta / 2.0), Complex::ZERO],
        [Complex::ZERO, Complex::from_phase(theta / 2.0)],
    ]
}

/// The ±1-valued observable `cos θ · Z + sin θ · X`, the measurement family
/// used by optimal XOR-game strategies (Appendix B.1).
pub fn rotated_z_observable(theta: f64) -> [[Complex; 2]; 2] {
    let (s, c) = theta.sin_cos();
    [[r(c), r(s)], [r(s), r(-c)]]
}

/// Multiplies two 2×2 complex matrices.
pub fn matmul(a: [[Complex; 2]; 2], b: [[Complex; 2]; 2]) -> [[Complex; 2]; 2] {
    let mut out = [[Complex::ZERO; 2]; 2];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = a[i][0] * b[0][j] + a[i][1] * b[1][j];
        }
    }
    out
}

/// Conjugate transpose of a 2×2 complex matrix.
pub fn dagger(a: [[Complex; 2]; 2]) -> [[Complex; 2]; 2] {
    [
        [a[0][0].conj(), a[1][0].conj()],
        [a[0][1].conj(), a[1][1].conj()],
    ]
}

/// Whether `a` is unitary to tolerance `eps`.
pub fn is_unitary(a: [[Complex; 2]; 2], eps: f64) -> bool {
    let p = matmul(a, dagger(a));
    (p[0][0].re - 1.0).abs() < eps
        && p[0][0].im.abs() < eps
        && (p[1][1].re - 1.0).abs() < eps
        && p[1][1].im.abs() < eps
        && p[0][1].norm() < eps
        && p[1][0].norm() < eps
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn constants_are_unitary() {
        for g in [I, X, Y, Z, H, S] {
            assert!(is_unitary(g, EPS));
        }
    }

    #[test]
    fn rotations_are_unitary() {
        for k in 0..8 {
            let theta = k as f64 * std::f64::consts::PI / 4.0;
            assert!(is_unitary(ry(theta), EPS));
            assert!(is_unitary(rz(theta), EPS));
            assert!(is_unitary(rotated_z_observable(theta), EPS));
        }
    }

    #[test]
    fn pauli_algebra() {
        // X·X = I, Z·Z = I, X·Z = -Z·X.
        let xx = matmul(X, X);
        assert!((xx[0][0].re - 1.0).abs() < EPS && xx[0][1].norm() < EPS);
        let xz = matmul(X, Z);
        let zx = matmul(Z, X);
        for i in 0..2 {
            for j in 0..2 {
                assert!((xz[i][j] + zx[i][j]).norm() < EPS);
            }
        }
    }

    #[test]
    fn rotated_observable_interpolates_pauli_z_and_x() {
        let at0 = rotated_z_observable(0.0);
        let at90 = rotated_z_observable(std::f64::consts::FRAC_PI_2);
        for i in 0..2 {
            for j in 0..2 {
                assert!((at0[i][j] - Z[i][j]).norm() < EPS);
                assert!((at90[i][j] - X[i][j]).norm() < EPS);
            }
        }
    }

    #[test]
    fn hadamard_diagonalizes_x() {
        // H·X·H = Z.
        let hxh = matmul(matmul(H, X), H);
        for i in 0..2 {
            for j in 0..2 {
                assert!((hxh[i][j] - Z[i][j]).norm() < 1e-12);
            }
        }
    }
}
