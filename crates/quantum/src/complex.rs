//! A minimal complex-number type.
//!
//! Kept in-house (rather than pulling in `num-complex`) to stay within the
//! workspace's allowed dependency set; only the operations the simulator
//! needs are provided.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Constructs `re + im·i`.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// A real number as a complex.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn from_phase(theta: f64) -> Self {
        Complex::new(theta.cos(), theta.sin())
    }
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn conj_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.norm(), 5.0);
        assert_eq!((z * z.conj()).re, 25.0);
    }

    #[test]
    fn phase() {
        let z = Complex::from_phase(std::f64::consts::FRAC_PI_2);
        assert!((z.re).abs() < 1e-15);
        assert!((z.im - 1.0).abs() < 1e-15);
    }

    #[test]
    fn constants_and_conversions() {
        assert_eq!(Complex::I * Complex::I, -Complex::ONE);
        assert_eq!(Complex::from(2.5), Complex::new(2.5, 0.0));
        let mut acc = Complex::ZERO;
        acc += Complex::ONE;
        assert_eq!(acc, Complex::ONE);
        assert_eq!(Complex::ONE.scale(3.0).re, 3.0);
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(format!("{:?}", Complex::new(1.0, -2.0)), "1-2i");
        assert_eq!(format!("{}", Complex::new(1.0, 2.0)), "1+2i");
    }
}
