//! Two-player nonlocal games and the Lemma 3.2 abort simulation.
//!
//! Section 6 of the paper derives Server-model lower bounds from nonlocal
//! games: two players receive `(x, y) ~ π`, cannot communicate, output one
//! bit each, and the referee combines the bits with XOR or AND. The bridge
//! (Lemma 3.2) is an *abort* strategy: the players share guessed transcript
//! strings via entanglement and simulate a server-model protocol; with
//! probability `4^{-2c}` (for a `c`-round protocol, teleported into `2c`
//! classical bits per player) the guesses match the real transcript and the
//! simulation outputs the protocol's answer; otherwise the players output
//! noise (XOR games) or reject (AND games).
//!
//! This module implements:
//!
//! * [`XorGame`] with exact **classical bias** by strategy enumeration and
//!   **entangled bias** for measurement-angle strategies on a shared state
//!   (verifying CHSH: classical 1/2 vs Tsirelson √2/2);
//! * the **normal-form server protocol** abstraction and the Lemma 3.2
//!   abort strategy, with Monte-Carlo statistics matching the `4^{-2c}`
//!   closed form.

use crate::gates;
use crate::protocols::epr_pair;
use crate::StateVector;
use rand::Rng;

// ---------------------------------------------------------------------------
// XOR games
// ---------------------------------------------------------------------------

/// A two-player XOR game: inputs `(x, y) ∈ X × Y` drawn from `π`, target
/// boolean function `f`; the players win iff `a ⊕ b = f(x, y)`.
#[derive(Clone, Debug)]
pub struct XorGame {
    x_size: usize,
    y_size: usize,
    /// Row-major `π(x, y)`.
    dist: Vec<f64>,
    /// Row-major `f(x, y)`.
    f: Vec<bool>,
}

impl XorGame {
    /// Creates a game; `dist` and `f` are row-major `x_size × y_size`.
    ///
    /// # Panics
    ///
    /// Panics if the sizes disagree, a probability is negative, or the
    /// distribution does not sum to 1 (tolerance 1e-9).
    pub fn new(x_size: usize, y_size: usize, dist: Vec<f64>, f: Vec<bool>) -> Self {
        assert_eq!(dist.len(), x_size * y_size, "distribution size mismatch");
        assert_eq!(f.len(), x_size * y_size, "function table size mismatch");
        assert!(dist.iter().all(|&p| p >= 0.0), "negative probability");
        let total: f64 = dist.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "distribution must sum to 1, got {total}"
        );
        XorGame {
            x_size,
            y_size,
            dist,
            f,
        }
    }

    /// The CHSH game: uniform inputs over `{0,1}²`, `f(x, y) = x ∧ y`.
    pub fn chsh() -> Self {
        XorGame::new(2, 2, vec![0.25; 4], vec![false, false, false, true])
    }

    /// Number of Alice inputs.
    pub fn x_size(&self) -> usize {
        self.x_size
    }

    /// Number of Bob inputs.
    pub fn y_size(&self) -> usize {
        self.y_size
    }

    /// `π(x, y)`.
    pub fn probability(&self, x: usize, y: usize) -> f64 {
        self.dist[x * self.y_size + y]
    }

    /// `f(x, y)`.
    pub fn target(&self, x: usize, y: usize) -> bool {
        self.f[x * self.y_size + y]
    }

    /// Exact classical bias: the maximum over deterministic strategies
    /// `a : X → {0,1}`, `b : Y → {0,1}` of
    /// `E_{(x,y)~π}[(-1)^{a(x) ⊕ b(y) ⊕ f(x,y)}]`.
    ///
    /// Shared randomness cannot beat the best deterministic strategy
    /// (the bias is linear in the mixture), so this is the classical value.
    /// Enumeration is `O(2^{|X|+|Y|} · |X||Y|)` — fine for the small games
    /// the paper uses.
    ///
    /// # Panics
    ///
    /// Panics if `|X| + |Y| > 24` (enumeration would be unreasonable).
    pub fn classical_bias(&self) -> f64 {
        assert!(
            self.x_size + self.y_size <= 24,
            "game too large to enumerate"
        );
        let mut best = f64::NEG_INFINITY;
        for a in 0u64..(1 << self.x_size) {
            for b in 0u64..(1 << self.y_size) {
                let mut bias = 0.0;
                for x in 0..self.x_size {
                    for y in 0..self.y_size {
                        let out = ((a >> x) & 1 == 1) ^ ((b >> y) & 1 == 1);
                        let sign = if out == self.target(x, y) { 1.0 } else { -1.0 };
                        bias += sign * self.probability(x, y);
                    }
                }
                best = best.max(bias);
            }
        }
        best
    }

    /// Bias of an entangled strategy: players share `strategy.state`
    /// (Alice holds qubit 0, Bob qubit 1) and measure the ±1 observable
    /// `cos θ·Z + sin θ·X` at their input's angle. The bias is
    /// `Σ π(x,y)·(−1)^{f(x,y)}·⟨ψ|A_x ⊗ B_y|ψ⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the strategy's angle tables do not match the game sizes or
    /// the shared state is not on two qubits.
    pub fn entangled_bias(&self, strategy: &EntangledXorStrategy) -> f64 {
        assert_eq!(
            strategy.alice_angles.len(),
            self.x_size,
            "alice angle table size"
        );
        assert_eq!(
            strategy.bob_angles.len(),
            self.y_size,
            "bob angle table size"
        );
        assert_eq!(
            strategy.state.qubit_count(),
            2,
            "strategy state must be 2 qubits"
        );
        let mut bias = 0.0;
        for x in 0..self.x_size {
            for y in 0..self.y_size {
                let corr = strategy.state.expectation(&[
                    (0, gates::rotated_z_observable(strategy.alice_angles[x])),
                    (1, gates::rotated_z_observable(strategy.bob_angles[y])),
                ]);
                let sign = if self.target(x, y) { -1.0 } else { 1.0 };
                bias += self.probability(x, y) * sign * corr;
            }
        }
        bias
    }
}

/// An entangled XOR-game strategy: a shared 2-qubit state plus measurement
/// angles per input.
#[derive(Clone, Debug)]
pub struct EntangledXorStrategy {
    /// Shared state; Alice holds qubit 0, Bob qubit 1.
    pub state: StateVector,
    /// Alice's observable angle for each `x`.
    pub alice_angles: Vec<f64>,
    /// Bob's observable angle for each `y`.
    pub bob_angles: Vec<f64>,
}

/// The optimal CHSH strategy: an EPR pair with Alice measuring at angles
/// `{0, π/2}` and Bob at `{π/4, −π/4}`, achieving Tsirelson's bias `√2/2`.
pub fn chsh_optimal_strategy() -> EntangledXorStrategy {
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};
    EntangledXorStrategy {
        state: epr_pair(),
        alice_angles: vec![0.0, FRAC_PI_2],
        bob_angles: vec![FRAC_PI_4, -FRAC_PI_4],
    }
}

/// Measures the ±1 observable `cos θ·Z + sin θ·X` on one qubit of a
/// state, collapsing it. Returns `true` for the −1 outcome (output bit 1).
///
/// Uses the identity `A(θ) = RY(θ)·Z·RY(θ)†`: rotate by `RY(−θ)`, measure
/// in the computational basis, rotate back.
pub fn measure_rotated<R: Rng + ?Sized>(
    state: &mut StateVector,
    qubit: usize,
    theta: f64,
    rng: &mut R,
) -> bool {
    state.apply_single(gates::ry(-theta), qubit);
    let outcome = state.measure(qubit, rng);
    state.apply_single(gates::ry(theta), qubit);
    outcome
}

/// One *sampled* play of an XOR game with an entangled strategy: the
/// referee draws `(x, y)` from the game distribution, both players measure
/// their half of the shared state, and the play is won iff
/// `a ⊕ b = f(x, y)`. This is the physical experiment behind
/// [`XorGame::entangled_bias`].
pub fn play_xor_game<R: Rng + ?Sized>(
    game: &XorGame,
    strategy: &EntangledXorStrategy,
    rng: &mut R,
) -> bool {
    // Sample (x, y) ~ π.
    let mut u: f64 = rng.gen();
    let mut chosen = (0, 0);
    'outer: for x in 0..game.x_size() {
        for y in 0..game.y_size() {
            u -= game.probability(x, y);
            if u <= 0.0 {
                chosen = (x, y);
                break 'outer;
            }
        }
    }
    let (x, y) = chosen;
    let mut state = strategy.state.clone();
    let a = measure_rotated(&mut state, 0, strategy.alice_angles[x], rng);
    let b = measure_rotated(&mut state, 1, strategy.bob_angles[y], rng);
    (a ^ b) == game.target(x, y)
}

/// Monte-Carlo win rate over `trials` sampled plays. For an entangled
/// strategy with bias `β` the expected win rate is `(1 + β)/2` — for the
/// optimal CHSH strategy, ≈ 0.8536, violating the classical 0.75 bound
/// (a Bell inequality violation, measured).
pub fn empirical_win_rate<R: Rng + ?Sized>(
    game: &XorGame,
    strategy: &EntangledXorStrategy,
    trials: usize,
    rng: &mut R,
) -> f64 {
    let wins = (0..trials)
        .filter(|_| play_xor_game(game, strategy, rng))
        .count();
    wins as f64 / trials as f64
}

// ---------------------------------------------------------------------------
// Normal-form server-model protocols and the Lemma 3.2 abort simulation
// ---------------------------------------------------------------------------

/// One round of received bits in a normal-form protocol:
/// `(Carol's two bits, David's two bits)`.
pub type RoundBits = ((bool, bool), (bool, bool));

/// A deterministic server-model protocol in the normal form Lemma 3.2
/// assumes (after teleportation): in each of `c` rounds Carol sends two
/// classical bits computed from her input and the messages the server has
/// sent her, David symmetrically; the server's messages are a function of
/// everything it has received. Carol holds the output.
///
/// Server messages are modelled as `u64`s — the server talks for free, so
/// their size is unconstrained (Definition 3.1).
pub trait NormalFormProtocol {
    /// Number of communication rounds `c` (Carol and David each send `2c`
    /// bits in total — the teleportation bookkeeping of Appendix B).
    fn rounds(&self) -> usize;

    /// Carol's two bits in round `t`, given her input and the server's
    /// messages to her in rounds `0..t`.
    fn carol_bits(&self, x: &[bool], server_to_carol: &[u64], t: usize) -> (bool, bool);

    /// David's two bits in round `t`.
    fn david_bits(&self, y: &[bool], server_to_david: &[u64], t: usize) -> (bool, bool);

    /// The server's round-`t` messages `(to_carol, to_david)` given all
    /// `(carol, david)` bit pairs received in rounds `0..=t`.
    fn server_messages(&self, received: &[RoundBits], t: usize) -> (u64, u64);

    /// Carol's output after the final round.
    fn carol_output(&self, x: &[bool], server_to_carol: &[u64]) -> bool;
}

/// Runs a normal-form protocol honestly; returns Carol's output.
pub fn run_protocol<P: NormalFormProtocol>(p: &P, x: &[bool], y: &[bool]) -> bool {
    let c = p.rounds();
    let mut to_carol = Vec::with_capacity(c);
    let mut to_david = Vec::with_capacity(c);
    let mut received = Vec::with_capacity(c);
    for t in 0..c {
        let cb = p.carol_bits(x, &to_carol, t);
        let db = p.david_bits(y, &to_david, t);
        received.push((cb, db));
        let (mc, md) = p.server_messages(&received, t);
        to_carol.push(mc);
        to_david.push(md);
    }
    p.carol_output(x, &to_carol)
}

/// What a single abort-game play produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AbortPlay {
    /// Whether both players' guessed transcripts matched (no abort).
    pub survived: bool,
    /// The XOR-game combined output `a ⊕ b`.
    pub xor_output: bool,
    /// The AND-game combined output `a ∧ b`.
    pub and_output: bool,
}

/// One play of the Lemma 3.2 abort strategy.
///
/// Alice, Bob and the *fake server* share guessed transcript strings
/// `a', b'` (each `2c` bits, drawn from shared randomness). The fake server
/// evolves the protocol **as if** the guesses were the real bits; Alice
/// simulates Carol against the fake server's messages and aborts on the
/// first mismatch between Carol's actual bit and the guess; Bob
/// symmetrically. On survival Alice outputs Carol's output and Bob outputs
/// 0 (XOR) / 1 (AND); on abort Alice outputs a random bit (XOR) / 0 (AND).
pub fn abort_play<P: NormalFormProtocol, R: Rng + ?Sized>(
    p: &P,
    x: &[bool],
    y: &[bool],
    rng: &mut R,
) -> AbortPlay {
    let c = p.rounds();
    // Shared guessed strings (in the real protocol these come from
    // entanglement; shared classical randomness has the same distribution).
    let guess_a: Vec<(bool, bool)> = (0..c).map(|_| (rng.gen(), rng.gen())).collect();
    let guess_b: Vec<(bool, bool)> = (0..c).map(|_| (rng.gen(), rng.gen())).collect();

    // The fake server's view: it pretends it received the guesses.
    let mut to_carol = Vec::with_capacity(c);
    let mut to_david = Vec::with_capacity(c);
    let mut received = Vec::with_capacity(c);
    let mut alice_abort = false;
    let mut bob_abort = false;
    for t in 0..c {
        if !alice_abort {
            let cb = p.carol_bits(x, &to_carol, t);
            if cb != guess_a[t] {
                alice_abort = true;
            }
        }
        if !bob_abort {
            let db = p.david_bits(y, &to_david, t);
            if db != guess_b[t] {
                bob_abort = true;
            }
        }
        received.push((guess_a[t], guess_b[t]));
        let (mc, md) = p.server_messages(&received, t);
        to_carol.push(mc);
        to_david.push(md);
    }
    let survived = !alice_abort && !bob_abort;
    let alice_xor = if alice_abort {
        rng.gen()
    } else {
        p.carol_output(x, &to_carol)
    };
    let bob_xor = false; // Bob always outputs 0 in the XOR game on survival.
    let xor_output = if bob_abort {
        rng.gen::<bool>() ^ alice_xor
    } else {
        alice_xor ^ bob_xor
    };
    let alice_and = !alice_abort && p.carol_output(x, &to_carol);
    let bob_and = !bob_abort;
    AbortPlay {
        survived,
        xor_output,
        and_output: alice_and && bob_and,
    }
}

/// Monte-Carlo statistics of the abort strategy over `trials` plays.
#[derive(Clone, Copy, Debug)]
pub struct AbortStats {
    /// Fraction of plays where neither player aborted.
    pub survival_rate: f64,
    /// The Lemma 3.2 closed form `4^{-2c}`.
    pub predicted_survival: f64,
    /// Among surviving plays, fraction whose XOR output equals the honest
    /// protocol output (should be 1.0 for deterministic protocols).
    pub correct_given_survival: f64,
    /// Number of surviving plays.
    pub survivors: usize,
}

/// Runs `trials` abort plays and aggregates statistics against the
/// Lemma 3.2 prediction.
pub fn abort_statistics<P: NormalFormProtocol, R: Rng + ?Sized>(
    p: &P,
    x: &[bool],
    y: &[bool],
    trials: usize,
    rng: &mut R,
) -> AbortStats {
    let honest = run_protocol(p, x, y);
    let mut survivors = 0usize;
    let mut correct = 0usize;
    for _ in 0..trials {
        let play = abort_play(p, x, y, rng);
        if play.survived {
            survivors += 1;
            if play.xor_output == honest {
                correct += 1;
            }
        }
    }
    AbortStats {
        survival_rate: survivors as f64 / trials as f64,
        predicted_survival: 4f64.powi(-2 * p.rounds() as i32),
        correct_given_survival: if survivors == 0 {
            1.0
        } else {
            correct as f64 / survivors as f64
        },
        survivors,
    }
}

/// A concrete normal-form protocol: Carol and David stream their inputs to
/// the server two bits per round; the server echoes everything back; Carol
/// computes `f(x, y) = ⟨x, y⟩ mod 2` at the end. Used to exercise the
/// Lemma 3.2 machinery.
#[derive(Clone, Debug)]
pub struct InnerProductStreaming {
    bits: usize,
}

impl InnerProductStreaming {
    /// A protocol for `bits`-bit inputs (`bits` must be even; two bits per
    /// round).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or odd.
    pub fn new(bits: usize) -> Self {
        assert!(
            bits > 0 && bits.is_multiple_of(2),
            "need a positive even bit count"
        );
        InnerProductStreaming { bits }
    }
}

impl NormalFormProtocol for InnerProductStreaming {
    fn rounds(&self) -> usize {
        self.bits / 2
    }

    fn carol_bits(&self, x: &[bool], _server_to_carol: &[u64], t: usize) -> (bool, bool) {
        (x[2 * t], x[2 * t + 1])
    }

    fn david_bits(&self, y: &[bool], _server_to_david: &[u64], t: usize) -> (bool, bool) {
        (y[2 * t], y[2 * t + 1])
    }

    fn server_messages(&self, received: &[RoundBits], t: usize) -> (u64, u64) {
        // Echo David's latest bits to Carol (packed) and vice versa.
        let ((c0, c1), (d0, d1)) = received[t];
        let to_carol = u64::from(d0) | (u64::from(d1) << 1);
        let to_david = u64::from(c0) | (u64::from(c1) << 1);
        (to_carol, to_david)
    }

    fn carol_output(&self, x: &[bool], server_to_carol: &[u64]) -> bool {
        let mut acc = false;
        for (t, &msg) in server_to_carol.iter().enumerate() {
            let d0 = msg & 1 == 1;
            let d1 = msg & 2 == 2;
            acc ^= x[2 * t] & d0;
            acc ^= x[2 * t + 1] & d1;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    const EPS: f64 = 1e-9;

    #[test]
    fn chsh_classical_bias_is_half() {
        let g = XorGame::chsh();
        assert!((g.classical_bias() - 0.5).abs() < EPS);
    }

    #[test]
    fn chsh_quantum_bias_is_tsirelson() {
        let g = XorGame::chsh();
        let s = chsh_optimal_strategy();
        let bias = g.entangled_bias(&s);
        assert!(
            (bias - std::f64::consts::FRAC_1_SQRT_2).abs() < EPS,
            "CHSH entangled bias {bias}, expected √2/2"
        );
    }

    #[test]
    fn trivial_game_has_bias_one() {
        // f constant: answering the constant wins always.
        let g = XorGame::new(2, 2, vec![0.25; 4], vec![false; 4]);
        assert!((g.classical_bias() - 1.0).abs() < EPS);
    }

    #[test]
    fn non_uniform_distribution_respected() {
        // All mass on (1,1) where f = 1: classical strategies reach bias 1.
        let g = XorGame::new(
            2,
            2,
            vec![0.0, 0.0, 0.0, 1.0],
            vec![false, false, false, true],
        );
        assert!((g.classical_bias() - 1.0).abs() < EPS);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_distribution_rejected() {
        XorGame::new(1, 1, vec![0.5], vec![false]);
    }

    #[test]
    fn inner_product_protocol_is_correct() {
        let p = InnerProductStreaming::new(6);
        let x = vec![true, false, true, true, false, true];
        let y = vec![true, true, false, true, false, true];
        // ⟨x,y⟩ = 1+0+0+1+0+1 = 3 ≡ 1 (mod 2).
        assert!(run_protocol(&p, &x, &y));
        let y2 = vec![true, true, false, true, false, false];
        assert!(!run_protocol(&p, &x, &y2));
    }

    #[test]
    fn abort_survival_matches_four_to_minus_2c() {
        // c = 1 round ⇒ survival 4^{-2} = 1/16.
        let p = InnerProductStreaming::new(2);
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let stats = abort_statistics(&p, &[true, false], &[true, true], 40_000, &mut rng);
        assert!((stats.predicted_survival - 1.0 / 16.0).abs() < EPS);
        assert!(
            (stats.survival_rate - stats.predicted_survival).abs() < 0.01,
            "measured {} vs predicted {}",
            stats.survival_rate,
            stats.predicted_survival
        );
        assert!((stats.correct_given_survival - 1.0).abs() < EPS);
    }

    #[test]
    fn abort_survival_for_two_rounds() {
        // c = 2 rounds ⇒ survival 4^{-4} = 1/256.
        let p = InnerProductStreaming::new(4);
        let mut rng = ChaCha8Rng::seed_from_u64(78);
        let x = vec![true, false, false, true];
        let y = vec![false, true, true, true];
        let stats = abort_statistics(&p, &x, &y, 200_000, &mut rng);
        assert!((stats.predicted_survival - 1.0 / 256.0).abs() < EPS);
        let rel = (stats.survival_rate - stats.predicted_survival).abs() / stats.predicted_survival;
        assert!(
            rel < 0.25,
            "relative error {rel} (measured {})",
            stats.survival_rate
        );
        assert!((stats.correct_given_survival - 1.0).abs() < EPS);
    }

    #[test]
    fn surviving_and_plays_reproduce_protocol_output() {
        let p = InnerProductStreaming::new(2);
        let mut rng = ChaCha8Rng::seed_from_u64(79);
        let x = vec![true, true];
        let y = vec![true, false];
        let honest = run_protocol(&p, &x, &y);
        for _ in 0..5000 {
            let play = abort_play(&p, &x, &y, &mut rng);
            if play.survived {
                assert_eq!(
                    play.and_output, honest,
                    "AND output must equal protocol output on survival"
                );
            } else {
                // In the AND game, any abort forces output 0 from the
                // aborting player, so the AND output can only be true if
                // both survived.
                assert!(!play.and_output || play.survived);
            }
        }
    }

    #[test]
    fn sampled_chsh_violates_bell_inequality() {
        // Measured win rate ≈ (1 + √2/2)/2 ≈ 0.8536, above the classical
        // maximum 3/4 — a Bell violation from actual measurements.
        let game = XorGame::chsh();
        let strategy = chsh_optimal_strategy();
        let mut rng = ChaCha8Rng::seed_from_u64(123);
        let rate = empirical_win_rate(&game, &strategy, 20_000, &mut rng);
        let expected = (1.0 + std::f64::consts::FRAC_1_SQRT_2) / 2.0;
        assert!(
            (rate - expected).abs() < 0.01,
            "measured {rate}, expected {expected}"
        );
        assert!(rate > 0.78, "must beat the classical 0.75 bound: {rate}");
    }

    #[test]
    fn measure_rotated_matches_born_rule() {
        // Measuring A(θ) on |0⟩: P(outcome 1, i.e. −1 eigenvalue) =
        // sin²(θ/2).
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let theta = 1.1;
        let mut ones = 0;
        let trials = 20_000;
        for _ in 0..trials {
            let mut s = StateVector::zeros(1);
            if measure_rotated(&mut s, 0, theta, &mut rng) {
                ones += 1;
            }
        }
        let rate = ones as f64 / trials as f64;
        let expected = (theta / 2.0).sin().powi(2);
        assert!((rate - expected).abs() < 0.01, "{rate} vs {expected}");
    }

    #[test]
    fn game_accessors() {
        let g = XorGame::chsh();
        assert_eq!(g.x_size(), 2);
        assert_eq!(g.y_size(), 2);
        assert!((g.probability(0, 0) - 0.25).abs() < EPS);
        assert!(g.target(1, 1));
        assert!(!g.target(0, 1));
    }
}
