//! Quantum simulation substrate for the `qdc` workspace.
//!
//! The paper (Elkin–Klauck–Nanongkai–Pandurangan, PODC 2014) works in the
//! quantum CONGEST model with shared entanglement, but its proofs only ever
//! *use* a handful of quantum primitives:
//!
//! * **EPR pairs and teleportation** (Appendix B: "using teleportation ...
//!   Carol and David send 2T classical bits to the server instead of T
//!   qubits") — [`protocols::teleport`];
//! * **entanglement as shared randomness** (footnote 2) —
//!   [`protocols::shared_random_bit`];
//! * **nonlocal XOR/AND games** (Section 6, Appendix B.1) — [`games`];
//! * the **O(√b) quantum Disjointness protocol** of Aaronson–Ambainis that
//!   powers Example 1.1, whose engine is **Grover search** — [`grover`];
//! * **density matrices, entanglement entropy and the Holevo bound**
//!   (the quantitative form of "entanglement is not communication",
//!   which keeps the Ω(D) argument alive quantumly) — [`density`].
//!
//! This crate implements all of them exactly on a dense state-vector
//! simulator ([`StateVector`]), capped at [`MAX_QUBITS`] qubits (design
//! decision D3: everything the paper touches needs at most a few qubits;
//! Grover demos run at 8–16).
//!
//! # Example
//!
//! ```
//! use qdc_quantum::{StateVector, gates};
//!
//! // Build an EPR pair and check perfect correlation.
//! let mut psi = StateVector::zeros(2);
//! psi.apply_single(gates::H, 0);
//! psi.apply_cnot(0, 1);
//! assert!((psi.probability_of(0b00) - 0.5).abs() < 1e-12);
//! assert!((psi.probability_of(0b11) - 0.5).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
mod state;

pub mod density;
pub mod games;
pub mod gates;
pub mod grover;
pub mod protocols;

pub use complex::Complex;
pub use state::{StateVector, MAX_QUBITS};
