//! A synchronous CONGEST(B) network simulator.
//!
//! The paper's model (Section 2.1 / Appendix A.1): a synchronous network
//! of `n` processors on an undirected graph; per round, each node may send
//! one message of at most `B` bits (classical) or `B` qubits (quantum)
//! through each incident edge; internal computation is free; the cost
//! measure is the number of rounds. This crate implements that model as a
//! deterministic lockstep simulator with **bit-exact congestion
//! accounting** (design decision D1 in DESIGN.md): every message carries
//! its exact bit length, oversized sends panic, and the run report records
//! rounds, messages and bits/qubits per direction.
//!
//! The simulator is generic over the node algorithm type (no trait
//! objects), so distributed algorithms read like ordinary Rust state
//! machines. See `qdc-algos` for BFS, leader election, MST, and the
//! verification algorithms built on top.
//!
//! The model the paper analyzes is fault-free; the simulator also
//! supports deterministic, seeded **fault injection** for robustness
//! work ([`ChaosConfig`] / [`FaultPlan`] / [`Simulator::try_run`]):
//! message drops, crash-stop failures, and payload corruption, replayed
//! byte-exactly per seed, with structured [`SimError`]s instead of
//! panics on discipline violations.
//!
//! Round-level **observability** is opt-in via the [`telemetry`] module:
//! a [`Telemetry`] sink watches every round of an observed run
//! ([`Simulator::try_run_observed`] and friends) without perturbing it,
//! and [`RoundProfiler`] folds the event stream into a serializable
//! [`TelemetryReport`]. The default [`NullTelemetry`] sink compiles the
//! instrumentation away entirely. For runs whose length dwarfs memory,
//! the [`stream`] module offers [`StreamSink`]: an O(1)-state sink that
//! emits each round as `qdc-telemetry-stream/v1` JSONL the moment it
//! commits, keeping only mergeable aggregates (running totals, a fixed
//! utilisation histogram, and deterministic top-K sketches) in memory.
//!
//! # Example
//!
//! ```
//! use qdc_congest::{CongestConfig, Inbox, Message, NodeInfo, Outbox, Simulator, NodeAlgorithm};
//! use qdc_graph::Graph;
//!
//! /// Each node floods a token once and terminates.
//! struct Flood { seen: bool }
//!
//! impl NodeAlgorithm for Flood {
//!     fn on_start(&mut self, info: &NodeInfo, out: &mut Outbox) {
//!         if info.id.0 == 0 {
//!             self.seen = true;
//!             out.broadcast(Message::from_bit(true));
//!         }
//!     }
//!     fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
//!         if !self.seen && !inbox.is_empty() {
//!             self.seen = true;
//!             out.broadcast(Message::from_bit(true));
//!         }
//!     }
//!     fn is_terminated(&self) -> bool { self.seen }
//! }
//!
//! let g = Graph::path(4);
//! let sim = Simulator::new(&g, CongestConfig::classical(8));
//! let (nodes, report) = sim.run(|_| Flood { seen: false }, 100);
//! assert!(report.completed);
//! assert!(nodes.iter().all(|n| n.seen));
//! // Distance 3 to the far end, plus one round draining the last
//! // rebroadcast (the run ends at quiescence: all nodes terminated and
//! // no messages in flight).
//! assert_eq!(report.rounds, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bits;
mod chaos;
mod jsonl;
mod message;
mod sim;
mod trace_io;

pub mod stream;
pub mod telemetry;
pub mod topology;

pub use bits::{BitReader, BitString};
pub use chaos::{ChaosConfig, FaultAction, FaultPlan, FaultStats};
pub use message::Message;
pub use sim::{
    ChannelKind, CongestConfig, Inbox, NodeAlgorithm, NodeInfo, Outbox, RunMetrics, RunOptions,
    RunReport, SimError, Simulator, StepSummary, Stepper, TracedMessage, TrafficTrace,
    WatchdogReport,
};
pub use stream::{
    read_aggregate, StreamAggregate, StreamHeader, StreamReader, StreamRecord, StreamSink,
    StreamTotals, TopEntry, TopK, STREAM_FLUSH_BYTES, STREAM_SCHEMA,
};
pub use telemetry::{
    EdgeTotals, NodeClass, NodeTotals, NullTelemetry, QubitSplit, RoundProfile, RoundProfiler,
    Telemetry, TelemetryParseError, TelemetryReport, TELEMETRY_SCHEMA,
};
pub use trace_io::{TraceParseError, TRACE_SCHEMA};
