//! Streaming telemetry: O(1)-memory sinks, mergeable sketches, and the
//! `qdc-telemetry-stream/v1` archive format.
//!
//! [`RoundProfiler`](crate::RoundProfiler) buffers the full per-round /
//! per-node / per-edge series — exact, but its memory grows linearly
//! with run length and network size. This module is the bounded-memory
//! counterpart for long-horizon runs and resident services:
//! [`StreamSink`] implements [`Telemetry`] with **O(1) state per
//! metric** — a fixed five-bucket B-utilisation histogram, running
//! scalar totals, and two fixed-capacity [`TopK`] trackers
//! (space-saving style, integer-only) for the hottest edges and nodes —
//! and emits each round's record the moment the round commits, as one
//! strict JSONL line pushed through a windowed flush buffer. Nothing is
//! ever buffered for the whole run: memory is independent of round
//! count.
//!
//! The archive grammar deliberately shares its round-line with
//! `qdc-telemetry/v1` (both formats are written and parsed by the same
//! helpers), so existing round-level tooling reads either:
//!
//! ```text
//! {"schema":"qdc-telemetry-stream/v1","nodes":N,"edges":E,"bandwidth":B,"classified":0|1,"top_k":K}
//! {"round":1,"messages":..,"bits":..,...,"util":[..],"split":[..]}
//! ...one line per round...
//! {"totals":{"rounds":R,...,"util":[..],"split":[..]},"top_edges":[[i,bits,msgs,err],..],"top_nodes":[..]}
//! ```
//!
//! Every piece of aggregate state is **mergeable**: [`StreamAggregate`]
//! (and [`TopK`] / [`StreamTotals`] underneath) carries a `merge`
//! operation so shard-parallel and multi-point runs compose. The merge
//! laws (DESIGN.md §4g): counters and histograms merge by `+`
//! (associative and commutative); `nodes`/`edges`/`top_k` merge by
//! `max`; `classified` by logical AND; `bandwidth` by "equal or poison"
//! (differing budgets merge to 0, and 0 absorbs). Top-K sketches merge
//! by per-key summation followed by the canonical (bits desc, index
//! asc) cut — always commutative, and **exact** (associative, equal to
//! the unbounded ranking) whenever the capacity is at least the number
//! of distinct keys observed. The engine emits telemetry events from
//! the single-threaded delivery phase, so a `StreamSink`'s bytes are
//! identical at every `--sim-threads` count by construction.
//!
//! Reading side: [`StreamReader`] is an incremental parser over any
//! [`BufRead`] — one line in memory at a time, strict to the byte, and
//! it cross-checks the footer's totals against the sum of the round
//! lines it saw, so a truncated or tampered archive cannot slip through.

use crate::jsonl::Cursor;
use crate::telemetry::{
    parse_flag, parse_round_line, write_round_line, NodeClass, QubitSplit, RoundProfile, Telemetry,
    TelemetryParseError,
};
use qdc_graph::{EdgeId, NodeId};
use std::fmt::Write as _;
use std::io::{BufRead, Write};
use std::time::Instant;

/// The schema tag on the header line of a `qdc-telemetry-stream/v1`
/// archive.
pub const STREAM_SCHEMA: &str = "qdc-telemetry-stream/v1";

/// Flush window of a [`StreamSink`]: buffered bytes are pushed to the
/// writer whenever the pending buffer reaches this size (and always at
/// [`finish`](StreamSink::finish)).
pub const STREAM_FLUSH_BYTES: usize = 32 * 1024;

/// The header line of a stream archive: the observed network's fixed
/// facts plus the sketch capacity. Unlike `qdc-telemetry/v1`, the
/// header carries no round count — a streaming writer does not know it
/// up front; the footer carries it instead.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamHeader {
    /// Node count of the observed network.
    pub nodes: usize,
    /// Edge count of the observed network.
    pub edges: usize,
    /// The CONGEST budget `B` the utilisation histogram is scaled by.
    pub bandwidth: usize,
    /// Whether a [`NodeClass`] classification was installed (when
    /// `false`, every split field is zero by construction).
    pub classified: bool,
    /// Capacity of the top-K sketches (and upper bound on the footer's
    /// `top_edges` / `top_nodes` lengths).
    pub top_k: usize,
}

/// Running totals over every committed round — the O(1) replacement for
/// the full [`RoundProfile`](crate::RoundProfile) series. All fields
/// merge by `+`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamTotals {
    /// Rounds committed.
    pub rounds: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Payload bits delivered.
    pub bits: u64,
    /// Messages the fault layer removed.
    pub dropped: u64,
    /// Payload bits flipped or truncated away.
    pub corrupted_bits: u64,
    /// Crash-stops that activated.
    pub crashes: u64,
    /// Rounds whose quiescence check came back positive (0 or 1 for a
    /// single run; sums across merged runs).
    pub quiescent: u64,
    /// Cumulative edge-utilisation histogram (same bucket semantics as
    /// [`RoundProfile::util`](crate::RoundProfile::util), summed over
    /// rounds).
    pub util: [u64; 5],
    /// Bits delivered between two [`NodeClass::Path`] nodes.
    pub path_bits: u64,
    /// Bits delivered between two [`NodeClass::Highway`] nodes.
    pub highway_bits: u64,
    /// Bits delivered on edges joining the two classes.
    pub cross_bits: u64,
    /// Cumulative classical/qubit split — `Some` only when the sink ran
    /// in quantum mode ([`StreamSink::with_quantum`]), omitted from the
    /// footer otherwise. Merges as a componentwise `+` with `None` as
    /// the identity.
    pub qsplit: Option<QubitSplit>,
}

impl StreamTotals {
    /// Folds one committed round into the totals.
    pub fn absorb(&mut self, r: &RoundProfile) {
        self.rounds += 1;
        self.messages += r.messages;
        self.bits += r.bits;
        self.dropped += r.dropped;
        self.corrupted_bits += r.corrupted_bits;
        self.crashes += r.crashes;
        self.quiescent += u64::from(r.quiescent);
        for (slot, add) in self.util.iter_mut().zip(r.util) {
            *slot += add;
        }
        self.path_bits += r.path_bits;
        self.highway_bits += r.highway_bits;
        self.cross_bits += r.cross_bits;
        if let Some(q) = r.qsplit {
            let t = self.qsplit.get_or_insert_with(QubitSplit::default);
            t.classical_bits += q.classical_bits;
            t.qubit_bits += q.qubit_bits;
        }
    }

    /// Sums `other` into `self` — associative and commutative (every
    /// field is a `+`-fold, with `None` as the `qsplit` identity).
    pub fn merge(&mut self, other: &StreamTotals) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.bits += other.bits;
        self.dropped += other.dropped;
        self.corrupted_bits += other.corrupted_bits;
        self.crashes += other.crashes;
        self.quiescent += other.quiescent;
        for (slot, add) in self.util.iter_mut().zip(other.util) {
            *slot += add;
        }
        self.path_bits += other.path_bits;
        self.highway_bits += other.highway_bits;
        self.cross_bits += other.cross_bits;
        if let Some(q) = other.qsplit {
            let t = self.qsplit.get_or_insert_with(QubitSplit::default);
            t.classical_bits += q.classical_bits;
            t.qubit_bits += q.qubit_bits;
        }
    }
}

/// One entry of a [`TopK`] sketch: a key (edge or node index) with its
/// tracked weight and the sketch's overestimation bound for it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TopEntry {
    /// The tracked edge or node index.
    pub index: usize,
    /// Tracked payload bits (the ranking weight). May overestimate the
    /// true total by at most `err`.
    pub bits: u64,
    /// Messages observed since the key (re-)entered the sketch.
    pub messages: u64,
    /// Overestimation bound inherited at (re-)insertion: `bits - err`
    /// is a certain lower bound on the key's true bit total. Zero
    /// whenever the sketch never evicted, i.e. the exact regime.
    pub err: u64,
}

/// A deterministic space-saving sketch of the `k` heaviest keys by
/// delivered bits.
///
/// Integer-only and fully deterministic: the ranking orders by (bits
/// desc, index asc) — the exact contract of
/// [`TelemetryReport::hottest_edges`](crate::TelemetryReport::hottest_edges)
/// — and eviction removes the (bits asc, index desc) minimum, so ties
/// always favour the lower index. With capacity ≥ distinct keys the
/// sketch never evicts and is exact (`err == 0` everywhere).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TopK {
    cap: usize,
    entries: Vec<TopEntry>,
}

impl TopK {
    /// An empty sketch holding at most `cap` keys.
    pub fn new(cap: usize) -> TopK {
        TopK {
            cap,
            entries: Vec::with_capacity(cap),
        }
    }

    /// The sketch capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Observes `bits` payload bits (in `messages` messages) on `index`.
    pub fn observe(&mut self, index: usize, bits: u64, messages: u64) {
        if self.cap == 0 {
            return;
        }
        if let Some(e) = self.entries.iter_mut().find(|e| e.index == index) {
            e.bits += bits;
            e.messages += messages;
            return;
        }
        if self.entries.len() < self.cap {
            self.entries.push(TopEntry {
                index,
                bits,
                messages,
                err: 0,
            });
            return;
        }
        // Space-saving eviction: replace the minimum-weight entry (ties
        // evict the higher index, so lower indexes survive) and charge
        // its weight to the newcomer as the overestimation bound.
        let pos = self
            .entries
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.bits.cmp(&b.bits).then(b.index.cmp(&a.index)))
            .map(|(i, _)| i)
            .expect("capacity > 0 implies entries");
        let floor = self.entries[pos].bits;
        self.entries[pos] = TopEntry {
            index,
            bits: floor + bits,
            messages,
            err: floor,
        };
    }

    /// The entries in canonical rank order: bits descending, ties by
    /// ascending index.
    pub fn ranked(&self) -> Vec<TopEntry> {
        let mut out = self.entries.clone();
        out.sort_by(|a, b| b.bits.cmp(&a.bits).then(a.index.cmp(&b.index)));
        out
    }

    /// Merges `other` into `self`: per-key sums of bits, messages and
    /// error bounds, then the canonical (bits desc, index asc) cut at
    /// the larger of the two capacities. Always commutative; exact (and
    /// associative) when the union of distinct keys fits the capacity.
    pub fn merge(&mut self, other: &TopK) {
        self.cap = self.cap.max(other.cap);
        for e in &other.entries {
            if let Some(m) = self.entries.iter_mut().find(|m| m.index == e.index) {
                m.bits += e.bits;
                m.messages += e.messages;
                m.err += e.err;
            } else {
                self.entries.push(*e);
            }
        }
        self.entries
            .sort_by(|a, b| b.bits.cmp(&a.bits).then(a.index.cmp(&b.index)));
        self.entries.truncate(self.cap);
    }

    /// Rebuilds a sketch from ranked entries (a parsed footer array).
    fn from_ranked(cap: usize, entries: Vec<TopEntry>) -> TopK {
        TopK { cap, entries }
    }

    /// Puts the internal entry order into canonical rank order, so two
    /// sketches holding the same multiset compare equal (observation
    /// inserts in arrival order; parsed footers are already canonical).
    fn canonicalize(&mut self) {
        self.entries
            .sort_by(|a, b| b.bits.cmp(&a.bits).then(a.index.cmp(&b.index)));
    }
}

/// The complete O(1) aggregate state of one streamed run (or a merge of
/// several): the header facts, the running totals, and the two top-K
/// sketches. This is both what [`StreamSink::finish`] returns and what
/// the footer line serializes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StreamAggregate {
    /// The header facts (network shape, budget, sketch capacity).
    pub header: StreamHeader,
    /// Running totals over every round.
    pub totals: StreamTotals,
    /// The hottest edges by delivered bits.
    pub top_edges: TopK,
    /// The hottest nodes by touched bits (sent + received).
    pub top_nodes: TopK,
}

impl StreamAggregate {
    /// An empty aggregate for a network of `nodes`/`edges` under budget
    /// `bandwidth_bits`, with `top_k`-capacity sketches.
    pub fn new(nodes: usize, edges: usize, bandwidth_bits: usize, top_k: usize) -> StreamAggregate {
        StreamAggregate {
            header: StreamHeader {
                nodes,
                edges,
                bandwidth: bandwidth_bits,
                classified: false,
                top_k,
            },
            totals: StreamTotals::default(),
            top_edges: TopK::new(top_k),
            top_nodes: TopK::new(top_k),
        }
    }

    /// Merges `other` into `self` under the documented merge laws:
    /// totals by `+`, sketches by per-key sum and canonical cut,
    /// `nodes`/`edges`/`top_k` by `max`, `classified` by AND, and
    /// `bandwidth` by "equal or poison" (mixed budgets merge to 0, and
    /// 0 absorbs — a zero budget marks a composite of unlike runs).
    /// Commutative always; associative on the exact regime.
    pub fn merge(&mut self, other: &StreamAggregate) {
        self.header.nodes = self.header.nodes.max(other.header.nodes);
        self.header.edges = self.header.edges.max(other.header.edges);
        self.header.top_k = self.header.top_k.max(other.header.top_k);
        self.header.classified = self.header.classified && other.header.classified;
        if self.header.bandwidth != other.header.bandwidth {
            self.header.bandwidth = 0;
        }
        self.totals.merge(&other.totals);
        self.top_edges.merge(&other.top_edges);
        self.top_nodes.merge(&other.top_nodes);
    }

    /// Serializes the header line (with trailing newline).
    pub fn header_jsonl(&self) -> String {
        let mut out = String::new();
        write_header_line(&mut out, &self.header);
        out
    }

    /// Serializes the footer line (with trailing newline): the totals
    /// object plus both sketches in canonical rank order.
    pub fn footer_jsonl(&self) -> String {
        let mut out = String::new();
        write_footer_line(&mut out, self);
        out
    }
}

fn write_header_line(out: &mut String, h: &StreamHeader) {
    let _ = writeln!(
        out,
        "{{\"schema\":\"{STREAM_SCHEMA}\",\"nodes\":{},\"edges\":{},\"bandwidth\":{},\"classified\":{},\"top_k\":{}}}",
        h.nodes,
        h.edges,
        h.bandwidth,
        u8::from(h.classified),
        h.top_k
    );
}

fn write_top_array(out: &mut String, top: &TopK) {
    out.push('[');
    for (i, e) in top.ranked().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{},{},{},{}]", e.index, e.bits, e.messages, e.err);
    }
    out.push(']');
}

fn write_footer_line(out: &mut String, agg: &StreamAggregate) {
    let t = &agg.totals;
    let _ = write!(
        out,
        "{{\"totals\":{{\"rounds\":{},\"messages\":{},\"bits\":{},\"dropped\":{},\"corrupted\":{},\"crashes\":{},\"quiescent\":{},\"util\":[{},{},{},{},{}],\"split\":[{},{},{}]",
        t.rounds,
        t.messages,
        t.bits,
        t.dropped,
        t.corrupted_bits,
        t.crashes,
        t.quiescent,
        t.util[0],
        t.util[1],
        t.util[2],
        t.util[3],
        t.util[4],
        t.path_bits,
        t.highway_bits,
        t.cross_bits,
    );
    if let Some(q) = t.qsplit {
        let _ = write!(out, ",\"qsplit\":[{},{}]", q.classical_bits, q.qubit_bits);
    }
    out.push_str("},\"top_edges\":");
    write_top_array(out, &agg.top_edges);
    out.push_str(",\"top_nodes\":");
    write_top_array(out, &agg.top_nodes);
    out.push_str("}\n");
}

/// The O(1)-memory streaming telemetry sink.
///
/// Construct with the observed network's dimensions, optionally install
/// a [`NodeClass`] vector ([`with_classes`](StreamSink::with_classes))
/// and wall-clock sampling ([`with_wall`](StreamSink::with_wall)),
/// drive an observed run, then call [`finish`](StreamSink::finish) —
/// which writes the footer, flushes, and returns the
/// [`StreamAggregate`].
///
/// Writing is incremental: the header goes out when the first round
/// opens, each round's line is appended the moment
/// [`on_round_end`](Telemetry::on_round_end) commits it, and the
/// pending buffer is pushed to the writer whenever it reaches the flush
/// window. A write error is latched and re-raised by `finish` (the
/// [`Telemetry`] methods cannot fail); after an error the sink stops
/// formatting output but keeps folding aggregates.
#[derive(Debug)]
pub struct StreamSink<W: Write> {
    out: W,
    buf: String,
    flush_bytes: usize,
    with_wall: bool,
    header_written: bool,
    classes: Option<Vec<NodeClass>>,
    /// Quantum accounting mode, mirroring
    /// [`RoundProfiler::with_quantum`](crate::RoundProfiler::with_quantum):
    /// `Some(teleport)` makes every round line carry a `qsplit`.
    quantum: Option<bool>,
    scratch: RoundProfile,
    agg: StreamAggregate,
    span_open: Option<Instant>,
    io_error: Option<std::io::Error>,
}

impl<W: Write> StreamSink<W> {
    /// A sink for a network of `nodes` nodes and `edges` edges under
    /// CONGEST budget `bandwidth_bits`, tracking the `top_k` hottest
    /// edges and nodes, writing the archive to `out`.
    pub fn new(out: W, nodes: usize, edges: usize, bandwidth_bits: usize, top_k: usize) -> Self {
        StreamSink {
            out,
            buf: String::new(),
            flush_bytes: STREAM_FLUSH_BYTES,
            with_wall: false,
            header_written: false,
            classes: None,
            quantum: None,
            scratch: RoundProfile::default(),
            agg: StreamAggregate::new(nodes, edges, bandwidth_bits, top_k),
            span_open: None,
            io_error: None,
        }
    }

    /// Installs a node classification (index = node id), enabling the
    /// per-round path/highway/cross traffic split.
    ///
    /// # Panics
    ///
    /// Panics if `classes.len()` differs from the node count, or if the
    /// header already went out (the run started).
    pub fn with_classes(mut self, classes: Vec<NodeClass>) -> Self {
        assert!(!self.header_written, "classification must precede the run");
        assert_eq!(
            classes.len(),
            self.agg.header.nodes,
            "classification must cover every node"
        );
        self.agg.header.classified = true;
        self.classes = Some(classes);
        self
    }

    /// Switches the sink into quantum accounting, mirroring
    /// [`RoundProfiler::with_quantum`](crate::RoundProfiler::with_quantum):
    /// every round line (and the footer totals) carries a `qsplit`
    /// where delivered payload counts as qubits, and with `teleport`
    /// each qubit additionally charges the 2 classical bits of its
    /// teleportation (Appendix B). Leave off for classical channels so
    /// the archive stays byte-identical to the pre-quantum grammar.
    pub fn with_quantum(mut self, teleport: bool) -> Self {
        self.quantum = Some(teleport);
        self
    }

    /// Enables the volatile `wall_ns` field on round lines. Off by
    /// default — the deterministic, byte-identical form.
    pub fn with_wall(mut self, with_wall: bool) -> Self {
        self.with_wall = with_wall;
        self
    }

    /// Overrides the flush window (bytes of pending output buffered
    /// between writes). Mostly a testing aid; [`STREAM_FLUSH_BYTES`] is
    /// the default.
    pub fn with_flush_window(mut self, bytes: usize) -> Self {
        self.flush_bytes = bytes.max(1);
        self
    }

    fn ensure_header(&mut self) {
        if !self.header_written {
            self.header_written = true;
            write_header_line(&mut self.buf, &self.agg.header);
        }
    }

    fn flush_buf(&mut self) {
        if self.io_error.is_some() {
            self.buf.clear();
            return;
        }
        if let Err(e) = self.out.write_all(self.buf.as_bytes()) {
            self.io_error = Some(e);
        }
        self.buf.clear();
    }

    /// Writes the footer, flushes everything, and returns the final
    /// aggregate state — or the first write error the run hit.
    pub fn finish(mut self) -> std::io::Result<StreamAggregate> {
        self.ensure_header();
        self.agg.top_edges.canonicalize();
        self.agg.top_nodes.canonicalize();
        if self.io_error.is_none() {
            write_footer_line(&mut self.buf, &self.agg);
        }
        self.flush_buf();
        if let Some(e) = self.io_error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.agg)
    }
}

impl<W: Write> Telemetry for StreamSink<W> {
    fn on_round_start(&mut self, round: usize) {
        self.ensure_header();
        self.scratch = RoundProfile {
            round,
            qsplit: self.quantum.map(|_| QubitSplit::default()),
            ..RoundProfile::default()
        };
        if self.with_wall {
            self.span_open = Some(Instant::now());
        }
    }

    fn on_delivery(&mut self, _round: usize, edge: EdgeId, from: NodeId, to: NodeId, bits: usize) {
        let bits64 = bits as u64;
        let p = &mut self.scratch;
        p.messages += 1;
        p.bits += bits64;
        p.util[crate::telemetry::util_bucket(bits, self.agg.header.bandwidth)] += 1;
        if let Some(teleport) = self.quantum {
            let q = p.qsplit.get_or_insert_with(QubitSplit::default);
            q.qubit_bits += bits64;
            if teleport {
                q.classical_bits += 2 * bits64;
            }
        }
        if let Some(classes) = &self.classes {
            match (classes[from.index()], classes[to.index()]) {
                (NodeClass::Path, NodeClass::Path) => p.path_bits += bits64,
                (NodeClass::Highway, NodeClass::Highway) => p.highway_bits += bits64,
                _ => p.cross_bits += bits64,
            }
        }
        self.agg.top_edges.observe(edge.index(), bits64, 1);
        self.agg.top_nodes.observe(from.index(), bits64, 1);
        self.agg.top_nodes.observe(to.index(), bits64, 1);
    }

    fn on_chaos_drop(&mut self, _round: usize, _edge: EdgeId, _from: NodeId, _to: NodeId) {
        self.scratch.dropped += 1;
    }

    fn on_chaos_corrupt(
        &mut self,
        _round: usize,
        _edge: EdgeId,
        _from: NodeId,
        _to: NodeId,
        bits_lost: u64,
    ) {
        self.scratch.corrupted_bits += bits_lost;
    }

    fn on_crash(&mut self, _round: usize, _node: NodeId) {
        self.scratch.crashes += 1;
    }

    fn on_round_end(&mut self, round: usize, quiescent: bool, live_slots: u64) {
        debug_assert_eq!(self.scratch.round, round, "round spans nest properly");
        let p = &mut self.scratch;
        p.quiescent = quiescent;
        // Same idle accounting as RoundProfiler: live capacity minus
        // delivered messages; crashed capacity is dead, not idle.
        p.util[0] = live_slots.saturating_sub(p.messages);
        p.wall_ns = self
            .span_open
            .take()
            .map_or(0, |t| t.elapsed().as_nanos() as u64);
        self.agg.totals.absorb(p);
        if self.io_error.is_none() {
            write_round_line(&mut self.buf, &self.scratch, self.with_wall);
            if self.buf.len() >= self.flush_bytes {
                self.flush_buf();
            }
        }
    }
}

/// One record of a stream archive, in file order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamRecord {
    /// The header line (always first).
    Header(StreamHeader),
    /// One committed round.
    Round(RoundProfile),
    /// The footer line (always last): the run's aggregate state.
    Footer(Box<StreamAggregate>),
}

enum ReaderState {
    AtHeader,
    InRounds,
    Done,
}

/// An incremental, strict parser for `qdc-telemetry-stream/v1`
/// archives: one line in memory at a time, so arbitrarily long archives
/// parse in O(1) memory.
///
/// Beyond the per-line grammar, the reader enforces the archive
/// invariants: header first, contiguous 1-based rounds, exactly one
/// footer, nothing after it, a final newline, footer totals equal to
/// the sum of the round lines, and footer sketches in canonical order
/// within the header's capacity and index ranges.
pub struct StreamReader<R: BufRead> {
    input: R,
    line: String,
    line_no: usize,
    state: ReaderState,
    header: StreamHeader,
    running: StreamTotals,
}

impl<R: BufRead> StreamReader<R> {
    /// A reader over `input`, positioned before the header line.
    pub fn new(input: R) -> StreamReader<R> {
        StreamReader {
            input,
            line: String::new(),
            line_no: 0,
            state: ReaderState::AtHeader,
            header: StreamHeader::default(),
            running: StreamTotals::default(),
        }
    }

    fn err(&self, msg: impl Into<String>) -> TelemetryParseError {
        TelemetryParseError {
            line: self.line_no.max(1),
            msg: msg.into(),
        }
    }

    /// The next record, or `Ok(None)` exactly once, at end of input
    /// after a valid footer. Every violation of the grammar or the
    /// archive invariants is a [`TelemetryParseError`].
    pub fn next_record(&mut self) -> Result<Option<StreamRecord>, TelemetryParseError> {
        loop {
            self.line.clear();
            self.line_no += 1;
            let n = self
                .input
                .read_line(&mut self.line)
                .map_err(|e| self.err(format!("read failed: {e}")))?;
            if n == 0 {
                return match self.state {
                    ReaderState::Done => Ok(None),
                    ReaderState::AtHeader => Err(self.err("empty stream archive")),
                    ReaderState::InRounds => Err(self.err(format!(
                        "archive ends after {} rounds without a footer",
                        self.running.rounds
                    ))),
                };
            }
            if !self.line.ends_with('\n') {
                return Err(self.err("missing final newline"));
            }
            if self.line.trim().is_empty() {
                continue;
            }
            let line = std::mem::take(&mut self.line);
            let result = self.parse_line(&line);
            self.line = line;
            return result.map(Some);
        }
    }

    fn parse_line(&mut self, line: &str) -> Result<StreamRecord, TelemetryParseError> {
        let mut c = Cursor::new(self.line_no, line);
        match self.state {
            ReaderState::AtHeader => {
                c.expect("{")?;
                c.expect(&format!("\"schema\":\"{STREAM_SCHEMA}\""))?;
                c.expect(",")?;
                c.expect("\"nodes\"")?;
                c.expect(":")?;
                let nodes = c.parse_u64()? as usize;
                c.expect(",")?;
                c.expect("\"edges\"")?;
                c.expect(":")?;
                let edges = c.parse_u64()? as usize;
                c.expect(",")?;
                c.expect("\"bandwidth\"")?;
                c.expect(":")?;
                let bandwidth = c.parse_u64()? as usize;
                c.expect(",")?;
                c.expect("\"classified\"")?;
                c.expect(":")?;
                let classified = parse_flag(&mut c, "classified")?;
                c.expect(",")?;
                c.expect("\"top_k\"")?;
                c.expect(":")?;
                let top_k = c.parse_u64()? as usize;
                c.expect("}")?;
                c.end()?;
                self.header = StreamHeader {
                    nodes,
                    edges,
                    bandwidth,
                    classified,
                    top_k,
                };
                self.state = ReaderState::InRounds;
                Ok(StreamRecord::Header(self.header))
            }
            ReaderState::InRounds => {
                if c.peeks("{\"totals\"") {
                    let agg = self.parse_footer(&mut c)?;
                    self.state = ReaderState::Done;
                    Ok(StreamRecord::Footer(Box::new(agg)))
                } else {
                    let expected = (self.running.rounds + 1) as usize;
                    let p = parse_round_line(&mut c, expected)?;
                    self.running.absorb(&p);
                    Ok(StreamRecord::Round(p))
                }
            }
            ReaderState::Done => Err(self.err("unexpected content after the footer")),
        }
    }

    fn parse_footer(&mut self, c: &mut Cursor<'_>) -> Result<StreamAggregate, TelemetryParseError> {
        c.expect("{")?;
        c.expect("\"totals\"")?;
        c.expect(":")?;
        c.expect("{")?;
        let mut t = StreamTotals::default();
        c.expect("\"rounds\"")?;
        c.expect(":")?;
        t.rounds = c.parse_u64()?;
        c.expect(",")?;
        c.expect("\"messages\"")?;
        c.expect(":")?;
        t.messages = c.parse_u64()?;
        c.expect(",")?;
        c.expect("\"bits\"")?;
        c.expect(":")?;
        t.bits = c.parse_u64()?;
        c.expect(",")?;
        c.expect("\"dropped\"")?;
        c.expect(":")?;
        t.dropped = c.parse_u64()?;
        c.expect(",")?;
        c.expect("\"corrupted\"")?;
        c.expect(":")?;
        t.corrupted_bits = c.parse_u64()?;
        c.expect(",")?;
        c.expect("\"crashes\"")?;
        c.expect(":")?;
        t.crashes = c.parse_u64()?;
        c.expect(",")?;
        c.expect("\"quiescent\"")?;
        c.expect(":")?;
        t.quiescent = c.parse_u64()?;
        c.expect(",")?;
        c.expect("\"util\"")?;
        c.expect(":")?;
        c.expect("[")?;
        for (i, slot) in t.util.iter_mut().enumerate() {
            if i > 0 {
                c.expect(",")?;
            }
            *slot = c.parse_u64()?;
        }
        c.expect("]")?;
        c.expect(",")?;
        c.expect("\"split\"")?;
        c.expect(":")?;
        c.expect("[")?;
        t.path_bits = c.parse_u64()?;
        c.expect(",")?;
        t.highway_bits = c.parse_u64()?;
        c.expect(",")?;
        t.cross_bits = c.parse_u64()?;
        c.expect("]")?;
        // Optional trailing `qsplit` (quantum-mode archives only): a
        // comma here can only introduce it — `}` closes the totals
        // otherwise.
        if c.peek() == Some(b',') {
            c.expect(",")?;
            c.expect("\"qsplit\"")?;
            c.expect(":")?;
            c.expect("[")?;
            let classical_bits = c.parse_u64()?;
            c.expect(",")?;
            let qubit_bits = c.parse_u64()?;
            c.expect("]")?;
            t.qsplit = Some(QubitSplit {
                classical_bits,
                qubit_bits,
            });
        }
        c.expect("}")?;
        c.expect(",")?;
        c.expect("\"top_edges\"")?;
        c.expect(":")?;
        let top_edges = self.parse_top_array(c, self.header.edges, "top_edges")?;
        c.expect(",")?;
        c.expect("\"top_nodes\"")?;
        c.expect(":")?;
        let top_nodes = self.parse_top_array(c, self.header.nodes, "top_nodes")?;
        c.expect("}")?;
        c.end()?;
        if t != self.running {
            return Err(self.err(format!(
                "footer totals contradict the round lines (footer bits={}, summed bits={}; \
                 footer rounds={}, summed rounds={})",
                t.bits, self.running.bits, t.rounds, self.running.rounds
            )));
        }
        Ok(StreamAggregate {
            header: self.header,
            totals: t,
            top_edges: TopK::from_ranked(self.header.top_k, top_edges),
            top_nodes: TopK::from_ranked(self.header.top_k, top_nodes),
        })
    }

    fn parse_top_array(
        &self,
        c: &mut Cursor<'_>,
        index_bound: usize,
        what: &str,
    ) -> Result<Vec<TopEntry>, TelemetryParseError> {
        c.expect("[")?;
        let mut out: Vec<TopEntry> = Vec::new();
        if c.peek() != Some(b']') {
            loop {
                c.expect("[")?;
                let index = c.parse_u64()? as usize;
                c.expect(",")?;
                let bits = c.parse_u64()?;
                c.expect(",")?;
                let messages = c.parse_u64()?;
                c.expect(",")?;
                let err = c.parse_u64()?;
                c.expect("]")?;
                if index >= index_bound {
                    return Err(self.err(format!(
                        "{what} index {index} out of range (header bound {index_bound})"
                    )));
                }
                if err > bits {
                    return Err(self.err(format!(
                        "{what} entry {index}: error bound {err} exceeds weight {bits}"
                    )));
                }
                if let Some(prev) = out.last() {
                    let in_order = prev.bits > bits || (prev.bits == bits && prev.index < index);
                    if !in_order {
                        return Err(self.err(format!(
                            "{what} not in canonical (bits desc, index asc) order at index {index}"
                        )));
                    }
                }
                out.push(TopEntry {
                    index,
                    bits,
                    messages,
                    err,
                });
                if c.peek() == Some(b',') {
                    c.expect(",")?;
                } else {
                    break;
                }
            }
        }
        c.expect("]")?;
        if out.len() > self.header.top_k {
            return Err(self.err(format!(
                "{what} holds {} entries but the header capacity is {}",
                out.len(),
                self.header.top_k
            )));
        }
        Ok(out)
    }
}

/// Scans a whole archive and returns its final aggregate state — O(1)
/// memory in archive length (every record is validated on the way
/// through, including the footer-vs-rounds cross-check).
pub fn read_aggregate<R: BufRead>(input: R) -> Result<StreamAggregate, TelemetryParseError> {
    let mut reader = StreamReader::new(input);
    let mut footer: Option<StreamAggregate> = None;
    while let Some(record) = reader.next_record()? {
        if let StreamRecord::Footer(agg) = record {
            footer = Some(*agg);
        }
    }
    Ok(*footer
        .map(Box::new)
        .expect("reader yields a footer or errors"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a small two-round event stream (the same one the
    /// RoundProfiler unit test uses) into a sink over `buf`.
    fn drive(sink: &mut StreamSink<&mut Vec<u8>>) {
        sink.on_round_start(1);
        sink.on_delivery(1, EdgeId(0), NodeId(0), NodeId(1), 8);
        sink.on_chaos_corrupt(1, EdgeId(1), NodeId(1), NodeId(2), 3);
        sink.on_delivery(1, EdgeId(1), NodeId(1), NodeId(2), 2);
        sink.on_chaos_drop(1, EdgeId(0), NodeId(1), NodeId(0));
        sink.on_round_end(1, false, 4);
        sink.on_round_start(2);
        sink.on_crash(2, NodeId(2));
        sink.on_round_end(2, true, 2);
    }

    fn streamed() -> (String, StreamAggregate) {
        let mut buf = Vec::new();
        let mut sink = StreamSink::new(&mut buf, 3, 2, 8, 4).with_classes(vec![
            NodeClass::Path,
            NodeClass::Path,
            NodeClass::Highway,
        ]);
        drive(&mut sink);
        let agg = sink.finish().expect("in-memory write");
        (String::from_utf8(buf).expect("utf8"), agg)
    }

    #[test]
    fn stream_sink_folds_and_serializes_a_hand_driven_run() {
        let (text, agg) = streamed();
        assert_eq!(agg.totals.rounds, 2);
        assert_eq!(agg.totals.messages, 2);
        assert_eq!(agg.totals.bits, 10);
        assert_eq!(agg.totals.dropped, 1);
        assert_eq!(agg.totals.corrupted_bits, 3);
        assert_eq!(agg.totals.crashes, 1);
        assert_eq!(agg.totals.quiescent, 1);
        assert_eq!(agg.totals.util, [4, 1, 0, 0, 1]);
        assert_eq!(agg.totals.path_bits, 8);
        assert_eq!(agg.totals.cross_bits, 2);
        let edges = agg.top_edges.ranked();
        assert_eq!(edges.len(), 2);
        assert_eq!(
            (edges[0].index, edges[0].bits, edges[0].messages),
            (0, 8, 1)
        );
        assert_eq!((edges[1].index, edges[1].bits), (1, 2));
        let nodes = agg.top_nodes.ranked();
        // Node 1 touched 8 (recv) + 2 (sent) = 10 bits over 2 messages.
        assert_eq!(
            (nodes[0].index, nodes[0].bits, nodes[0].messages),
            (1, 10, 2)
        );
        assert_eq!((nodes[1].index, nodes[1].bits), (0, 8));
        assert_eq!((nodes[2].index, nodes[2].bits), (2, 2));
        // The archive has exactly header + 2 rounds + footer.
        assert_eq!(text.lines().count(), 4);
        assert!(text.starts_with(&agg.header_jsonl()));
        assert!(text.ends_with(&agg.footer_jsonl()));
    }

    #[test]
    fn stream_archive_round_trips_through_the_reader() {
        let (text, agg) = streamed();
        let back = read_aggregate(text.as_bytes()).expect("parses");
        assert_eq!(back, agg);
        // Record-by-record: header, both rounds, footer, then None.
        let mut r = StreamReader::new(text.as_bytes());
        assert_eq!(
            r.next_record().expect("header"),
            Some(StreamRecord::Header(agg.header))
        );
        let StreamRecord::Round(p1) = r.next_record().expect("round 1").expect("some") else {
            panic!("expected a round record");
        };
        assert_eq!((p1.round, p1.bits, p1.dropped), (1, 10, 1));
        let StreamRecord::Round(p2) = r.next_record().expect("round 2").expect("some") else {
            panic!("expected a round record");
        };
        assert_eq!((p2.round, p2.crashes, p2.quiescent), (2, 1, true));
        assert!(matches!(
            r.next_record().expect("footer").expect("some"),
            StreamRecord::Footer(_)
        ));
        assert_eq!(r.next_record().expect("eof"), None);
    }

    #[test]
    fn stream_reader_rejects_malformed_archives() {
        let (good, _) = streamed();
        let reject = |text: &str, why: &str| {
            read_aggregate(text.as_bytes()).expect_err(why);
        };
        reject("", "empty input");
        for cut in [good.len() - 1, good.len() / 2, 10] {
            reject(&good[..cut], "truncation must be rejected");
        }
        reject(
            &good.replace("qdc-telemetry-stream/v1", "qdc-telemetry-stream/v2"),
            "wrong version tag",
        );
        reject(&good.replace("\"bits\"", "\"bitz\""), "unknown field");
        reject(
            &good.replace("\"round\":2", "\"round\":3"),
            "out-of-order round",
        );
        // (`"rounds":2` pins the footer's totals object — round lines
        // spell the key `"round"`, so this replacement cannot touch the
        // matching per-round counters.)
        reject(
            &good.replace("\"rounds\":2,\"messages\":2", "\"rounds\":2,\"messages\":3"),
            "footer totals contradicting the round lines",
        );
        reject(&(good.clone() + "{\"extra\":1}\n"), "content after footer");
    }

    #[test]
    fn stream_sink_quantum_mode_round_trips_and_rejects_mutants() {
        // Teleport accounting: every round line and the footer carry a
        // qsplit of (2 × qubits, qubits).
        let mut buf = Vec::new();
        let mut sink = StreamSink::new(&mut buf, 3, 2, 8, 4).with_quantum(true);
        drive(&mut sink);
        let agg = sink.finish().expect("in-memory write");
        let text = String::from_utf8(buf).expect("utf8");
        assert_eq!(
            agg.totals.qsplit,
            Some(QubitSplit {
                classical_bits: 20,
                qubit_bits: 10,
            })
        );
        assert!(text.contains(",\"qsplit\":[20,10]"), "{text}");
        // Round 2 delivered nothing but still pins the mode explicitly.
        assert!(text.contains(",\"qsplit\":[0,0]"), "{text}");
        let back = read_aggregate(text.as_bytes()).expect("parses");
        assert_eq!(back, agg);
        assert_eq!(back.footer_jsonl(), agg.footer_jsonl());

        // Mutating the footer's qsplit away from the round-line sum, or
        // malforming it, must be rejected.
        let reject = |t: &str, why: &str| {
            read_aggregate(t.as_bytes()).expect_err(why);
        };
        let footer_start = text.rfind("{\"totals\"").expect("footer");
        let broken = format!(
            "{}{}",
            &text[..footer_start],
            text[footer_start..].replace("\"qsplit\":[20,10]", "\"qsplit\":[20,11]")
        );
        reject(&broken, "footer qsplit contradicting the round lines");
        let dropped = format!(
            "{}{}",
            &text[..footer_start],
            text[footer_start..].replace(",\"qsplit\":[20,10]", "")
        );
        reject(&dropped, "footer missing the qsplit the rounds carried");
        reject(
            &text.replace("\"qsplit\":[20,10]", "\"qsplit\":[20,10,1]"),
            "three-element qsplit",
        );
        reject(
            &text.replace("\"qsplit\":[20,10]", "\"qsplit\":[20,1e1]"),
            "non-integer qsplit entry",
        );

        // A classical sink over the same events emits no qsplit at all.
        let mut classical = Vec::new();
        let mut sink = StreamSink::new(&mut classical, 3, 2, 8, 4);
        drive(&mut sink);
        let agg = sink.finish().expect("write");
        assert_eq!(agg.totals.qsplit, None);
        assert!(!String::from_utf8(classical)
            .expect("utf8")
            .contains("qsplit"));
    }

    #[test]
    fn stream_totals_qsplit_merges_with_none_identity() {
        let quantum = StreamTotals {
            qsplit: Some(QubitSplit {
                classical_bits: 6,
                qubit_bits: 3,
            }),
            ..StreamTotals::default()
        };
        let classical = StreamTotals::default();
        let mut a = quantum;
        a.merge(&classical);
        assert_eq!(a.qsplit, quantum.qsplit, "None is the right identity");
        let mut b = classical;
        b.merge(&quantum);
        assert_eq!(b.qsplit, quantum.qsplit, "None is the left identity");
        let mut doubled = quantum;
        doubled.merge(&quantum);
        assert_eq!(
            doubled.qsplit,
            Some(QubitSplit {
                classical_bits: 12,
                qubit_bits: 6,
            })
        );
    }

    #[test]
    fn stream_topk_evicts_deterministically_and_bounds_error() {
        let mut top = TopK::new(2);
        top.observe(5, 10, 1);
        top.observe(3, 10, 1);
        // Full; a new key evicts the (bits asc, index desc) minimum —
        // the tie at 10 evicts index 5, keeping the lower index 3.
        top.observe(7, 1, 1);
        let ranked = top.ranked();
        assert_eq!(ranked[0].index, 7, "newcomer inherits the evicted floor");
        assert_eq!((ranked[0].bits, ranked[0].err), (11, 10));
        assert_eq!((ranked[1].index, ranked[1].bits, ranked[1].err), (3, 10, 0));
        for e in &ranked {
            assert!(e.err <= e.bits, "bits - err is a certain lower bound");
        }
    }

    #[test]
    fn stream_topk_merge_is_commutative_and_exact_with_capacity() {
        let mut a = TopK::new(4);
        a.observe(0, 5, 1);
        a.observe(2, 9, 2);
        let mut b = TopK::new(4);
        b.observe(2, 1, 1);
        b.observe(3, 9, 1);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.ranked(), ba.ranked(), "merge is commutative");
        let ranked = ab.ranked();
        // Per-key sums: 2 → 10, 3 → 9, 0 → 5; canonical order.
        assert_eq!(
            ranked.iter().map(|e| (e.index, e.bits)).collect::<Vec<_>>(),
            vec![(2, 10), (3, 9), (0, 5)]
        );
        assert!(ranked.iter().all(|e| e.err == 0), "exact regime");
    }

    #[test]
    fn stream_aggregate_merge_laws_hold() {
        let (_, a) = streamed();
        let mut b = a.clone();
        b.header.bandwidth = 16;
        b.header.classified = false;
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "aggregate merge is commutative");
        assert_eq!(ab.totals.bits, 2 * a.totals.bits);
        assert_eq!(ab.totals.rounds, 4);
        assert_eq!(ab.header.bandwidth, 0, "mixed budgets poison to 0");
        assert!(!ab.header.classified, "classified merges by AND");
        // Poison absorbs: merging the mixed composite with anything
        // keeps bandwidth 0.
        let mut abc = ab.clone();
        abc.merge(&a);
        assert_eq!(abc.header.bandwidth, 0);
        // Self-merge doubles every counter and keeps the header.
        let mut aa = a.clone();
        aa.merge(&a);
        assert_eq!(aa.header, a.header);
        assert_eq!(
            aa.top_edges.ranked()[0].bits,
            2 * a.top_edges.ranked()[0].bits
        );
    }

    #[test]
    fn stream_sink_flush_window_is_respected_and_zero_round_run_is_valid() {
        // A tiny flush window forces a write per round; the archive
        // bytes are identical to the default window's.
        let mut small = Vec::new();
        let mut sink = StreamSink::new(&mut small, 3, 2, 8, 4).with_flush_window(1);
        drive(&mut sink);
        sink.finish().expect("write");
        let mut big = Vec::new();
        let mut sink = StreamSink::new(&mut big, 3, 2, 8, 4);
        drive(&mut sink);
        sink.finish().expect("write");
        assert_eq!(small, big, "flush windowing never changes the bytes");

        // A run with zero rounds still yields a valid archive.
        let mut empty = Vec::new();
        let agg = StreamSink::new(&mut empty, 1, 0, 8, 2)
            .finish()
            .expect("write");
        assert_eq!(agg.totals.rounds, 0);
        let back = read_aggregate(empty.as_slice()).expect("parses");
        assert_eq!(back, agg);
    }

    #[test]
    fn stream_sink_latches_write_errors_until_finish() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = StreamSink::new(Failing, 3, 2, 8, 4).with_flush_window(1);
        sink.on_round_start(1);
        sink.on_delivery(1, EdgeId(0), NodeId(0), NodeId(1), 8);
        sink.on_round_end(1, false, 4);
        let err = sink.finish().expect_err("the write error surfaces");
        assert_eq!(err.to_string(), "disk full");
    }
}
