//! Compact bit strings with exact length accounting.
//!
//! CONGEST budgets are stated in *bits*, so message payloads must track
//! their length at bit granularity. `BitString` packs bits into `u64`
//! words and provides a little-endian writer/reader pair for encoding
//! fixed-width integers — the only serialization the distributed
//! algorithms need.

/// A growable bit string packed into 64-bit words.
///
/// # Example
///
/// ```
/// use qdc_congest::BitString;
///
/// let mut b = BitString::new();
/// b.push_uint(5, 3);    // three bits: 101
/// b.push_bit(true);
/// assert_eq!(b.len(), 4);
/// let mut r = b.reader();
/// assert_eq!(r.read_uint(3), Some(5));
/// assert_eq!(r.read_bit(), Some(true));
/// assert_eq!(r.read_bit(), None);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitString {
    words: Vec<u64>,
    len: usize,
}

impl std::fmt::Debug for BitString {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitString[")?;
        for i in 0..self.len.min(64) {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len > 64 {
            write!(f, "…({} bits)", self.len)?;
        }
        write!(f, "]")
    }
}

impl BitString {
    /// An empty bit string.
    pub fn new() -> Self {
        BitString::default()
    }

    /// Builds from a slice of bools.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut s = BitString::new();
        for &b in bits {
            s.push_bit(b);
        }
        s
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the string is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range ({})", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Appends a single bit.
    pub fn push_bit(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Appends the low `width` bits of `value`, least-significant first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or `value` has bits above `width`.
    pub fn push_uint(&mut self, value: u64, width: usize) {
        assert!(width <= 64, "width exceeds 64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        for i in 0..width {
            self.push_bit(value >> i & 1 == 1);
        }
    }

    /// Appends another bit string.
    pub fn extend_bits(&mut self, other: &BitString) {
        for i in 0..other.len {
            self.push_bit(other.get(i));
        }
    }

    /// Materializes into a vector of bools.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// A sequential reader over the bits.
    pub fn reader(&self) -> BitReader<'_> {
        BitReader { bits: self, pos: 0 }
    }
}

impl FromIterator<bool> for BitString {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut s = BitString::new();
        for b in iter {
            s.push_bit(b);
        }
        s
    }
}

/// A cursor reading a [`BitString`] front to back.
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    bits: &'a BitString,
    pos: usize,
}

impl BitReader<'_> {
    /// Reads one bit, or `None` at the end.
    pub fn read_bit(&mut self) -> Option<bool> {
        if self.pos < self.bits.len() {
            let b = self.bits.get(self.pos);
            self.pos += 1;
            Some(b)
        } else {
            None
        }
    }

    /// Reads a `width`-bit little-endian unsigned integer, or `None` if
    /// fewer than `width` bits remain.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn read_uint(&mut self, width: usize) -> Option<u64> {
        assert!(width <= 64, "width exceeds 64");
        if self.pos + width > self.bits.len() {
            return None;
        }
        let mut v = 0u64;
        for i in 0..width {
            if self.bits.get(self.pos + i) {
                v |= 1 << i;
            }
        }
        self.pos += width;
        Some(v)
    }

    /// Bits not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bits.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_bits() {
        let mut b = BitString::new();
        b.push_bit(true);
        b.push_bit(false);
        b.push_bit(true);
        assert_eq!(b.len(), 3);
        assert!(b.get(0));
        assert!(!b.get(1));
        assert!(b.get(2));
    }

    #[test]
    fn uint_roundtrip_various_widths() {
        for &(v, w) in &[(0u64, 1usize), (1, 1), (5, 3), (255, 8), (1 << 40, 41), (u64::MAX, 64)] {
            let mut b = BitString::new();
            b.push_uint(v, w);
            assert_eq!(b.len(), w);
            assert_eq!(b.reader().read_uint(w), Some(v), "v={v}, w={w}");
        }
    }

    #[test]
    fn mixed_stream_roundtrip() {
        let mut b = BitString::new();
        b.push_uint(9, 4);
        b.push_bit(true);
        b.push_uint(1000, 10);
        let mut r = b.reader();
        assert_eq!(r.read_uint(4), Some(9));
        assert_eq!(r.read_bit(), Some(true));
        assert_eq!(r.read_uint(10), Some(1000));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reader_refuses_overread() {
        let mut b = BitString::new();
        b.push_uint(3, 2);
        let mut r = b.reader();
        assert_eq!(r.read_uint(3), None);
        assert_eq!(r.read_uint(2), Some(3));
        assert_eq!(r.read_bit(), None);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_rejected() {
        BitString::new().push_uint(8, 3);
    }

    #[test]
    fn crosses_word_boundaries() {
        let mut b = BitString::new();
        for i in 0..130 {
            b.push_bit(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        for i in 0..130 {
            assert_eq!(b.get(i), i % 3 == 0, "bit {i}");
        }
    }

    #[test]
    fn from_bools_and_back() {
        let v = vec![true, false, false, true, true];
        let b = BitString::from_bools(&v);
        assert_eq!(b.to_bools(), v);
        let c: BitString = v.iter().copied().collect();
        assert_eq!(b, c);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = BitString::from_bools(&[true, false]);
        let b = BitString::from_bools(&[true, true]);
        a.extend_bits(&b);
        assert_eq!(a.to_bools(), vec![true, false, true, true]);
    }

    #[test]
    fn debug_is_compact() {
        let b = BitString::from_bools(&[true, false, true]);
        assert_eq!(format!("{b:?}"), "BitString[101]");
    }
}
