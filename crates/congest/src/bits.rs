//! Compact bit strings with exact length accounting.
//!
//! CONGEST budgets are stated in *bits*, so message payloads must track
//! their length at bit granularity. `BitString` packs bits into `u64`
//! words and provides a little-endian writer/reader pair for encoding
//! fixed-width integers — the only serialization the distributed
//! algorithms need.
//!
//! All bulk operations (`push_uint`, `read_uint`, `extend_bits`,
//! `from_bools`, `to_bools`) work on whole 64-bit words with at most one
//! cross-word split per call, not bit-by-bit loops; the bit-by-bit
//! originals survive in the test module as a differential oracle.

/// A growable bit string packed into 64-bit words.
///
/// Invariant: `words.len() == len.div_ceil(64)` and every bit at
/// position `>= len` in the last word is zero. Equality and hashing
/// therefore compare packed words directly.
///
/// # Example
///
/// ```
/// use qdc_congest::BitString;
///
/// let mut b = BitString::new();
/// b.push_uint(5, 3);    // three bits: 101
/// b.push_bit(true);
/// assert_eq!(b.len(), 4);
/// let mut r = b.reader();
/// assert_eq!(r.read_uint(3), Some(5));
/// assert_eq!(r.read_bit(), Some(true));
/// assert_eq!(r.read_bit(), None);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitString {
    words: Vec<u64>,
    len: usize,
}

impl std::fmt::Debug for BitString {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitString[")?;
        for i in 0..self.len.min(64) {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len > 64 {
            write!(f, "…({} bits)", self.len)?;
        }
        write!(f, "]")
    }
}

/// The low `width` bits set, for `width <= 64`.
#[inline(always)]
fn low_mask(width: usize) -> u64 {
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

impl BitString {
    /// An empty bit string.
    pub fn new() -> Self {
        BitString::default()
    }

    /// Builds from a slice of bools, packing 64 bits per word.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut words = Vec::with_capacity(bits.len().div_ceil(64));
        for chunk in bits.chunks(64) {
            let mut w = 0u64;
            for (i, &b) in chunk.iter().enumerate() {
                w |= (b as u64) << i;
            }
            words.push(w);
        }
        BitString {
            words,
            len: bits.len(),
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the string is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range ({})", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Appends a single bit.
    pub fn push_bit(&mut self, bit: bool) {
        let offset = self.len % 64;
        if offset == 0 {
            self.words.push(bit as u64);
        } else if bit {
            *self.words.last_mut().expect("non-empty by invariant") |= 1u64 << offset;
        }
        self.len += 1;
    }

    /// Appends the low `width` bits of `value`, least-significant first,
    /// in at most two word operations.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or `value` has bits above `width`.
    pub fn push_uint(&mut self, value: u64, width: usize) {
        assert!(width <= 64, "width exceeds 64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        if width == 0 {
            return;
        }
        let offset = self.len % 64;
        if offset == 0 {
            self.words.push(value);
        } else {
            *self.words.last_mut().expect("non-empty by invariant") |= value << offset;
            if offset + width > 64 {
                self.words.push(value >> (64 - offset));
            }
        }
        self.len += width;
    }

    /// Appends another bit string, word by word (one cross-word split per
    /// 64 bits when the tail is unaligned, a plain `Vec` extend when it
    /// is aligned).
    pub fn extend_bits(&mut self, other: &BitString) {
        if other.len == 0 {
            return;
        }
        if self.len.is_multiple_of(64) {
            self.words.extend_from_slice(&other.words);
            self.len += other.len;
            return;
        }
        let mut remaining = other.len;
        for &w in &other.words {
            let take = remaining.min(64);
            // The invariant zeroes bits past `other.len`, so `w` already
            // fits in `take` bits and splits like a `push_uint`.
            let offset = self.len % 64;
            if offset == 0 {
                self.words.push(w);
            } else {
                *self.words.last_mut().expect("non-empty by invariant") |= w << offset;
                if offset + take > 64 {
                    self.words.push(w >> (64 - offset));
                }
            }
            self.len += take;
            remaining -= take;
        }
    }

    /// Materializes into a vector of bools, unpacking one word at a time.
    pub fn to_bools(&self) -> Vec<bool> {
        let mut out = Vec::with_capacity(self.len);
        let mut remaining = self.len;
        for &w in &self.words {
            let take = remaining.min(64);
            for i in 0..take {
                out.push(w >> i & 1 == 1);
            }
            remaining -= take;
        }
        out
    }

    /// The `width`-bit little-endian integer starting at bit `start`,
    /// assembled from at most two words.
    ///
    /// Requires `start + width <= len` and `width <= 64` (checked by
    /// callers).
    #[inline]
    fn extract(&self, start: usize, width: usize) -> u64 {
        if width == 0 {
            return 0;
        }
        let word = start / 64;
        let offset = start % 64;
        let lo = self.words[word] >> offset;
        let v = if offset + width > 64 {
            lo | self.words[word + 1] << (64 - offset)
        } else {
            lo
        };
        v & low_mask(width)
    }

    /// Flips the bit at position `i` in place.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn toggle(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range ({})", self.len);
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// Shortens the string to `new_len` bits, zeroing the discarded tail
    /// so the packed-word equality invariant keeps holding. A no-op when
    /// `new_len >= len`.
    pub fn truncate(&mut self, new_len: usize) {
        if new_len >= self.len {
            return;
        }
        self.words.truncate(new_len.div_ceil(64));
        if let Some(last) = self.words.last_mut() {
            let tail = new_len % 64;
            if tail != 0 {
                *last &= low_mask(tail);
            }
        }
        self.len = new_len;
    }

    /// Empties the string in place, keeping the word allocation — the
    /// reset the round engine's payload slab performs once per round.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Overwrites `dst` with the `len` bits starting at `start`, reusing
    /// `dst`'s word allocation. The copy works a whole word at a time
    /// (one shift-and-or per 64 bits) and masks the final partial word,
    /// so `dst` always satisfies the zero-tail packed-word invariant —
    /// this is how the round engine scatters payloads out of its
    /// per-round slab without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `start + len` exceeds the string length.
    pub fn copy_range_into(&self, start: usize, len: usize, dst: &mut BitString) {
        assert!(
            start + len <= self.len,
            "range {start}..{} out of bounds ({})",
            start + len,
            self.len
        );
        dst.words.clear();
        dst.words.reserve(len.div_ceil(64));
        dst.len = len;
        let mut pos = start;
        let mut remaining = len;
        while remaining > 0 {
            let take = remaining.min(64);
            dst.words.push(self.extract(pos, take));
            pos += take;
            remaining -= take;
        }
    }

    /// A sequential reader over the bits.
    pub fn reader(&self) -> BitReader<'_> {
        BitReader { bits: self, pos: 0 }
    }
}

impl FromIterator<bool> for BitString {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut s = BitString::new();
        for b in iter {
            s.push_bit(b);
        }
        s
    }
}

/// A cursor reading a [`BitString`] front to back.
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    bits: &'a BitString,
    pos: usize,
}

impl BitReader<'_> {
    /// Reads one bit, or `None` at the end.
    pub fn read_bit(&mut self) -> Option<bool> {
        if self.pos < self.bits.len() {
            let b = self.bits.get(self.pos);
            self.pos += 1;
            Some(b)
        } else {
            None
        }
    }

    /// Reads a `width`-bit little-endian unsigned integer, or `None` if
    /// fewer than `width` bits remain. The value is assembled from at
    /// most two packed words.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn read_uint(&mut self, width: usize) -> Option<u64> {
        assert!(width <= 64, "width exceeds 64");
        if self.pos + width > self.bits.len() {
            return None;
        }
        let v = self.bits.extract(self.pos, width);
        self.pos += width;
        Some(v)
    }

    /// Bits not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bits.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The original bit-by-bit implementations, retained verbatim as a
    /// differential-testing oracle for the word-level fast paths.
    mod oracle {
        use super::BitString;

        pub fn push_uint(s: &mut BitString, value: u64, width: usize) {
            assert!(width <= 64, "width exceeds 64");
            assert!(
                width == 64 || value < (1u64 << width),
                "value {value} does not fit in {width} bits"
            );
            for i in 0..width {
                s.push_bit(value >> i & 1 == 1);
            }
        }

        pub fn read_uint(s: &BitString, pos: usize, width: usize) -> Option<u64> {
            assert!(width <= 64, "width exceeds 64");
            if pos + width > s.len() {
                return None;
            }
            let mut v = 0u64;
            for i in 0..width {
                if s.get(pos + i) {
                    v |= 1 << i;
                }
            }
            Some(v)
        }

        pub fn extend_bits(s: &mut BitString, other: &BitString) {
            for i in 0..other.len() {
                s.push_bit(other.get(i));
            }
        }

        pub fn from_bools(bits: &[bool]) -> BitString {
            let mut s = BitString::new();
            for &b in bits {
                s.push_bit(b);
            }
            s
        }

        pub fn to_bools(s: &BitString) -> Vec<bool> {
            (0..s.len()).map(|i| s.get(i)).collect()
        }
    }

    #[test]
    fn push_and_get_bits() {
        let mut b = BitString::new();
        b.push_bit(true);
        b.push_bit(false);
        b.push_bit(true);
        assert_eq!(b.len(), 3);
        assert!(b.get(0));
        assert!(!b.get(1));
        assert!(b.get(2));
    }

    #[test]
    fn uint_roundtrip_various_widths() {
        for &(v, w) in &[
            (0u64, 1usize),
            (1, 1),
            (5, 3),
            (255, 8),
            (1 << 40, 41),
            (u64::MAX, 64),
        ] {
            let mut b = BitString::new();
            b.push_uint(v, w);
            assert_eq!(b.len(), w);
            assert_eq!(b.reader().read_uint(w), Some(v), "v={v}, w={w}");
        }
    }

    #[test]
    fn mixed_stream_roundtrip() {
        let mut b = BitString::new();
        b.push_uint(9, 4);
        b.push_bit(true);
        b.push_uint(1000, 10);
        let mut r = b.reader();
        assert_eq!(r.read_uint(4), Some(9));
        assert_eq!(r.read_bit(), Some(true));
        assert_eq!(r.read_uint(10), Some(1000));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reader_refuses_overread() {
        let mut b = BitString::new();
        b.push_uint(3, 2);
        let mut r = b.reader();
        assert_eq!(r.read_uint(3), None);
        assert_eq!(r.read_uint(2), Some(3));
        assert_eq!(r.read_bit(), None);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_rejected() {
        BitString::new().push_uint(8, 3);
    }

    #[test]
    fn crosses_word_boundaries() {
        let mut b = BitString::new();
        for i in 0..130 {
            b.push_bit(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        for i in 0..130 {
            assert_eq!(b.get(i), i % 3 == 0, "bit {i}");
        }
    }

    #[test]
    fn from_bools_and_back() {
        let v = vec![true, false, false, true, true];
        let b = BitString::from_bools(&v);
        assert_eq!(b.to_bools(), v);
        let c: BitString = v.iter().copied().collect();
        assert_eq!(b, c);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = BitString::from_bools(&[true, false]);
        let b = BitString::from_bools(&[true, true]);
        a.extend_bits(&b);
        assert_eq!(a.to_bools(), vec![true, false, true, true]);
    }

    #[test]
    fn zero_width_push_is_a_noop() {
        let mut b = BitString::new();
        b.push_uint(0, 0);
        assert!(b.is_empty());
        b.push_uint(5, 3);
        b.push_uint(0, 0);
        assert_eq!(b.len(), 3);
        assert_eq!(b.reader().read_uint(3), Some(5));
    }

    #[test]
    fn word_invariant_holds_after_mixed_pushes() {
        // High bits past `len` must stay zero or equality/extend break.
        let mut b = BitString::new();
        b.push_uint(u64::MAX, 64);
        b.push_uint(1, 1);
        assert_eq!(b.words.len(), 2);
        assert_eq!(b.words[1], 1);
        let mut c = BitString::new();
        for _ in 0..64 {
            c.push_bit(true);
        }
        c.push_bit(true);
        assert_eq!(b, c);
    }

    #[test]
    fn debug_is_compact() {
        let b = BitString::from_bools(&[true, false, true]);
        assert_eq!(format!("{b:?}"), "BitString[101]");
    }

    #[test]
    fn toggle_flips_in_place() {
        let mut b = BitString::from_bools(&[true, false, true]);
        b.toggle(1);
        assert_eq!(b.to_bools(), vec![true, true, true]);
        b.toggle(1);
        assert_eq!(b.to_bools(), vec![true, false, true]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn toggle_out_of_range_panics() {
        let mut b = BitString::from_bools(&[true]);
        b.toggle(1);
    }

    #[test]
    fn clear_empties_but_keeps_equality_semantics() {
        let mut b = BitString::from_bools(&[true, false, true]);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b, BitString::new());
        b.push_bit(true); // reusable after clear
        assert_eq!(b.to_bools(), vec![true]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn copy_range_into_out_of_bounds_panics() {
        let slab = BitString::from_bools(&[true, false]);
        let mut dst = BitString::new();
        slab.copy_range_into(1, 2, &mut dst);
    }

    #[test]
    fn truncate_beyond_len_is_noop() {
        let mut b = BitString::from_bools(&[true, false]);
        b.truncate(5);
        assert_eq!(b.to_bools(), vec![true, false]);
        b.truncate(0);
        assert!(b.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        /// Word-level `push_uint` produces bit-identical strings to the
        /// bit-by-bit oracle on arbitrary (value, width) streams.
        #[test]
        fn push_uint_matches_oracle(fields in prop::collection::vec((any::<u64>(), 0usize..=64), 1..24)) {
            let mut fast = BitString::new();
            let mut slow = BitString::new();
            for &(v, w) in &fields {
                let masked = v & super::low_mask(w);
                fast.push_uint(masked, w);
                oracle::push_uint(&mut slow, masked, w);
            }
            prop_assert_eq!(&fast, &slow);
            prop_assert_eq!(fast.words.len(), fast.len.div_ceil(64));
        }

        /// Word-level `read_uint` agrees with the oracle at every
        /// position, including reads spanning word boundaries.
        #[test]
        fn read_uint_matches_oracle(fields in prop::collection::vec((any::<u64>(), 1usize..=64), 1..24)) {
            let mut bits = BitString::new();
            for &(v, w) in &fields {
                bits.push_uint(v & super::low_mask(w), w);
            }
            let mut r = bits.reader();
            let mut pos = 0usize;
            for &(_, w) in &fields {
                prop_assert_eq!(r.read_uint(w), oracle::read_uint(&bits, pos, w));
                pos += w;
            }
            prop_assert_eq!(r.remaining(), 0);
        }

        /// `extend_bits` concatenation matches the push_bit-by-push_bit
        /// oracle for arbitrary (unaligned) tail offsets.
        #[test]
        fn extend_bits_matches_oracle(
            head in prop::collection::vec(any::<bool>(), 0..130),
            tail in prop::collection::vec(any::<bool>(), 0..130),
        ) {
            let mut fast = BitString::from_bools(&head);
            let mut slow = oracle::from_bools(&head);
            let other = BitString::from_bools(&tail);
            fast.extend_bits(&other);
            oracle::extend_bits(&mut slow, &other);
            prop_assert_eq!(&fast, &slow);
            prop_assert_eq!(fast.len(), head.len() + tail.len());
        }

        /// Packed `from_bools`/`to_bools` round-trip and match the
        /// push_bit oracle.
        #[test]
        fn bools_roundtrip_matches_oracle(v in prop::collection::vec(any::<bool>(), 0..300)) {
            let fast = BitString::from_bools(&v);
            let slow = oracle::from_bools(&v);
            prop_assert_eq!(&fast, &slow);
            prop_assert_eq!(fast.to_bools(), v.clone());
            prop_assert_eq!(oracle::to_bools(&fast), v);
        }

        /// Cross-word-boundary pattern: a 64-bit value pushed at every
        /// possible offset reads back exactly.
        #[test]
        fn full_word_at_every_offset(offset in 0usize..64, v in any::<u64>()) {
            let mut b = BitString::new();
            b.push_uint(low_mask(offset) & 0xAAAA_AAAA_AAAA_AAAA, offset);
            b.push_uint(v, 64);
            let mut r = b.reader();
            r.read_uint(offset);
            prop_assert_eq!(r.read_uint(64), Some(v));
        }

        /// `copy_range_into` carves exactly the bool-model slice out of
        /// an arbitrary (unaligned) range, reuses the destination's
        /// allocation, and keeps the zero-tail packed-word invariant.
        #[test]
        fn copy_range_into_matches_bool_slice(
            v in prop::collection::vec(any::<bool>(), 0..300),
            a in any::<usize>(),
            b in any::<usize>(),
        ) {
            let (a, b) = (a % (v.len() + 1), b % (v.len() + 1));
            let (start, end) = (a.min(b), a.max(b));
            let slab = BitString::from_bools(&v);
            let mut dst = BitString::from_bools(&[true; 70]); // stale content
            slab.copy_range_into(start, end - start, &mut dst);
            prop_assert_eq!(&dst, &BitString::from_bools(&v[start..end]));
            prop_assert_eq!(dst.words.len(), dst.len.div_ceil(64));
        }

        /// `truncate` equals rebuilding from the bool prefix and keeps
        /// the zero-tail packed-word invariant (so equality still works),
        /// and `toggle` matches flipping the corresponding bool.
        #[test]
        fn truncate_and_toggle_match_bool_model(
            v in prop::collection::vec(any::<bool>(), 1..200),
            cut in any::<usize>(),
            flip in any::<usize>(),
        ) {
            let cut = cut % (v.len() + 1);
            let mut fast = BitString::from_bools(&v);
            fast.truncate(cut);
            prop_assert_eq!(&fast, &BitString::from_bools(&v[..cut]));
            prop_assert_eq!(fast.words.len(), fast.len.div_ceil(64));
            if cut > 0 {
                let flip = flip % cut;
                let mut model = v[..cut].to_vec();
                model[flip] = !model[flip];
                fast.toggle(flip);
                prop_assert_eq!(&fast, &BitString::from_bools(&model));
            }
        }
    }
}
