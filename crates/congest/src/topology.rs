//! Standard benchmark topologies for CONGEST experiments.
//!
//! Rings, grids/tori, hypercubes and complete bipartite graphs — the
//! usual suspects for exercising distributed algorithms, with known
//! diameters asserted in tests. (The paper's bespoke hard topology lives
//! in `qdc-simthm`.)

use qdc_graph::{Graph, GraphBuilder, NodeId};

/// A ring on `n ≥ 3` nodes (diameter ⌊n/2⌋).
pub fn ring(n: usize) -> Graph {
    Graph::cycle(n)
}

/// A `rows × cols` grid (diameter `rows + cols − 2`).
///
/// # Panics
///
/// Panics if either dimension is 0.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let idx = |r: usize, c: usize| NodeId::from(r * cols + c);
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c));
            }
        }
    }
    b.build()
}

/// A `rows × cols` torus (wrap-around grid; diameter
/// `⌊rows/2⌋ + ⌊cols/2⌋`). Requires both dimensions ≥ 3 so no wrap edge
/// duplicates a grid edge.
///
/// # Panics
///
/// Panics if either dimension is < 3.
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus dimensions must be ≥ 3");
    let idx = |r: usize, c: usize| NodeId::from(r * cols + c);
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(idx(r, c), idx(r, (c + 1) % cols));
            b.add_edge(idx(r, c), idx((r + 1) % rows, c));
        }
    }
    b.build()
}

/// The `d`-dimensional hypercube on `2^d` nodes (diameter `d`).
///
/// # Panics
///
/// Panics if `d == 0` or `d > 20`.
pub fn hypercube(d: usize) -> Graph {
    assert!((1..=20).contains(&d), "hypercube dimension out of range");
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if u > v {
                b.add_edge(NodeId::from(v), NodeId::from(u));
            }
        }
    }
    b.build()
}

/// The complete bipartite graph `K_{a,b}` (diameter 2 for `a, b ≥ 2`).
///
/// # Panics
///
/// Panics if either side is empty.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    assert!(a > 0 && b > 0, "both sides must be nonempty");
    let mut builder = GraphBuilder::new(a + b);
    for i in 0..a {
        for j in 0..b {
            builder.add_edge(NodeId::from(i), NodeId::from(a + j));
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdc_graph::algorithms::diameter;

    #[test]
    fn ring_diameter() {
        assert_eq!(diameter(&ring(10)), Some(5));
        assert_eq!(diameter(&ring(11)), Some(5));
    }

    #[test]
    fn grid_shape_and_diameter() {
        let g = grid(4, 6);
        assert_eq!(g.node_count(), 24);
        assert_eq!(g.edge_count(), 4 * 5 + 3 * 6);
        assert_eq!(diameter(&g), Some(8)); // (4-1) + (6-1)
        assert_eq!(diameter(&grid(1, 7)), Some(6)); // degenerates to a path
    }

    #[test]
    fn torus_diameter() {
        let t = torus(4, 6);
        assert_eq!(t.node_count(), 24);
        assert_eq!(t.edge_count(), 48); // 2 edges per node
        assert_eq!(diameter(&t), Some(2 + 3));
    }

    #[test]
    fn hypercube_shape_and_diameter() {
        let h = hypercube(5);
        assert_eq!(h.node_count(), 32);
        assert_eq!(h.edge_count(), 5 * 16);
        assert_eq!(diameter(&h), Some(5));
        for v in h.nodes() {
            assert_eq!(h.degree(v), 5);
        }
    }

    #[test]
    fn complete_bipartite_shape() {
        let k = complete_bipartite(3, 4);
        assert_eq!(k.edge_count(), 12);
        assert_eq!(diameter(&k), Some(2));
    }

    #[test]
    fn algorithms_run_on_every_topology() {
        // Smoke: leader election across the zoo via the simulator.
        use crate::{CongestConfig, Simulator};
        for g in [
            ring(9),
            grid(3, 4),
            torus(3, 3),
            hypercube(3),
            complete_bipartite(2, 3),
        ] {
            let sim = Simulator::new(&g, CongestConfig::classical(16));
            // A silent run sanity-checks port symmetry on the topology.
            struct Probe;
            impl crate::NodeAlgorithm for Probe {
                fn on_start(&mut self, _: &crate::NodeInfo, out: &mut crate::Outbox) {
                    out.broadcast(crate::Message::from_bit(true));
                }
                fn on_round(
                    &mut self,
                    _: &crate::NodeInfo,
                    _: &crate::Inbox,
                    _: &mut crate::Outbox,
                ) {
                }
                fn is_terminated(&self) -> bool {
                    true
                }
            }
            let (_, report) = sim.run(|_| Probe, 5);
            assert!(report.completed);
            assert_eq!(report.messages_sent, 2 * g.edge_count() as u64);
        }
    }
}
