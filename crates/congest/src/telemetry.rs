//! Opt-in round-level observability for the CONGEST round engine.
//!
//! The paper's quantitative claims live at the granularity of rounds and
//! bits — Theorem 3.5 charges `O(B log L)` communication *per round*, and
//! checking it means seeing exactly where bits flow. The
//! [`RunReport`](crate::RunReport) gives end-of-run totals only; this
//! module adds the per-round view.
//!
//! A [`Telemetry`] sink receives events from the round engine: a span
//! open/close per round, one event per delivered message (with the edge,
//! the endpoints and the exact bit count), chaos events attributed to the
//! faulting edge, crash-stop activations, and the quiescence outcome of
//! each round. [`NullTelemetry`] is the always-installed default sink:
//! its [`ENABLED`](Telemetry::ENABLED) flag is `false`, every engine-side
//! telemetry block is guarded by that associated constant, and the trait
//! methods are empty `#[inline]` bodies — so the unobserved entry points
//! ([`Simulator::run`](crate::Simulator::run) and friends) monomorphize
//! to exactly the pre-telemetry hot path: zero allocation, zero extra
//! work (EXPERIMENTS.md §OBS records the measured overhead).
//!
//! [`RoundProfiler`] is the batteries-included sink: it folds the event
//! stream into a [`TelemetryReport`] — a [`RoundProfile`] series with
//! per-round edge-utilisation histograms against the `B`-bit budget,
//! cumulative per-node send/receive totals, per-edge totals with fault
//! attribution, and (via the [`NodeClass`] classification hook) a
//! highway-vs-path traffic split for the simulation-theorem network.
//!
//! Wall-clock time is sampled by the *sink* (not the engine) at span
//! open/close, and the serialized form keeps it in an omittable final
//! field — like `wall_us` in campaign records, it is the one value that
//! legitimately differs between two runs of the same experiment, so it
//! stays outside the byte-identical determinism contract.

use crate::jsonl::{Cursor, LineError};
use qdc_graph::{EdgeId, NodeId};
use std::fmt::Write as _;
use std::time::Instant;

/// The schema tag emitted on (and required of) the header line of a
/// serialized [`TelemetryReport`].
pub const TELEMETRY_SCHEMA: &str = "qdc-telemetry/v1";

/// An observer of round-engine events.
///
/// All methods default to no-ops, so sinks implement only what they
/// need. The engine guards every telemetry call site with
/// `T::ENABLED`, a compile-time constant — a sink that sets it to
/// `false` (only [`NullTelemetry`] should) erases the instrumentation
/// entirely from the monomorphized round loop.
///
/// Event order per round `r` (1-based, matching
/// [`StepSummary::round`](crate::StepSummary::round)):
/// [`on_round_start`](Telemetry::on_round_start)`(r)` →
/// [`on_crash`](Telemetry::on_crash) for each crash activating at `r` →
/// per in-flight message, in the engine's fixed delivery order, exactly
/// one of [`on_delivery`](Telemetry::on_delivery) /
/// [`on_chaos_drop`](Telemetry::on_chaos_drop) (with
/// [`on_chaos_corrupt`](Telemetry::on_chaos_corrupt) preceding a
/// delivery that was corrupted in flight) →
/// [`on_round_end`](Telemetry::on_round_end)`(r, quiescent, live_slots)`.
pub trait Telemetry {
    /// Compile-time switch for the engine's telemetry call sites. Leave
    /// at the default `true` for real sinks; only a null sink should
    /// override it to `false`.
    const ENABLED: bool = true;

    /// A round span opens: round `round` is about to deliver and step.
    /// Sinks that track wall-clock time sample it here (the engine
    /// itself never reads the clock, so time stays out of the
    /// determinism contract).
    fn on_round_start(&mut self, round: usize) {
        let _ = round;
    }

    /// One message was delivered this round: `bits` payload bits from
    /// `from` to `to` over `edge`.
    fn on_delivery(&mut self, round: usize, edge: EdgeId, from: NodeId, to: NodeId, bits: usize) {
        let _ = (round, edge, from, to, bits);
    }

    /// The fault layer dropped an in-flight message on `edge` (a random
    /// drop, or a crashed endpoint) — the chaos event is attributed to
    /// the faulting edge.
    fn on_chaos_drop(&mut self, round: usize, edge: EdgeId, from: NodeId, to: NodeId) {
        let _ = (round, edge, from, to);
    }

    /// The fault layer corrupted a message on `edge` that was still
    /// delivered: `bits_lost` payload bits were flipped or truncated
    /// away. Always followed by the matching
    /// [`on_delivery`](Telemetry::on_delivery).
    fn on_chaos_corrupt(
        &mut self,
        round: usize,
        edge: EdgeId,
        from: NodeId,
        to: NodeId,
        bits_lost: u64,
    ) {
        let _ = (round, edge, from, to, bits_lost);
    }

    /// Node `node`'s scheduled crash-stop activated at the start of
    /// `round`.
    fn on_crash(&mut self, round: usize, node: NodeId) {
        let _ = (round, node);
    }

    /// The round span closes; `quiescent` is the outcome of the
    /// quiescence check after the compute phase (the run ends after the
    /// first `true`). `live_slots` is the number of directed edge slots
    /// whose **both** endpoints were still alive this round — `2·|E|`
    /// until the first crash-stop, shrinking as crashes remove incident
    /// slots — the denominator for utilisation accounting.
    fn on_round_end(&mut self, round: usize, quiescent: bool, live_slots: u64) {
        let _ = (round, quiescent, live_slots);
    }
}

/// The do-nothing sink installed on every unobserved run.
///
/// `ENABLED = false` makes the engine skip its telemetry blocks at
/// compile time, so `Simulator::run` and friends keep the PR 1 hot-path
/// profile bit for bit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullTelemetry;

impl Telemetry for NullTelemetry {
    const ENABLED: bool = false;
}

/// Which side of the simulation-theorem network a node sits on — the
/// classification hook behind the highway-vs-path traffic split.
/// `qdc-simthm` maps track indices below Γ to [`Path`](NodeClass::Path)
/// and the rest to [`Highway`](NodeClass::Highway); any other network
/// may reuse the two labels for its own two-way split.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeClass {
    /// A node on one of the Γ paths (or the "first" class generally).
    Path,
    /// A node on one of the `k` highways (or the "second" class).
    Highway,
}

/// The classical-vs-qubit bit split of one round (or a whole run) on a
/// quantum channel: how many qubits crossed the links, and how many
/// classical bits their teleportation consumed (2 per qubit under the
/// Appendix B accounting mode, 0 when qubits fly directly).
///
/// Only quantum-mode sinks ([`RoundProfiler::with_quantum`] /
/// [`StreamSink::with_quantum`](crate::StreamSink::with_quantum))
/// produce it; for purely classical runs the field is `None` and the
/// serialized archives carry no `qsplit` field at all, so every
/// pre-quantum archive stays byte-identical.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QubitSplit {
    /// Classical bits charged for teleportation (always `2 ×
    /// qubit_bits` in teleport mode, 0 otherwise).
    pub classical_bits: u64,
    /// Qubits delivered over the links.
    pub qubit_bits: u64,
}

/// One round's folded observations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundProfile {
    /// The 1-based round number.
    pub round: usize,
    /// Messages delivered this round.
    pub messages: u64,
    /// Payload bits delivered this round.
    pub bits: u64,
    /// Messages the fault layer removed this round.
    pub dropped: u64,
    /// Payload bits flipped or truncated away this round.
    pub corrupted_bits: u64,
    /// Crash-stops that activated this round.
    pub crashes: u64,
    /// Whether the quiescence check after this round's compute phase
    /// came back positive (the run ends after the first `true`).
    pub quiescent: bool,
    /// Edge-utilisation histogram over the round's *live* directed edge
    /// slots (`2·|E|` minus slots incident to a crashed endpoint):
    /// `util[0]` counts live slots that delivered nothing, `util[q]` for
    /// `q = 1..=4` counts delivered messages whose size fell in the
    /// `q`-th quarter of the `B`-bit budget (a 0-bit message lands in
    /// `util[1]`, a full-budget message in `util[4]`).
    pub util: [u64; 5],
    /// Bits delivered between two [`Path`](NodeClass::Path) nodes
    /// (zero when the profiler has no classification).
    pub path_bits: u64,
    /// Bits delivered between two [`Highway`](NodeClass::Highway) nodes.
    pub highway_bits: u64,
    /// Bits delivered on edges joining the two classes.
    pub cross_bits: u64,
    /// The classical/qubit bit split — `Some` only when the sink runs
    /// in quantum mode, and omitted from the serialized form when
    /// `None` (classical archives carry no `qsplit` field).
    pub qsplit: Option<QubitSplit>,
    /// Wall-clock nanoseconds between span open and close, sampled by
    /// the profiler. **Outside the determinism contract**: the
    /// serializer omits it unless asked (`to_jsonl(true)`).
    pub wall_ns: u64,
}

/// Cumulative send/receive totals of one node across a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeTotals {
    /// Messages this node sent that were delivered.
    pub sent_messages: u64,
    /// Payload bits this node sent that were delivered.
    pub sent_bits: u64,
    /// Messages delivered to this node.
    pub recv_messages: u64,
    /// Payload bits delivered to this node.
    pub recv_bits: u64,
}

/// Cumulative per-edge totals across a run, with chaos events
/// attributed to the edge they struck.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EdgeTotals {
    /// Messages delivered over this edge (both directions).
    pub messages: u64,
    /// Payload bits delivered over this edge (both directions).
    pub bits: u64,
    /// Messages the fault layer removed on this edge.
    pub dropped: u64,
    /// Payload bits corrupted in flight on this edge.
    pub corrupted_bits: u64,
}

/// The complete folded observation of one run: header facts, the
/// [`RoundProfile`] series, and the cumulative per-node and per-edge
/// totals. Serializes as the `qdc-telemetry/v1` JSONL schema
/// ([`to_jsonl`](TelemetryReport::to_jsonl) /
/// [`from_jsonl`](TelemetryReport::from_jsonl)).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetryReport {
    /// Node count of the observed network.
    pub nodes: usize,
    /// Edge count of the observed network.
    pub edges: usize,
    /// The CONGEST budget `B` the utilisation histograms are scaled by.
    pub bandwidth: usize,
    /// Whether a [`NodeClass`] classification was installed (when
    /// `false`, every split field is zero by construction).
    pub classified: bool,
    /// One profile per executed round, in round order.
    pub rounds: Vec<RoundProfile>,
    /// Cumulative totals per node, indexed by node id.
    pub node_totals: Vec<NodeTotals>,
    /// Cumulative totals per edge, indexed by edge id.
    pub edge_totals: Vec<EdgeTotals>,
}

/// A malformed telemetry archive: which line failed and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetryParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was expected or found.
    pub msg: String,
}

impl std::fmt::Display for TelemetryParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "telemetry line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TelemetryParseError {}

impl From<LineError> for TelemetryParseError {
    fn from(e: LineError) -> Self {
        TelemetryParseError {
            line: e.line,
            msg: e.msg,
        }
    }
}

impl TelemetryReport {
    /// Total messages delivered, summed over the round series — equals
    /// `RunReport::messages_sent` of the observed run.
    pub fn total_messages(&self) -> u64 {
        self.rounds.iter().map(|r| r.messages).sum()
    }

    /// Total payload bits delivered — equals `RunReport::bits_sent`.
    pub fn total_bits(&self) -> u64 {
        self.rounds.iter().map(|r| r.bits).sum()
    }

    /// Total messages dropped — equals `RunReport::messages_dropped`.
    pub fn total_dropped(&self) -> u64 {
        self.rounds.iter().map(|r| r.dropped).sum()
    }

    /// Total corrupted bits — equals `RunReport::bits_corrupted`.
    pub fn total_corrupted_bits(&self) -> u64 {
        self.rounds.iter().map(|r| r.corrupted_bits).sum()
    }

    /// The `k` busiest edges by cumulative delivered bits, as
    /// `(edge index, totals)` pairs — ties broken by ascending edge id,
    /// so the ranking is deterministic.
    pub fn hottest_edges(&self, k: usize) -> Vec<(usize, EdgeTotals)> {
        let mut ranked: Vec<(usize, EdgeTotals)> =
            self.edge_totals.iter().copied().enumerate().collect();
        ranked.sort_by(|a, b| b.1.bits.cmp(&a.1.bits).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// Serializes the report as `qdc-telemetry/v1` JSONL: a schema
    /// header, one line per round, then the node and edge totals. The
    /// output always ends with a newline.
    ///
    /// With `with_wall = false` the volatile `wall_ns` field is omitted
    /// from every round line — that form is the one covered by the
    /// byte-identical determinism contract (and by the golden fixtures).
    pub fn to_jsonl(&self, with_wall: bool) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"schema\":\"{TELEMETRY_SCHEMA}\",\"nodes\":{},\"edges\":{},\"bandwidth\":{},\"classified\":{},\"rounds\":{}}}",
            self.nodes,
            self.edges,
            self.bandwidth,
            u8::from(self.classified),
            self.rounds.len()
        );
        for r in &self.rounds {
            write_round_line(&mut out, r, with_wall);
        }
        out.push_str("{\"node_totals\":[");
        for (i, n) in self.node_totals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "[{},{},{},{}]",
                n.sent_messages, n.sent_bits, n.recv_messages, n.recv_bits
            );
        }
        out.push_str("]}\n{\"edge_totals\":[");
        for (i, e) in self.edge_totals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "[{},{},{},{}]",
                e.messages, e.bits, e.dropped, e.corrupted_bits
            );
        }
        out.push_str("]}\n");
        out
    }

    /// Parses a `qdc-telemetry/v1` archive produced by
    /// [`to_jsonl`](TelemetryReport::to_jsonl) (with or without the
    /// optional `wall_ns` fields). Insignificant whitespace is
    /// tolerated; a wrong schema tag, an unknown field, a non-integer
    /// value, an out-of-order round, a count that contradicts the
    /// header, or a missing final newline is rejected with a
    /// [`TelemetryParseError`]. On accepted input,
    /// `to_jsonl` ∘ `from_jsonl` is the identity up to whitespace and
    /// omitted `wall_ns` fields.
    pub fn from_jsonl(text: &str) -> Result<TelemetryReport, TelemetryParseError> {
        if text.is_empty() {
            return Err(TelemetryParseError {
                line: 1,
                msg: "empty telemetry archive".into(),
            });
        }
        if !text.ends_with('\n') {
            return Err(TelemetryParseError {
                line: text.lines().count(),
                msg: "missing final newline (to_jsonl always emits one)".into(),
            });
        }
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l))
            .filter(|(_, l)| !l.trim().is_empty());
        let (line_no, header) = lines.next().ok_or(TelemetryParseError {
            line: 1,
            msg: "empty telemetry archive".into(),
        })?;
        let mut c = Cursor::new(line_no, header);
        c.expect("{")?;
        c.expect(&format!("\"schema\":\"{TELEMETRY_SCHEMA}\""))?;
        c.expect(",")?;
        c.expect("\"nodes\"")?;
        c.expect(":")?;
        let nodes = c.parse_u64()? as usize;
        c.expect(",")?;
        c.expect("\"edges\"")?;
        c.expect(":")?;
        let edges = c.parse_u64()? as usize;
        c.expect(",")?;
        c.expect("\"bandwidth\"")?;
        c.expect(":")?;
        let bandwidth = c.parse_u64()? as usize;
        c.expect(",")?;
        c.expect("\"classified\"")?;
        c.expect(":")?;
        let classified = parse_flag(&mut c, "classified")?;
        c.expect(",")?;
        c.expect("\"rounds\"")?;
        c.expect(":")?;
        let round_count = c.parse_u64()? as usize;
        c.expect("}")?;
        c.end()?;

        let mut report = TelemetryReport {
            nodes,
            edges,
            bandwidth,
            classified,
            rounds: Vec::new(),
            node_totals: Vec::new(),
            edge_totals: Vec::new(),
        };
        let mut lines = lines.peekable();
        while report.rounds.len() < round_count {
            let (line_no, line) = lines.next().ok_or(TelemetryParseError {
                line: report.rounds.len() + 1,
                msg: format!(
                    "header promised {round_count} rounds, archive has {}",
                    report.rounds.len()
                ),
            })?;
            let mut c = Cursor::new(line_no, line);
            let p = parse_round_line(&mut c, report.rounds.len() + 1)?;
            report.rounds.push(p);
        }

        let (line_no, line) = lines.next().ok_or(TelemetryParseError {
            line: round_count + 2,
            msg: "missing node_totals line".into(),
        })?;
        let mut c = Cursor::new(line_no, line);
        c.expect("{")?;
        c.expect("\"node_totals\"")?;
        c.expect(":")?;
        c.expect("[")?;
        if c.peek() != Some(b']') {
            loop {
                c.expect("[")?;
                let sent_messages = c.parse_u64()?;
                c.expect(",")?;
                let sent_bits = c.parse_u64()?;
                c.expect(",")?;
                let recv_messages = c.parse_u64()?;
                c.expect(",")?;
                let recv_bits = c.parse_u64()?;
                c.expect("]")?;
                report.node_totals.push(NodeTotals {
                    sent_messages,
                    sent_bits,
                    recv_messages,
                    recv_bits,
                });
                if c.peek() == Some(b',') {
                    c.expect(",")?;
                } else {
                    break;
                }
            }
        }
        c.expect("]")?;
        c.expect("}")?;
        c.end()?;
        if report.node_totals.len() != nodes {
            return Err(TelemetryParseError {
                line: line_no,
                msg: format!(
                    "header promised {nodes} nodes, node_totals has {}",
                    report.node_totals.len()
                ),
            });
        }

        let (line_no, line) = lines.next().ok_or(TelemetryParseError {
            line: round_count + 3,
            msg: "missing edge_totals line".into(),
        })?;
        let mut c = Cursor::new(line_no, line);
        c.expect("{")?;
        c.expect("\"edge_totals\"")?;
        c.expect(":")?;
        c.expect("[")?;
        if c.peek() != Some(b']') {
            loop {
                c.expect("[")?;
                let messages = c.parse_u64()?;
                c.expect(",")?;
                let bits = c.parse_u64()?;
                c.expect(",")?;
                let dropped = c.parse_u64()?;
                c.expect(",")?;
                let corrupted_bits = c.parse_u64()?;
                c.expect("]")?;
                report.edge_totals.push(EdgeTotals {
                    messages,
                    bits,
                    dropped,
                    corrupted_bits,
                });
                if c.peek() == Some(b',') {
                    c.expect(",")?;
                } else {
                    break;
                }
            }
        }
        c.expect("]")?;
        c.expect("}")?;
        c.end()?;
        if report.edge_totals.len() != edges {
            return Err(TelemetryParseError {
                line: line_no,
                msg: format!(
                    "header promised {edges} edges, edge_totals has {}",
                    report.edge_totals.len()
                ),
            });
        }
        if let Some(&(line_no, _)) = lines.peek() {
            return Err(TelemetryParseError {
                line: line_no,
                msg: "unexpected content after edge_totals".into(),
            });
        }
        Ok(report)
    }
}

/// Parses a 0/1 flag field, rejecting any other integer.
pub(crate) fn parse_flag(c: &mut Cursor<'_>, what: &str) -> Result<bool, TelemetryParseError> {
    match c.parse_u64()? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(c.err(format!("{what} must be 0 or 1, got {other}")).into()),
    }
}

/// Serializes one [`RoundProfile`] as the round-line grammar shared by
/// `qdc-telemetry/v1` and `qdc-telemetry-stream/v1` (one line, trailing
/// newline included; `wall_ns` only with `with_wall`).
pub(crate) fn write_round_line(out: &mut String, r: &RoundProfile, with_wall: bool) {
    let _ = write!(
        out,
        "{{\"round\":{},\"messages\":{},\"bits\":{},\"dropped\":{},\"corrupted\":{},\"crashes\":{},\"quiescent\":{},\"util\":[{},{},{},{},{}],\"split\":[{},{},{}]",
        r.round,
        r.messages,
        r.bits,
        r.dropped,
        r.corrupted_bits,
        r.crashes,
        u8::from(r.quiescent),
        r.util[0],
        r.util[1],
        r.util[2],
        r.util[3],
        r.util[4],
        r.path_bits,
        r.highway_bits,
        r.cross_bits,
    );
    if let Some(q) = r.qsplit {
        let _ = write!(out, ",\"qsplit\":[{},{}]", q.classical_bits, q.qubit_bits);
    }
    if with_wall {
        let _ = write!(out, ",\"wall_ns\":{}", r.wall_ns);
    }
    out.push_str("}\n");
}

/// Parses one round line (the grammar [`write_round_line`] emits, with
/// or without `wall_ns`), enforcing that its round number is exactly
/// `expected` — both archive formats demand contiguous 1-based rounds.
pub(crate) fn parse_round_line(
    c: &mut Cursor<'_>,
    expected: usize,
) -> Result<RoundProfile, TelemetryParseError> {
    c.expect("{")?;
    c.expect("\"round\"")?;
    c.expect(":")?;
    let round = c.parse_u64()? as usize;
    if round != expected {
        return Err(c
            .err(format!("round {round} out of order (expected {expected})"))
            .into());
    }
    let mut p = RoundProfile {
        round,
        ..RoundProfile::default()
    };
    c.expect(",")?;
    c.expect("\"messages\"")?;
    c.expect(":")?;
    p.messages = c.parse_u64()?;
    c.expect(",")?;
    c.expect("\"bits\"")?;
    c.expect(":")?;
    p.bits = c.parse_u64()?;
    c.expect(",")?;
    c.expect("\"dropped\"")?;
    c.expect(":")?;
    p.dropped = c.parse_u64()?;
    c.expect(",")?;
    c.expect("\"corrupted\"")?;
    c.expect(":")?;
    p.corrupted_bits = c.parse_u64()?;
    c.expect(",")?;
    c.expect("\"crashes\"")?;
    c.expect(":")?;
    p.crashes = c.parse_u64()?;
    c.expect(",")?;
    c.expect("\"quiescent\"")?;
    c.expect(":")?;
    p.quiescent = parse_flag(c, "quiescent")?;
    c.expect(",")?;
    c.expect("\"util\"")?;
    c.expect(":")?;
    c.expect("[")?;
    for (i, slot) in p.util.iter_mut().enumerate() {
        if i > 0 {
            c.expect(",")?;
        }
        *slot = c.parse_u64()?;
    }
    c.expect("]")?;
    c.expect(",")?;
    c.expect("\"split\"")?;
    c.expect(":")?;
    c.expect("[")?;
    p.path_bits = c.parse_u64()?;
    c.expect(",")?;
    p.highway_bits = c.parse_u64()?;
    c.expect(",")?;
    p.cross_bits = c.parse_u64()?;
    c.expect("]")?;
    // Two optional trailing fields, in fixed order: `qsplit` (emitted
    // only by quantum-mode sinks) then `wall_ns` (emitted only with
    // `with_wall`).
    if c.peek() == Some(b',') {
        c.expect(",")?;
        if c.peeks("\"qsplit\"") {
            c.expect("\"qsplit\"")?;
            c.expect(":")?;
            c.expect("[")?;
            let classical_bits = c.parse_u64()?;
            c.expect(",")?;
            let qubit_bits = c.parse_u64()?;
            c.expect("]")?;
            p.qsplit = Some(QubitSplit {
                classical_bits,
                qubit_bits,
            });
            if c.peek() == Some(b',') {
                c.expect(",")?;
                c.expect("\"wall_ns\"")?;
                c.expect(":")?;
                p.wall_ns = c.parse_u64()?;
            }
        } else {
            c.expect("\"wall_ns\"")?;
            c.expect(":")?;
            p.wall_ns = c.parse_u64()?;
        }
    }
    c.expect("}")?;
    c.end()?;
    Ok(p)
}

/// The standard folding sink: accumulates the engine's event stream into
/// a [`TelemetryReport`].
///
/// Construct it with the observed network's dimensions (the sink cannot
/// see the graph), optionally install a [`NodeClass`] vector via
/// [`with_classes`](RoundProfiler::with_classes), drive a run with
/// [`Simulator::try_run_observed`](crate::Simulator::try_run_observed)
/// (or the traced / stepped variants), then call
/// [`finish`](RoundProfiler::finish).
#[derive(Clone, Debug)]
pub struct RoundProfiler {
    classes: Option<Vec<NodeClass>>,
    /// Quantum accounting mode: `Some(teleport)` makes every round
    /// carry a [`QubitSplit`] — delivered bits count as qubits, and
    /// with `teleport` each qubit also charges 2 classical bits.
    quantum: Option<bool>,
    report: TelemetryReport,
    span_open: Option<Instant>,
}

impl RoundProfiler {
    /// A profiler for a network of `nodes` nodes and `edges` edges under
    /// CONGEST budget `bandwidth_bits`.
    pub fn new(nodes: usize, edges: usize, bandwidth_bits: usize) -> Self {
        RoundProfiler {
            classes: None,
            quantum: None,
            report: TelemetryReport {
                nodes,
                edges,
                bandwidth: bandwidth_bits,
                classified: false,
                rounds: Vec::new(),
                node_totals: vec![NodeTotals::default(); nodes],
                edge_totals: vec![EdgeTotals::default(); edges],
            },
            span_open: None,
        }
    }

    /// Switches the profiler into quantum accounting: every round
    /// profile carries a [`QubitSplit`] where delivered payload counts
    /// as qubits, and with `teleport` each qubit additionally charges
    /// the 2 classical bits of its teleportation (Appendix B). Matches
    /// [`CongestConfig::quantum`](crate::CongestConfig::quantum) /
    /// [`quantum_teleport`](crate::CongestConfig::quantum_teleport)
    /// runs; leave off for classical channels so the serialized report
    /// carries no `qsplit` fields.
    pub fn with_quantum(mut self, teleport: bool) -> Self {
        self.quantum = Some(teleport);
        self
    }

    /// Installs a node classification (index = node id), enabling the
    /// per-round path/highway/cross traffic split.
    ///
    /// # Panics
    ///
    /// Panics if `classes.len()` differs from the node count.
    pub fn with_classes(mut self, classes: Vec<NodeClass>) -> Self {
        assert_eq!(
            classes.len(),
            self.report.nodes,
            "classification must cover every node"
        );
        self.report.classified = true;
        self.classes = Some(classes);
        self
    }

    /// Extracts the folded report.
    pub fn finish(self) -> TelemetryReport {
        self.report
    }

    fn current(&mut self, round: usize) -> &mut RoundProfile {
        debug_assert_eq!(
            self.report.rounds.last().map(|p| p.round),
            Some(round),
            "telemetry events must arrive inside the round's span"
        );
        self.report.rounds.last_mut().expect("span is open")
    }
}

/// The quarter-of-budget bucket a delivered message falls in (1..=4;
/// bucket 0 is reserved for idle slots).
pub(crate) fn util_bucket(bits: usize, budget: usize) -> usize {
    if budget == 0 {
        return 4;
    }
    (4 * bits).div_ceil(budget).clamp(1, 4)
}

impl Telemetry for RoundProfiler {
    fn on_round_start(&mut self, round: usize) {
        debug_assert_eq!(round, self.report.rounds.len() + 1, "rounds are contiguous");
        self.report.rounds.push(RoundProfile {
            round,
            qsplit: self.quantum.map(|_| QubitSplit::default()),
            ..RoundProfile::default()
        });
        self.span_open = Some(Instant::now());
    }

    fn on_delivery(&mut self, round: usize, edge: EdgeId, from: NodeId, to: NodeId, bits: usize) {
        let budget = self.report.bandwidth;
        let split = self.classes.as_ref().map(|classes| {
            match (classes[from.index()], classes[to.index()]) {
                (NodeClass::Path, NodeClass::Path) => 0,
                (NodeClass::Highway, NodeClass::Highway) => 1,
                _ => 2,
            }
        });
        let quantum = self.quantum;
        let p = self.current(round);
        p.messages += 1;
        p.bits += bits as u64;
        p.util[util_bucket(bits, budget)] += 1;
        if let Some(teleport) = quantum {
            let q = p.qsplit.get_or_insert_with(QubitSplit::default);
            q.qubit_bits += bits as u64;
            if teleport {
                q.classical_bits += 2 * bits as u64;
            }
        }
        match split {
            Some(0) => p.path_bits += bits as u64,
            Some(1) => p.highway_bits += bits as u64,
            Some(_) => p.cross_bits += bits as u64,
            None => {}
        }
        let n = &mut self.report.node_totals[from.index()];
        n.sent_messages += 1;
        n.sent_bits += bits as u64;
        let n = &mut self.report.node_totals[to.index()];
        n.recv_messages += 1;
        n.recv_bits += bits as u64;
        let e = &mut self.report.edge_totals[edge.index()];
        e.messages += 1;
        e.bits += bits as u64;
    }

    fn on_chaos_drop(&mut self, round: usize, edge: EdgeId, _from: NodeId, _to: NodeId) {
        self.current(round).dropped += 1;
        self.report.edge_totals[edge.index()].dropped += 1;
    }

    fn on_chaos_corrupt(
        &mut self,
        round: usize,
        edge: EdgeId,
        _from: NodeId,
        _to: NodeId,
        bits_lost: u64,
    ) {
        self.current(round).corrupted_bits += bits_lost;
        self.report.edge_totals[edge.index()].corrupted_bits += bits_lost;
    }

    fn on_crash(&mut self, round: usize, _node: NodeId) {
        self.current(round).crashes += 1;
    }

    fn on_round_end(&mut self, round: usize, quiescent: bool, live_slots: u64) {
        let wall_ns = self
            .span_open
            .take()
            .map_or(0, |t| t.elapsed().as_nanos() as u64);
        let p = self.current(round);
        p.quiescent = quiescent;
        // Idle capacity = live directed slots minus the delivered ones;
        // slots incident to a crashed endpoint are dead, not idle, so
        // the histogram mass always sums to the live capacity.
        p.util[0] = live_slots.saturating_sub(p.messages);
        p.wall_ns = wall_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> TelemetryReport {
        TelemetryReport {
            nodes: 3,
            edges: 2,
            bandwidth: 8,
            classified: true,
            rounds: vec![
                RoundProfile {
                    round: 1,
                    messages: 2,
                    bits: 10,
                    dropped: 1,
                    corrupted_bits: 0,
                    crashes: 0,
                    quiescent: false,
                    util: [2, 1, 0, 0, 1],
                    path_bits: 8,
                    highway_bits: 0,
                    cross_bits: 2,
                    qsplit: None,
                    wall_ns: 1_234,
                },
                RoundProfile {
                    round: 2,
                    messages: 0,
                    bits: 0,
                    dropped: 0,
                    corrupted_bits: 3,
                    crashes: 1,
                    quiescent: true,
                    util: [4, 0, 0, 0, 0],
                    path_bits: 0,
                    highway_bits: 0,
                    cross_bits: 0,
                    qsplit: None,
                    wall_ns: 567,
                },
            ],
            node_totals: vec![
                NodeTotals {
                    sent_messages: 2,
                    sent_bits: 10,
                    recv_messages: 0,
                    recv_bits: 0,
                },
                NodeTotals {
                    sent_messages: 0,
                    sent_bits: 0,
                    recv_messages: 1,
                    recv_bits: 8,
                },
                NodeTotals {
                    sent_messages: 0,
                    sent_bits: 0,
                    recv_messages: 1,
                    recv_bits: 2,
                },
            ],
            edge_totals: vec![
                EdgeTotals {
                    messages: 1,
                    bits: 8,
                    dropped: 1,
                    corrupted_bits: 0,
                },
                EdgeTotals {
                    messages: 1,
                    bits: 2,
                    dropped: 0,
                    corrupted_bits: 3,
                },
            ],
        }
    }

    #[test]
    fn telemetry_jsonl_round_trips_byte_exactly() {
        let report = sample_report();
        for with_wall in [false, true] {
            let text = report.to_jsonl(with_wall);
            let back = TelemetryReport::from_jsonl(&text).expect("parses");
            let again = back.to_jsonl(with_wall);
            assert_eq!(again, text);
            if with_wall {
                assert_eq!(back, report, "wall form preserves everything");
            } else {
                assert_eq!(back.total_bits(), report.total_bits());
                assert_eq!(back.rounds[0].wall_ns, 0, "wall omitted and zeroed");
            }
        }
    }

    #[test]
    fn telemetry_jsonl_empty_report_round_trips() {
        let report = TelemetryReport::default();
        let text = report.to_jsonl(false);
        let back = TelemetryReport::from_jsonl(&text).expect("parses");
        assert_eq!(back, report);
    }

    #[test]
    fn telemetry_jsonl_rejects_malformed_input() {
        let good = sample_report().to_jsonl(false);
        // Truncation anywhere must fail (including the lost newline).
        for cut in [good.len() - 1, good.len() / 2, 10] {
            assert!(
                TelemetryReport::from_jsonl(&good[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
        let reject = |text: &str, why: &str| {
            TelemetryReport::from_jsonl(text).expect_err(why);
        };
        reject("", "empty input");
        reject(
            &good.replace("qdc-telemetry/v1", "qdc-telemetry/v2"),
            "wrong version tag",
        );
        reject(&good.replace("\"bits\"", "\"bitz\""), "unknown field");
        reject(
            &good.replace("\"bits\":10", "\"bits\":10.5"),
            "non-integer value",
        );
        reject(
            &good.replace("\"quiescent\":1", "\"quiescent\":7"),
            "flag out of range",
        );
        reject(&(good.clone() + "{\"extra\":1}\n"), "trailing line");
    }

    /// The sample report with every round carrying a teleport-mode
    /// qubit split (2 classical bits per qubit).
    fn quantum_sample_report() -> TelemetryReport {
        let mut report = sample_report();
        for r in &mut report.rounds {
            r.qsplit = Some(QubitSplit {
                classical_bits: 2 * r.bits,
                qubit_bits: r.bits,
            });
        }
        report
    }

    #[test]
    fn telemetry_jsonl_round_trips_the_qubit_split() {
        let report = quantum_sample_report();
        for with_wall in [false, true] {
            let text = report.to_jsonl(with_wall);
            assert!(text.contains(",\"qsplit\":[20,10]"), "{text}");
            let back = TelemetryReport::from_jsonl(&text).expect("parses");
            assert_eq!(back.rounds[0].qsplit, report.rounds[0].qsplit);
            assert_eq!(back.to_jsonl(with_wall), text, "byte-exact round trip");
        }
        // A classical report never mentions qsplit at all.
        let classical = sample_report().to_jsonl(true);
        assert!(!classical.contains("qsplit"));
    }

    #[test]
    fn telemetry_jsonl_rejects_malformed_qsplit_fields() {
        let good = quantum_sample_report().to_jsonl(false);
        let reject = |text: &str, why: &str| {
            TelemetryReport::from_jsonl(text).expect_err(why);
        };
        reject(
            &good.replace("\"qsplit\":[20,10]", "\"qsplit\":[20]"),
            "one-element qsplit",
        );
        reject(
            &good.replace("\"qsplit\":[20,10]", "\"qsplit\":[20,10,3]"),
            "three-element qsplit",
        );
        reject(
            &good.replace("\"qsplit\":[20,10]", "\"qsplit\":[20,-10]"),
            "negative qsplit entry",
        );
        reject(
            &good.replace("\"qsplit\":[20,10]", "\"qsplit\":[020,10]"),
            "leading-zero qsplit entry",
        );
        reject(
            &good.replace("\"qsplit\":[20,10]", "\"qsplot\":[20,10]"),
            "misspelled qsplit key",
        );
        // qsplit must precede wall_ns, never follow it.
        let wall = quantum_sample_report().to_jsonl(true);
        reject(
            &wall.replace(
                "\"qsplit\":[20,10],\"wall_ns\":1234",
                "\"wall_ns\":1234,\"qsplit\":[20,10]",
            ),
            "qsplit after wall_ns",
        );
    }

    #[test]
    fn telemetry_profiler_quantum_mode_folds_the_split() {
        // Teleport accounting: 2 classical bits per qubit.
        let mut prof = RoundProfiler::new(2, 1, 8).with_quantum(true);
        prof.on_round_start(1);
        prof.on_delivery(1, EdgeId(0), NodeId(0), NodeId(1), 3);
        prof.on_delivery(1, EdgeId(0), NodeId(1), NodeId(0), 4);
        prof.on_round_end(1, true, 2);
        let report = prof.finish();
        assert_eq!(
            report.rounds[0].qsplit,
            Some(QubitSplit {
                classical_bits: 14,
                qubit_bits: 7,
            })
        );

        // Plain quantum mode: qubits fly directly, no classical charge.
        let mut prof = RoundProfiler::new(2, 1, 8).with_quantum(false);
        prof.on_round_start(1);
        prof.on_delivery(1, EdgeId(0), NodeId(0), NodeId(1), 5);
        prof.on_round_end(1, true, 2);
        let report = prof.finish();
        assert_eq!(
            report.rounds[0].qsplit,
            Some(QubitSplit {
                classical_bits: 0,
                qubit_bits: 5,
            })
        );

        // No quantum mode: the field stays absent, even for an empty
        // round (the serialized form is the pre-quantum byte stream).
        let mut prof = RoundProfiler::new(2, 1, 8);
        prof.on_round_start(1);
        prof.on_round_end(1, true, 2);
        assert_eq!(prof.finish().rounds[0].qsplit, None);
    }

    #[test]
    fn telemetry_flag_and_bucket_helpers() {
        assert_eq!(util_bucket(0, 8), 1);
        assert_eq!(util_bucket(1, 8), 1);
        assert_eq!(util_bucket(2, 8), 1);
        assert_eq!(util_bucket(3, 8), 2);
        assert_eq!(util_bucket(4, 8), 2);
        assert_eq!(util_bucket(5, 8), 3);
        assert_eq!(util_bucket(7, 8), 4);
        assert_eq!(util_bucket(8, 8), 4);
        assert_eq!(util_bucket(5, 0), 4);
    }

    #[test]
    fn telemetry_hottest_edges_ranking_is_deterministic() {
        let report = sample_report();
        let top = report.hottest_edges(5);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 0, "edge 0 carried the most bits");
        assert_eq!(report.hottest_edges(1).len(), 1);
        // Ties break by ascending edge id.
        let mut tied = report.clone();
        tied.edge_totals[1].bits = tied.edge_totals[0].bits;
        assert_eq!(tied.hottest_edges(2)[0].0, 0);
    }

    #[test]
    fn telemetry_hottest_edges_breaks_every_tie_by_ascending_index() {
        // Regression pin for the tied-totals contract: equal bit totals
        // rank by ascending edge id, whatever order the edges appear in
        // — and with k cutting through a tie group, the *lowest* ids of
        // the group survive. The streaming top-K tracker
        // (`stream::TopK`) is held to this exact ordering.
        let totals = |bits| EdgeTotals {
            messages: 1,
            bits,
            dropped: 0,
            corrupted_bits: 0,
        };
        let report = TelemetryReport {
            edges: 6,
            edge_totals: vec![
                totals(5),
                totals(9),
                totals(5),
                totals(9),
                totals(0),
                totals(5),
            ],
            ..TelemetryReport::default()
        };
        let order: Vec<usize> = report.hottest_edges(6).iter().map(|e| e.0).collect();
        assert_eq!(order, vec![1, 3, 0, 2, 5, 4]);
        let cut: Vec<usize> = report.hottest_edges(3).iter().map(|e| e.0).collect();
        assert_eq!(cut, vec![1, 3, 0], "a tie cut by k keeps the lowest ids");
    }

    #[test]
    fn telemetry_null_sink_is_disabled_and_inert() {
        const { assert!(!NullTelemetry::ENABLED) };
        let mut sink = NullTelemetry;
        sink.on_round_start(1);
        sink.on_delivery(1, EdgeId(0), NodeId(0), NodeId(1), 4);
        sink.on_round_end(1, true, 4);
    }

    #[test]
    fn telemetry_profiler_folds_a_hand_driven_event_stream() {
        let mut prof = RoundProfiler::new(3, 2, 8).with_classes(vec![
            NodeClass::Path,
            NodeClass::Path,
            NodeClass::Highway,
        ]);
        prof.on_round_start(1);
        prof.on_delivery(1, EdgeId(0), NodeId(0), NodeId(1), 8);
        prof.on_chaos_corrupt(1, EdgeId(1), NodeId(1), NodeId(2), 3);
        prof.on_delivery(1, EdgeId(1), NodeId(1), NodeId(2), 2);
        prof.on_chaos_drop(1, EdgeId(0), NodeId(1), NodeId(0));
        prof.on_round_end(1, false, 4);
        prof.on_round_start(2);
        // Node 2's crash kills both directions of edge 1, so only the
        // two slots of edge 0 count as live capacity from round 2 on.
        prof.on_crash(2, NodeId(2));
        prof.on_round_end(2, true, 2);
        let report = prof.finish();
        assert_eq!(report.total_messages(), 2);
        assert_eq!(report.total_bits(), 10);
        assert_eq!(report.total_dropped(), 1);
        assert_eq!(report.total_corrupted_bits(), 3);
        assert_eq!(report.rounds[0].util, [2, 1, 0, 0, 1]);
        assert_eq!(
            report.rounds[1].util,
            [2, 0, 0, 0, 0],
            "crashed capacity is dead, not idle"
        );
        assert_eq!(report.rounds[0].path_bits, 8);
        assert_eq!(report.rounds[0].cross_bits, 2);
        assert_eq!(report.rounds[1].crashes, 1);
        assert!(report.rounds[1].quiescent);
        assert_eq!(report.node_totals[1].sent_bits, 2);
        assert_eq!(report.node_totals[1].recv_bits, 8);
        assert_eq!(report.edge_totals[0].dropped, 1);
        assert_eq!(report.edge_totals[1].corrupted_bits, 3);
    }
}
