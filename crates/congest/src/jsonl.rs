//! Shared strict line-cursor for the crate's hand-rolled JSONL readers.
//!
//! The archive formats this crate speaks — `qdc-trace/v1`
//! ([`crate::trace_io`]), `qdc-telemetry/v1` ([`crate::telemetry`]) and
//! `qdc-telemetry-stream/v1` ([`crate::stream`]) — are parsed line by
//! line against a fully specified grammar: no serde, no generic JSON
//! tree, just a cursor that consumes exactly the tokens the writer
//! emits (tolerating insignificant whitespace) and rejects everything
//! else with a line-numbered error. Keeping the cursor in one place
//! means the parsers cannot drift apart in their notion of "strict".

/// A position-annotated parse failure: which line, and what was expected
/// or found. The schema-specific error types (`TraceParseError`,
/// `TelemetryParseError`) are built from this via `From`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct LineError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was expected or found.
    pub msg: String,
}

/// A strict cursor over one line of JSONL. Whitespace between tokens is
/// skipped; everything else must match the expected grammar exactly.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(line_no: usize, text: &'a str) -> Self {
        Cursor {
            bytes: text.as_bytes(),
            pos: 0,
            line: line_no,
        }
    }

    pub(crate) fn err(&self, msg: impl Into<String>) -> LineError {
        LineError {
            line: self.line,
            msg: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    pub(crate) fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    /// Whether `lit` comes next (after whitespace), without consuming it
    /// — the one-token lookahead the stream reader uses to tell a round
    /// line from the footer.
    pub(crate) fn peeks(&mut self, lit: &str) -> bool {
        self.skip_ws();
        self.bytes[self.pos..].starts_with(lit.as_bytes())
    }

    /// Consumes `lit` (after whitespace) or errors.
    pub(crate) fn expect(&mut self, lit: &str) -> Result<(), LineError> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            let rest = &self.bytes[self.pos..];
            let shown = String::from_utf8_lossy(&rest[..rest.len().min(20)]);
            Err(self.err(format!("expected `{lit}`, found `{shown}`")))
        }
    }

    pub(crate) fn parse_u64(&mut self) -> Result<u64, LineError> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected an unsigned integer"));
        }
        // JSON's canonical integer form: only `0` itself may start with
        // a zero. A lenient scanner here would bless records (`007`)
        // whose re-emission differs byte-for-byte from their input.
        if self.pos - start > 1 && self.bytes[start] == b'0' {
            return Err(self.err("integer has a leading zero"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII")
            .parse()
            .map_err(|_| self.err("integer out of range"))
    }

    pub(crate) fn end(&mut self) -> Result<(), LineError> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(self.err("trailing garbage after record"))
        }
    }
}
