//! JSONL archival for [`TrafficTrace`] — hand-rolled, no serde.
//!
//! A traced run is the unit the campaign harness archives: one header
//! line naming the schema, then one line per round listing the messages
//! delivered that round and the count the fault layer dropped. The
//! format is deliberately tiny and fully specified here, so offline
//! tooling (or a later replay) can consume it without this crate:
//!
//! ```text
//! {"schema":"qdc-trace/v1","rounds":2}
//! {"round":1,"dropped":0,"messages":[{"from":0,"to":1,"bits":4}]}
//! {"round":2,"dropped":1,"messages":[]}
//! ```
//!
//! [`TrafficTrace::from_jsonl`] inverts [`TrafficTrace::to_jsonl`]
//! exactly (a round-trip is byte-identical, and the parser demands the
//! final newline the writer always emits), tolerates insignificant
//! whitespace, and rejects anything else with a line-numbered
//! [`TraceParseError`] instead of panicking.

use crate::jsonl::{Cursor, LineError};
use crate::sim::{TracedMessage, TrafficTrace};
use qdc_graph::NodeId;
use std::fmt::Write as _;

/// The schema tag emitted on (and required of) the header line.
pub const TRACE_SCHEMA: &str = "qdc-trace/v1";

/// A malformed trace archive: which line failed and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was expected or found.
    pub msg: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TraceParseError {}

impl From<LineError> for TraceParseError {
    fn from(e: LineError) -> Self {
        TraceParseError {
            line: e.line,
            msg: e.msg,
        }
    }
}

impl TrafficTrace {
    /// Serializes the trace as JSONL: a schema header line, then one
    /// line per round. The output ends with a newline.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"schema\":\"{TRACE_SCHEMA}\",\"rounds\":{}}}",
            self.rounds.len()
        );
        for (r, msgs) in self.rounds.iter().enumerate() {
            let dropped = self.dropped.get(r).copied().unwrap_or(0);
            let _ = write!(
                out,
                "{{\"round\":{},\"dropped\":{dropped},\"messages\":[",
                r + 1
            );
            for (i, m) in msgs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"from\":{},\"to\":{},\"bits\":{}}}",
                    m.from.0, m.to.0, m.bits
                );
            }
            out.push_str("]}\n");
        }
        out
    }

    /// Parses a JSONL archive produced by [`to_jsonl`]
    /// (TrafficTrace::to_jsonl). Insignificant whitespace is tolerated;
    /// a wrong schema tag, a wrong round number, a missing final newline
    /// (the writer always emits one — the parser demands it, keeping the
    /// round-trip contract symmetric), or any malformed line is rejected
    /// with a [`TraceParseError`].
    pub fn from_jsonl(text: &str) -> Result<TrafficTrace, TraceParseError> {
        if !text.is_empty() && !text.ends_with('\n') {
            return Err(TraceParseError {
                line: text.lines().count(),
                msg: "missing final newline (to_jsonl always emits one)".into(),
            });
        }
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l))
            .filter(|(_, l)| !l.trim().is_empty());
        let (line_no, header) = lines.next().ok_or(TraceParseError {
            line: 1,
            msg: "empty trace archive".into(),
        })?;
        let mut c = Cursor::new(line_no, header);
        c.expect("{")?;
        c.expect("\"schema\"")?;
        c.expect(":")?;
        c.expect(&format!("\"{TRACE_SCHEMA}\""))?;
        c.expect(",")?;
        c.expect("\"rounds\"")?;
        c.expect(":")?;
        let round_count = c.parse_u64()? as usize;
        c.expect("}")?;
        c.end()?;

        let mut trace = TrafficTrace::default();
        for (line_no, line) in lines {
            let mut c = Cursor::new(line_no, line);
            c.expect("{")?;
            c.expect("\"round\"")?;
            c.expect(":")?;
            let round = c.parse_u64()? as usize;
            if round != trace.rounds.len() + 1 {
                return Err(c
                    .err(format!(
                        "round {round} out of order (expected {})",
                        trace.rounds.len() + 1
                    ))
                    .into());
            }
            c.expect(",")?;
            c.expect("\"dropped\"")?;
            c.expect(":")?;
            let dropped = c.parse_u64()?;
            c.expect(",")?;
            c.expect("\"messages\"")?;
            c.expect(":")?;
            c.expect("[")?;
            let mut msgs = Vec::new();
            if c.peek() != Some(b']') {
                loop {
                    c.expect("{")?;
                    c.expect("\"from\"")?;
                    c.expect(":")?;
                    let from = c.parse_u64()?;
                    c.expect(",")?;
                    c.expect("\"to\"")?;
                    c.expect(":")?;
                    let to = c.parse_u64()?;
                    c.expect(",")?;
                    c.expect("\"bits\"")?;
                    c.expect(":")?;
                    let bits = c.parse_u64()? as usize;
                    c.expect("}")?;
                    let narrow = |v: u64, what: &str| -> Result<u32, TraceParseError> {
                        u32::try_from(v)
                            .map_err(|_| c.err(format!("{what} id {v} exceeds u32")).into())
                    };
                    msgs.push(TracedMessage {
                        from: NodeId(narrow(from, "sender")?),
                        to: NodeId(narrow(to, "receiver")?),
                        bits,
                    });
                    if c.peek() == Some(b',') {
                        c.expect(",")?;
                    } else {
                        break;
                    }
                }
            }
            c.expect("]")?;
            c.expect("}")?;
            c.end()?;
            trace.rounds.push(msgs);
            trace.dropped.push(dropped);
        }
        if trace.rounds.len() != round_count {
            return Err(TraceParseError {
                line: trace.rounds.len() + 1,
                msg: format!(
                    "header promised {round_count} rounds, archive has {}",
                    trace.rounds.len()
                ),
            });
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        ChaosConfig, CongestConfig, Inbox, Message, NodeAlgorithm, NodeInfo, Outbox, Simulator,
    };
    use qdc_graph::Graph;

    fn sample_trace() -> TrafficTrace {
        TrafficTrace {
            rounds: vec![
                vec![
                    TracedMessage {
                        from: NodeId(0),
                        to: NodeId(1),
                        bits: 4,
                    },
                    TracedMessage {
                        from: NodeId(1),
                        to: NodeId(0),
                        bits: 0,
                    },
                ],
                vec![],
                vec![TracedMessage {
                    from: NodeId(2),
                    to: NodeId(0),
                    bits: 17,
                }],
            ],
            dropped: vec![0, 3, 1],
        }
    }

    #[test]
    fn trace_jsonl_round_trips_byte_exactly() {
        let trace = sample_trace();
        let text = trace.to_jsonl();
        let back = TrafficTrace::from_jsonl(&text).expect("parses");
        assert_eq!(back.rounds, trace.rounds);
        assert_eq!(back.dropped, trace.dropped);
        // And re-serializing reproduces the exact bytes.
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn trace_jsonl_empty_trace_round_trips() {
        let trace = TrafficTrace::default();
        let text = trace.to_jsonl();
        assert_eq!(
            text,
            format!("{{\"schema\":\"{TRACE_SCHEMA}\",\"rounds\":0}}\n")
        );
        let back = TrafficTrace::from_jsonl(&text).expect("parses");
        assert!(back.rounds.is_empty());
        assert!(back.dropped.is_empty());
    }

    #[test]
    fn trace_jsonl_from_a_real_chaos_run_replays_offline() {
        // Archive a traced chaos run, then recover it and check the
        // per-round totals still match the report — the "replayed
        // offline" contract the harness relies on.
        struct Pulse {
            left: usize,
        }
        impl NodeAlgorithm for Pulse {
            fn on_start(&mut self, _: &NodeInfo, out: &mut Outbox) {
                out.broadcast(Message::from_uint(3, 8));
            }
            fn on_round(&mut self, _: &NodeInfo, _: &Inbox, out: &mut Outbox) {
                if self.left > 0 {
                    self.left -= 1;
                    out.broadcast(Message::from_uint(3, 8));
                }
            }
            fn is_terminated(&self) -> bool {
                true
            }
        }
        let g = Graph::cycle(7);
        let sim = Simulator::new(&g, CongestConfig::classical(16));
        let chaos = ChaosConfig {
            seed: 5,
            drop_prob: 0.2,
            ..ChaosConfig::fault_free(40)
        };
        let (_, report, trace) = sim
            .try_run_traced(|_| Pulse { left: 4 }, &chaos)
            .expect("completes");
        let recovered = TrafficTrace::from_jsonl(&trace.to_jsonl()).expect("parses");
        let delivered: usize = recovered.rounds.iter().map(Vec::len).sum();
        assert_eq!(delivered as u64, report.messages_sent);
        assert_eq!(
            recovered.dropped.iter().sum::<u64>(),
            report.messages_dropped
        );
        assert_eq!(recovered.rounds, trace.rounds);
    }

    #[test]
    fn trace_jsonl_rejects_malformed_input() {
        let reject = |text: &str, why: &str| {
            let err = TrafficTrace::from_jsonl(text).expect_err(why);
            assert!(err.line >= 1);
        };
        reject("", "empty input");
        reject(
            "{\"schema\":\"qdc-trace/v2\",\"rounds\":0}\n",
            "wrong schema",
        );
        reject(
            "{\"schema\":\"qdc-trace/v1\",\"rounds\":2}\n",
            "missing rounds",
        );
        reject(
            "{\"schema\":\"qdc-trace/v1\",\"rounds\":1}\n{\"round\":2,\"dropped\":0,\"messages\":[]}\n",
            "round out of order",
        );
        reject(
            "{\"schema\":\"qdc-trace/v1\",\"rounds\":1}\n{\"round\":1,\"dropped\":0,\"messages\":[}\n",
            "broken message list",
        );
        reject(
            "{\"schema\":\"qdc-trace/v1\",\"rounds\":1}\n{\"round\":1,\"dropped\":0,\"messages\":[]} x\n",
            "trailing garbage",
        );
        // Errors are line-numbered and displayable.
        let err = TrafficTrace::from_jsonl("nonsense").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn trace_jsonl_newline_contract_is_symmetric() {
        // The writer always ends with `\n`; the parser must demand it,
        // so a truncated archive (e.g. a half-flushed file) can never
        // round-trip to different bytes than it parsed from.
        let text = sample_trace().to_jsonl();
        assert!(text.ends_with('\n'), "writer always emits a final newline");
        let clipped = &text[..text.len() - 1];
        let err = TrafficTrace::from_jsonl(clipped).expect_err("missing newline is rejected");
        assert_eq!(err.line, clipped.lines().count());
        assert!(err.msg.contains("missing final newline"));
        // Empty input stays an "empty archive" error, not a newline one.
        let err = TrafficTrace::from_jsonl("").unwrap_err();
        assert!(err.msg.contains("empty trace archive"));
    }

    #[test]
    fn trace_jsonl_tolerates_whitespace() {
        let text = " { \"schema\" : \"qdc-trace/v1\" , \"rounds\" : 1 }\n\
                    { \"round\" : 1 , \"dropped\" : 2 , \"messages\" : [ \
                    { \"from\" : 3 , \"to\" : 4 , \"bits\" : 5 } ] }\n";
        let trace = TrafficTrace::from_jsonl(text).expect("whitespace is insignificant");
        assert_eq!(trace.dropped, vec![2]);
        assert_eq!(
            trace.rounds,
            vec![vec![TracedMessage {
                from: NodeId(3),
                to: NodeId(4),
                bits: 5
            }]]
        );
    }
}
