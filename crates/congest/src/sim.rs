//! The lockstep CONGEST simulator.

use crate::message::Message;
use qdc_graph::{EdgeId, Graph, NodeId};

/// Whether a link carries classical bits or qubits.
///
/// The simulator's mechanics are identical either way — what differs is
/// the *unit of account* in the [`RunReport`] (bits vs qubits) and which
/// lower bound applies. The paper's point is precisely that for the
/// problems it studies the counts cannot differ much.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ChannelKind {
    /// Classical B-bit channels (the classical CONGEST model).
    Classical,
    /// Quantum B-qubit channels with unlimited prior entanglement (the
    /// paper's strongest model).
    Quantum,
}

/// Simulator configuration: the bandwidth parameter `B` and channel kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CongestConfig {
    /// Per-edge per-round budget in bits (or qubits), the `B` of
    /// CONGEST(B).
    pub bandwidth_bits: usize,
    /// Channel kind (accounting label).
    pub channel: ChannelKind,
}

impl CongestConfig {
    /// Classical CONGEST(B).
    pub fn classical(bandwidth_bits: usize) -> Self {
        CongestConfig {
            bandwidth_bits,
            channel: ChannelKind::Classical,
        }
    }

    /// Quantum CONGEST(B) with prior entanglement.
    pub fn quantum(bandwidth_bits: usize) -> Self {
        CongestConfig {
            bandwidth_bits,
            channel: ChannelKind::Quantum,
        }
    }
}

/// What a node knows about itself and its surroundings — exactly the
/// paper's "limited topological knowledge": its own id, `n`, and the ids
/// of its neighbors (Section 2.1).
#[derive(Clone, Debug)]
pub struct NodeInfo {
    /// This node's id.
    pub id: NodeId,
    /// Total number of nodes in the network (standard CONGEST assumption).
    pub node_count: usize,
    /// Neighbor id per port; port `p` is this node's `p`-th incident edge.
    pub neighbors: Vec<NodeId>,
    /// Host edge id per port (used to look up subgraph indicators and
    /// weights in problem inputs; not information the node "computes").
    pub incident_edges: Vec<EdgeId>,
}

impl NodeInfo {
    /// Number of ports (the node's degree).
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// The port leading to neighbor `v`, if adjacent.
    pub fn port_to(&self, v: NodeId) -> Option<usize> {
        self.neighbors.iter().position(|&u| u == v)
    }
}

/// Messages received by one node in the current round, indexed by port.
#[derive(Clone, Debug)]
pub struct Inbox {
    msgs: Vec<Option<Message>>,
}

impl Inbox {
    fn new(ports: usize) -> Self {
        Inbox {
            msgs: vec![None; ports],
        }
    }

    /// The message received on `port` this round, if any.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn get(&self, port: usize) -> Option<&Message> {
        self.msgs[port].as_ref()
    }

    /// Iterates over `(port, message)` pairs received this round.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Message)> {
        self.msgs
            .iter()
            .enumerate()
            .filter_map(|(p, m)| m.as_ref().map(|m| (p, m)))
    }

    /// Whether nothing was received this round.
    pub fn is_empty(&self) -> bool {
        self.msgs.iter().all(Option::is_none)
    }

    /// Number of messages received this round.
    pub fn len(&self) -> usize {
        self.msgs.iter().filter(|m| m.is_some()).count()
    }

    /// Builds an inbox from raw per-port slots — for harnesses that drive
    /// a [`NodeAlgorithm`] outside the simulator (e.g. the three-party
    /// replay in `qdc-simthm`).
    pub fn from_slots(slots: Vec<Option<Message>>) -> Self {
        Inbox { msgs: slots }
    }

    /// Recovers the raw per-port slots, so harness loops can reuse one
    /// allocation round after round instead of rebuilding inboxes.
    pub fn into_slots(self) -> Vec<Option<Message>> {
        self.msgs
    }

    /// Empties every slot in place, keeping the allocation.
    pub fn clear(&mut self) {
        for slot in &mut self.msgs {
            *slot = None;
        }
    }

    /// Places `msg` in `port`'s slot — for harnesses that route messages
    /// themselves into a reused inbox.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn put(&mut self, port: usize, msg: Message) {
        self.msgs[port] = Some(msg);
    }
}

/// Staging area for a node's outgoing messages this round.
///
/// Enforces the CONGEST discipline: at most one message per incident edge
/// per round, each at most `B` bits.
#[derive(Debug)]
pub struct Outbox {
    budget_bits: usize,
    msgs: Vec<Option<Message>>,
    queued: usize,
}

impl Outbox {
    fn new(ports: usize, budget_bits: usize) -> Self {
        Outbox {
            budget_bits,
            msgs: vec![None; ports],
            queued: 0,
        }
    }

    /// Wraps an already-emptied slot vector, so the round loop reuses one
    /// allocation per node instead of building a fresh `Vec` every round.
    fn reuse(msgs: Vec<Option<Message>>, budget_bits: usize) -> Self {
        debug_assert!(
            msgs.iter().all(Option::is_none),
            "reused outbox must start empty"
        );
        Outbox {
            budget_bits,
            msgs,
            queued: 0,
        }
    }

    /// Queues `msg` on `port`.
    ///
    /// # Panics
    ///
    /// Panics if the message exceeds the `B`-bit budget, the port already
    /// has a message this round, or the port is out of range.
    pub fn send(&mut self, port: usize, msg: Message) {
        assert!(
            msg.bit_len() <= self.budget_bits,
            "message of {} bits exceeds the B = {} bit budget",
            msg.bit_len(),
            self.budget_bits
        );
        assert!(port < self.msgs.len(), "port {port} out of range");
        assert!(
            self.msgs[port].is_none(),
            "port {port} already has a message this round (one message per edge per round)"
        );
        self.msgs[port] = Some(msg);
        self.queued += 1;
    }

    /// Sends a copy of `msg` on every port.
    pub fn broadcast(&mut self, msg: Message) {
        for port in 0..self.msgs.len() {
            self.send(port, msg.clone());
        }
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.msgs.len()
    }

    fn take(&mut self) -> Vec<Option<Message>> {
        std::mem::take(&mut self.msgs)
    }

    /// A detached outbox for harnesses that drive a [`NodeAlgorithm`]
    /// outside the simulator. The same budget discipline applies.
    pub fn detached(ports: usize, budget_bits: usize) -> Self {
        Outbox::new(ports, budget_bits)
    }

    /// A detached outbox reusing an already-emptied slot vector (as
    /// returned by [`into_slots`](Outbox::into_slots) after the messages
    /// were taken), so harness loops keep one allocation per node.
    ///
    /// # Panics
    ///
    /// Debug-panics if any slot is still occupied.
    pub fn detached_reusing(slots: Vec<Option<Message>>, budget_bits: usize) -> Self {
        Outbox::reuse(slots, budget_bits)
    }

    /// Extracts the queued messages from a detached outbox.
    pub fn into_slots(mut self) -> Vec<Option<Message>> {
        self.take()
    }
}

/// A distributed algorithm, from one node's point of view.
///
/// The simulator calls [`on_start`](NodeAlgorithm::on_start) once before
/// any communication, then [`on_round`](NodeAlgorithm::on_round) once per
/// round with that round's inbox. The run ends at **quiescence**: every
/// node reports [`is_terminated`](NodeAlgorithm::is_terminated) and no
/// messages are in flight. This supports event-driven algorithms that are
/// "always terminated" but keep forwarding improvements — the run ends
/// exactly when the information flow dies down (the standard implicit-
/// termination convention in synchronous models).
pub trait NodeAlgorithm {
    /// Round-0 initialization; may send messages.
    fn on_start(&mut self, info: &NodeInfo, out: &mut Outbox);

    /// One synchronous round: consume this round's inbox, update state,
    /// queue next round's messages.
    fn on_round(&mut self, info: &NodeInfo, inbox: &Inbox, out: &mut Outbox);

    /// Whether this node is done. Must be monotone (once `true`, stays
    /// `true`).
    fn is_terminated(&self) -> bool;
}

/// Round and traffic accounting for one simulated run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunReport {
    /// Number of communication rounds executed.
    pub rounds: usize,
    /// Whether every node terminated within the round limit.
    pub completed: bool,
    /// Total messages delivered.
    pub messages_sent: u64,
    /// Total payload bits (or qubits) delivered.
    pub bits_sent: u64,
    /// Maximum total payload bits delivered in any single round.
    pub max_bits_per_round: u64,
    /// The channel kind the run was accounted under.
    pub channel: ChannelKind,
}

/// One delivered message in a [`TrafficTrace`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TracedMessage {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Payload size in bits.
    pub bits: usize,
}

/// Per-round record of every delivered message, produced by
/// [`Simulator::run_traced`]. Entry `r` of [`rounds`](TrafficTrace::rounds)
/// holds the messages delivered at the start of round `r + 1` of the
/// unified round loop (sent during round `r`, with round 0 being
/// `on_start`) — the same delivery schedule [`Stepper::step`] walks one
/// round at a time.
#[derive(Clone, Debug, Default)]
pub struct TrafficTrace {
    /// `rounds[r]` lists the messages delivered in round `r + 1`.
    pub rounds: Vec<Vec<TracedMessage>>,
}

/// The lockstep CONGEST simulator over a fixed network graph.
///
/// See the crate-level example for usage.
#[derive(Debug)]
pub struct Simulator<'g> {
    graph: &'g Graph,
    config: CongestConfig,
    infos: Vec<NodeInfo>,
    /// `back_port[u][p]` is the port on which `u`'s neighbor over port
    /// `p` sees `u` — precomputed so delivery routes each message in
    /// O(1) instead of scanning the receiver's neighbor list.
    back_port: Vec<Vec<usize>>,
}

impl<'g> Simulator<'g> {
    /// Prepares a simulator on `graph` with the given configuration.
    pub fn new(graph: &'g Graph, config: CongestConfig) -> Self {
        let n = graph.node_count();
        let infos: Vec<NodeInfo> = graph
            .nodes()
            .map(|u| NodeInfo {
                id: u,
                node_count: n,
                neighbors: graph.incident(u).iter().map(|&(_, v)| v).collect(),
                incident_edges: graph.incident(u).iter().map(|&(e, _)| e).collect(),
            })
            .collect();
        // Invert the port maps in O(Σ deg) via edge ids: record each
        // endpoint's port per edge, then read the opposite side.
        let mut edge_ports: Vec<[usize; 2]> = vec![[usize::MAX; 2]; graph.edge_count()];
        for info in &infos {
            for (p, &e) in info.incident_edges.iter().enumerate() {
                let (a, _) = graph.endpoints(e);
                let side = usize::from(a != info.id);
                edge_ports[e.index()][side] = p;
            }
        }
        let back_port = infos
            .iter()
            .map(|info| {
                info.incident_edges
                    .iter()
                    .map(|&e| {
                        let (a, _) = graph.endpoints(e);
                        let other_side = usize::from(a == info.id);
                        edge_ports[e.index()][other_side]
                    })
                    .collect()
            })
            .collect();
        Simulator {
            graph,
            config,
            infos,
            back_port,
        }
    }

    /// The network graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The configuration.
    pub fn config(&self) -> CongestConfig {
        self.config
    }

    /// Per-node topology information (what node `v` is told at start).
    pub fn info(&self, v: NodeId) -> &NodeInfo {
        &self.infos[v.index()]
    }

    /// The port on which `u`'s neighbor over port `port` sees `u` — the
    /// precomputed O(1) reverse of [`NodeInfo::port_to`], for harnesses
    /// that route messages themselves.
    pub fn back_port(&self, u: NodeId, port: usize) -> usize {
        self.back_port[u.index()][port]
    }

    /// Runs the algorithm to termination or `max_rounds`, whichever comes
    /// first. `init` builds each node's initial state from its local view.
    ///
    /// Returns the final node states and the [`RunReport`].
    pub fn run<A, F>(&self, init: F, max_rounds: usize) -> (Vec<A>, RunReport)
    where
        A: NodeAlgorithm,
        F: FnMut(&NodeInfo) -> A,
    {
        let (nodes, report, _) = self.run_impl(init, max_rounds, false);
        (nodes, report)
    }

    /// Like [`run`](Simulator::run), but also records every delivered
    /// message per round — used by the Quantum Simulation Theorem
    /// machinery to audit which messages cross party-ownership boundaries.
    pub fn run_traced<A, F>(&self, init: F, max_rounds: usize) -> (Vec<A>, RunReport, TrafficTrace)
    where
        A: NodeAlgorithm,
        F: FnMut(&NodeInfo) -> A,
    {
        self.run_impl(init, max_rounds, true)
    }

    fn run_impl<A, F>(
        &self,
        init: F,
        max_rounds: usize,
        traced: bool,
    ) -> (Vec<A>, RunReport, TrafficTrace)
    where
        A: NodeAlgorithm,
        F: FnMut(&NodeInfo) -> A,
    {
        let mut engine = self.engine_start(init);
        let mut trace = TrafficTrace::default();
        loop {
            if engine.is_quiescent() {
                engine.report.completed = true;
                return (engine.nodes, engine.report, trace);
            }
            if engine.report.rounds >= max_rounds {
                return (engine.nodes, engine.report, trace);
            }
            if traced {
                let mut round_trace = Vec::new();
                self.engine_round(&mut engine, Some(&mut round_trace));
                trace.rounds.push(round_trace);
            } else {
                self.engine_round(&mut engine, None);
            }
        }
    }

    /// Runs every node's `on_start` and sets up the reusable round
    /// buffers — the shared entry point of [`run`](Simulator::run) and
    /// [`Stepper`].
    fn engine_start<A, F>(&self, mut init: F) -> Engine<A>
    where
        A: NodeAlgorithm,
        F: FnMut(&NodeInfo) -> A,
    {
        let mut nodes: Vec<A> = self.infos.iter().map(&mut init).collect();
        let mut outgoing = Vec::with_capacity(nodes.len());
        let mut pending = 0usize;
        for (i, node) in nodes.iter_mut().enumerate() {
            let mut out = Outbox::new(self.infos[i].degree(), self.config.bandwidth_bits);
            node.on_start(&self.infos[i], &mut out);
            pending += out.queued;
            outgoing.push(out.take());
        }
        let inboxes = self
            .infos
            .iter()
            .map(|info| Inbox::new(info.degree()))
            .collect();
        Engine {
            nodes,
            outgoing,
            inboxes,
            pending,
            report: RunReport {
                rounds: 0,
                completed: false,
                messages_sent: 0,
                bits_sent: 0,
                max_bits_per_round: 0,
                channel: self.config.channel,
            },
        }
    }

    /// Executes one synchronous round — deliver, account, step every
    /// node — on the engine's reusable buffers. This is the single round
    /// implementation behind both [`Simulator::run`] and
    /// [`Stepper::step`], so batch and stepped execution cannot diverge.
    fn engine_round<A: NodeAlgorithm>(
        &self,
        engine: &mut Engine<A>,
        mut round_trace: Option<&mut Vec<TracedMessage>>,
    ) -> StepSummary {
        // Deliver: message from u's port p goes to v's precomputed back
        // port. Inboxes are cleared in place and reused.
        for inbox in &mut engine.inboxes {
            inbox.clear();
        }
        let mut messages = 0u64;
        let mut bits = 0u64;
        let Engine {
            outgoing, inboxes, ..
        } = engine;
        for (u, ports) in outgoing.iter_mut().enumerate() {
            let info = &self.infos[u];
            let backs = &self.back_port[u];
            for (p, slot) in ports.iter_mut().enumerate() {
                if let Some(msg) = slot.take() {
                    let v = info.neighbors[p];
                    messages += 1;
                    bits += msg.bit_len() as u64;
                    if let Some(tr) = round_trace.as_deref_mut() {
                        tr.push(TracedMessage {
                            from: info.id,
                            to: v,
                            bits: msg.bit_len(),
                        });
                    }
                    inboxes[v.index()].msgs[backs[p]] = Some(msg);
                }
            }
        }
        engine.report.messages_sent += messages;
        engine.report.bits_sent += bits;
        engine.report.max_bits_per_round = engine.report.max_bits_per_round.max(bits);
        engine.report.rounds += 1;

        // Compute: every node takes a step, writing into its (emptied)
        // outgoing slot vector.
        engine.pending = 0;
        for (i, node) in engine.nodes.iter_mut().enumerate() {
            let slots = std::mem::take(&mut engine.outgoing[i]);
            let mut out = Outbox::reuse(slots, self.config.bandwidth_bits);
            node.on_round(&self.infos[i], &engine.inboxes[i], &mut out);
            engine.pending += out.queued;
            engine.outgoing[i] = out.take();
        }
        StepSummary {
            round: engine.report.rounds,
            messages,
            bits,
        }
    }
}

/// The reusable execution state of one run: node states, double-buffered
/// outgoing/inbox slot vectors (allocated once, cleared in place each
/// round), the count of in-flight messages, and the accumulating
/// [`RunReport`].
struct Engine<A> {
    nodes: Vec<A>,
    outgoing: Vec<Vec<Option<Message>>>,
    inboxes: Vec<Inbox>,
    /// Messages queued for the next delivery phase, maintained by the
    /// round loop so quiescence checks are O(n) instead of O(Σ deg).
    pending: usize,
    report: RunReport,
}

impl<A: NodeAlgorithm> Engine<A> {
    fn is_quiescent(&self) -> bool {
        self.pending == 0 && self.nodes.iter().all(|a| a.is_terminated())
    }
}

/// A round-by-round stepper over a network algorithm — the incremental
/// counterpart of [`Simulator::run`], for debugging, visualization and
/// harnesses that need to inspect state between rounds.
///
/// Both drive the same private round engine, so a stepped run is
/// guaranteed to match the batch run round for round. Once the run is
/// [quiescent](Stepper::is_quiescent), further [`step`](Stepper::step)
/// calls are no-ops that deliver nothing.
///
/// # Example
///
/// ```
/// use qdc_congest::{CongestConfig, Inbox, Message, NodeAlgorithm, NodeInfo, Outbox, Stepper};
/// use qdc_graph::Graph;
///
/// struct Hop { got: bool }
/// impl NodeAlgorithm for Hop {
///     fn on_start(&mut self, info: &NodeInfo, out: &mut Outbox) {
///         if info.id.0 == 0 { out.broadcast(Message::from_bit(true)); }
///     }
///     fn on_round(&mut self, _: &NodeInfo, inbox: &Inbox, _: &mut Outbox) {
///         self.got |= !inbox.is_empty();
///     }
///     fn is_terminated(&self) -> bool { true }
/// }
///
/// let g = Graph::path(3);
/// let mut stepper = Stepper::new(&g, CongestConfig::classical(4), |_| Hop { got: false });
/// assert!(!stepper.is_quiescent());
/// stepper.step();
/// assert!(stepper.nodes()[1].got);
/// assert!(stepper.is_quiescent());
/// ```
pub struct Stepper<'g, A> {
    sim: Simulator<'g>,
    engine: Engine<A>,
}

/// What one [`Stepper::step`] delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepSummary {
    /// The round number just executed (1-based).
    pub round: usize,
    /// Messages delivered this round.
    pub messages: u64,
    /// Payload bits delivered this round.
    pub bits: u64,
}

impl<'g, A: NodeAlgorithm> Stepper<'g, A> {
    /// Initializes the algorithm (runs every node's `on_start`).
    pub fn new<F: FnMut(&NodeInfo) -> A>(graph: &'g Graph, config: CongestConfig, init: F) -> Self {
        let sim = Simulator::new(graph, config);
        let engine = sim.engine_start(init);
        Stepper { sim, engine }
    }

    /// The per-node states (index = node id).
    pub fn nodes(&self) -> &[A] {
        &self.engine.nodes
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> usize {
        self.engine.report.rounds
    }

    /// The accounting so far, identical to what [`Simulator::run`] would
    /// report after the same number of rounds. `completed` reflects
    /// whether the run is currently quiescent.
    pub fn report(&self) -> RunReport {
        RunReport {
            completed: self.engine.is_quiescent(),
            ..self.engine.report
        }
    }

    /// Whether the run has reached quiescence (all nodes terminated, no
    /// messages in flight). Further steps deliver nothing.
    pub fn is_quiescent(&self) -> bool {
        self.engine.is_quiescent()
    }

    /// Executes one synchronous round: deliver, then step every node.
    ///
    /// Once the run is quiescent this is a no-op: no node is stepped, the
    /// round counter stays put, and the returned summary reports zero
    /// messages and bits.
    pub fn step(&mut self) -> StepSummary {
        if self.engine.is_quiescent() {
            return StepSummary {
                round: self.engine.report.rounds,
                messages: 0,
                bits: 0,
            };
        }
        self.sim.engine_round(&mut self.engine, None)
    }

    /// Steps until quiescence or `max_rounds`; returns the rounds run.
    pub fn run_to_quiescence(&mut self, max_rounds: usize) -> usize {
        let mut done = 0;
        while !self.is_quiescent() && done < max_rounds {
            self.step();
            done += 1;
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdc_graph::Graph;

    /// Echo once: leaf nodes send their id to every neighbor in round 0,
    /// then everyone terminates after hearing from all neighbors.
    struct HearAll {
        heard: usize,
        need: usize,
    }

    impl NodeAlgorithm for HearAll {
        fn on_start(&mut self, info: &NodeInfo, out: &mut Outbox) {
            out.broadcast(Message::from_uint(info.id.0 as u64, 16));
        }
        fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, _out: &mut Outbox) {
            self.heard += inbox.len();
        }
        fn is_terminated(&self) -> bool {
            self.heard >= self.need
        }
    }

    #[test]
    fn everyone_hears_neighbors_in_one_round() {
        let g = Graph::complete(5);
        let sim = Simulator::new(&g, CongestConfig::classical(16));
        let (nodes, report) = sim.run(
            |info| HearAll {
                heard: 0,
                need: info.degree(),
            },
            10,
        );
        assert!(report.completed);
        assert_eq!(report.rounds, 1);
        assert_eq!(report.messages_sent, 20); // 2 per edge, 10 edges
        assert_eq!(report.bits_sent, 20 * 16);
        assert_eq!(report.max_bits_per_round, 20 * 16);
        assert!(nodes.iter().all(|n| n.heard == 4));
    }

    /// A silent algorithm terminates immediately in zero rounds.
    struct Silent;
    impl NodeAlgorithm for Silent {
        fn on_start(&mut self, _: &NodeInfo, _: &mut Outbox) {}
        fn on_round(&mut self, _: &NodeInfo, _: &Inbox, _: &mut Outbox) {}
        fn is_terminated(&self) -> bool {
            true
        }
    }

    #[test]
    fn silent_run_takes_zero_rounds() {
        let g = Graph::path(3);
        let sim = Simulator::new(&g, CongestConfig::classical(1));
        let (_, report) = sim.run(|_| Silent, 10);
        assert!(report.completed);
        assert_eq!(report.rounds, 0);
        assert_eq!(report.messages_sent, 0);
    }

    /// A node that never terminates exercises the round limit.
    struct Chatter;
    impl NodeAlgorithm for Chatter {
        fn on_start(&mut self, _: &NodeInfo, out: &mut Outbox) {
            out.broadcast(Message::from_bit(true));
        }
        fn on_round(&mut self, _: &NodeInfo, _: &Inbox, out: &mut Outbox) {
            out.broadcast(Message::from_bit(true));
        }
        fn is_terminated(&self) -> bool {
            false
        }
    }

    #[test]
    fn round_limit_caps_runaway_algorithms() {
        let g = Graph::cycle(4);
        let sim = Simulator::new(&g, CongestConfig::classical(4));
        let (_, report) = sim.run(|_| Chatter, 7);
        assert!(!report.completed);
        assert_eq!(report.rounds, 7);
    }

    /// Budget enforcement: oversized messages panic.
    struct Oversender;
    impl NodeAlgorithm for Oversender {
        fn on_start(&mut self, _: &NodeInfo, out: &mut Outbox) {
            out.send(0, Message::from_uint(0xFFFF, 16));
        }
        fn on_round(&mut self, _: &NodeInfo, _: &Inbox, _: &mut Outbox) {}
        fn is_terminated(&self) -> bool {
            true
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the B = 8 bit budget")]
    fn oversized_message_panics() {
        let g = Graph::path(2);
        let sim = Simulator::new(&g, CongestConfig::classical(8));
        sim.run(|_| Oversender, 1);
    }

    /// Double-send on the same port panics.
    struct DoubleSender;
    impl NodeAlgorithm for DoubleSender {
        fn on_start(&mut self, _: &NodeInfo, out: &mut Outbox) {
            out.send(0, Message::from_bit(true));
            out.send(0, Message::from_bit(false));
        }
        fn on_round(&mut self, _: &NodeInfo, _: &Inbox, _: &mut Outbox) {}
        fn is_terminated(&self) -> bool {
            true
        }
    }

    #[test]
    #[should_panic(expected = "one message per edge per round")]
    fn double_send_panics() {
        let g = Graph::path(2);
        let sim = Simulator::new(&g, CongestConfig::classical(8));
        sim.run(|_| DoubleSender, 1);
    }

    #[test]
    fn quantum_config_labels_report() {
        let g = Graph::path(2);
        let sim = Simulator::new(&g, CongestConfig::quantum(4));
        let (_, report) = sim.run(|_| Silent, 1);
        assert_eq!(report.channel, ChannelKind::Quantum);
    }

    #[test]
    fn stepper_matches_batch_run() {
        // Step-by-step execution produces the same final states and the
        // same per-round traffic as Simulator::run.
        let g = Graph::cycle(6);
        let cfg = CongestConfig::classical(16);
        let make = |info: &NodeInfo| HearAll {
            heard: 0,
            need: info.degree(),
        };
        let sim = Simulator::new(&g, cfg);
        let (batch, report) = sim.run(make, 10);
        let mut stepper = Stepper::new(&g, cfg, make);
        let mut total_msgs = 0;
        while !stepper.is_quiescent() {
            total_msgs += stepper.step().messages;
        }
        assert_eq!(stepper.rounds(), report.rounds);
        assert_eq!(total_msgs, report.messages_sent);
        for (a, b) in batch.iter().zip(stepper.nodes()) {
            assert_eq!(a.heard, b.heard);
        }
    }

    #[test]
    fn quiescent_step_is_a_noop() {
        // Stepping past quiescence must not invoke on_round again, must
        // not advance the round counter, and must report zero traffic.
        let g = Graph::complete(4);
        let cfg = CongestConfig::classical(16);
        let make = |info: &NodeInfo| HearAll {
            heard: 0,
            need: info.degree(),
        };
        let mut stepper = Stepper::new(&g, cfg, make);
        while !stepper.is_quiescent() {
            stepper.step();
        }
        let rounds = stepper.rounds();
        let report = stepper.report();
        let heard: Vec<usize> = stepper.nodes().iter().map(|n| n.heard).collect();
        for _ in 0..3 {
            let summary = stepper.step();
            assert_eq!(
                summary,
                StepSummary {
                    round: rounds,
                    messages: 0,
                    bits: 0
                }
            );
        }
        assert_eq!(stepper.rounds(), rounds);
        assert_eq!(stepper.report(), report);
        let after: Vec<usize> = stepper.nodes().iter().map(|n| n.heard).collect();
        assert_eq!(heard, after);
    }

    #[test]
    fn stepper_report_matches_batch_report() {
        let g = Graph::cycle(6);
        let cfg = CongestConfig::classical(16);
        let make = |info: &NodeInfo| HearAll {
            heard: 0,
            need: info.degree(),
        };
        let sim = Simulator::new(&g, cfg);
        let (_, batch_report) = sim.run(make, 10);
        let mut stepper = Stepper::new(&g, cfg, make);
        while !stepper.is_quiescent() {
            stepper.step();
        }
        assert_eq!(stepper.report(), batch_report);
    }

    #[test]
    fn stepper_run_to_quiescence_caps() {
        let g = Graph::path(2);
        let cfg = CongestConfig::classical(4);
        let mut stepper = Stepper::new(&g, cfg, |_| Chatter);
        assert_eq!(stepper.run_to_quiescence(5), 5); // never quiesces
    }

    #[test]
    fn node_info_ports_are_consistent() {
        let g = Graph::cycle(5);
        let sim = Simulator::new(&g, CongestConfig::classical(8));
        for u in g.nodes() {
            let info = sim.info(u);
            assert_eq!(info.degree(), 2);
            for (p, &v) in info.neighbors.iter().enumerate() {
                assert_eq!(info.port_to(v), Some(p));
                // The incident edge on this port really connects u and v.
                let (a, b) = g.endpoints(info.incident_edges[p]);
                assert!((a == u && b == v) || (a == v && b == u));
            }
        }
    }
}
