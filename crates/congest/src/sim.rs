//! The lockstep CONGEST simulator.

use crate::bits::BitString;
use crate::chaos::{ChaosConfig, FaultAction, FaultPlan};
use crate::message::Message;
use crate::telemetry::{NullTelemetry, Telemetry};
use qdc_graph::{EdgeId, Graph, NodeId};

/// A structured CONGEST-discipline violation.
///
/// The panicking APIs ([`Outbox::send`], [`Simulator::run`]) report these
/// conditions by panicking with the same message the corresponding
/// variant displays; the fallible APIs ([`Outbox::try_send`],
/// [`Simulator::try_run`]) return them instead and never panic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SimError {
    /// A message exceeded the per-edge per-round `B`-bit budget.
    BudgetExceeded {
        /// Size of the offending message.
        bits: usize,
        /// The configured budget `B`.
        budget: usize,
    },
    /// A second message was queued on the same port in one round.
    DoublePortSend {
        /// The contested port.
        port: usize,
    },
    /// A port index at or beyond the node's degree.
    PortOutOfRange {
        /// The offending port.
        port: usize,
        /// The node's port count (its degree).
        ports: usize,
    },
    /// A [`try_run`](Simulator::try_run) passed its
    /// [`max_rounds_watchdog`](ChaosConfig::max_rounds_watchdog) cap
    /// without reaching quiescence.
    WatchdogTripped {
        /// Rounds executed when the watchdog fired.
        rounds: usize,
    },
    /// A [`ChaosConfig`] probability outside `[0, 1]`.
    InvalidChaosConfig {
        /// The offending probability.
        prob: f64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SimError::BudgetExceeded { bits, budget } => {
                write!(
                    f,
                    "message of {bits} bits exceeds the B = {budget} bit budget"
                )
            }
            SimError::DoublePortSend { port } => write!(
                f,
                "port {port} already has a message this round (one message per edge per round)"
            ),
            SimError::PortOutOfRange { port, ports } => {
                write!(f, "port {port} out of range (node has {ports} ports)")
            }
            SimError::WatchdogTripped { rounds } => {
                write!(f, "watchdog tripped: no quiescence after {rounds} rounds")
            }
            SimError::InvalidChaosConfig { prob } => {
                write!(f, "chaos probability {prob} outside [0, 1]")
            }
        }
    }
}

impl SimError {
    /// A stable machine-readable name for the variant, as stamped into
    /// `qdc-campaign-failure/v1` records (`kind` field). Names are part
    /// of that schema's contract; changing one is a schema change.
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::BudgetExceeded { .. } => "budget_exceeded",
            SimError::DoublePortSend { .. } => "double_port_send",
            SimError::PortOutOfRange { .. } => "port_out_of_range",
            SimError::WatchdogTripped { .. } => "watchdog_tripped",
            SimError::InvalidChaosConfig { .. } => "invalid_chaos_config",
        }
    }

    /// The retry taxonomy for supervised runners: whether re-executing
    /// the same workload could plausibly succeed.
    ///
    /// [`WatchdogTripped`](SimError::WatchdogTripped) is a resource cap,
    /// the moral equivalent of a deadline: a supervisor may retry it
    /// (perhaps under a different budget) without risking masking a
    /// protocol bug. Every other variant is a deterministic protocol or
    /// configuration violation — the same inputs will fail the same way
    /// every time, so retrying only wastes attempts and a supervisor
    /// should record it as permanent.
    pub fn is_retryable(&self) -> bool {
        matches!(self, SimError::WatchdogTripped { .. })
    }

    /// Classifies a panic message produced by one of the panicking
    /// simulator APIs (which emit exactly the [`Display`] text of the
    /// corresponding variant) back into the `(kind, retryable)` pair of
    /// that variant. Returns `None` for messages no simulator API emits,
    /// so supervisors can distinguish a structural simulator error from
    /// an arbitrary panic.
    ///
    /// [`Display`]: std::fmt::Display
    pub fn classify_message(msg: &str) -> Option<(&'static str, bool)> {
        let probes: [(&str, SimError); 5] = [
            (
                "exceeds the B = ",
                SimError::BudgetExceeded { bits: 0, budget: 0 },
            ),
            (
                "already has a message this round",
                SimError::DoublePortSend { port: 0 },
            ),
            (
                "out of range (node has",
                SimError::PortOutOfRange { port: 0, ports: 0 },
            ),
            ("watchdog tripped", SimError::WatchdogTripped { rounds: 0 }),
            (
                "chaos probability",
                SimError::InvalidChaosConfig { prob: 0.0 },
            ),
        ];
        probes
            .iter()
            .find(|(fragment, _)| msg.contains(fragment))
            .map(|(_, e)| (e.kind(), e.is_retryable()))
    }
}

impl std::error::Error for SimError {}

/// Whether a link carries classical bits or qubits.
///
/// The simulator's mechanics are identical either way — what differs is
/// the *unit of account* in the [`RunReport`] (bits vs qubits) and which
/// lower bound applies. The paper's point is precisely that for the
/// problems it studies the counts cannot differ much.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ChannelKind {
    /// Classical B-bit channels (the classical CONGEST model).
    Classical,
    /// Quantum B-qubit channels with unlimited prior entanglement (the
    /// paper's strongest model).
    Quantum,
}

/// Simulator configuration: the bandwidth parameter `B` and channel kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CongestConfig {
    /// Per-edge per-round budget in bits (or qubits), the `B` of
    /// CONGEST(B).
    pub bandwidth_bits: usize,
    /// Channel kind (accounting label).
    pub channel: ChannelKind,
    /// EPR/teleportation accounting (Appendix B): when set on a
    /// [`Quantum`](ChannelKind::Quantum) channel, every qubit sent is
    /// charged as the **2 classical bits** its teleportation consumes,
    /// so a `q`-qubit message needs `2q ≤ B` of the budget. Off by
    /// default — the plain quantum model budgets qubits directly, and
    /// is mechanically identical to the classical engine.
    pub teleport: bool,
}

impl CongestConfig {
    /// Classical CONGEST(B).
    pub fn classical(bandwidth_bits: usize) -> Self {
        CongestConfig {
            bandwidth_bits,
            channel: ChannelKind::Classical,
            teleport: false,
        }
    }

    /// Quantum CONGEST(B) with prior entanglement: `B` qubits per edge
    /// per round, budgeted one-for-one.
    pub fn quantum(bandwidth_bits: usize) -> Self {
        CongestConfig {
            bandwidth_bits,
            channel: ChannelKind::Quantum,
            teleport: false,
        }
    }

    /// Quantum CONGEST(B) under teleportation accounting: the channel
    /// carries qubits, but each one is charged as the 2 classical bits
    /// of its teleportation (Appendix B), against the same `B`-bit
    /// budget.
    pub fn quantum_teleport(bandwidth_bits: usize) -> Self {
        CongestConfig {
            bandwidth_bits,
            channel: ChannelKind::Quantum,
            teleport: true,
        }
    }

    /// Budget units charged per payload bit/qubit: 2 under quantum
    /// teleportation accounting, 1 everywhere else.
    pub fn charge_factor(&self) -> usize {
        if self.channel == ChannelKind::Quantum && self.teleport {
            2
        } else {
            1
        }
    }
}

/// Execution options of a [`Simulator`], orthogonal to the CONGEST model
/// parameters in [`CongestConfig`]: how the engine runs, never what it
/// computes.
///
/// The compute phase (every node's `on_round`) shards across `threads`
/// scoped workers with a fixed chunking by node index; delivery, chaos
/// decisions and accounting always run on the calling thread in the
/// engine's one deterministic order. The outcome — states, reports,
/// traces, telemetry — is therefore **byte-identical at every thread
/// count** (the same contract the campaign runner in `qdc-harness`
/// keeps at the experiment level).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunOptions {
    /// Worker threads for the node compute phase. `1` (the default)
    /// steps every node inline; `0` is treated as `1`, and values above
    /// the node count are clamped down.
    pub threads: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions { threads: 1 }
    }
}

/// What a node knows about itself and its surroundings — exactly the
/// paper's "limited topological knowledge": its own id, `n`, and the ids
/// of its neighbors (Section 2.1).
#[derive(Clone, Debug)]
pub struct NodeInfo {
    /// This node's id.
    pub id: NodeId,
    /// Total number of nodes in the network (standard CONGEST assumption).
    pub node_count: usize,
    /// Neighbor id per port; port `p` is this node's `p`-th incident edge.
    pub neighbors: Vec<NodeId>,
    /// Host edge id per port (used to look up subgraph indicators and
    /// weights in problem inputs; not information the node "computes").
    pub incident_edges: Vec<EdgeId>,
}

impl NodeInfo {
    /// Number of ports (the node's degree).
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// The port leading to neighbor `v`, if adjacent.
    pub fn port_to(&self, v: NodeId) -> Option<usize> {
        self.neighbors.iter().position(|&u| u == v)
    }
}

/// Messages received by one node in the current round, indexed by port.
#[derive(Clone, Debug)]
pub struct Inbox {
    msgs: Vec<Option<Message>>,
}

impl Inbox {
    fn new(ports: usize) -> Self {
        Inbox {
            msgs: vec![None; ports],
        }
    }

    /// The message received on `port` this round, if any.
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree` (an out-of-range port is a programming
    /// error, not an empty slot). Use [`get_checked`](Inbox::get_checked)
    /// to fold both cases into `None`.
    pub fn get(&self, port: usize) -> Option<&Message> {
        self.msgs[port].as_ref()
    }

    /// The message received on `port` this round — `None` both when the
    /// slot is empty and when `port` is out of range. The non-panicking
    /// twin of [`get`](Inbox::get).
    pub fn get_checked(&self, port: usize) -> Option<&Message> {
        self.msgs.get(port).and_then(Option::as_ref)
    }

    /// Iterates over `(port, message)` pairs received this round.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Message)> {
        self.msgs
            .iter()
            .enumerate()
            .filter_map(|(p, m)| m.as_ref().map(|m| (p, m)))
    }

    /// Whether nothing was received this round.
    pub fn is_empty(&self) -> bool {
        self.msgs.iter().all(Option::is_none)
    }

    /// Number of messages received this round.
    pub fn len(&self) -> usize {
        self.msgs.iter().filter(|m| m.is_some()).count()
    }

    /// Builds an inbox from raw per-port slots — for harnesses that drive
    /// a [`NodeAlgorithm`] outside the simulator (e.g. the three-party
    /// replay in `qdc-simthm`).
    pub fn from_slots(slots: Vec<Option<Message>>) -> Self {
        Inbox { msgs: slots }
    }

    /// Recovers the raw per-port slots, so harness loops can reuse one
    /// allocation round after round instead of rebuilding inboxes.
    pub fn into_slots(self) -> Vec<Option<Message>> {
        self.msgs
    }

    /// Empties every slot in place, keeping the allocation.
    pub fn clear(&mut self) {
        for slot in &mut self.msgs {
            *slot = None;
        }
    }

    /// Places `msg` in `port`'s slot — for harnesses that route messages
    /// themselves into a reused inbox. A message already in the slot is
    /// silently replaced (harnesses enforce the one-message-per-edge
    /// discipline on the sending side).
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree`. Use [`try_put`](Inbox::try_put) for a
    /// fallible variant.
    pub fn put(&mut self, port: usize, msg: Message) {
        self.msgs[port] = Some(msg);
    }

    /// Fallible [`put`](Inbox::put): returns
    /// [`SimError::PortOutOfRange`] instead of panicking. Keeps `put`'s
    /// replace-on-occupied semantics.
    #[must_use = "an ignored Err means the message was silently not placed in any slot"]
    pub fn try_put(&mut self, port: usize, msg: Message) -> Result<(), SimError> {
        let ports = self.msgs.len();
        match self.msgs.get_mut(port) {
            Some(slot) => {
                *slot = Some(msg);
                Ok(())
            }
            None => Err(SimError::PortOutOfRange { port, ports }),
        }
    }
}

/// Staging area for a node's outgoing messages this round.
///
/// Enforces the CONGEST discipline: at most one message per incident edge
/// per round, each at most `B` bits.
#[derive(Debug)]
pub struct Outbox {
    budget_bits: usize,
    /// Budget units charged per payload bit —
    /// [`CongestConfig::charge_factor`]: 2 under quantum teleportation
    /// accounting, 1 otherwise.
    charge: usize,
    msgs: Vec<Option<Message>>,
    queued: usize,
    /// In strict mode (the default), a discipline violation via
    /// [`send`](Outbox::send) panics. In lenient mode — used by
    /// [`Simulator::try_run`] — the first violation is recorded in
    /// `defect`, the offending message is discarded, and the round
    /// engine surfaces the error at the end of the round.
    strict: bool,
    defect: Option<SimError>,
}

impl Outbox {
    fn new(ports: usize, budget_bits: usize, charge: usize, strict: bool) -> Self {
        Outbox {
            budget_bits,
            charge,
            msgs: vec![None; ports],
            queued: 0,
            strict,
            defect: None,
        }
    }

    /// Wraps an already-emptied slot vector, so the round loop reuses one
    /// allocation per node instead of building a fresh `Vec` every round.
    fn reuse(msgs: Vec<Option<Message>>, budget_bits: usize, charge: usize, strict: bool) -> Self {
        debug_assert!(
            msgs.iter().all(Option::is_none),
            "reused outbox must start empty"
        );
        Outbox {
            budget_bits,
            charge,
            msgs,
            queued: 0,
            strict,
            defect: None,
        }
    }

    /// Queues `msg` on `port`, returning the violated rule instead of
    /// panicking: [`SimError::BudgetExceeded`] for an oversized message,
    /// [`SimError::PortOutOfRange`] for a bad port, and
    /// [`SimError::DoublePortSend`] for a second message on one port. On
    /// `Err` nothing is queued.
    #[must_use = "an ignored Err means the message was silently never queued"]
    pub fn try_send(&mut self, port: usize, msg: Message) -> Result<(), SimError> {
        // Charged size: payload bits times the accounting factor (2 per
        // qubit under teleportation, else 1). The reported `bits` is the
        // charged amount, so the error names what actually overflowed.
        if msg.bit_len() * self.charge > self.budget_bits {
            return Err(SimError::BudgetExceeded {
                bits: msg.bit_len() * self.charge,
                budget: self.budget_bits,
            });
        }
        let ports = self.msgs.len();
        let Some(slot) = self.msgs.get_mut(port) else {
            return Err(SimError::PortOutOfRange { port, ports });
        };
        if slot.is_some() {
            return Err(SimError::DoublePortSend { port });
        }
        *slot = Some(msg);
        self.queued += 1;
        Ok(())
    }

    /// Queues `msg` on `port` — the panicking wrapper over
    /// [`try_send`](Outbox::try_send).
    ///
    /// # Panics
    ///
    /// Panics if the message exceeds the `B`-bit budget, the port already
    /// has a message this round, or the port is out of range — except
    /// inside [`Simulator::try_run`], where the violation is recorded and
    /// returned as that run's [`SimError`] instead.
    pub fn send(&mut self, port: usize, msg: Message) {
        if let Err(e) = self.try_send(port, msg) {
            if self.strict {
                panic!("{e}");
            } else if self.defect.is_none() {
                self.defect = Some(e);
            }
        }
    }

    /// Sends a copy of `msg` on every port (moving, not cloning, the
    /// original into the last port — one clone fewer per broadcast on
    /// the round engine's hot path).
    pub fn broadcast(&mut self, msg: Message) {
        let ports = self.msgs.len();
        for port in 0..ports.saturating_sub(1) {
            self.send(port, msg.clone());
        }
        if ports > 0 {
            self.send(ports - 1, msg);
        }
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.msgs.len()
    }

    fn take(&mut self) -> Vec<Option<Message>> {
        std::mem::take(&mut self.msgs)
    }

    /// A detached outbox for harnesses that drive a [`NodeAlgorithm`]
    /// outside the simulator. The same budget discipline applies
    /// (violations via [`send`](Outbox::send) panic; use
    /// [`try_send`](Outbox::try_send) to handle them).
    pub fn detached(ports: usize, budget_bits: usize) -> Self {
        Outbox::new(ports, budget_bits, 1, true)
    }

    /// A detached outbox reusing an already-emptied slot vector (as
    /// returned by [`into_slots`](Outbox::into_slots) after the messages
    /// were taken), so harness loops keep one allocation per node.
    ///
    /// # Panics
    ///
    /// Debug-panics if any slot is still occupied.
    pub fn detached_reusing(slots: Vec<Option<Message>>, budget_bits: usize) -> Self {
        Outbox::reuse(slots, budget_bits, 1, true)
    }

    /// Extracts the queued messages from a detached outbox.
    pub fn into_slots(mut self) -> Vec<Option<Message>> {
        self.take()
    }
}

/// A distributed algorithm, from one node's point of view.
///
/// The simulator calls [`on_start`](NodeAlgorithm::on_start) once before
/// any communication, then [`on_round`](NodeAlgorithm::on_round) once per
/// round with that round's inbox. The run ends at **quiescence**: every
/// node reports [`is_terminated`](NodeAlgorithm::is_terminated) and no
/// messages are in flight. This supports event-driven algorithms that are
/// "always terminated" but keep forwarding improvements — the run ends
/// exactly when the information flow dies down (the standard implicit-
/// termination convention in synchronous models).
///
/// The `Send` supertrait lets the engine shard the compute phase across
/// scoped worker threads ([`RunOptions::threads`]); node states are
/// plain data moved between rounds, never shared, so any ordinary
/// algorithm state satisfies it automatically.
pub trait NodeAlgorithm: Send {
    /// Round-0 initialization; may send messages.
    fn on_start(&mut self, info: &NodeInfo, out: &mut Outbox);

    /// One synchronous round: consume this round's inbox, update state,
    /// queue next round's messages.
    fn on_round(&mut self, info: &NodeInfo, inbox: &Inbox, out: &mut Outbox);

    /// Whether this node is done. Must be monotone (once `true`, stays
    /// `true`).
    fn is_terminated(&self) -> bool;
}

/// The plain-data metric vector of one run — everything a campaign
/// aggregator needs, extracted from a [`RunReport`] by
/// [`RunReport::metrics`].
///
/// Unlike `RunReport` it is `Eq` and fully integral (no channel label,
/// no floats), so metric vectors can be compared, hashed, summed and
/// folded into order-independent aggregates without worrying about
/// float formatting or partial equality. All fields are `u64` so the
/// same schema serializes identically on every platform.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct RunMetrics {
    /// Communication rounds executed.
    pub rounds: u64,
    /// Whether the run reached quiescence (1) or hit its round cap (0) —
    /// kept integral so the whole struct folds with sums and maxes.
    pub completed: u64,
    /// Total messages delivered.
    pub messages_sent: u64,
    /// Total payload bits (or qubits) delivered.
    pub bits_sent: u64,
    /// Maximum total payload bits delivered in any single round — the
    /// run's peak congestion.
    pub max_bits_per_round: u64,
    /// Messages removed in flight by the fault layer.
    pub messages_dropped: u64,
    /// Nodes crash-stopped by the fault layer.
    pub nodes_crashed: u64,
    /// Payload bits flipped or truncated away by the fault layer.
    pub bits_corrupted: u64,
}

/// Round and traffic accounting for one simulated run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunReport {
    /// Number of communication rounds executed.
    pub rounds: usize,
    /// Whether every node terminated within the round limit.
    pub completed: bool,
    /// Total messages delivered.
    pub messages_sent: u64,
    /// Total payload bits (or qubits) delivered.
    pub bits_sent: u64,
    /// Maximum total payload bits delivered in any single round.
    pub max_bits_per_round: u64,
    /// The channel kind the run was accounted under.
    pub channel: ChannelKind,
    /// Messages removed in flight by the fault layer (random drops plus
    /// messages lost to crashed endpoints). Zero on fault-free runs.
    pub messages_dropped: u64,
    /// Nodes crash-stopped by the fault layer. Zero on fault-free runs.
    pub nodes_crashed: u64,
    /// Payload bits flipped or truncated away by the fault layer. Zero
    /// on fault-free runs.
    pub bits_corrupted: u64,
}

impl RunReport {
    /// Extracts the integral metric vector of this run — a cheap `Copy`
    /// suitable for cross-thread aggregation (see `qdc-harness`).
    pub fn metrics(&self) -> RunMetrics {
        RunMetrics {
            rounds: self.rounds as u64,
            completed: u64::from(self.completed),
            messages_sent: self.messages_sent,
            bits_sent: self.bits_sent,
            max_bits_per_round: self.max_bits_per_round,
            messages_dropped: self.messages_dropped,
            nodes_crashed: self.nodes_crashed,
            bits_corrupted: self.bits_corrupted,
        }
    }
}

/// One delivered message in a [`TrafficTrace`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TracedMessage {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Payload size in bits.
    pub bits: usize,
}

/// Per-round record of every delivered message, produced by
/// [`Simulator::run_traced`]. Entry `r` of [`rounds`](TrafficTrace::rounds)
/// holds the messages delivered at the start of round `r + 1` of the
/// unified round loop (sent during round `r`, with round 0 being
/// `on_start`) — the same delivery schedule [`Stepper::step`] walks one
/// round at a time.
#[derive(Clone, Debug, Default)]
pub struct TrafficTrace {
    /// `rounds[r]` lists the messages delivered in round `r + 1`.
    pub rounds: Vec<Vec<TracedMessage>>,
    /// `dropped[r]` counts the messages the fault layer removed in round
    /// `r + 1` (all zeros on fault-free runs). Same indexing as
    /// [`rounds`](TrafficTrace::rounds), so trace consumers can line up
    /// delivered and lost traffic per round.
    pub dropped: Vec<u64>,
}

/// The lockstep CONGEST simulator over a fixed network graph.
///
/// See the crate-level example for usage.
#[derive(Debug)]
pub struct Simulator<'g> {
    graph: &'g Graph,
    config: CongestConfig,
    options: RunOptions,
    infos: Vec<NodeInfo>,
    /// `back_port[u][p]` is the port on which `u`'s neighbor over port
    /// `p` sees `u` — precomputed so delivery routes each message in
    /// O(1) instead of scanning the receiver's neighbor list.
    back_port: Vec<Vec<usize>>,
    /// `slot_base[u] + p` is the directed-slot index of `u`'s port `p`
    /// in the engine's columnar offset tables (prefix sums of degrees,
    /// `Σ deg = 2·|E|` slots total).
    slot_base: Vec<usize>,
    /// `slot_dst[s]` is the receiver coordinate `(node index, inbox
    /// port)` of directed slot `s` — the back-port tables flattened
    /// into slot order, so scatter resolves a slot straight to its
    /// inbox cell without re-deriving the port inversion.
    slot_dst: Vec<(usize, usize)>,
}

impl<'g> Simulator<'g> {
    /// Prepares a simulator on `graph` with the given configuration and
    /// default [`RunOptions`] (single-threaded compute).
    pub fn new(graph: &'g Graph, config: CongestConfig) -> Self {
        Simulator::with_options(graph, config, RunOptions::default())
    }

    /// Prepares a simulator on `graph` with explicit execution options.
    /// Options never change outcomes — a run at any thread count is
    /// byte-identical to the same run under [`new`](Simulator::new).
    pub fn with_options(graph: &'g Graph, config: CongestConfig, options: RunOptions) -> Self {
        let n = graph.node_count();
        let infos: Vec<NodeInfo> = graph
            .nodes()
            .map(|u| NodeInfo {
                id: u,
                node_count: n,
                neighbors: graph.incident(u).iter().map(|&(_, v)| v).collect(),
                incident_edges: graph.incident(u).iter().map(|&(e, _)| e).collect(),
            })
            .collect();
        // Invert the port maps in O(Σ deg) via edge ids: record each
        // endpoint's port per edge, then read the opposite side.
        let mut edge_ports: Vec<[usize; 2]> = vec![[usize::MAX; 2]; graph.edge_count()];
        for info in &infos {
            for (p, &e) in info.incident_edges.iter().enumerate() {
                let (a, _) = graph.endpoints(e);
                let side = usize::from(a != info.id);
                edge_ports[e.index()][side] = p;
            }
        }
        let back_port: Vec<Vec<usize>> = infos
            .iter()
            .map(|info| {
                info.incident_edges
                    .iter()
                    .map(|&e| {
                        let (a, _) = graph.endpoints(e);
                        let other_side = usize::from(a == info.id);
                        edge_ports[e.index()][other_side]
                    })
                    .collect()
            })
            .collect();
        let mut slot_base = Vec::with_capacity(infos.len());
        let mut acc = 0usize;
        for info in &infos {
            slot_base.push(acc);
            acc += info.degree();
        }
        let mut slot_dst = Vec::with_capacity(acc);
        for (u, info) in infos.iter().enumerate() {
            for (p, &v) in info.neighbors.iter().enumerate() {
                slot_dst.push((v.index(), back_port[u][p]));
            }
        }
        Simulator {
            graph,
            config,
            options,
            infos,
            back_port,
            slot_base,
            slot_dst,
        }
    }

    /// The network graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The configuration.
    pub fn config(&self) -> CongestConfig {
        self.config
    }

    /// The execution options.
    pub fn options(&self) -> RunOptions {
        self.options
    }

    /// Per-node topology information (what node `v` is told at start).
    pub fn info(&self, v: NodeId) -> &NodeInfo {
        &self.infos[v.index()]
    }

    /// The port on which `u`'s neighbor over port `port` sees `u` — the
    /// precomputed O(1) reverse of [`NodeInfo::port_to`], for harnesses
    /// that route messages themselves.
    pub fn back_port(&self, u: NodeId, port: usize) -> usize {
        self.back_port[u.index()][port]
    }

    /// Runs the algorithm to termination or `max_rounds`, whichever comes
    /// first. `init` builds each node's initial state from its local view.
    ///
    /// Returns the final node states and the [`RunReport`].
    pub fn run<A, F>(&self, init: F, max_rounds: usize) -> (Vec<A>, RunReport)
    where
        A: NodeAlgorithm,
        F: FnMut(&NodeInfo) -> A,
    {
        let (nodes, report, _) = self
            .run_core(init, max_rounds, false, None, true, &mut NullTelemetry)
            .unwrap_or_else(|_| unreachable!("strict fault-free runs cannot fail"));
        (nodes, report)
    }

    /// Like [`run`](Simulator::run), but also records every delivered
    /// message per round — used by the Quantum Simulation Theorem
    /// machinery to audit which messages cross party-ownership boundaries.
    pub fn run_traced<A, F>(&self, init: F, max_rounds: usize) -> (Vec<A>, RunReport, TrafficTrace)
    where
        A: NodeAlgorithm,
        F: FnMut(&NodeInfo) -> A,
    {
        self.run_core(init, max_rounds, true, None, true, &mut NullTelemetry)
            .unwrap_or_else(|_| unreachable!("strict fault-free runs cannot fail"))
    }

    /// [`run_traced`](Simulator::run_traced) with a [`Telemetry`] sink
    /// observing every round: span open/close, one event per delivered
    /// message (edge, endpoints, exact bit count), and the quiescence
    /// outcome. Telemetry observes, never perturbs — the states, report
    /// and trace are bit-for-bit those of the unobserved run.
    pub fn run_traced_observed<A, F, T>(
        &self,
        init: F,
        max_rounds: usize,
        telemetry: &mut T,
    ) -> (Vec<A>, RunReport, TrafficTrace)
    where
        A: NodeAlgorithm,
        F: FnMut(&NodeInfo) -> A,
        T: Telemetry,
    {
        self.run_core(init, max_rounds, true, None, true, telemetry)
            .unwrap_or_else(|_| unreachable!("strict fault-free runs cannot fail"))
    }

    /// Runs the algorithm under fault injection, never panicking on
    /// adversarial behavior: discipline violations (oversized messages,
    /// double sends, out-of-range ports) and watchdog trips come back as
    /// [`SimError`]s, and the faults described by `chaos` — seeded drops,
    /// crash-stops, payload corruption — are applied at delivery time by
    /// a [`FaultPlan`] built from it. Two invocations with the same
    /// config produce byte-identical outcomes, including the fault
    /// counters in the [`RunReport`].
    ///
    /// The run ends at quiescence (`Ok`) or at
    /// [`max_rounds_watchdog`](ChaosConfig::max_rounds_watchdog) rounds
    /// ([`SimError::WatchdogTripped`]).
    #[must_use = "dropping the Result loses both the final states and the SimError diagnosis"]
    pub fn try_run<A, F>(
        &self,
        init: F,
        chaos: &ChaosConfig,
    ) -> Result<(Vec<A>, RunReport), SimError>
    where
        A: NodeAlgorithm,
        F: FnMut(&NodeInfo) -> A,
    {
        chaos.validate()?;
        let plan = FaultPlan::new(chaos, self.graph.node_count());
        let (nodes, report, _) = self.run_core(
            init,
            chaos.max_rounds_watchdog,
            false,
            Some(plan),
            false,
            &mut NullTelemetry,
        )?;
        Ok((nodes, report))
    }

    /// [`try_run`](Simulator::try_run) with a [`Telemetry`] sink
    /// observing every round, including chaos events attributed to the
    /// faulting edge (drops, in-flight corruption, crash activations).
    /// The [`FaultPlan`] is consulted in exactly the unobserved order,
    /// so the outcome is bit-for-bit that of
    /// [`try_run`](Simulator::try_run) under the same config.
    #[must_use = "dropping the Result loses both the final states and the SimError diagnosis"]
    pub fn try_run_observed<A, F, T>(
        &self,
        init: F,
        chaos: &ChaosConfig,
        telemetry: &mut T,
    ) -> Result<(Vec<A>, RunReport), SimError>
    where
        A: NodeAlgorithm,
        F: FnMut(&NodeInfo) -> A,
        T: Telemetry,
    {
        chaos.validate()?;
        let plan = FaultPlan::new(chaos, self.graph.node_count());
        let (nodes, report, _) = self.run_core(
            init,
            chaos.max_rounds_watchdog,
            false,
            Some(plan),
            false,
            telemetry,
        )?;
        Ok((nodes, report))
    }

    /// [`try_run`](Simulator::try_run) with a per-round [`TrafficTrace`]
    /// of delivered and dropped messages.
    #[must_use = "dropping the Result loses the states, the trace, and the SimError diagnosis"]
    pub fn try_run_traced<A, F>(
        &self,
        init: F,
        chaos: &ChaosConfig,
    ) -> Result<(Vec<A>, RunReport, TrafficTrace), SimError>
    where
        A: NodeAlgorithm,
        F: FnMut(&NodeInfo) -> A,
    {
        chaos.validate()?;
        let plan = FaultPlan::new(chaos, self.graph.node_count());
        self.run_core(
            init,
            chaos.max_rounds_watchdog,
            true,
            Some(plan),
            false,
            &mut NullTelemetry,
        )
    }

    /// The shared run loop behind the panicking and fallible entry
    /// points. `strict` selects the violation policy (panic at send time
    /// vs collect-and-return) and, with it, the round-cap policy: strict
    /// runs return `completed = false` at `max_rounds`, lenient runs
    /// treat the cap as a watchdog and fail.
    fn run_core<A, F, T>(
        &self,
        init: F,
        max_rounds: usize,
        traced: bool,
        plan: Option<FaultPlan>,
        strict: bool,
        telemetry: &mut T,
    ) -> Result<(Vec<A>, RunReport, TrafficTrace), SimError>
    where
        A: NodeAlgorithm,
        F: FnMut(&NodeInfo) -> A,
        T: Telemetry,
    {
        let mut engine = self.engine_start(init, plan, strict);
        let mut trace = TrafficTrace::default();
        loop {
            if let Some(defect) = engine.defect {
                return Err(defect);
            }
            if engine.is_quiescent() {
                engine.report.completed = true;
                return Ok((engine.nodes, engine.report, trace));
            }
            if engine.report.rounds >= max_rounds {
                if strict {
                    return Ok((engine.nodes, engine.report, trace));
                }
                return Err(SimError::WatchdogTripped {
                    rounds: engine.report.rounds,
                });
            }
            if traced {
                let mut round_trace = Vec::new();
                let summary = self.engine_round(&mut engine, Some(&mut round_trace), telemetry);
                trace.rounds.push(round_trace);
                trace.dropped.push(summary.dropped);
            } else {
                self.engine_round(&mut engine, None, telemetry);
            }
        }
    }

    /// Runs every node's `on_start` and sets up the reusable round
    /// buffers — the shared entry point of [`run`](Simulator::run) and
    /// [`Stepper`].
    fn engine_start<A, F>(&self, mut init: F, plan: Option<FaultPlan>, strict: bool) -> Engine<A>
    where
        A: NodeAlgorithm,
        F: FnMut(&NodeInfo) -> A,
    {
        let mut nodes: Vec<A> = self.infos.iter().map(&mut init).collect();
        let mut outgoing = Vec::with_capacity(nodes.len());
        let mut pending = 0usize;
        let mut defect = None;
        for (i, node) in nodes.iter_mut().enumerate() {
            let mut out = Outbox::new(
                self.infos[i].degree(),
                self.config.bandwidth_bits,
                self.config.charge_factor(),
                strict,
            );
            node.on_start(&self.infos[i], &mut out);
            pending += out.queued;
            if defect.is_none() {
                defect = out.defect;
            }
            outgoing.push(out.take());
        }
        let inboxes = self
            .infos
            .iter()
            .map(|info| Inbox::new(info.degree()))
            .collect();
        let total_slots = 2 * self.graph.edge_count();
        Engine {
            nodes,
            outgoing,
            inboxes,
            slab: BitString::new(),
            slot_start: vec![0; total_slots],
            slot_bits: vec![0; total_slots],
            active: Vec::new(),
            prev_active: Vec::new(),
            scratch: Vec::new(),
            dead: vec![false; self.infos.len()],
            live_slots: total_slots as u64,
            pending,
            plan,
            strict,
            defect,
            report: RunReport {
                rounds: 0,
                completed: false,
                messages_sent: 0,
                bits_sent: 0,
                max_bits_per_round: 0,
                channel: self.config.channel,
                messages_dropped: 0,
                nodes_crashed: 0,
                bits_corrupted: 0,
            },
        }
    }

    /// Executes one synchronous round — pack, chaos-mask, scatter,
    /// account, step every node — on the engine's reusable buffers. The
    /// message plane is columnar: payloads pack into one per-round bit
    /// slab in delivery order, chaos applies as word-level edits to the
    /// slab, and delivery scatters slab ranges into recycled message
    /// shells. This is the single round implementation behind both
    /// [`Simulator::run`] and [`Stepper::step`], so batch and stepped
    /// execution cannot diverge.
    /// Every telemetry call site is gated on `T::ENABLED`, a constant:
    /// with the [`NullTelemetry`] sink the whole instrumentation
    /// monomorphizes away and this is exactly the unobserved hot path.
    fn engine_round<A: NodeAlgorithm, T: Telemetry>(
        &self,
        engine: &mut Engine<A>,
        mut round_trace: Option<&mut Vec<TracedMessage>>,
        telemetry: &mut T,
    ) -> StepSummary {
        let round = engine.report.rounds + 1;
        if T::ENABLED {
            telemetry.on_round_start(round);
        }
        // Activate any crash-stops scheduled for this round before any
        // delivery, so a crashed node's in-flight messages die with it.
        // Each fresh crash retires both directions of its still-live
        // incident edges from the live-capacity count; processing the
        // crashes one by one (against the engine's own `dead` mirror)
        // counts an edge between two same-round crashes exactly once.
        let dropped_before = if let Some(plan) = &mut engine.plan {
            plan.begin_round();
            for &v in plan.crashes_this_round() {
                if T::ENABLED {
                    telemetry.on_crash(round, v);
                }
                for &w in &self.infos[v.index()].neighbors {
                    if !engine.dead[w.index()] {
                        engine.live_slots -= 2;
                    }
                }
                engine.dead[v.index()] = true;
            }
            plan.stats().messages_dropped
        } else {
            0
        };
        // Pack: every queued payload concatenates into the per-round bit
        // slab in the fixed delivery order (ascending sender id, then
        // port), with the offset tables recording where each directed
        // slot's payload lives. Chaos applies to the packed form — a
        // drop leaves the slot off the active list, a toggle is a
        // word-level XOR into the slab, a truncation shortens the
        // recorded length (the scatter copy masks off the severed
        // tail).
        let mut messages = 0u64;
        let mut bits = 0u64;
        let Engine {
            outgoing,
            inboxes,
            plan,
            slab,
            slot_start,
            slot_bits,
            active,
            prev_active,
            scratch,
            ..
        } = engine;
        slab.clear();
        active.clear();
        for (u, ports) in outgoing.iter_mut().enumerate() {
            let info = &self.infos[u];
            let base = self.slot_base[u];
            for (p, slot) in ports.iter_mut().enumerate() {
                let Some(msg) = slot.take() else { continue };
                let v = info.neighbors[p];
                let len = msg.bit_len();
                let start = slab.len();
                slab.extend_bits(msg.payload());
                let mut kept = len;
                if let Some(plan) = plan.as_mut() {
                    match plan.decide(info.id, v, len) {
                        FaultAction::Deliver => {}
                        FaultAction::Drop => {
                            if T::ENABLED {
                                telemetry.on_chaos_drop(round, info.incident_edges[p], info.id, v);
                            }
                            continue;
                        }
                        FaultAction::Toggle(i) => {
                            slab.toggle(start + i);
                            if T::ENABLED {
                                telemetry.on_chaos_corrupt(
                                    round,
                                    info.incident_edges[p],
                                    info.id,
                                    v,
                                    1,
                                );
                            }
                        }
                        FaultAction::Truncate(keep) => {
                            kept = keep;
                            if T::ENABLED {
                                telemetry.on_chaos_corrupt(
                                    round,
                                    info.incident_edges[p],
                                    info.id,
                                    v,
                                    (len - keep) as u64,
                                );
                            }
                        }
                    }
                }
                slot_start[base + p] = start;
                slot_bits[base + p] = kept;
                active.push(base + p);
                messages += 1;
                bits += kept as u64;
                if T::ENABLED {
                    telemetry.on_delivery(round, info.incident_edges[p], info.id, v, kept);
                }
                if let Some(tr) = round_trace.as_deref_mut() {
                    tr.push(TracedMessage {
                        from: info.id,
                        to: v,
                        bits: kept,
                    });
                }
            }
        }
        // Scatter: batch delivery as slab copies, by merging this
        // round's and last round's sorted active lists. A slot active
        // in both rounds carves its payload into the shell already
        // sitting in its inbox cell (steady traffic never touches the
        // pool or the allocator); a slot that went idle retires its
        // shell to the scratch pool; a slot that woke up draws a pooled
        // shell. Sparse rounds therefore cost O(delivered), not
        // O(2·|E|).
        let retire = |inboxes: &mut [Inbox], scratch: &mut Vec<Message>, s: usize| {
            let (v, q) = self.slot_dst[s];
            if let Some(stale) = inboxes[v].msgs[q].take() {
                scratch.push(stale);
            }
        };
        let mut i = 0;
        for &s in active.iter() {
            while i < prev_active.len() && prev_active[i] < s {
                retire(inboxes, scratch, prev_active[i]);
                i += 1;
            }
            if i < prev_active.len() && prev_active[i] == s {
                i += 1;
            }
            let (v, q) = self.slot_dst[s];
            let dst = &mut inboxes[v].msgs[q];
            let mut msg = dst.take().or_else(|| scratch.pop()).unwrap_or_default();
            msg.load_range(slab, slot_start[s], slot_bits[s]);
            *dst = Some(msg);
        }
        while i < prev_active.len() {
            retire(inboxes, scratch, prev_active[i]);
            i += 1;
        }
        std::mem::swap(active, prev_active);
        engine.report.messages_sent += messages;
        engine.report.bits_sent += bits;
        engine.report.max_bits_per_round = engine.report.max_bits_per_round.max(bits);
        engine.report.rounds += 1;
        let mut dropped = 0;
        if let Some(plan) = &engine.plan {
            let stats = plan.stats();
            engine.report.messages_dropped = stats.messages_dropped;
            engine.report.nodes_crashed = stats.nodes_crashed;
            engine.report.bits_corrupted = stats.bits_corrupted;
            dropped = stats.messages_dropped - dropped_before;
        }

        // Compute: every live node takes a step, writing into its
        // (emptied) outgoing slot vector. Crashed nodes are frozen: their
        // `on_round` is never called again and they queue nothing. With
        // `RunOptions { threads > 1 }` the nodes shard across scoped
        // workers by fixed index chunks; the per-chunk folds join in
        // chunk order, so the pending sum (commutative) and the first
        // defect (chunk order = index order) match the sequential pass
        // exactly, and a strict-mode panic resurfaces with its original
        // payload.
        engine.pending = 0;
        let threads = self.options.threads.max(1).min(engine.nodes.len().max(1));
        if threads == 1 {
            for (i, node) in engine.nodes.iter_mut().enumerate() {
                if engine
                    .plan
                    .as_ref()
                    .is_some_and(|p| p.is_crashed(self.infos[i].id))
                {
                    continue;
                }
                let slots = std::mem::take(&mut engine.outgoing[i]);
                let mut out = Outbox::reuse(
                    slots,
                    self.config.bandwidth_bits,
                    self.config.charge_factor(),
                    engine.strict,
                );
                node.on_round(&self.infos[i], &engine.inboxes[i], &mut out);
                engine.pending += out.queued;
                if engine.defect.is_none() {
                    engine.defect = out.defect;
                }
                engine.outgoing[i] = out.take();
            }
        } else {
            let chunk = engine.nodes.len().div_ceil(threads);
            let bandwidth = self.config.bandwidth_bits;
            let charge = self.config.charge_factor();
            let strict = engine.strict;
            let plan = engine.plan.as_ref();
            let inboxes = &engine.inboxes;
            let infos = &self.infos;
            let mut pending = 0usize;
            let mut defect = None;
            std::thread::scope(|scope| {
                let handles: Vec<_> = engine
                    .nodes
                    .chunks_mut(chunk)
                    .zip(engine.outgoing.chunks_mut(chunk))
                    .enumerate()
                    .map(|(c, (nodes, outs))| {
                        let base = c * chunk;
                        scope.spawn(move || {
                            let mut queued = 0usize;
                            let mut defect = None;
                            for (k, (node, slot_vec)) in
                                nodes.iter_mut().zip(outs.iter_mut()).enumerate()
                            {
                                let i = base + k;
                                if plan.is_some_and(|p| p.is_crashed(infos[i].id)) {
                                    continue;
                                }
                                let slots = std::mem::take(slot_vec);
                                let mut out = Outbox::reuse(slots, bandwidth, charge, strict);
                                node.on_round(&infos[i], &inboxes[i], &mut out);
                                queued += out.queued;
                                if defect.is_none() {
                                    defect = out.defect;
                                }
                                *slot_vec = out.take();
                            }
                            (queued, defect)
                        })
                    })
                    .collect();
                for h in handles {
                    let (queued, chunk_defect) =
                        h.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
                    pending += queued;
                    if defect.is_none() {
                        defect = chunk_defect;
                    }
                }
            });
            engine.pending = pending;
            if engine.defect.is_none() {
                engine.defect = defect;
            }
        }
        if T::ENABLED {
            telemetry.on_round_end(round, engine.is_quiescent(), engine.live_slots);
        }
        StepSummary {
            round: engine.report.rounds,
            messages,
            bits,
            dropped,
        }
    }
}

/// The reusable execution state of one run: node states, double-buffered
/// outgoing/inbox slot vectors (allocated once, cleared in place each
/// round), the columnar message plane (payload slab, offset tables and
/// the recycled-shell pool), the count of in-flight messages, and the
/// accumulating [`RunReport`].
struct Engine<A> {
    nodes: Vec<A>,
    outgoing: Vec<Vec<Option<Message>>>,
    inboxes: Vec<Inbox>,
    /// The per-round bit-packed payload slab: every in-flight payload,
    /// concatenated in delivery order. Cleared (not freed) each round.
    slab: BitString,
    /// Slab offset per directed slot (`slot_base[u] + p`). Entries are
    /// meaningful only for slots on the `active` list this round;
    /// everything else is stale from an earlier round and never read.
    slot_start: Vec<usize>,
    /// Payload length per directed slot, post-corruption (a truncation
    /// shortens this; the severed slab tail is masked off at scatter).
    /// Same staleness contract as `slot_start`.
    slot_bits: Vec<usize>,
    /// The directed slots delivered this round, in pack order (which is
    /// ascending slot order). Scatter and inbox retirement walk this
    /// list instead of the full `2·|E|` slot plane, so a sparse round
    /// costs O(delivered), not O(slots).
    active: Vec<usize>,
    /// Last round's `active` list (swapped each round). Scatter merges
    /// the two sorted lists: a slot active in both rounds reuses its
    /// inbox shell in place, a slot that went idle retires its shell to
    /// `scratch`, a slot that woke up draws from `scratch`.
    prev_active: Vec<usize>,
    /// Retired message shells, so slots that flip from idle to active
    /// refill from a pooled allocation instead of the allocator.
    scratch: Vec<Message>,
    /// Engine-side crash mirror, updated crash by crash in activation
    /// order (unlike the plan's view, which flips a whole round's
    /// crashes at once) so shared edges are decremented exactly once.
    dead: Vec<bool>,
    /// Directed slots whose both endpoints are still alive — `2·|E|`
    /// until the first crash; the utilisation denominator reported to
    /// [`Telemetry::on_round_end`].
    live_slots: u64,
    /// Messages queued for the next delivery phase, maintained by the
    /// round loop so quiescence checks are O(n) instead of O(Σ deg).
    pending: usize,
    /// Fault-injection state, `None` for fault-free runs.
    plan: Option<FaultPlan>,
    /// Violation policy for the outboxes handed to nodes: strict panics,
    /// lenient records into `defect`.
    strict: bool,
    /// First discipline violation observed under the lenient policy.
    defect: Option<SimError>,
    report: RunReport,
}

impl<A: NodeAlgorithm> Engine<A> {
    /// Quiescence: nothing in flight and every *live* node terminated.
    /// Crashed nodes are frozen, so waiting on them would never end —
    /// they count as (involuntarily) terminated.
    fn is_quiescent(&self) -> bool {
        self.pending == 0
            && self.nodes.iter().enumerate().all(|(i, a)| {
                a.is_terminated()
                    || self
                        .plan
                        .as_ref()
                        .is_some_and(|p| p.is_crashed(NodeId(i as u32)))
            })
    }
}

/// A round-by-round stepper over a network algorithm — the incremental
/// counterpart of [`Simulator::run`], for debugging, visualization and
/// harnesses that need to inspect state between rounds.
///
/// Both drive the same private round engine, so a stepped run is
/// guaranteed to match the batch run round for round. Once the run is
/// [quiescent](Stepper::is_quiescent), further [`step`](Stepper::step)
/// calls are no-ops that deliver nothing.
///
/// # Example
///
/// ```
/// use qdc_congest::{CongestConfig, Inbox, Message, NodeAlgorithm, NodeInfo, Outbox, Stepper};
/// use qdc_graph::Graph;
///
/// struct Hop { got: bool }
/// impl NodeAlgorithm for Hop {
///     fn on_start(&mut self, info: &NodeInfo, out: &mut Outbox) {
///         if info.id.0 == 0 { out.broadcast(Message::from_bit(true)); }
///     }
///     fn on_round(&mut self, _: &NodeInfo, inbox: &Inbox, _: &mut Outbox) {
///         self.got |= !inbox.is_empty();
///     }
///     fn is_terminated(&self) -> bool { true }
/// }
///
/// let g = Graph::path(3);
/// let mut stepper = Stepper::new(&g, CongestConfig::classical(4), |_| Hop { got: false });
/// assert!(!stepper.is_quiescent());
/// stepper.step();
/// assert!(stepper.nodes()[1].got);
/// assert!(stepper.is_quiescent());
/// ```
pub struct Stepper<'g, A> {
    sim: Simulator<'g>,
    engine: Engine<A>,
}

/// What one [`Stepper::step`] delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepSummary {
    /// The round number just executed (1-based).
    pub round: usize,
    /// Messages delivered this round.
    pub messages: u64,
    /// Payload bits delivered this round.
    pub bits: u64,
    /// Messages the fault layer dropped this round (always zero without
    /// a [`ChaosConfig`]).
    pub dropped: u64,
}

/// Outcome of [`Stepper::run_to_quiescence`]: how many rounds ran and
/// whether the watchdog cap cut the run short.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WatchdogReport {
    /// Rounds executed by this call.
    pub rounds: usize,
    /// `true` when the cap was hit before quiescence — the signature of
    /// a non-terminating (or not-yet-terminated) algorithm.
    pub tripped: bool,
}

impl<'g, A: NodeAlgorithm> Stepper<'g, A> {
    /// Initializes the algorithm (runs every node's `on_start`).
    pub fn new<F: FnMut(&NodeInfo) -> A>(graph: &'g Graph, config: CongestConfig, init: F) -> Self {
        let sim = Simulator::new(graph, config);
        let engine = sim.engine_start(init, None, true);
        Stepper { sim, engine }
    }

    /// A stepper with fault injection: each [`step`](Stepper::step)
    /// consults a [`FaultPlan`] built from `chaos`, making the same
    /// per-message decisions in the same order as
    /// [`Simulator::try_run`] under the same config — a stepped chaos
    /// run matches the batch chaos run round for round. Discipline
    /// violations still panic (stepping is an interactive debugging
    /// surface); use [`Simulator::try_run`] for fully fallible runs.
    ///
    /// # Panics
    ///
    /// Panics if `chaos` fails [`ChaosConfig::validate`].
    pub fn with_chaos<F: FnMut(&NodeInfo) -> A>(
        graph: &'g Graph,
        config: CongestConfig,
        chaos: &ChaosConfig,
        init: F,
    ) -> Self {
        chaos.validate().unwrap_or_else(|e| panic!("{e}"));
        let sim = Simulator::new(graph, config);
        let plan = FaultPlan::new(chaos, graph.node_count());
        let engine = sim.engine_start(init, Some(plan), true);
        Stepper { sim, engine }
    }

    /// A stepper with explicit [`RunOptions`] and optional fault
    /// injection — the fully general constructor behind
    /// [`new`](Stepper::new) and [`with_chaos`](Stepper::with_chaos).
    /// Options never change outcomes: a stepped run at any thread count
    /// matches the single-threaded one round for round, byte for byte.
    ///
    /// # Panics
    ///
    /// Panics if `chaos` is `Some` and fails [`ChaosConfig::validate`].
    pub fn with_options<F: FnMut(&NodeInfo) -> A>(
        graph: &'g Graph,
        config: CongestConfig,
        options: RunOptions,
        chaos: Option<&ChaosConfig>,
        init: F,
    ) -> Self {
        let sim = Simulator::with_options(graph, config, options);
        let plan = chaos.map(|chaos| {
            chaos.validate().unwrap_or_else(|e| panic!("{e}"));
            FaultPlan::new(chaos, graph.node_count())
        });
        let engine = sim.engine_start(init, plan, true);
        Stepper { sim, engine }
    }

    /// The per-node states (index = node id).
    pub fn nodes(&self) -> &[A] {
        &self.engine.nodes
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> usize {
        self.engine.report.rounds
    }

    /// The accounting so far, identical to what [`Simulator::run`] would
    /// report after the same number of rounds. `completed` reflects
    /// whether the run is currently quiescent.
    pub fn report(&self) -> RunReport {
        RunReport {
            completed: self.engine.is_quiescent(),
            ..self.engine.report
        }
    }

    /// Whether the run has reached quiescence (all nodes terminated, no
    /// messages in flight). Further steps deliver nothing.
    pub fn is_quiescent(&self) -> bool {
        self.engine.is_quiescent()
    }

    /// Executes one synchronous round: deliver, then step every node.
    ///
    /// Once the run is quiescent this is a no-op: no node is stepped, the
    /// round counter stays put, and the returned summary reports zero
    /// messages and bits.
    pub fn step(&mut self) -> StepSummary {
        self.step_observed(&mut NullTelemetry)
    }

    /// [`step`](Stepper::step) with a [`Telemetry`] sink observing the
    /// round. The quiescent no-op stays a no-op: no span is opened and
    /// the sink sees nothing.
    pub fn step_observed<T: Telemetry>(&mut self, telemetry: &mut T) -> StepSummary {
        if self.engine.is_quiescent() {
            return StepSummary {
                round: self.engine.report.rounds,
                messages: 0,
                bits: 0,
                dropped: 0,
            };
        }
        self.sim.engine_round(&mut self.engine, None, telemetry)
    }

    /// Steps until quiescence or `max_rounds`, whichever comes first.
    ///
    /// The report says how many rounds this call executed and whether
    /// the cap tripped first (`tripped = true` means the algorithm had
    /// not quiesced — previously this case was indistinguishable from a
    /// run that finished exactly at the cap, so a non-terminating
    /// algorithm looped silently).
    pub fn run_to_quiescence(&mut self, max_rounds: usize) -> WatchdogReport {
        let mut done = 0;
        while !self.is_quiescent() && done < max_rounds {
            self.step();
            done += 1;
        }
        WatchdogReport {
            rounds: done,
            tripped: !self.is_quiescent(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::RoundProfiler;
    use qdc_graph::Graph;

    /// Echo once: leaf nodes send their id to every neighbor in round 0,
    /// then everyone terminates after hearing from all neighbors.
    struct HearAll {
        heard: usize,
        need: usize,
    }

    impl NodeAlgorithm for HearAll {
        fn on_start(&mut self, info: &NodeInfo, out: &mut Outbox) {
            out.broadcast(Message::from_uint(info.id.0 as u64, 16));
        }
        fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, _out: &mut Outbox) {
            self.heard += inbox.len();
        }
        fn is_terminated(&self) -> bool {
            self.heard >= self.need
        }
    }

    #[test]
    fn sim_error_taxonomy_is_closed_under_display() {
        // Every variant's Display text (which the panicking APIs emit
        // verbatim) classifies back to exactly that variant's kind and
        // retryability — the contract supervised runners rely on to turn
        // a caught panic into a structured failure record.
        let variants = [
            SimError::BudgetExceeded { bits: 9, budget: 8 },
            SimError::DoublePortSend { port: 2 },
            SimError::PortOutOfRange { port: 7, ports: 3 },
            SimError::WatchdogTripped { rounds: 41 },
            SimError::InvalidChaosConfig { prob: 1.5 },
        ];
        for e in &variants {
            assert_eq!(
                SimError::classify_message(&e.to_string()),
                Some((e.kind(), e.is_retryable())),
                "Display of {e:?} must classify to its own kind"
            );
        }
        // Kinds are distinct (they name failure records).
        let mut kinds: Vec<_> = variants.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), variants.len());
    }

    #[test]
    fn sim_error_only_watchdog_is_retryable() {
        assert!(SimError::WatchdogTripped { rounds: 1 }.is_retryable());
        assert!(!SimError::BudgetExceeded { bits: 2, budget: 1 }.is_retryable());
        assert!(!SimError::DoublePortSend { port: 0 }.is_retryable());
        assert!(!SimError::PortOutOfRange { port: 1, ports: 1 }.is_retryable());
        assert!(!SimError::InvalidChaosConfig { prob: 2.0 }.is_retryable());
    }

    #[test]
    fn sim_error_classify_rejects_arbitrary_panic_messages() {
        assert_eq!(SimError::classify_message("index out of bounds"), None);
        assert_eq!(SimError::classify_message(""), None);
        assert_eq!(
            SimError::classify_message("attempt to subtract with overflow"),
            None
        );
    }

    #[test]
    fn everyone_hears_neighbors_in_one_round() {
        let g = Graph::complete(5);
        let sim = Simulator::new(&g, CongestConfig::classical(16));
        let (nodes, report) = sim.run(
            |info| HearAll {
                heard: 0,
                need: info.degree(),
            },
            10,
        );
        assert!(report.completed);
        assert_eq!(report.rounds, 1);
        assert_eq!(report.messages_sent, 20); // 2 per edge, 10 edges
        assert_eq!(report.bits_sent, 20 * 16);
        assert_eq!(report.max_bits_per_round, 20 * 16);
        assert!(nodes.iter().all(|n| n.heard == 4));
    }

    /// A silent algorithm terminates immediately in zero rounds.
    struct Silent;
    impl NodeAlgorithm for Silent {
        fn on_start(&mut self, _: &NodeInfo, _: &mut Outbox) {}
        fn on_round(&mut self, _: &NodeInfo, _: &Inbox, _: &mut Outbox) {}
        fn is_terminated(&self) -> bool {
            true
        }
    }

    #[test]
    fn silent_run_takes_zero_rounds() {
        let g = Graph::path(3);
        let sim = Simulator::new(&g, CongestConfig::classical(1));
        let (_, report) = sim.run(|_| Silent, 10);
        assert!(report.completed);
        assert_eq!(report.rounds, 0);
        assert_eq!(report.messages_sent, 0);
    }

    /// A node that never terminates exercises the round limit.
    struct Chatter;
    impl NodeAlgorithm for Chatter {
        fn on_start(&mut self, _: &NodeInfo, out: &mut Outbox) {
            out.broadcast(Message::from_bit(true));
        }
        fn on_round(&mut self, _: &NodeInfo, _: &Inbox, out: &mut Outbox) {
            out.broadcast(Message::from_bit(true));
        }
        fn is_terminated(&self) -> bool {
            false
        }
    }

    #[test]
    fn round_limit_caps_runaway_algorithms() {
        let g = Graph::cycle(4);
        let sim = Simulator::new(&g, CongestConfig::classical(4));
        let (_, report) = sim.run(|_| Chatter, 7);
        assert!(!report.completed);
        assert_eq!(report.rounds, 7);
    }

    /// Budget enforcement: oversized messages panic.
    struct Oversender;
    impl NodeAlgorithm for Oversender {
        fn on_start(&mut self, _: &NodeInfo, out: &mut Outbox) {
            out.send(0, Message::from_uint(0xFFFF, 16));
        }
        fn on_round(&mut self, _: &NodeInfo, _: &Inbox, _: &mut Outbox) {}
        fn is_terminated(&self) -> bool {
            true
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the B = 8 bit budget")]
    fn oversized_message_panics() {
        let g = Graph::path(2);
        let sim = Simulator::new(&g, CongestConfig::classical(8));
        sim.run(|_| Oversender, 1);
    }

    /// Double-send on the same port panics.
    struct DoubleSender;
    impl NodeAlgorithm for DoubleSender {
        fn on_start(&mut self, _: &NodeInfo, out: &mut Outbox) {
            out.send(0, Message::from_bit(true));
            out.send(0, Message::from_bit(false));
        }
        fn on_round(&mut self, _: &NodeInfo, _: &Inbox, _: &mut Outbox) {}
        fn is_terminated(&self) -> bool {
            true
        }
    }

    #[test]
    #[should_panic(expected = "one message per edge per round")]
    fn double_send_panics() {
        let g = Graph::path(2);
        let sim = Simulator::new(&g, CongestConfig::classical(8));
        sim.run(|_| DoubleSender, 1);
    }

    #[test]
    fn quantum_config_labels_report() {
        let g = Graph::path(2);
        let sim = Simulator::new(&g, CongestConfig::quantum(4));
        let (_, report) = sim.run(|_| Silent, 1);
        assert_eq!(report.channel, ChannelKind::Quantum);
    }

    #[test]
    fn stepper_matches_batch_run() {
        // Step-by-step execution produces the same final states and the
        // same per-round traffic as Simulator::run.
        let g = Graph::cycle(6);
        let cfg = CongestConfig::classical(16);
        let make = |info: &NodeInfo| HearAll {
            heard: 0,
            need: info.degree(),
        };
        let sim = Simulator::new(&g, cfg);
        let (batch, report) = sim.run(make, 10);
        let mut stepper = Stepper::new(&g, cfg, make);
        let mut total_msgs = 0;
        while !stepper.is_quiescent() {
            total_msgs += stepper.step().messages;
        }
        assert_eq!(stepper.rounds(), report.rounds);
        assert_eq!(total_msgs, report.messages_sent);
        for (a, b) in batch.iter().zip(stepper.nodes()) {
            assert_eq!(a.heard, b.heard);
        }
    }

    #[test]
    fn quiescent_step_is_a_noop() {
        // Stepping past quiescence must not invoke on_round again, must
        // not advance the round counter, and must report zero traffic.
        let g = Graph::complete(4);
        let cfg = CongestConfig::classical(16);
        let make = |info: &NodeInfo| HearAll {
            heard: 0,
            need: info.degree(),
        };
        let mut stepper = Stepper::new(&g, cfg, make);
        while !stepper.is_quiescent() {
            stepper.step();
        }
        let rounds = stepper.rounds();
        let report = stepper.report();
        let heard: Vec<usize> = stepper.nodes().iter().map(|n| n.heard).collect();
        for _ in 0..3 {
            let summary = stepper.step();
            assert_eq!(
                summary,
                StepSummary {
                    round: rounds,
                    messages: 0,
                    bits: 0,
                    dropped: 0
                }
            );
        }
        assert_eq!(stepper.rounds(), rounds);
        assert_eq!(stepper.report(), report);
        let after: Vec<usize> = stepper.nodes().iter().map(|n| n.heard).collect();
        assert_eq!(heard, after);
    }

    #[test]
    fn stepper_report_matches_batch_report() {
        let g = Graph::cycle(6);
        let cfg = CongestConfig::classical(16);
        let make = |info: &NodeInfo| HearAll {
            heard: 0,
            need: info.degree(),
        };
        let sim = Simulator::new(&g, cfg);
        let (_, batch_report) = sim.run(make, 10);
        let mut stepper = Stepper::new(&g, cfg, make);
        while !stepper.is_quiescent() {
            stepper.step();
        }
        assert_eq!(stepper.report(), batch_report);
    }

    #[test]
    fn stepper_run_to_quiescence_trips_watchdog_on_nonterminating_algorithm() {
        // Chatter never terminates: the cap must trip and say so, rather
        // than returning a bare round count indistinguishable from a run
        // that finished exactly at the cap.
        let g = Graph::path(2);
        let cfg = CongestConfig::classical(4);
        let mut stepper = Stepper::new(&g, cfg, |_| Chatter);
        assert_eq!(
            stepper.run_to_quiescence(5),
            WatchdogReport {
                rounds: 5,
                tripped: true
            }
        );
        // A second capped call keeps reporting the trip…
        assert!(stepper.run_to_quiescence(3).tripped);
        assert_eq!(stepper.rounds(), 8);
    }

    #[test]
    fn stepper_run_to_quiescence_completes_without_tripping() {
        let g = Graph::complete(4);
        let cfg = CongestConfig::classical(16);
        let mut stepper = Stepper::new(&g, cfg, |info: &NodeInfo| HearAll {
            heard: 0,
            need: info.degree(),
        });
        let report = stepper.run_to_quiescence(50);
        assert!(!report.tripped);
        assert!(report.rounds < 50);
        assert!(stepper.is_quiescent());
        // Quiescent already: a further call runs zero rounds, no trip.
        assert_eq!(
            stepper.run_to_quiescence(50),
            WatchdogReport {
                rounds: 0,
                tripped: false
            }
        );
    }

    #[test]
    fn node_info_ports_are_consistent() {
        let g = Graph::cycle(5);
        let sim = Simulator::new(&g, CongestConfig::classical(8));
        for u in g.nodes() {
            let info = sim.info(u);
            assert_eq!(info.degree(), 2);
            for (p, &v) in info.neighbors.iter().enumerate() {
                assert_eq!(info.port_to(v), Some(p));
                // The incident edge on this port really connects u and v.
                let (a, b) = g.endpoints(info.incident_edges[p]);
                assert!((a == u && b == v) || (a == v && b == u));
            }
        }
    }

    // -----------------------------------------------------------------
    // Structured errors and fault injection (chaos layer)
    // -----------------------------------------------------------------

    #[test]
    fn try_send_reports_each_violation_without_panicking() {
        let mut out = Outbox::detached(2, 8);
        assert_eq!(
            out.try_send(0, Message::from_uint(0x1FF, 9)),
            Err(SimError::BudgetExceeded { bits: 9, budget: 8 })
        );
        assert_eq!(
            out.try_send(2, Message::from_bit(true)),
            Err(SimError::PortOutOfRange { port: 2, ports: 2 })
        );
        assert_eq!(out.try_send(0, Message::from_bit(true)), Ok(()));
        assert_eq!(
            out.try_send(0, Message::from_bit(false)),
            Err(SimError::DoublePortSend { port: 0 })
        );
        // Failed sends queue nothing; the successful one queued once.
        let slots = out.into_slots();
        assert_eq!(slots.iter().filter(|s| s.is_some()).count(), 1);
    }

    /// An adversarial node using the *panicking* API: under `try_run`
    /// the violation must come back as a `SimError`, not a panic.
    struct Adversary {
        mode: u8,
    }
    impl NodeAlgorithm for Adversary {
        fn on_start(&mut self, _: &NodeInfo, out: &mut Outbox) {
            match self.mode {
                0 => out.send(0, Message::from_uint(0xFFFF, 16)), // oversized
                1 => {
                    out.send(0, Message::from_bit(true));
                    out.send(0, Message::from_bit(false)); // double send
                }
                _ => out.send(99, Message::from_bit(true)), // bad port
            }
        }
        fn on_round(&mut self, _: &NodeInfo, _: &Inbox, _: &mut Outbox) {}
        fn is_terminated(&self) -> bool {
            true
        }
    }

    #[test]
    fn try_run_returns_structured_errors_for_adversarial_nodes() {
        let g = Graph::path(2);
        let sim = Simulator::new(&g, CongestConfig::classical(8));
        let chaos = ChaosConfig::fault_free(10);
        assert_eq!(
            sim.try_run(|_| Adversary { mode: 0 }, &chaos).err(),
            Some(SimError::BudgetExceeded {
                bits: 16,
                budget: 8
            })
        );
        assert_eq!(
            sim.try_run(|_| Adversary { mode: 1 }, &chaos).err(),
            Some(SimError::DoublePortSend { port: 0 })
        );
        assert_eq!(
            sim.try_run(|_| Adversary { mode: 2 }, &chaos).err(),
            Some(SimError::PortOutOfRange { port: 99, ports: 1 })
        );
    }

    #[test]
    fn try_run_trips_watchdog_instead_of_spinning() {
        let g = Graph::cycle(4);
        let sim = Simulator::new(&g, CongestConfig::classical(4));
        let chaos = ChaosConfig::fault_free(7);
        assert_eq!(
            sim.try_run(|_| Chatter, &chaos).err(),
            Some(SimError::WatchdogTripped { rounds: 7 })
        );
    }

    #[test]
    fn try_run_rejects_invalid_probabilities() {
        let g = Graph::path(2);
        let sim = Simulator::new(&g, CongestConfig::classical(4));
        let chaos = ChaosConfig {
            drop_prob: 2.0,
            ..ChaosConfig::fault_free(10)
        };
        assert!(matches!(
            sim.try_run(|_| Silent, &chaos),
            Err(SimError::InvalidChaosConfig { .. })
        ));
    }

    #[test]
    fn try_run_fault_free_matches_run_bit_for_bit() {
        let g = Graph::complete(5);
        let sim = Simulator::new(&g, CongestConfig::classical(16));
        let make = |info: &NodeInfo| HearAll {
            heard: 0,
            need: info.degree(),
        };
        let (nodes, report) = sim.run(make, 10);
        let (chaos_nodes, chaos_report) = sim
            .try_run(make, &ChaosConfig::fault_free(10))
            .expect("fault-free run completes");
        assert_eq!(report, chaos_report);
        assert_eq!(report.messages_dropped, 0);
        assert_eq!(report.nodes_crashed, 0);
        assert_eq!(report.bits_corrupted, 0);
        for (a, b) in nodes.iter().zip(&chaos_nodes) {
            assert_eq!(a.heard, b.heard);
        }
    }

    /// Broadcasts every round for a fixed number of rounds, then goes
    /// silent — keeps traffic in flight long enough for drop and crash
    /// schedules to bite, while still reaching quiescence.
    struct Pulse {
        rounds_left: usize,
        heard: usize,
    }
    impl NodeAlgorithm for Pulse {
        fn on_start(&mut self, _: &NodeInfo, out: &mut Outbox) {
            out.broadcast(Message::from_uint(3, 8));
        }
        fn on_round(&mut self, _: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
            self.heard += inbox.len();
            if self.rounds_left > 0 {
                self.rounds_left -= 1;
                out.broadcast(Message::from_uint(3, 8));
            }
        }
        fn is_terminated(&self) -> bool {
            true // quiescence-driven: the run ends when traffic stops
        }
    }

    #[test]
    fn chaos_seeded_runs_replay_byte_exactly() {
        let g = Graph::complete(6);
        let sim = Simulator::new(&g, CongestConfig::classical(16));
        let chaos = ChaosConfig {
            seed: 42,
            drop_prob: 0.25,
            corrupt_prob: 0.1,
            crash_schedule: vec![(NodeId(5), 2)],
            max_rounds_watchdog: 50,
        };
        let make = |_: &NodeInfo| Pulse {
            rounds_left: 5,
            heard: 0,
        };
        let (_, a) = sim.try_run(make, &chaos).expect("completes");
        let (_, b) = sim.try_run(make, &chaos).expect("completes");
        assert_eq!(a, b);
        assert!(a.messages_dropped > 0, "seed 42 drops something at 25%");
        assert_eq!(a.nodes_crashed, 1);
    }

    #[test]
    fn chaos_crashed_node_stops_sending_and_receiving() {
        // Chatter on a path of 3 with the middle node crashing at round
        // 2: from then on the endpoints hear nothing (their only
        // neighbor is dead) and everything in flight to/from the middle
        // is dropped.
        struct CountingChatter {
            heard: usize,
        }
        impl NodeAlgorithm for CountingChatter {
            fn on_start(&mut self, _: &NodeInfo, out: &mut Outbox) {
                out.broadcast(Message::from_bit(true));
            }
            fn on_round(&mut self, _: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
                self.heard += inbox.len();
                out.broadcast(Message::from_bit(true));
            }
            fn is_terminated(&self) -> bool {
                false
            }
        }
        let g = Graph::path(3);
        let sim = Simulator::new(&g, CongestConfig::classical(4));
        let chaos = ChaosConfig {
            crash_schedule: vec![(NodeId(1), 2)],
            ..ChaosConfig::fault_free(6)
        };
        let err = sim.try_run(|_| CountingChatter { heard: 0 }, &chaos);
        // Endpoints keep chattering into the void: watchdog trips.
        assert_eq!(err.err(), Some(SimError::WatchdogTripped { rounds: 6 }));

        // Same setup, stepped, to inspect the states: endpoints hear the
        // middle node only in round 1.
        let mut stepper = Stepper::with_chaos(&g, CongestConfig::classical(4), &chaos, |_| {
            CountingChatter { heard: 0 }
        });
        for _ in 0..6 {
            stepper.step();
        }
        assert_eq!(stepper.nodes()[0].heard, 1);
        assert_eq!(stepper.nodes()[2].heard, 1);
        // The middle node froze after round 1 (crashed at round 2).
        assert_eq!(stepper.nodes()[1].heard, 2);
        let report = stepper.report();
        assert_eq!(report.nodes_crashed, 1);
        assert!(report.messages_dropped > 0);
    }

    #[test]
    fn chaos_batch_traced_and_stepped_agree() {
        let g = Graph::cycle(8);
        let cfg = CongestConfig::classical(16);
        let chaos = ChaosConfig {
            seed: 3,
            drop_prob: 0.2,
            corrupt_prob: 0.05,
            crash_schedule: vec![(NodeId(2), 3)],
            max_rounds_watchdog: 40,
        };
        let make = |_: &NodeInfo| Pulse {
            rounds_left: 6,
            heard: 0,
        };
        let sim = Simulator::new(&g, cfg);
        let (batch, batch_report) = sim.try_run(make, &chaos).expect("completes");
        let (traced, traced_report, trace) = sim.try_run_traced(make, &chaos).expect("completes");
        assert_eq!(batch_report, traced_report);
        let traced_delivered: usize = trace.rounds.iter().map(Vec::len).sum();
        assert_eq!(traced_delivered as u64, traced_report.messages_sent);
        let traced_dropped: u64 = trace.dropped.iter().sum();
        assert_eq!(traced_dropped, traced_report.messages_dropped);
        let mut stepper = Stepper::with_chaos(&g, cfg, &chaos, make);
        let mut stepped_dropped = 0;
        while !stepper.is_quiescent() {
            stepped_dropped += stepper.step().dropped;
        }
        assert_eq!(stepper.report(), batch_report);
        assert_eq!(stepped_dropped, batch_report.messages_dropped);
        for ((a, b), c) in batch.iter().zip(&traced).zip(stepper.nodes()) {
            assert_eq!(a.heard, b.heard);
            assert_eq!(a.heard, c.heard);
        }
    }

    #[test]
    fn chaos_corruption_is_metered_and_budget_bounded() {
        let g = Graph::complete(4);
        let sim = Simulator::new(&g, CongestConfig::classical(16));
        let chaos = ChaosConfig {
            seed: 9,
            corrupt_prob: 1.0,
            ..ChaosConfig::fault_free(20)
        };
        let make = |_: &NodeInfo| HearAll { heard: 0, need: 0 };
        let (_, report) = sim.try_run(make, &chaos).expect("completes");
        assert!(report.bits_corrupted > 0);
        assert_eq!(report.messages_dropped, 0);
        // Corruption only shrinks payloads: delivered bits cannot exceed
        // the fault-free payload volume.
        let (_, clean) = sim.run(make, 20);
        assert!(report.bits_sent <= clean.bits_sent);
        assert_eq!(report.messages_sent, clean.messages_sent);
    }

    #[test]
    fn broadcast_skips_last_clone_but_matches_per_port_sends() {
        let g = Graph::complete(4);
        let sim = Simulator::new(&g, CongestConfig::classical(16));
        // Broadcasting and port-by-port sending deliver identical traffic.
        struct PortSender;
        impl NodeAlgorithm for PortSender {
            fn on_start(&mut self, _: &NodeInfo, out: &mut Outbox) {
                for p in 0..out.port_count() {
                    out.send(p, Message::from_uint(5, 8));
                }
            }
            fn on_round(&mut self, _: &NodeInfo, _: &Inbox, _: &mut Outbox) {}
            fn is_terminated(&self) -> bool {
                true
            }
        }
        struct Broadcaster;
        impl NodeAlgorithm for Broadcaster {
            fn on_start(&mut self, _: &NodeInfo, out: &mut Outbox) {
                out.broadcast(Message::from_uint(5, 8));
            }
            fn on_round(&mut self, _: &NodeInfo, _: &Inbox, _: &mut Outbox) {}
            fn is_terminated(&self) -> bool {
                true
            }
        }
        let (_, a) = sim.run(|_| PortSender, 5);
        let (_, b) = sim.run(|_| Broadcaster, 5);
        assert_eq!(a, b);
        // Zero ports: broadcast on an isolated node is a no-op.
        let isolated = Graph::from_edges(1, &[]);
        let sim = Simulator::new(&isolated, CongestConfig::classical(4));
        let (_, report) = sim.run(|_| Broadcaster, 5);
        assert_eq!(report.messages_sent, 0);
    }

    #[test]
    fn inbox_checked_accessors_never_panic() {
        let mut inbox = Inbox::new(2);
        assert!(inbox.get_checked(0).is_none());
        assert!(inbox.get_checked(7).is_none()); // out of range folds to None
        assert_eq!(inbox.try_put(0, Message::from_bit(true)), Ok(()));
        assert_eq!(inbox.get_checked(0).and_then(Message::as_bit), Some(true));
        assert_eq!(
            inbox.try_put(2, Message::from_bit(true)),
            Err(SimError::PortOutOfRange { port: 2, ports: 2 })
        );
        // try_put keeps put's replace semantics in range.
        assert_eq!(inbox.try_put(0, Message::from_bit(false)), Ok(()));
        assert_eq!(inbox.get_checked(0).and_then(Message::as_bit), Some(false));
    }

    #[test]
    fn sim_error_messages_match_the_panicking_api() {
        // The Display impl is what the panicking wrappers print, so the
        // two reporting paths can never drift apart.
        assert_eq!(
            SimError::BudgetExceeded {
                bits: 16,
                budget: 8
            }
            .to_string(),
            "message of 16 bits exceeds the B = 8 bit budget"
        );
        assert!(SimError::DoublePortSend { port: 3 }
            .to_string()
            .contains("one message per edge per round"));
        assert!(SimError::PortOutOfRange { port: 9, ports: 2 }
            .to_string()
            .contains("port 9 out of range"));
        assert!(SimError::WatchdogTripped { rounds: 77 }
            .to_string()
            .contains("77 rounds"));
    }

    /// The whole simulation stack must be shardable across threads: the
    /// campaign harness (`qdc-harness`) builds simulators, chaos configs
    /// and fault plans inside `std::thread::scope` workers. This is the
    /// compile-time audit — if any type grows a non-`Send` field (an
    /// `Rc`, a raw pointer, a thread-local handle), this test stops
    /// compiling rather than failing at runtime.
    #[test]
    fn simulation_stack_is_send_and_sync() {
        fn send<T: Send>() {}
        fn sync<T: Sync>() {}
        send::<Simulator<'static>>();
        sync::<Simulator<'static>>();
        send::<ChaosConfig>();
        sync::<ChaosConfig>();
        send::<FaultPlan>();
        send::<RunReport>();
        send::<RunMetrics>();
        sync::<RunMetrics>();
        send::<TrafficTrace>();
        sync::<TrafficTrace>();
        send::<Message>();
        send::<SimError>();
        sync::<SimError>();
        send::<crate::telemetry::NullTelemetry>();
        sync::<crate::telemetry::NullTelemetry>();
        send::<crate::telemetry::RoundProfiler>();
        send::<crate::telemetry::TelemetryReport>();
        sync::<crate::telemetry::TelemetryReport>();
    }

    // -----------------------------------------------------------------
    // Telemetry: observation must never perturb
    // -----------------------------------------------------------------

    #[test]
    fn telemetry_observed_run_matches_unobserved_bit_for_bit() {
        let g = Graph::complete(5);
        let sim = Simulator::new(&g, CongestConfig::classical(16));
        let make = |info: &NodeInfo| HearAll {
            heard: 0,
            need: info.degree(),
        };
        let (plain, plain_report, plain_trace) = sim.run_traced(make, 10);
        let mut prof = RoundProfiler::new(g.node_count(), g.edge_count(), 16);
        let (observed, observed_report, observed_trace) =
            sim.run_traced_observed(make, 10, &mut prof);
        assert_eq!(plain_report, observed_report);
        assert_eq!(plain_trace.rounds, observed_trace.rounds);
        assert_eq!(plain_trace.dropped, observed_trace.dropped);
        for (a, b) in plain.iter().zip(&observed) {
            assert_eq!(a.heard, b.heard);
        }
        // And the folded profile reproduces the report's totals.
        let report = prof.finish();
        assert_eq!(report.total_messages(), observed_report.messages_sent);
        assert_eq!(report.total_bits(), observed_report.bits_sent);
        assert_eq!(report.rounds.len(), observed_report.rounds);
        assert!(report.rounds.last().expect("ran rounds").quiescent);
    }

    #[test]
    fn telemetry_observed_chaos_run_matches_unobserved_and_attributes_faults() {
        let g = Graph::cycle(8);
        let sim = Simulator::new(&g, CongestConfig::classical(16));
        let chaos = ChaosConfig {
            seed: 3,
            drop_prob: 0.2,
            corrupt_prob: 0.1,
            crash_schedule: vec![(NodeId(2), 3)],
            max_rounds_watchdog: 40,
        };
        let make = |_: &NodeInfo| Pulse {
            rounds_left: 6,
            heard: 0,
        };
        let (plain, plain_report) = sim.try_run(make, &chaos).expect("completes");
        let mut prof = RoundProfiler::new(g.node_count(), g.edge_count(), 16);
        let (observed, observed_report) = sim
            .try_run_observed(make, &chaos, &mut prof)
            .expect("completes");
        assert_eq!(plain_report, observed_report);
        for (a, b) in plain.iter().zip(&observed) {
            assert_eq!(a.heard, b.heard);
        }
        let report = prof.finish();
        assert_eq!(report.total_messages(), observed_report.messages_sent);
        assert_eq!(report.total_bits(), observed_report.bits_sent);
        assert_eq!(report.total_dropped(), observed_report.messages_dropped);
        assert_eq!(
            report.total_corrupted_bits(),
            observed_report.bits_corrupted
        );
        assert_eq!(
            report.rounds.iter().map(|r| r.crashes).sum::<u64>(),
            observed_report.nodes_crashed
        );
        // Fault attribution lands on real edges of the crashed node.
        let edge_dropped: u64 = report.edge_totals.iter().map(|e| e.dropped).sum();
        assert_eq!(edge_dropped, observed_report.messages_dropped);
    }

    #[test]
    fn telemetry_stepper_observed_matches_batch_profile() {
        let g = Graph::cycle(6);
        let cfg = CongestConfig::classical(16);
        let make = |info: &NodeInfo| HearAll {
            heard: 0,
            need: info.degree(),
        };
        let sim = Simulator::new(&g, cfg);
        let mut batch_prof = RoundProfiler::new(g.node_count(), g.edge_count(), 16);
        sim.run_traced_observed(make, 10, &mut batch_prof);
        let batch = batch_prof.finish();

        let mut stepper = Stepper::new(&g, cfg, make);
        let mut step_prof = RoundProfiler::new(g.node_count(), g.edge_count(), 16);
        while !stepper.is_quiescent() {
            stepper.step_observed(&mut step_prof);
        }
        // Quiescent steps stay invisible to the sink.
        stepper.step_observed(&mut step_prof);
        let stepped = step_prof.finish();
        // Wall-clock differs by construction; everything else is equal.
        assert_eq!(batch.to_jsonl(false), stepped.to_jsonl(false));
    }

    #[test]
    fn run_metrics_extraction_matches_report() {
        let g = Graph::complete(5);
        let sim = Simulator::new(&g, CongestConfig::classical(16));
        let (_, report) = sim.run(
            |info| HearAll {
                heard: 0,
                need: info.degree(),
            },
            10,
        );
        let m = report.metrics();
        assert_eq!(m.rounds, report.rounds as u64);
        assert_eq!(m.completed, 1);
        assert_eq!(m.messages_sent, report.messages_sent);
        assert_eq!(m.bits_sent, report.bits_sent);
        assert_eq!(m.max_bits_per_round, report.max_bits_per_round);
        assert_eq!(m.messages_dropped, 0);
        assert_eq!(m.nodes_crashed, 0);
        assert_eq!(m.bits_corrupted, 0);
        // Metric vectors are Eq: two identical runs compare equal.
        let (_, again) = sim.run(
            |info| HearAll {
                heard: 0,
                need: info.degree(),
            },
            10,
        );
        assert_eq!(m, again.metrics());
    }
}
