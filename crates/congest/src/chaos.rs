//! Deterministic, seeded fault injection for the CONGEST simulator.
//!
//! The paper's model (Section 2.1 / Appendix A.1) is perfectly
//! synchronous and fault-free; a simulator growing toward production
//! scale must also stay correct when it is not. This module supplies the
//! fault side: a [`ChaosConfig`] describes *which* faults to inject
//! (message drops, crash-stop failures, payload corruption, a runaway
//! watchdog) and a [`FaultPlan`] — built from the config and a
//! [`ChaCha8Rng`] keyed by its seed — makes the actual per-message
//! decisions. Because the round engine consults the plan in one fixed
//! delivery order (sender id, then port), two runs with the same config
//! replay **byte-exactly**: same drops, same corruptions, same
//! [`RunReport`](crate::RunReport), whether executed in batch
//! ([`Simulator::try_run`](crate::Simulator::try_run)), traced
//! ([`try_run_traced`](crate::Simulator::try_run_traced)) or one round
//! at a time ([`Stepper::with_chaos`](crate::Stepper::with_chaos)).
//!
//! Faults only ever *remove* information: a dropped message vanishes, a
//! crashed node stops sending and receiving, and a corrupted payload is
//! bit-flipped or truncated — never extended — so injection can never
//! push a message past the `B`-bit budget.

use crate::message::Message;
use crate::sim::SimError;
use qdc_graph::NodeId;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Declarative description of the faults to inject into one run.
///
/// The default config injects nothing (and allows a generous watchdog),
/// so `ChaosConfig::default()` turns [`try_run`](crate::Simulator::try_run)
/// into a fallible-but-fault-free twin of [`run`](crate::Simulator::run).
///
/// # Example
///
/// ```
/// use qdc_congest::ChaosConfig;
/// use qdc_graph::NodeId;
///
/// let chaos = ChaosConfig {
///     seed: 7,
///     drop_prob: 0.1,
///     crash_schedule: vec![(NodeId(3), 5)], // node 3 crash-stops at round 5
///     corrupt_prob: 0.01,
///     max_rounds_watchdog: 1_000,
/// };
/// assert!(chaos.drop_prob < 1.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the ChaCha8 stream behind every probabilistic decision.
    /// Equal seeds (with equal configs) replay byte-exactly.
    pub seed: u64,
    /// Probability that a delivered message is dropped in flight.
    pub drop_prob: f64,
    /// Crash-stop schedule: `(v, r)` crashes node `v` at the start of
    /// round `r` (1-based, matching [`StepSummary::round`]
    /// (crate::StepSummary::round)). From round `r` on, `v` neither
    /// sends nor receives — messages it queued in round `r − 1` are
    /// still in flight and die with it.
    pub crash_schedule: Vec<(NodeId, usize)>,
    /// Probability that a surviving non-empty message is corrupted (one
    /// random bit flipped, or the payload truncated — never extended, so
    /// the `B`-bit budget still holds).
    pub corrupt_prob: f64,
    /// Round cap for [`try_run`](crate::Simulator::try_run): a run that
    /// has not reached quiescence after this many rounds fails with
    /// [`SimError::WatchdogTripped`].
    pub max_rounds_watchdog: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig::fault_free(100_000)
    }
}

impl ChaosConfig {
    /// A config injecting no faults at all, with the given watchdog cap —
    /// under it, [`try_run`](crate::Simulator::try_run) reproduces
    /// [`run`](crate::Simulator::run) bit for bit.
    pub fn fault_free(max_rounds_watchdog: usize) -> Self {
        ChaosConfig {
            seed: 0,
            drop_prob: 0.0,
            crash_schedule: Vec::new(),
            corrupt_prob: 0.0,
            max_rounds_watchdog,
        }
    }

    /// Whether this config can ever alter a delivery.
    pub fn is_fault_free(&self) -> bool {
        self.drop_prob == 0.0 && self.corrupt_prob == 0.0 && self.crash_schedule.is_empty()
    }

    /// Validates the probabilities.
    ///
    /// Returns [`SimError::InvalidChaosConfig`] if either probability is
    /// outside `[0, 1]` or not finite.
    pub fn validate(&self) -> Result<(), SimError> {
        for p in [self.drop_prob, self.corrupt_prob] {
            if !(0.0..=1.0).contains(&p) {
                return Err(SimError::InvalidChaosConfig { prob: p });
            }
        }
        Ok(())
    }
}

/// Cumulative fault counts, threaded into
/// [`RunReport`](crate::RunReport) after every round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages removed in flight (random drops plus messages lost to a
    /// crashed sender or receiver).
    pub messages_dropped: u64,
    /// Nodes whose crash schedule has activated.
    pub nodes_crashed: u64,
    /// Total payload bits flipped or truncated away by corruption.
    pub bits_corrupted: u64,
}

/// The fate of one in-flight message, as decided by
/// [`FaultPlan::decide`].
///
/// The columnar round engine applies the action to its bit-packed
/// payload slab (a word XOR for `Toggle`, a length cut for `Truncate`)
/// instead of materialising a `Message` first; [`FaultPlan::filter`]
/// applies the same action to a `Message` in place. Both paths draw the
/// same randomness in the same order, so they replay byte-exactly under
/// the same config.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver the payload untouched.
    Deliver,
    /// Remove the message in flight.
    Drop,
    /// Deliver with payload bit `i` flipped.
    Toggle(usize),
    /// Deliver only the first `keep` payload bits.
    Truncate(usize),
}

/// The executable form of a [`ChaosConfig`]: one seeded RNG stream plus
/// per-node crash state, consulted by the round engine (and by the
/// three-party replay in `qdc-simthm`) at delivery time.
///
/// Determinism contract: callers must (1) call [`begin_round`]
/// (FaultPlan::begin_round) exactly once per synchronous round before
/// any delivery, and (2) call [`filter`](FaultPlan::filter) for every
/// in-flight message in the engine's fixed delivery order (ascending
/// sender id, then ascending port). Any harness that follows the same
/// discipline stays in lockstep with the simulator under the same
/// config.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    rng: ChaCha8Rng,
    drop_prob: f64,
    corrupt_prob: f64,
    /// Scheduled crash round per node (`None` = never crashes).
    crash_round: Vec<Option<usize>>,
    crashed: Vec<bool>,
    /// Nodes whose crash activated in the current round, in ascending id
    /// order — refilled by every [`begin_round`](FaultPlan::begin_round).
    fresh_crashes: Vec<NodeId>,
    round: usize,
    stats: FaultStats,
}

impl FaultPlan {
    /// Builds the plan for a `node_count`-node network.
    ///
    /// # Panics
    ///
    /// Panics if a scheduled node id is out of range; call
    /// [`ChaosConfig::validate`] first to reject bad probabilities
    /// without panicking (the simulator's `try_run` does).
    pub fn new(config: &ChaosConfig, node_count: usize) -> Self {
        let mut crash_round = vec![None; node_count];
        for &(v, r) in &config.crash_schedule {
            assert!(
                v.index() < node_count,
                "crash schedule names node {v} but the network has {node_count} nodes"
            );
            // Earliest scheduled crash wins if a node is listed twice.
            let slot = &mut crash_round[v.index()];
            *slot = Some(slot.map_or(r, |prev: usize| prev.min(r)));
        }
        FaultPlan {
            rng: ChaCha8Rng::seed_from_u64(config.seed),
            drop_prob: config.drop_prob,
            corrupt_prob: config.corrupt_prob,
            crash_round,
            crashed: vec![false; node_count],
            fresh_crashes: Vec::new(),
            round: 0,
            stats: FaultStats::default(),
        }
    }

    /// Advances the round counter (1-based after the first call) and
    /// activates any crashes scheduled at or before the new round.
    pub fn begin_round(&mut self) {
        self.round += 1;
        self.fresh_crashes.clear();
        for v in 0..self.crashed.len() {
            if !self.crashed[v] && self.crash_round[v].is_some_and(|r| self.round >= r) {
                self.crashed[v] = true;
                self.stats.nodes_crashed += 1;
                self.fresh_crashes.push(NodeId(v as u32));
            }
        }
    }

    /// The nodes whose crash-stop activated in the current round (empty
    /// on fault-free rounds), in ascending id order. Telemetry sinks use
    /// this to attribute crash events to the round they struck.
    pub fn crashes_this_round(&self) -> &[NodeId] {
        &self.fresh_crashes
    }

    /// The current round (0 before the first [`begin_round`]
    /// (FaultPlan::begin_round)).
    pub fn round(&self) -> usize {
        self.round
    }

    /// Whether node `v` has crash-stopped.
    pub fn is_crashed(&self, v: NodeId) -> bool {
        self.crashed[v.index()]
    }

    /// Decides the fate of one `bits`-bit in-flight message `from → to`
    /// without materialising its payload. Fault counters update exactly
    /// as for [`filter`](FaultPlan::filter), and the RNG draws are
    /// identical, so engines consuming actions and engines consuming
    /// filtered messages stay in lockstep under the same config.
    ///
    /// Corruption picks by coin flip between toggling one uniformly
    /// random bit and truncating to a uniformly random shorter length.
    /// Both strictly shrink-or-preserve the bit length, so the result
    /// always fits the original `B`-bit budget.
    pub fn decide(&mut self, from: NodeId, to: NodeId, bits: usize) -> FaultAction {
        if self.crashed[from.index()] || self.crashed[to.index()] {
            self.stats.messages_dropped += 1;
            return FaultAction::Drop;
        }
        if self.drop_prob > 0.0 && self.rng.gen_bool(self.drop_prob) {
            self.stats.messages_dropped += 1;
            return FaultAction::Drop;
        }
        if self.corrupt_prob > 0.0 && bits > 0 && self.rng.gen_bool(self.corrupt_prob) {
            if self.rng.gen_bool(0.5) {
                let i = self.rng.gen_range(0..bits);
                self.stats.bits_corrupted += 1;
                return FaultAction::Toggle(i);
            }
            let keep = self.rng.gen_range(0..bits);
            self.stats.bits_corrupted += (bits - keep) as u64;
            return FaultAction::Truncate(keep);
        }
        FaultAction::Deliver
    }

    /// Decides the fate of one in-flight message `from → to`. Returns
    /// `true` to deliver (possibly after corrupting `msg` in place) or
    /// `false` to drop it; fault counters update either way.
    ///
    /// This is [`decide`](FaultPlan::decide) applied to a materialised
    /// `Message` — the two share one implementation and one RNG stream.
    pub fn filter(&mut self, from: NodeId, to: NodeId, msg: &mut Message) -> bool {
        match self.decide(from, to, msg.bit_len()) {
            FaultAction::Drop => false,
            FaultAction::Deliver => true,
            FaultAction::Toggle(i) => {
                msg.payload_mut().toggle(i);
                true
            }
            FaultAction::Truncate(keep) => {
                msg.payload_mut().truncate(keep);
                true
            }
        }
    }

    /// The fault counts so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(width: usize) -> Message {
        Message::from_uint((1u64 << width) - 1, width)
    }

    #[test]
    fn chaos_fault_free_plan_touches_nothing() {
        let mut plan = FaultPlan::new(&ChaosConfig::fault_free(10), 4);
        plan.begin_round();
        for p in 0..3 {
            let mut m = msg(8);
            assert!(plan.filter(NodeId(0), NodeId(p + 1), &mut m));
            assert_eq!(m, msg(8));
        }
        assert_eq!(plan.stats(), FaultStats::default());
    }

    #[test]
    fn chaos_drop_prob_one_drops_everything() {
        let cfg = ChaosConfig {
            drop_prob: 1.0,
            ..ChaosConfig::fault_free(10)
        };
        let mut plan = FaultPlan::new(&cfg, 2);
        plan.begin_round();
        let mut m = msg(4);
        assert!(!plan.filter(NodeId(0), NodeId(1), &mut m));
        assert_eq!(plan.stats().messages_dropped, 1);
    }

    #[test]
    fn chaos_crash_activates_at_scheduled_round_and_kills_traffic() {
        let cfg = ChaosConfig {
            crash_schedule: vec![(NodeId(1), 2)],
            ..ChaosConfig::fault_free(10)
        };
        let mut plan = FaultPlan::new(&cfg, 3);
        plan.begin_round(); // round 1: not yet crashed
        assert!(!plan.is_crashed(NodeId(1)));
        let mut m = msg(4);
        assert!(plan.filter(NodeId(1), NodeId(0), &mut m));
        plan.begin_round(); // round 2: crash activates
        assert!(plan.is_crashed(NodeId(1)));
        assert!(!plan.filter(NodeId(1), NodeId(0), &mut m)); // sender dead
        assert!(!plan.filter(NodeId(2), NodeId(1), &mut m)); // receiver dead
        assert!(plan.filter(NodeId(2), NodeId(0), &mut m)); // bystanders fine
        let stats = plan.stats();
        assert_eq!(stats.nodes_crashed, 1);
        assert_eq!(stats.messages_dropped, 2);
    }

    #[test]
    fn chaos_corruption_never_grows_the_payload() {
        let cfg = ChaosConfig {
            seed: 11,
            corrupt_prob: 1.0,
            ..ChaosConfig::fault_free(10)
        };
        let mut plan = FaultPlan::new(&cfg, 2);
        plan.begin_round();
        for _ in 0..200 {
            let mut m = msg(16);
            assert!(plan.filter(NodeId(0), NodeId(1), &mut m));
            assert!(m.bit_len() <= 16, "corruption grew the message");
        }
        assert!(plan.stats().bits_corrupted > 0);
        // Empty messages have no bits to corrupt and draw no randomness.
        let mut empty = Message::empty();
        assert!(plan.filter(NodeId(0), NodeId(1), &mut empty));
        assert_eq!(empty.bit_len(), 0);
    }

    #[test]
    fn chaos_fresh_crashes_report_only_the_activating_round() {
        let cfg = ChaosConfig {
            crash_schedule: vec![(NodeId(2), 2), (NodeId(0), 2), (NodeId(1), 3)],
            ..ChaosConfig::fault_free(10)
        };
        let mut plan = FaultPlan::new(&cfg, 4);
        plan.begin_round();
        assert!(plan.crashes_this_round().is_empty());
        plan.begin_round();
        assert_eq!(plan.crashes_this_round(), [NodeId(0), NodeId(2)]);
        plan.begin_round();
        assert_eq!(plan.crashes_this_round(), [NodeId(1)]);
        plan.begin_round();
        assert!(plan.crashes_this_round().is_empty());
    }

    #[test]
    fn chaos_same_seed_same_decisions() {
        let cfg = ChaosConfig {
            seed: 99,
            drop_prob: 0.3,
            corrupt_prob: 0.2,
            ..ChaosConfig::fault_free(10)
        };
        let run = |cfg: &ChaosConfig| {
            let mut plan = FaultPlan::new(cfg, 4);
            let mut outcomes = Vec::new();
            for r in 0..20 {
                plan.begin_round();
                for s in 0..3u32 {
                    let mut m = msg(12);
                    let delivered = plan.filter(NodeId(s), NodeId((s + 1) % 4), &mut m);
                    outcomes.push((r, s, delivered, m));
                }
            }
            (outcomes, plan.stats())
        };
        assert_eq!(run(&cfg), run(&cfg));
        let other = ChaosConfig {
            seed: 100,
            ..cfg.clone()
        };
        assert_ne!(run(&cfg).0, run(&other).0);
    }

    #[test]
    fn chaos_decide_and_filter_make_identical_decisions() {
        let cfg = ChaosConfig {
            seed: 42,
            drop_prob: 0.25,
            corrupt_prob: 0.4,
            crash_schedule: vec![(NodeId(3), 4)],
            ..ChaosConfig::fault_free(50)
        };
        let mut by_action = FaultPlan::new(&cfg, 5);
        let mut by_filter = FaultPlan::new(&cfg, 5);
        for _ in 0..30 {
            by_action.begin_round();
            by_filter.begin_round();
            for s in 0..4u32 {
                let mut m = msg(12);
                let action = by_action.decide(NodeId(s), NodeId((s + 1) % 5), 12);
                let delivered = by_filter.filter(NodeId(s), NodeId((s + 1) % 5), &mut m);
                match action {
                    FaultAction::Drop => assert!(!delivered),
                    FaultAction::Deliver => {
                        assert!(delivered);
                        assert_eq!(m, msg(12));
                    }
                    FaultAction::Toggle(i) => {
                        assert!(delivered);
                        let mut want = msg(12);
                        want.payload_mut().toggle(i);
                        assert_eq!(m, want);
                    }
                    FaultAction::Truncate(keep) => {
                        assert!(delivered);
                        assert_eq!(m.bit_len(), keep);
                    }
                }
            }
            assert_eq!(by_action.stats(), by_filter.stats());
        }
        let stats = by_action.stats();
        assert!(stats.messages_dropped > 0 && stats.bits_corrupted > 0);
    }

    #[test]
    fn chaos_config_validation_rejects_bad_probabilities() {
        let mut cfg = ChaosConfig::fault_free(10);
        assert!(cfg.validate().is_ok());
        assert!(cfg.is_fault_free());
        cfg.drop_prob = 1.5;
        assert!(matches!(
            cfg.validate(),
            Err(SimError::InvalidChaosConfig { .. })
        ));
        cfg.drop_prob = f64::NAN;
        assert!(cfg.validate().is_err());
    }
}
