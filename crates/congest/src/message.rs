//! Network messages with exact bit-length accounting.

use crate::bits::{BitReader, BitString};

/// A message sent over one edge in one round.
///
/// A message is just a [`BitString`] payload; its length in bits is what
/// the CONGEST budget constrains. Convenience constructors cover the
/// common cases (single bit, fixed-width integer, integer list).
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Message {
    payload: BitString,
}

impl std::fmt::Debug for Message {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Message({:?})", self.payload)
    }
}

impl Message {
    /// The empty message (0 bits). Sending it still counts as one message
    /// but zero bits.
    pub fn empty() -> Self {
        Message::default()
    }

    /// A one-bit message.
    pub fn from_bit(bit: bool) -> Self {
        let mut payload = BitString::new();
        payload.push_bit(bit);
        Message { payload }
    }

    /// A `width`-bit unsigned integer message.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `width` bits.
    pub fn from_uint(value: u64, width: usize) -> Self {
        let mut payload = BitString::new();
        payload.push_uint(value, width);
        Message { payload }
    }

    /// Wraps an existing bit string.
    pub fn from_bits(payload: BitString) -> Self {
        Message { payload }
    }

    /// Message length in bits.
    pub fn bit_len(&self) -> usize {
        self.payload.len()
    }

    /// The payload.
    pub fn payload(&self) -> &BitString {
        &self.payload
    }

    /// Mutable access to the payload — used by the fault-injection layer
    /// to flip or truncate bits in flight. Mutation cannot violate the
    /// budget retroactively as long as it never grows the payload (the
    /// [`FaultPlan`](crate::FaultPlan) only shrinks or preserves it).
    pub fn payload_mut(&mut self) -> &mut BitString {
        &mut self.payload
    }

    /// Overwrites the payload with `len` bits copied out of `slab`
    /// starting at `start`, reusing this message's allocation. This is
    /// the scatter half of the round engine's columnar plane: delivered
    /// payloads are carved out of the per-round slab into recycled
    /// `Message` shells without touching the allocator.
    ///
    /// # Panics
    ///
    /// Panics if `start + len` exceeds the slab length.
    pub fn load_range(&mut self, slab: &BitString, start: usize, len: usize) {
        slab.copy_range_into(start, len, &mut self.payload);
    }

    /// A reader over the payload.
    pub fn reader(&self) -> BitReader<'_> {
        self.payload.reader()
    }

    /// Reads the message as a single bit.
    ///
    /// Returns `None` if the message is not exactly one bit.
    pub fn as_bit(&self) -> Option<bool> {
        if self.payload.len() == 1 {
            Some(self.payload.get(0))
        } else {
            None
        }
    }

    /// Reads the message as a single `width`-bit integer.
    ///
    /// Returns `None` if the length does not match.
    pub fn as_uint(&self, width: usize) -> Option<u64> {
        if self.payload.len() == width {
            self.payload.reader().read_uint(width)
        } else {
            None
        }
    }
}

impl From<BitString> for Message {
    fn from(payload: BitString) -> Self {
        Message { payload }
    }
}

/// A builder for multi-field messages.
///
/// # Example
///
/// ```
/// use qdc_congest::Message;
/// use qdc_congest::BitString;
///
/// let mut bits = BitString::new();
/// bits.push_uint(3, 8);   // a tag
/// bits.push_uint(42, 16); // a value
/// let m = Message::from_bits(bits);
/// assert_eq!(m.bit_len(), 24);
/// let mut r = m.reader();
/// assert_eq!(r.read_uint(8), Some(3));
/// assert_eq!(r.read_uint(16), Some(42));
/// ```
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_message_is_zero_bits() {
        assert_eq!(Message::empty().bit_len(), 0);
    }

    #[test]
    fn bit_message_roundtrip() {
        assert_eq!(Message::from_bit(true).as_bit(), Some(true));
        assert_eq!(Message::from_bit(false).as_bit(), Some(false));
        assert_eq!(Message::from_uint(2, 2).as_bit(), None);
    }

    #[test]
    fn uint_message_roundtrip() {
        let m = Message::from_uint(300, 9);
        assert_eq!(m.bit_len(), 9);
        assert_eq!(m.as_uint(9), Some(300));
        assert_eq!(m.as_uint(8), None);
    }

    #[test]
    fn from_bitstring() {
        let b = BitString::from_bools(&[true, true, false]);
        let m: Message = b.clone().into();
        assert_eq!(m.payload(), &b);
        assert_eq!(m.bit_len(), 3);
    }
}
