//! The three-party simulation audit of Theorem 3.5.
//!
//! The proof of Theorem 3.5 simulates a distributed algorithm on `N` by
//! Carol, David and the server, where at time `t` each party *owns* the
//! nodes of `S_C^t / S_D^t / S_S^t` and simulates their state
//! transitions. The only communication Carol and David must pay for is
//! the messages their own nodes send across the advancing ownership
//! frontier — and because only **highway** edges can jump more than one
//! column, at most `k` such messages (of ≤ `B` bits) exist per party per
//! round, giving the `O(B log L)`-per-round budget.
//!
//! [`audit_trace`] performs this accounting on a *real* run of any
//! distributed algorithm (captured with
//! [`qdc_congest::Simulator::run_traced`]), charging each delivered
//! message to the party owning its sender, and checks the per-round paid
//! traffic against the `6kB` budget the theorem uses.

use crate::network::{Party, SimulationNetwork};
use qdc_congest::TrafficTrace;

/// The result of auditing one traced run against the Theorem 3.5 cost
/// model.
#[derive(Clone, Debug)]
pub struct ThreePartyAudit {
    /// Rounds audited (the trace length).
    pub rounds: usize,
    /// Bits Carol had to send (to the server or David).
    pub carol_bits: u64,
    /// Bits David had to send.
    pub david_bits: u64,
    /// Maximum Carol+David paid bits in any single round.
    pub max_paid_per_round: u64,
    /// The theorem's per-round budget `6·k·B`.
    pub per_round_budget: u64,
    /// Whether every audited round stayed within the budget.
    pub within_budget: bool,
    /// The horizon `L/2 − 2` up to which ownership sets are disjoint.
    pub horizon: usize,
    /// Whether the whole run finished within the horizon (the premise of
    /// Theorem 3.5).
    pub within_horizon: bool,
}

impl ThreePartyAudit {
    /// Total Server-model cost of the simulated run.
    pub fn total_paid(&self) -> u64 {
        self.carol_bits + self.david_bits
    }

    /// The theorem's total budget `O(B log L) · rounds` with the explicit
    /// constant 6.
    pub fn total_budget(&self) -> u64 {
        self.per_round_budget * self.rounds as u64
    }
}

/// Audits a traced run on the simulation network against the Theorem 3.5
/// cost model. `bandwidth` is the CONGEST `B` used for the run.
///
/// A message sent at the end of round `r` (delivered in `r + 1`) is paid
/// by Carol iff its sender is Carol-owned at time `r` and its receiver is
/// not Carol-owned at time `r + 1` (the receiver's owner must be told the
/// message to keep simulating); symmetrically for David. Server-sent
/// messages are free (Definition 3.1).
pub fn audit_trace(
    net: &SimulationNetwork,
    trace: &TrafficTrace,
    bandwidth: usize,
) -> ThreePartyAudit {
    let budget = 6 * net.highway_count() as u64 * bandwidth as u64;
    let mut carol_bits = 0u64;
    let mut david_bits = 0u64;
    let mut max_paid = 0u64;
    for (r, msgs) in trace.rounds.iter().enumerate() {
        let mut paid = 0u64;
        for m in msgs {
            let sender = net.owner(m.from, r);
            let receiver = net.owner(m.to, r + 1);
            match sender {
                Party::Carol if receiver != Party::Carol => {
                    carol_bits += m.bits as u64;
                    paid += m.bits as u64;
                }
                Party::David if receiver != Party::David => {
                    david_bits += m.bits as u64;
                    paid += m.bits as u64;
                }
                _ => {}
            }
        }
        max_paid = max_paid.max(paid);
    }
    ThreePartyAudit {
        rounds: trace.rounds.len(),
        carol_bits,
        david_bits,
        max_paid_per_round: max_paid,
        per_round_budget: budget,
        within_budget: max_paid <= budget,
        horizon: net.horizon(),
        within_horizon: trace.rounds.len() <= net.horizon(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdc_congest::{CongestConfig, Inbox, Message, NodeAlgorithm, NodeInfo, Outbox, Simulator};
    use qdc_graph::generate;

    /// Event-driven minimum-id flood along subnetwork edges — the kind of
    /// component-labeling step a Ham verifier performs on `M`.
    struct MinFlood {
        label: u64,
        active_ports: Vec<bool>,
        width: usize,
    }

    impl NodeAlgorithm for MinFlood {
        fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
            for p in 0..self.active_ports.len() {
                if self.active_ports[p] {
                    out.send(p, Message::from_uint(self.label, self.width));
                }
            }
        }
        fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
            let mut improved = false;
            for (port, msg) in inbox.iter() {
                if let Some(v) = msg.as_uint(self.width) {
                    if v < self.label && self.active_ports[port] {
                        self.label = v;
                        improved = true;
                    }
                }
            }
            if improved {
                for p in 0..self.active_ports.len() {
                    if self.active_ports[p] {
                        out.send(p, Message::from_uint(self.label, self.width));
                    }
                }
            }
        }
        fn is_terminated(&self) -> bool {
            true
        }
    }

    #[test]
    fn paid_traffic_stays_within_theorem_budget() {
        let net = SimulationNetwork::build(11, 33); // 11 + 5 = 16 tracks
        let tracks = net.track_count();
        let (carol, david) = generate::hamiltonian_matching_pair(tracks);
        let m = net.embed_matchings(&carol, &david);
        let bandwidth = 32;
        let cfg = CongestConfig::quantum(bandwidth);
        let sim = Simulator::new(net.graph(), cfg);
        let width = 20;
        let cap = net.horizon();
        let (_, report, trace) = sim.run_traced(
            |info| MinFlood {
                label: info.id.0 as u64,
                active_ports: info.incident_edges.iter().map(|&e| m.contains(e)).collect(),
                width,
            },
            cap,
        );
        assert!(report.rounds > 0);
        let audit = audit_trace(&net, &trace, bandwidth);
        assert!(
            audit.within_budget,
            "max paid {} vs budget {}",
            audit.max_paid_per_round, audit.per_round_budget
        );
        // The audit is the theorem's content: paid cost ≤ 6kB per round,
        // so total ≤ O(B log L)·T.
        assert!(audit.total_paid() <= audit.total_budget());
    }

    /// A broadcast flood over *all* edges (worst case for the audit: every
    /// highway edge fires every round).
    struct Chatter {
        rounds_left: usize,
    }

    impl NodeAlgorithm for Chatter {
        fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
            out.broadcast(Message::from_uint(0, 8));
        }
        fn on_round(&mut self, _info: &NodeInfo, _inbox: &Inbox, out: &mut Outbox) {
            if self.rounds_left > 0 {
                self.rounds_left -= 1;
                out.broadcast(Message::from_uint(0, 8));
            }
        }
        fn is_terminated(&self) -> bool {
            self.rounds_left == 0
        }
    }

    #[test]
    fn even_saturating_algorithms_stay_within_budget() {
        // The 6kB budget must hold for ANY algorithm, because only ≤ k
        // highway edges can cross the ownership frontier per round.
        let net = SimulationNetwork::build(6, 33);
        let bandwidth = 8;
        let cfg = CongestConfig::quantum(bandwidth);
        let sim = Simulator::new(net.graph(), cfg);
        let horizon = net.horizon();
        let (_, _, trace) = sim.run_traced(
            |_| Chatter {
                rounds_left: horizon - 1,
            },
            horizon,
        );
        let audit = audit_trace(&net, &trace, bandwidth);
        assert!(audit.within_horizon);
        assert!(
            audit.within_budget,
            "max paid {} vs budget {}",
            audit.max_paid_per_round, audit.per_round_budget
        );
        // And the budget is not vacuous: some traffic is actually paid.
        assert!(audit.total_paid() > 0);
    }

    #[test]
    fn audit_detects_horizon_overrun() {
        let net = SimulationNetwork::build(3, 9);
        let cfg = CongestConfig::classical(8);
        let sim = Simulator::new(net.graph(), cfg);
        let (_, _, trace) = sim.run_traced(|_| Chatter { rounds_left: 20 }, net.horizon() + 10);
        let audit = audit_trace(&net, &trace, 8);
        assert!(!audit.within_horizon);
    }

    #[test]
    fn server_sent_messages_are_free() {
        // A single message between two middle (server-owned) nodes costs
        // nothing.
        let net = SimulationNetwork::build(3, 17);
        let mid = net.node_at(0, 8).unwrap();
        struct OneShot {
            fire: bool,
        }
        impl NodeAlgorithm for OneShot {
            fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
                if self.fire {
                    out.broadcast(Message::from_uint(1, 4));
                }
            }
            fn on_round(&mut self, _: &NodeInfo, _: &Inbox, _: &mut Outbox) {}
            fn is_terminated(&self) -> bool {
                true
            }
        }
        let cfg = CongestConfig::classical(8);
        let sim = Simulator::new(net.graph(), cfg);
        let (_, _, trace) = sim.run_traced(
            |info| OneShot {
                fire: info.id == mid,
            },
            5,
        );
        let audit = audit_trace(&net, &trace, 8);
        assert_eq!(audit.total_paid(), 0);
    }
}
