//! The Section 8 network `N`: paths, boundary cliques and highways.

use qdc_graph::{Graph, GraphBuilder, NodeId, Subgraph};

/// Which party owns a node at a given simulation time (Equations 36–38).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Party {
    /// Carol (owns the left prefix of every track).
    Carol,
    /// David (owns the right suffix).
    David,
    /// The free server (owns the middle).
    Server,
}

/// The simulation network `N(Γ, L)` of Theorem 3.5.
///
/// `Γ` **paths** of `L` nodes each, **boundary cliques** joining all track
/// endpoints on the left and (separately) on the right, and
/// `k = log₂(L−1)` **highways**: highway `h` has nodes at positions
/// `1 + j·2^h`, consecutive nodes joined, each node also joined to the
/// aligned node one level below (level 0 = every path, via highway 1).
/// Highways count as tracks `Γ..Γ+k` for the matching embedding, exactly
/// as in the paper ("`v₁^{Γ+j} = h₁^j`").
///
/// # Example
///
/// ```
/// use qdc_simthm::SimulationNetwork;
///
/// let net = SimulationNetwork::build(4, 17);
/// assert_eq!(net.length(), 17);
/// assert_eq!(net.highway_count(), 4); // log₂(16)
/// assert_eq!(net.track_count(), 8);   // Γ + k
/// ```
#[derive(Clone, Debug)]
pub struct SimulationNetwork {
    graph: Graph,
    gamma: usize,
    l: usize,
    k: usize,
    /// `(track, position)` per node (positions are 1-based).
    coords: Vec<(usize, usize)>,
    /// Node at `(track, position)`; highways only exist at aligned
    /// positions.
    lookup: Vec<Vec<Option<NodeId>>>,
    /// Edges internal to tracks (the permanent part of every subnetwork
    /// `M`), by edge id.
    track_edges: Vec<qdc_graph::EdgeId>,
}

impl SimulationNetwork {
    /// Builds `N(Γ, L)` after rounding `L` up to the nearest `2^i + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `gamma == 0` or `l < 3`.
    pub fn build(gamma: usize, l: usize) -> Self {
        assert!(gamma >= 1, "need at least one path");
        assert!(l >= 3, "need L ≥ 3");
        // Round L up to 2^i + 1 (the paper's assumption).
        let mut k = 1usize;
        while (1usize << k) + 1 < l {
            k += 1;
        }
        let l = (1usize << k) + 1;

        // Assign node ids: paths first, then highways level by level.
        let mut coords: Vec<(usize, usize)> = Vec::new();
        let mut lookup: Vec<Vec<Option<NodeId>>> = Vec::new();
        for track in 0..gamma {
            let mut row = vec![None; l + 1];
            for (pos, slot) in row.iter_mut().enumerate().take(l + 1).skip(1) {
                *slot = Some(NodeId::from(coords.len()));
                coords.push((track, pos));
            }
            lookup.push(row);
        }
        for h in 1..=k {
            let track = gamma + h - 1;
            let mut row = vec![None; l + 1];
            let step = 1usize << h;
            let mut pos = 1;
            while pos <= l {
                row[pos] = Some(NodeId::from(coords.len()));
                coords.push((track, pos));
                pos += step;
            }
            lookup.push(row);
        }

        let n = coords.len();
        let mut b = GraphBuilder::new(n);
        let mut track_edges = Vec::new();
        // Track-internal edges (consecutive existing positions).
        for row in &lookup {
            let mut prev: Option<NodeId> = None;
            for slot in row.iter().take(l + 1).skip(1) {
                if let Some(v) = *slot {
                    if let Some(u) = prev {
                        track_edges.push(b.add_edge(u, v));
                    }
                    prev = Some(v);
                }
            }
        }
        // Boundary cliques on all Γ + k endpoints, left and right.
        let tracks = gamma + k;
        for side_pos in [1, l] {
            for a in 0..tracks {
                for c in (a + 1)..tracks {
                    b.add_edge(lookup[a][side_pos].unwrap(), lookup[c][side_pos].unwrap());
                }
            }
        }
        // Cross edges: path nodes to highway 1 at aligned positions, and
        // highway h−1 to highway h.
        // At positions 1 and L the cross edges coincide with boundary
        // clique edges, hence `add_edge_if_absent`.
        for path in 0..gamma {
            let h1 = gamma; // track index of highway 1
            let mut pos = 1;
            while pos <= l {
                b.add_edge_if_absent(lookup[path][pos].unwrap(), lookup[h1][pos].unwrap());
                pos += 2;
            }
        }
        for h in 2..=k {
            let lower = gamma + h - 2;
            let upper = gamma + h - 1;
            let step = 1usize << h;
            let mut pos = 1;
            while pos <= l {
                b.add_edge_if_absent(lookup[lower][pos].unwrap(), lookup[upper][pos].unwrap());
                pos += step;
            }
        }

        SimulationNetwork {
            graph: b.build(),
            gamma,
            l,
            k,
            coords,
            lookup,
            track_edges,
        }
    }

    /// The network graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of paths `Γ`.
    pub fn path_count(&self) -> usize {
        self.gamma
    }

    /// Path length `L` (after rounding to `2^k + 1`).
    pub fn length(&self) -> usize {
        self.l
    }

    /// Number of highways `k = log₂(L−1)`.
    pub fn highway_count(&self) -> usize {
        self.k
    }

    /// Total matching tracks `Γ + k` (the size of the Server-model input
    /// graph this network simulates).
    pub fn track_count(&self) -> usize {
        self.gamma + self.k
    }

    /// 1-based column position of a node.
    pub fn position(&self, v: NodeId) -> usize {
        self.coords[v.index()].1
    }

    /// Track index of a node (`0..Γ` paths, `Γ..Γ+k` highways).
    pub fn track(&self, v: NodeId) -> usize {
        self.coords[v.index()].0
    }

    /// The node of `track` at `position`, if the track has one there.
    pub fn node_at(&self, track: usize, position: usize) -> Option<NodeId> {
        self.lookup[track][position]
    }

    /// Left endpoint of a track (position 1).
    pub fn left_endpoint(&self, track: usize) -> NodeId {
        self.lookup[track][1].expect("every track has a left endpoint")
    }

    /// Right endpoint of a track (position `L`).
    pub fn right_endpoint(&self, track: usize) -> NodeId {
        self.lookup[track][self.l].expect("every track has a right endpoint")
    }

    /// The analytic diameter upper bound `4k + 8 = O(log L)` (climb to the
    /// top highway, cross, climb down).
    pub fn diameter_upper_bound(&self) -> usize {
        4 * self.k + 8
    }

    /// The simulation horizon of Theorem 3.5: ownership sets stay disjoint
    /// for `t ≤ L/2 − 2`.
    pub fn horizon(&self) -> usize {
        self.l / 2 - 2
    }

    /// Which party owns node `v` at time `t` (Equations 36–38, extended
    /// over highways as in Figure 13).
    pub fn owner(&self, v: NodeId, t: usize) -> Party {
        let pos = self.position(v);
        if pos <= t + 1 {
            Party::Carol
        } else if pos >= self.l - t {
            Party::David
        } else {
            Party::Server
        }
    }

    /// Embeds a Server-model instance: Carol's and David's perfect
    /// matchings on the `Γ + k` track labels become clique edges at the
    /// left and right boundaries respectively; all track-internal edges
    /// join them. The result is the subnetwork `M` of Figures 9/10, with
    /// `cycles(M) = cycles(G)` (Observation 8.1).
    ///
    /// # Panics
    ///
    /// Panics if a matching references an out-of-range track or a pair is
    /// not actually adjacent (all boundary pairs are, via the cliques).
    pub fn embed_matchings(&self, carol: &[(usize, usize)], david: &[(usize, usize)]) -> Subgraph {
        let mut m = Subgraph::empty(&self.graph);
        for &e in &self.track_edges {
            m.insert(e);
        }
        for &(a, c) in carol {
            let e = self
                .graph
                .find_edge(self.left_endpoint(a), self.left_endpoint(c))
                .expect("left boundary clique edge");
            m.insert(e);
        }
        for &(a, c) in david {
            let e = self
                .graph
                .find_edge(self.right_endpoint(a), self.right_endpoint(c))
                .expect("right boundary clique edge");
            m.insert(e);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdc_graph::{algorithms, generate, predicates, GraphBuilder};

    #[test]
    fn shape_matches_formulas() {
        let net = SimulationNetwork::build(5, 17);
        assert_eq!(net.length(), 17);
        assert_eq!(net.highway_count(), 4);
        // Nodes: 5·17 paths + highways 9 + 5 + 3 + 2 = 104.
        assert_eq!(net.graph().node_count(), 5 * 17 + 9 + 5 + 3 + 2);
        assert_eq!(net.track_count(), 9);
    }

    #[test]
    fn l_is_rounded_up() {
        let net = SimulationNetwork::build(2, 10);
        assert_eq!(net.length(), 17); // 2^4 + 1
        assert_eq!(net.highway_count(), 4);
    }

    #[test]
    fn node_count_is_theta_gamma_l() {
        let net = SimulationNetwork::build(8, 33);
        let n = net.graph().node_count();
        let gl = 8 * 33;
        assert!(n >= gl && n <= gl + 2 * 33, "n = {n}");
    }

    #[test]
    fn diameter_is_logarithmic() {
        for &(gamma, l) in &[(3usize, 9usize), (4, 17), (6, 33), (4, 65)] {
            let net = SimulationNetwork::build(gamma, l);
            let d = algorithms::diameter(net.graph()).expect("connected") as usize;
            assert!(
                d <= net.diameter_upper_bound(),
                "Γ={gamma}, L={l}: diameter {d} > bound {}",
                net.diameter_upper_bound()
            );
            // And genuinely logarithmic, far below L.
            assert!(d < l / 2 + 8, "Γ={gamma}, L={l}: diameter {d} not ≪ L");
        }
    }

    #[test]
    fn highways_shrink_diameter() {
        // Without highways (a Γ-path ladder with boundary cliques) the
        // diameter is Θ(L); with them it is Θ(log L). Compare directly.
        let net = SimulationNetwork::build(3, 65);
        let with = algorithms::diameter(net.graph()).unwrap();
        // Build the same network minus highways.
        let mut b = GraphBuilder::new(3 * 65);
        for t in 0..3u32 {
            for p in 0..64u32 {
                b.add_edge(
                    qdc_graph::NodeId(t * 65 + p),
                    qdc_graph::NodeId(t * 65 + p + 1),
                );
            }
        }
        for a in 0..3u32 {
            for c in (a + 1)..3 {
                b.add_edge(qdc_graph::NodeId(a * 65), qdc_graph::NodeId(c * 65));
                b.add_edge(
                    qdc_graph::NodeId(a * 65 + 64),
                    qdc_graph::NodeId(c * 65 + 64),
                );
            }
        }
        let without = algorithms::diameter(&b.build()).unwrap();
        assert!(with * 3 < without, "highways: {with}, without: {without}");
    }

    #[test]
    fn ownership_sets_are_disjoint_within_horizon() {
        let net = SimulationNetwork::build(3, 17);
        for t in 0..=net.horizon() {
            let mut carol = 0;
            let mut david = 0;
            for v in net.graph().nodes() {
                match net.owner(v, t) {
                    Party::Carol => carol += 1,
                    Party::David => david += 1,
                    Party::Server => {}
                }
            }
            assert!(carol > 0 && david > 0);
            // Disjointness: position windows [1, t+1] and [L−t, L] must
            // not overlap within the horizon.
            assert!(t + 1 < net.length() - t, "t = {t}");
        }
    }

    #[test]
    fn embedded_hamiltonian_matchings_give_hamiltonian_m() {
        let net = SimulationNetwork::build(5, 9); // 5 paths + 3 highways
        let tracks = net.track_count();
        assert_eq!(tracks % 2, 0, "test assumes even track count");
        let (carol, david) = generate::hamiltonian_matching_pair(tracks);
        let m = net.embed_matchings(&carol, &david);
        assert!(predicates::is_hamiltonian_cycle(net.graph(), &m));
    }

    #[test]
    fn observation_8_1_cycle_counts_match() {
        // cycles(M) == cycles(G) for random matchings.
        for seed in 0..6 {
            let net = SimulationNetwork::build(6, 9);
            let tracks = net.track_count(); // 6 + 3 = 9 … odd; pad Γ to even.
            let net = if tracks % 2 == 1 {
                SimulationNetwork::build(7, 9)
            } else {
                net
            };
            let tracks = net.track_count();
            let carol = generate::random_perfect_matching(tracks, 100 + seed);
            let david = generate::random_perfect_matching(tracks, 200 + seed);
            // Reference: cycle count of G = (U, E_C ∪ E_D). Parallel pairs
            // (same pair in both matchings) form 2-cycles in the
            // multigraph; in M they appear as genuine cycles through the
            // track, while the simple-graph G cannot represent them — skip
            // such seeds.
            let mut b = GraphBuilder::new(tracks);
            let mut ok = true;
            for &(a, c) in carol.iter().chain(&david) {
                let before = b.edge_count();
                b.add_edge_if_absent(qdc_graph::NodeId::from(a), qdc_graph::NodeId::from(c));
                if b.edge_count() == before {
                    ok = false;
                }
            }
            if !ok {
                continue;
            }
            let g = b.build();
            let g_cycles = predicates::cycle_count_two_regular(&g, &g.full_subgraph()).unwrap();
            let m = net.embed_matchings(&carol, &david);
            let m_cycles = predicates::cycle_count_two_regular(net.graph(), &m).unwrap();
            assert_eq!(m_cycles, g_cycles, "seed {seed}");
        }
    }

    #[test]
    fn positions_and_tracks_are_consistent() {
        let net = SimulationNetwork::build(3, 9);
        for v in net.graph().nodes() {
            let (t, p) = (net.track(v), net.position(v));
            assert_eq!(net.node_at(t, p), Some(v));
        }
        assert_eq!(net.position(net.left_endpoint(0)), 1);
        assert_eq!(net.position(net.right_endpoint(0)), net.length());
    }
}
