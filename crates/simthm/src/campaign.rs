//! Campaign adapter: one Γ×L parameter point → one runnable experiment.
//!
//! The campaign harness (`qdc-harness`) sweeps whole grids of
//! simulation-theorem networks; this module is the bridge it uses. A
//! [`SimThmPoint`] is plain `Send` data naming one grid cell; and
//! [`run_point`] executes it: build `N(Γ, L)`, embed a
//! Hamiltonian-matching subnetwork `M`, run the min-label component
//! flood (the core of a Ham verifier) traced up to the Theorem 3.5
//! horizon, and audit the Carol/David-paid traffic against the `6kB`
//! budget. [`experiment`] wraps the same work as a `FnOnce() + Send`
//! closure for harnesses that ship work to worker threads.
//!
//! Everything here is deterministic: a point's outcome is a pure
//! function of `(gamma, l, bandwidth)`, which is what lets the harness
//! promise bit-identical aggregates regardless of thread count.

use crate::network::SimulationNetwork;
use crate::simulate::audit_trace;
use qdc_congest::{
    CongestConfig, Inbox, Message, NodeAlgorithm, NodeClass, NodeInfo, NullTelemetry, Outbox,
    RoundProfiler, RunMetrics, RunOptions, Simulator, Telemetry, TelemetryReport, TrafficTrace,
};
use qdc_graph::generate;

/// One cell of a Γ×L campaign grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SimThmPoint {
    /// Requested number of paths Γ (bumped by one internally when the
    /// track count `Γ + k` would be odd — the matching embedding needs
    /// an even number of tracks, exactly as the suite binaries do).
    pub gamma: usize,
    /// Requested path length L (rounded up to `2^k + 1` by the network
    /// builder).
    pub l: usize,
    /// CONGEST bandwidth `B` in qubits (the run is accounted under the
    /// quantum channel, the paper's strongest model).
    pub bandwidth: usize,
}

/// What one simulation-theorem point produced.
#[derive(Clone, Debug)]
pub struct SimThmOutcome {
    /// Traffic accounting of the traced run (capped at the horizon).
    pub metrics: RunMetrics,
    /// Nodes in the realized network (after Γ/L adjustment).
    pub node_count: u64,
    /// Highway count `k` of the realized network.
    pub highways: u64,
    /// The Theorem 3.5 horizon `L/2 − 2` the run was capped at.
    pub horizon: u64,
    /// Total bits Carol and David paid under the ownership schedule.
    pub paid_bits: u64,
    /// Maximum Carol+David paid bits in any single round.
    pub max_paid_per_round: u64,
    /// The theorem's per-round budget `6kB`.
    pub per_round_budget: u64,
    /// Whether every audited round stayed within the budget (the
    /// Theorem 3.5 claim; a campaign exists to observe this at scale).
    pub within_budget: bool,
    /// The per-round message trace, so the harness can archive the run
    /// with [`TrafficTrace::to_jsonl`] and replay it offline.
    pub trace: TrafficTrace,
}

/// Event-driven min-label flood along the embedded subnetwork `M` — the
/// component-labeling core of a Ham verifier, the same workload the
/// Theorem 3.5 suite binaries audit.
struct ComponentFlood {
    label: u64,
    active_ports: Vec<bool>,
    width: usize,
}

impl ComponentFlood {
    fn send_all(&self, out: &mut Outbox) {
        for p in 0..self.active_ports.len() {
            if self.active_ports[p] {
                out.send(p, Message::from_uint(self.label, self.width));
            }
        }
    }
}

impl NodeAlgorithm for ComponentFlood {
    fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
        self.send_all(out);
    }
    fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        let mut improved = false;
        for (port, msg) in inbox.iter() {
            if self.active_ports[port] {
                if let Some(v) = msg.as_uint(self.width) {
                    if v < self.label {
                        self.label = v;
                        improved = true;
                    }
                }
            }
        }
        if improved {
            self.send_all(out);
        }
    }
    fn is_terminated(&self) -> bool {
        true
    }
}

/// Executes one grid point: network, embedding, traced run, audit.
///
/// The run is capped at the horizon `L/2 − 2` — Theorem 3.5 only speaks
/// about runs within it, so `metrics.completed` is usually 0 and that is
/// the expected shape, not a failure.
///
/// # Panics
///
/// Panics if `gamma == 0` or `l < 3` (the network builder's own
/// preconditions). Campaign specs are validated before any point runs,
/// so the harness never reaches this.
pub fn run_point(point: &SimThmPoint) -> SimThmOutcome {
    run_point_with(point, RunOptions::default())
}

/// [`run_point`] with explicit simulator [`RunOptions`] (worker threads
/// for the engine's compute phase). Options never change outcomes — the
/// result is byte-identical at every thread count.
pub fn run_point_with(point: &SimThmPoint, options: RunOptions) -> SimThmOutcome {
    let net = build_network(point);
    run_on(&net, point, options, &mut NullTelemetry)
}

/// [`run_point`] with a [`RoundProfiler`] observing the run, classified
/// by [`highway_classes`] so the resulting [`TelemetryReport`] carries
/// the highway-vs-path traffic split of Figs. 8–10. Telemetry observes,
/// never perturbs: the outcome is bit-for-bit that of [`run_point`].
pub fn run_point_observed(point: &SimThmPoint) -> (SimThmOutcome, TelemetryReport) {
    run_point_observed_with(point, RunOptions::default())
}

/// [`run_point_observed`] with explicit simulator [`RunOptions`]. The
/// profile and outcome are byte-identical at every thread count.
pub fn run_point_observed_with(
    point: &SimThmPoint,
    options: RunOptions,
) -> (SimThmOutcome, TelemetryReport) {
    let (outcome, profiler) = run_point_sink_with(point, options, |nodes, edges, classes| {
        RoundProfiler::new(nodes, edges, point.bandwidth).with_classes(classes)
    });
    (outcome, profiler.finish())
}

/// The generic observed entry point behind [`run_point_observed_with`]:
/// realizes the point's network, asks `install` to build the sink from
/// the realized shape (node count, edge count, [`highway_classes`]
/// classification), runs observed, and hands the driven sink back.
///
/// This is how bounded-memory sinks attach — the campaign harness
/// installs a `qdc_congest::StreamSink` here for `--telemetry-stream`
/// runs, and exact mode keeps installing [`RoundProfiler`]. Whatever
/// the sink, observation never perturbs the outcome.
pub fn run_point_sink_with<T, F>(
    point: &SimThmPoint,
    options: RunOptions,
    install: F,
) -> (SimThmOutcome, T)
where
    T: Telemetry,
    F: FnOnce(usize, usize, Vec<NodeClass>) -> T,
{
    let net = build_network(point);
    let mut sink = install(
        net.graph().node_count(),
        net.graph().edge_count(),
        highway_classes(&net),
    );
    let outcome = run_on(&net, point, options, &mut sink);
    (outcome, sink)
}

/// The node classification of `N(Γ, L)` for telemetry's traffic split:
/// tracks `0..Γ` are [`NodeClass::Path`], tracks `Γ..Γ+k` are
/// [`NodeClass::Highway`], indexed by node id.
pub fn highway_classes(net: &SimulationNetwork) -> Vec<NodeClass> {
    net.graph()
        .nodes()
        .map(|v| {
            if net.track(v) < net.path_count() {
                NodeClass::Path
            } else {
                NodeClass::Highway
            }
        })
        .collect()
}

/// Realizes a point's network, bumping Γ by one when the track count
/// `Γ + k` would be odd (the matching embedding needs an even number of
/// tracks, exactly as the suite binaries do).
fn build_network(point: &SimThmPoint) -> SimulationNetwork {
    let net = SimulationNetwork::build(point.gamma, point.l);
    if net.track_count() % 2 == 1 {
        SimulationNetwork::build(point.gamma + 1, point.l)
    } else {
        net
    }
}

/// The shared execution path behind the plain and observed entry points.
fn run_on<T: Telemetry>(
    net: &SimulationNetwork,
    point: &SimThmPoint,
    options: RunOptions,
    telemetry: &mut T,
) -> SimThmOutcome {
    let tracks = net.track_count();
    let (carol, david) = generate::hamiltonian_matching_pair(tracks);
    let m = net.embed_matchings(&carol, &david);
    let width = qdc_algos::widths::id_width(net.graph().node_count());
    let sim = Simulator::with_options(
        net.graph(),
        CongestConfig::quantum(point.bandwidth),
        options,
    );
    let (_, report, trace) = sim.run_traced_observed(
        |info| ComponentFlood {
            label: info.id.0 as u64,
            active_ports: info.incident_edges.iter().map(|&e| m.contains(e)).collect(),
            width,
        },
        net.horizon(),
        telemetry,
    );
    let audit = audit_trace(net, &trace, point.bandwidth);
    SimThmOutcome {
        metrics: report.metrics(),
        node_count: net.graph().node_count() as u64,
        highways: net.highway_count() as u64,
        horizon: net.horizon() as u64,
        paid_bits: audit.total_paid(),
        max_paid_per_round: audit.max_paid_per_round,
        per_round_budget: audit.per_round_budget,
        within_budget: audit.within_budget,
        trace,
    }
}

/// Packages a point as a `FnOnce` experiment closure that can be shipped
/// to a worker thread — the shape the campaign harness shards.
pub fn experiment(point: SimThmPoint) -> impl FnOnce() -> SimThmOutcome + Send + 'static {
    move || run_point(&point)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simthm_point_is_deterministic_and_within_budget() {
        let p = SimThmPoint {
            gamma: 6,
            l: 17,
            bandwidth: 32,
        };
        let a = run_point(&p);
        let b = run_point(&p);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.paid_bits, b.paid_bits);
        assert_eq!(a.trace.rounds, b.trace.rounds);
        assert!(a.within_budget, "Theorem 3.5 budget must hold");
        assert!(a.metrics.rounds <= a.horizon);
        assert!(a.metrics.messages_sent > 0);
    }

    #[test]
    fn simthm_odd_track_count_is_adjusted_like_the_suite_binaries() {
        // Γ = 11, L = 17 → k = 4, 15 tracks (odd) → realized Γ = 12.
        let p = SimThmPoint {
            gamma: 11,
            l: 17,
            bandwidth: 16,
        };
        let out = run_point(&p);
        let net = SimulationNetwork::build(12, 17);
        assert_eq!(out.node_count, net.graph().node_count() as u64);
    }

    #[test]
    fn simthm_observed_point_matches_plain_and_splits_traffic() {
        let p = SimThmPoint {
            gamma: 4,
            l: 9,
            bandwidth: 16,
        };
        let plain = run_point(&p);
        let (observed, telemetry) = run_point_observed(&p);
        // Observation never perturbs the run.
        assert_eq!(plain.metrics, observed.metrics);
        assert_eq!(plain.paid_bits, observed.paid_bits);
        assert_eq!(plain.trace.rounds, observed.trace.rounds);
        // The profile reproduces the run's totals…
        assert_eq!(telemetry.total_messages(), observed.metrics.messages_sent);
        assert_eq!(telemetry.total_bits(), observed.metrics.bits_sent);
        assert_eq!(telemetry.rounds.len() as u64, observed.metrics.rounds);
        // …and the highway/path split covers every delivered bit.
        assert!(telemetry.classified);
        let split: u64 = telemetry
            .rounds
            .iter()
            .map(|r| r.path_bits + r.highway_bits + r.cross_bits)
            .sum();
        assert_eq!(split, observed.metrics.bits_sent);
        // The boundary cliques guarantee cross-class traffic in a
        // component flood; pure path traffic flows along the paths.
        let cross: u64 = telemetry.rounds.iter().map(|r| r.cross_bits).sum();
        assert!(cross > 0, "path↔highway edges must carry traffic");
    }

    #[test]
    fn simthm_highway_classes_match_track_layout() {
        let net = SimulationNetwork::build(4, 9);
        let classes = highway_classes(&net);
        assert_eq!(classes.len(), net.graph().node_count());
        let highways = classes.iter().filter(|c| **c == NodeClass::Highway).count();
        let paths = classes.len() - highways;
        // Γ paths of L nodes; k highways thin out with height but share
        // the same class.
        assert_eq!(paths, net.path_count() * net.length());
        assert!(highways > 0);
    }

    #[test]
    fn simthm_experiment_closure_is_send() {
        fn assert_send<T: Send>(_: &T) {}
        let e = experiment(SimThmPoint {
            gamma: 4,
            l: 9,
            bandwidth: 8,
        });
        assert_send(&e);
        let out = e();
        assert!(out.within_budget);
    }
}
