//! The Quantum Simulation Theorem machinery (Section 8 / Appendix D).
//!
//! Theorem 3.5 is the bridge from Server-model hardness to distributed
//! lower bounds: there is a `B`-model network `N` of `Θ(ΓL)` nodes and
//! diameter `Θ(log L)` such that any distributed algorithm deciding
//! Hamiltonian-cycle verification on `N` in `T ≤ L/2 − 2` rounds can be
//! simulated by Carol, David and the free server with only
//! `O(B log L)` bits of Carol/David communication per round.
//!
//! This crate implements both halves executably:
//!
//! * [`network`] — the construction of `N`: `Γ` paths of length `L`,
//!   boundary cliques, and `k = log₂(L−1)` geometrically-spaced
//!   **highways** that crush the diameter to `Θ(log L)` (Figures 8, 10,
//!   13), plus the embedding of a pair of perfect matchings `(E_C, E_D)`
//!   as the subnetwork `M` with `cycles(M) = cycles(G)` (Observation 8.1);
//! * [`simulate`] — the ownership sets `S_C^t / S_D^t / S_S^t`
//!   (Equations 36–38) and a traffic **audit**: every message of a real
//!   simulator run is charged to the party owning its sender, verifying
//!   that the Carol/David-paid traffic stays within the `6kB`-per-round
//!   budget the proof of Theorem 3.5 uses;
//! * [`replay`] — the simulation *performed*: three parties holding only
//!   their owned node states re-execute the algorithm, exchanging exactly
//!   the entitled messages, and reproduce the direct run bit for bit;
//! * [`campaign`] — the grid-sweep adapter: one Γ×L parameter point
//!   packaged as a deterministic, `Send` experiment for the `qdc-harness`
//!   campaign runner.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod network;
pub mod replay;
pub mod simulate;

pub use campaign::{SimThmOutcome, SimThmPoint};
pub use network::{Party, SimulationNetwork};
pub use simulate::{audit_trace, ThreePartyAudit};
