//! The three-party simulation, actually executed.
//!
//! [`audit_trace`](crate::simulate::audit_trace) *prices* a run;
//! [`three_party_replay`] *performs* it: Carol, David and the server each
//! hold only the node states they own under the `S^t` schedule, exchange
//! exactly the messages the proof of Theorem 3.5 entitles them to
//! (internal messages free within a party, server messages free, the
//! rest paid and metered), and step their nodes locally. At the end the
//! replayed node states must coincide with a direct run of the same
//! algorithm — demonstrating, not just asserting, that the three parties
//! can reproduce any distributed computation on `N` at Server-model cost
//! `O(B log L)` per round.

use crate::network::{Party, SimulationNetwork};
use qdc_congest::{
    ChaosConfig, CongestConfig, FaultPlan, Inbox, Message, NodeAlgorithm, NodeInfo, Outbox,
    Simulator,
};
use std::collections::HashMap;

/// Outcome of a three-party replay.
#[derive(Debug)]
pub struct ReplayOutcome<A> {
    /// Final node states, reassembled from the three parties.
    pub nodes: Vec<A>,
    /// Rounds replayed.
    pub rounds: usize,
    /// Bits Carol paid (messages her nodes sent to non-Carol receivers,
    /// plus state handoffs she had to request are free — the server sends
    /// them).
    pub carol_paid_bits: u64,
    /// Bits David paid.
    pub david_paid_bits: u64,
    /// Messages lost to fault injection (zero for the fault-free entry
    /// point [`three_party_replay`]).
    pub messages_dropped: u64,
}

/// Replays `init`'s algorithm on the simulation network for `rounds`
/// rounds (≤ the horizon) with the ownership schedule, then returns the
/// reassembled states and the paid-bit meters.
///
/// The replay is lockstep with explicit party boundaries:
///
/// 1. every party steps the nodes it owns at time `t`, producing
///    outgoing messages;
/// 2. each message `(u → v)` is routed: if the sender's owner at `t`
///    differs from the receiver's owner at `t + 1`, the sender's party
///    pays its bits (server pays nothing);
/// 3. ownership expansion: node states crossing from the server to
///    Carol/David move for free; the horizon guarantees Carol's and
///    David's regions never exchange state directly.
///
/// # Panics
///
/// Panics if `rounds` exceeds the horizon (the schedule would overlap).
pub fn three_party_replay<A, F>(
    net: &SimulationNetwork,
    cfg: CongestConfig,
    init: F,
    rounds: usize,
) -> ReplayOutcome<A>
where
    A: NodeAlgorithm,
    F: FnMut(&NodeInfo) -> A,
{
    three_party_replay_chaos(net, cfg, init, rounds, &ChaosConfig::fault_free(rounds + 1))
}

/// [`three_party_replay`] under fault injection: the same lockstep
/// protocol, with every in-flight message passed through a
/// [`FaultPlan`] built from `chaos` before routing.
///
/// The replay honours the plan's determinism contract — one
/// `begin_round` per synchronous round, then one `filter` per message
/// in the simulator's delivery order (ascending sender id, then port) —
/// so under the same config it observes **exactly** the drops,
/// corruptions and crashes that [`Stepper::with_chaos`]
/// (qdc_congest::Stepper::with_chaos) produces on the same network,
/// and the replayed states still coincide with the direct run's. Paid
/// bits are metered only for messages that survive the plan (a dropped
/// message never crosses a party boundary); nodes that crash-stop are
/// no longer stepped by their owner.
///
/// # Panics
///
/// Panics if `rounds` exceeds the horizon, if `chaos` fails
/// [`validate`](ChaosConfig::validate), or if its crash schedule names
/// a node outside the network.
pub fn three_party_replay_chaos<A, F>(
    net: &SimulationNetwork,
    cfg: CongestConfig,
    mut init: F,
    rounds: usize,
    chaos: &ChaosConfig,
) -> ReplayOutcome<A>
where
    A: NodeAlgorithm,
    F: FnMut(&NodeInfo) -> A,
{
    assert!(
        rounds <= net.horizon(),
        "replay limited to the horizon L/2 − 2 = {}",
        net.horizon()
    );
    chaos.validate().expect("invalid chaos config");
    let graph = net.graph();
    let n = graph.node_count();
    let mut plan = FaultPlan::new(chaos, n);
    let sim = Simulator::new(graph, cfg);
    let infos: Vec<NodeInfo> = graph.nodes().map(|v| sim.info(v).clone()).collect();

    // Party-partitioned node states. Conceptually three address spaces;
    // the type system of this test harness keeps them in one map keyed by
    // (party, node) to avoid triple boilerplate, but every access below
    // goes through the owner schedule — a node is only ever touched by
    // its owner of the moment.
    let mut states: HashMap<(Party, u32), A> = HashMap::new();
    for v in graph.nodes() {
        states.insert((net.owner(v, 0), v.0), init(&infos[v.index()]));
    }

    // Round 0: owners run on_start for their nodes.
    let mut outgoing: Vec<Vec<Option<Message>>> = vec![Vec::new(); n];
    for v in graph.nodes() {
        let owner = net.owner(v, 0);
        let node = states.get_mut(&(owner, v.0)).expect("owned");
        let mut out = Outbox::detached(infos[v.index()].degree(), cfg.bandwidth_bits);
        node.on_start(&infos[v.index()], &mut out);
        outgoing[v.index()] = out.into_slots();
    }

    let mut carol_paid = 0u64;
    let mut david_paid = 0u64;
    // Reusable inbox buffers, cleared in place each round — the same
    // discipline as the simulator's round engine.
    let mut inboxes: Vec<Inbox> = infos
        .iter()
        .map(|i| Inbox::from_slots(vec![None; i.degree()]))
        .collect();
    for t in 0..rounds {
        // Replay round t delivers what was queued at t − 1 (or on_start
        // for t = 0) — the same work the engine does in round t + 1, so
        // the plan's round counter advances here, activating any crashes
        // scheduled for this round before their in-flight traffic lands.
        plan.begin_round();
        // Ownership expansion t → t+1: the server hands newly-acquired
        // node states to Carol/David for free.
        for v in graph.nodes() {
            let before = net.owner(v, t);
            let after = net.owner(v, t + 1);
            if before != after {
                assert_eq!(before, Party::Server, "only the server cedes nodes");
                let state = states.remove(&(before, v.0)).expect("server owned it");
                states.insert((after, v.0), state);
            }
        }

        // Deliver messages, metering cross-party traffic. Routing uses
        // the simulator's precomputed back-port table.
        for inbox in &mut inboxes {
            inbox.clear();
        }
        for u in graph.nodes() {
            for p in 0..outgoing[u.index()].len() {
                let Some(mut msg) = outgoing[u.index()][p].take() else {
                    continue;
                };
                let v = infos[u.index()].neighbors[p];
                if !plan.filter(u, v, &mut msg) {
                    continue;
                }
                let back = sim.back_port(u, p);
                let sender = net.owner(u, t);
                let receiver = net.owner(v, t + 1);
                // Paid bits meter the message as delivered (a corrupted
                // payload may have been truncated in flight).
                match sender {
                    Party::Carol if receiver != Party::Carol => carol_paid += msg.bit_len() as u64,
                    Party::David if receiver != Party::David => david_paid += msg.bit_len() as u64,
                    _ => {}
                }
                inboxes[v.index()].put(back, msg);
            }
        }
        // Each party steps its nodes with the messages routed to them.
        // Crash-stopped nodes keep their last state and send nothing,
        // exactly as in the engine's compute phase.
        for v in graph.nodes() {
            if plan.is_crashed(v) {
                continue;
            }
            let owner = net.owner(v, t + 1);
            let node = states
                .get_mut(&(owner, v.0))
                .expect("owned after expansion");
            let slots = std::mem::take(&mut outgoing[v.index()]);
            let mut out = Outbox::detached_reusing(slots, cfg.bandwidth_bits);
            node.on_round(&infos[v.index()], &inboxes[v.index()], &mut out);
            outgoing[v.index()] = out.into_slots();
        }
    }

    // Reassemble final states in node order.
    let mut nodes: Vec<Option<A>> = (0..n).map(|_| None).collect();
    for ((_, id), state) in states {
        nodes[id as usize] = Some(state);
    }
    ReplayOutcome {
        nodes: nodes
            .into_iter()
            .map(|s| s.expect("every node owned"))
            .collect(),
        rounds,
        carol_paid_bits: carol_paid,
        david_paid_bits: david_paid,
        messages_dropped: plan.stats().messages_dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdc_graph::generate;

    /// The component-label flood used across the Theorem 3.5 experiments.
    #[derive(Clone, PartialEq, Eq, Debug)]
    struct MinFlood {
        label: u64,
        active: Vec<bool>,
        width: usize,
    }

    impl NodeAlgorithm for MinFlood {
        fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
            for p in 0..self.active.len() {
                if self.active[p] {
                    out.send(p, Message::from_uint(self.label, self.width));
                }
            }
        }
        fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
            let mut improved = false;
            for (port, msg) in inbox.iter() {
                if self.active[port] {
                    if let Some(v) = msg.as_uint(self.width) {
                        if v < self.label {
                            self.label = v;
                            improved = true;
                        }
                    }
                }
            }
            if improved {
                for p in 0..self.active.len() {
                    if self.active[p] {
                        out.send(p, Message::from_uint(self.label, self.width));
                    }
                }
            }
        }
        fn is_terminated(&self) -> bool {
            true
        }
    }

    #[test]
    fn replay_matches_direct_run_exactly() {
        let net = SimulationNetwork::build(12, 17);
        let tracks = net.track_count();
        let (carol, david) = generate::hamiltonian_matching_pair(tracks);
        let m = net.embed_matchings(&carol, &david);
        let cfg = CongestConfig::quantum(32);
        let width = 16;
        let horizon = net.horizon();

        let make = |info: &NodeInfo| MinFlood {
            label: info.id.0 as u64,
            active: info.incident_edges.iter().map(|&e| m.contains(e)).collect(),
            width,
        };

        // Direct run, capped at the horizon.
        let sim = Simulator::new(net.graph(), cfg);
        let (direct, _) = sim.run(make, horizon);

        // Three-party replay for the same number of rounds.
        let replay = three_party_replay(&net, cfg, make, horizon);
        assert_eq!(replay.rounds, horizon);
        for v in net.graph().nodes() {
            assert_eq!(
                direct[v.index()].label,
                replay.nodes[v.index()].label,
                "node {v} diverged between direct run and three-party replay"
            );
        }
        // And the metered cost respects the Theorem 3.5 budget.
        let budget = 6 * net.highway_count() as u64 * 32 * horizon as u64;
        assert!(
            replay.carol_paid_bits + replay.david_paid_bits <= budget,
            "paid {} vs budget {budget}",
            replay.carol_paid_bits + replay.david_paid_bits
        );
        assert!(
            replay.carol_paid_bits > 0,
            "Carol pays something on this workload"
        );
    }

    #[test]
    fn chaos_replay_stays_in_lockstep_with_the_stepper() {
        use qdc_congest::Stepper;
        use qdc_graph::NodeId;

        let net = SimulationNetwork::build(12, 17);
        let tracks = net.track_count();
        let (carol, david) = generate::hamiltonian_matching_pair(tracks);
        let m = net.embed_matchings(&carol, &david);
        let cfg = CongestConfig::quantum(32);
        let width = 16;
        let rounds = net.horizon();

        let make = |info: &NodeInfo| MinFlood {
            label: info.id.0 as u64,
            active: info.incident_edges.iter().map(|&e| m.contains(e)).collect(),
            width,
        };
        let chaos = ChaosConfig {
            seed: 99,
            drop_prob: 0.2,
            crash_schedule: vec![(NodeId(4), 3)],
            corrupt_prob: 0.1,
            max_rounds_watchdog: rounds + 1,
        };

        // Direct run via the stepper, one engine round per replay round.
        let mut stepper = Stepper::with_chaos(net.graph(), cfg, &chaos, make);
        let mut direct_dropped = 0u64;
        for _ in 0..rounds {
            direct_dropped += stepper.step().dropped;
        }

        let replay = three_party_replay_chaos(&net, cfg, make, rounds, &chaos);
        assert!(replay.messages_dropped > 0, "faults must actually fire");
        assert_eq!(
            replay.messages_dropped, direct_dropped,
            "fault decisions diverged between replay and stepper"
        );
        for v in net.graph().nodes() {
            assert_eq!(
                stepper.nodes()[v.index()].label,
                replay.nodes[v.index()].label,
                "node {v} diverged under fault injection"
            );
        }
    }

    #[test]
    fn fault_free_wrapper_reports_zero_drops() {
        let net = SimulationNetwork::build(3, 9);
        let cfg = CongestConfig::classical(8);
        let out = three_party_replay(
            &net,
            cfg,
            |info| MinFlood {
                label: info.id.0 as u64,
                active: vec![true; info.degree()],
                width: 8,
            },
            net.horizon(),
        );
        assert_eq!(out.messages_dropped, 0);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn replay_beyond_horizon_rejected() {
        let net = SimulationNetwork::build(3, 9);
        let cfg = CongestConfig::classical(8);
        three_party_replay(
            &net,
            cfg,
            |info| MinFlood {
                label: info.id.0 as u64,
                active: vec![false; info.degree()],
                width: 8,
            },
            net.horizon() + 1,
        );
    }
}
