//! Loopback integration tests: a real [`Server`] on an ephemeral port,
//! driven by a raw [`TcpStream`] client. The headline assertion is the
//! service's determinism contract — the bytes streamed from
//! `/jobs/<id>/records` are identical to what an in-process
//! deterministic run of the same spec produces — plus the structured
//! rejection and recovery behaviours that need an actual socket.

use qdc_harness::{builtin, run_campaign, CancelToken, RunOptions};
use qdc_service::{
    validate_error, validate_job, validate_status, QuotaConfig, Server, ServiceConfig,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qdc_loopback_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// A running server plus the handle needed to stop it cleanly.
struct TestServer {
    addr: String,
    cancel: CancelToken,
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl TestServer {
    fn start(config: ServiceConfig) -> TestServer {
        let cancel = CancelToken::new();
        let server = Server::bind("127.0.0.1:0", config, cancel.clone()).expect("binds");
        assert!(server.scan_warnings().is_empty(), "clean data dir");
        let addr = server.local_addr().expect("bound").to_string();
        let handle = std::thread::spawn(move || server.run());
        TestServer {
            addr,
            cancel,
            handle: Some(handle),
        }
    }

    fn stop(mut self) {
        self.cancel.cancel();
        self.handle
            .take()
            .expect("started")
            .join()
            .expect("no panic")
            .expect("clean shutdown");
    }
}

/// Sends one raw request and returns `(status, body)` with chunked
/// bodies reassembled.
fn http(addr: &str, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read");
    let text = String::from_utf8(response).expect("utf8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("head/body split");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = if head.contains("Transfer-Encoding: chunked") {
        dechunk(body)
    } else {
        body.to_string()
    };
    (status, body)
}

fn dechunk(mut body: &str) -> String {
    let mut out = String::new();
    loop {
        let (size_line, rest) = body.split_once("\r\n").expect("chunk size line");
        let size = usize::from_str_radix(size_line.trim(), 16).expect("hex chunk size");
        if size == 0 {
            return out;
        }
        out.push_str(&rest[..size]);
        body = rest[size..].strip_prefix("\r\n").expect("chunk terminator");
    }
}

fn get(addr: &str, path: &str) -> (u16, String) {
    http(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

/// Like [`get`], but keeps the chunked framing visible: returns the
/// size of every chunk alongside the reassembled body. The framing is
/// the evidence that the server streamed from disk in bounded windows
/// instead of buffering the whole file into one response.
fn get_chunk_profile(addr: &str, path: &str) -> (u16, Vec<usize>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read");
    let text = String::from_utf8(response).expect("utf8 response");
    let (head, mut body) = text.split_once("\r\n\r\n").expect("head/body split");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    assert!(
        head.contains("Transfer-Encoding: chunked"),
        "expected a chunked response, got:\n{head}"
    );
    let mut sizes = Vec::new();
    let mut out = String::new();
    loop {
        let (size_line, rest) = body.split_once("\r\n").expect("chunk size line");
        let size = usize::from_str_radix(size_line.trim(), 16).expect("hex chunk size");
        if size == 0 {
            return (status, sizes, out);
        }
        sizes.push(size);
        out.push_str(&rest[..size]);
        body = rest[size..].strip_prefix("\r\n").expect("chunk terminator");
    }
}

fn post(addr: &str, path: &str, client: &str, body: &str) -> (u16, String) {
    http(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nx-qdc-client: {client}\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Polls `/jobs/<id>` until the job reaches a terminal state.
fn wait_terminal(addr: &str, id: u64) -> String {
    for _ in 0..400 {
        let (status, body) = get(addr, &format!("/jobs/{id}"));
        assert_eq!(status, 200, "{body}");
        validate_job(body.trim_end()).expect("job document conforms");
        if body.contains("\"state\":\"completed\"") || body.contains("\"state\":\"interrupted\"") {
            return body;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    panic!("job {id} never reached a terminal state");
}

#[test]
fn loopback_streamed_records_match_a_direct_deterministic_run() {
    let dir = temp_dir("stream");
    let server = TestServer::start(ServiceConfig {
        data_dir: dir.clone(),
        ..ServiceConfig::default()
    });

    let (status, receipt) = post(
        &server.addr,
        "/jobs",
        "alice",
        "{\"builtin\":\"simthm_smoke\"}",
    );
    assert_eq!(status, 201, "{receipt}");
    validate_job(receipt.trim_end()).expect("receipt conforms");
    assert!(receipt.contains("\"id\":1"), "{receipt}");
    assert!(receipt.contains("\"points\":4"), "{receipt}");

    let done = wait_terminal(&server.addr, 1);
    assert!(done.contains("\"state\":\"completed\""), "{done}");
    assert!(done.contains("\"committed\":4"), "{done}");

    // The service's streamed bytes ARE the deterministic JSONL.
    let (status, streamed) = get(&server.addr, "/jobs/1/records");
    assert_eq!(status, 200);
    let spec = builtin("simthm_smoke").expect("builtin");
    let direct = run_campaign(&spec, &RunOptions::default())
        .expect("runs")
        .deterministic_jsonl();
    assert_eq!(streamed, direct, "streamed records are byte-identical");

    // And so is the journal on disk.
    let on_disk = std::fs::read_to_string(dir.join("job_1.records.jsonl")).expect("journal exists");
    assert_eq!(on_disk, direct);

    let (status, body) = get(&server.addr, "/status");
    assert_eq!(status, 200);
    validate_status(body.trim_end()).expect("status conforms");
    assert!(
        body.contains("\"alice\":{\"submitted\":1,\"rejected\":0,\"completed\":1}"),
        "{body}"
    );

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn loopback_rejections_are_structured_and_counted() {
    let dir = temp_dir("reject");
    let server = TestServer::start(ServiceConfig {
        data_dir: dir.clone(),
        quotas: QuotaConfig {
            max_queue: 64,
            max_queued_per_client: 8,
            max_points_per_client: 5,
        },
        // Keep the first job in the queue long enough for its points to
        // count as active while the second submission arrives.
        throttle_ms: 40,
        ..ServiceConfig::default()
    });

    let (status, first) = post(
        &server.addr,
        "/jobs",
        "alice",
        "{\"builtin\":\"simthm_smoke\"}",
    );
    assert_eq!(status, 201, "{first}");

    // 4 of 5 points in use — a second smoke grid must be rejected.
    let (status, rejected) = post(
        &server.addr,
        "/jobs",
        "alice",
        "{\"builtin\":\"simthm_smoke\"}",
    );
    assert_eq!(status, 429, "{rejected}");
    validate_error(rejected.trim_end()).expect("error conforms");
    assert!(
        rejected.contains("\"error\":\"quota_exceeded\""),
        "{rejected}"
    );

    // A different client still has its full budget.
    let (status, other) = post(
        &server.addr,
        "/jobs",
        "bob",
        "{\"builtin\":\"simthm_smoke\"}",
    );
    assert_eq!(status, 201, "{other}");

    // Semantic spec errors are 400 invalid_spec…
    let (status, invalid) = post(
        &server.addr,
        "/jobs",
        "alice",
        "{\"name\":\"x\",\"grid\":{\"kind\":\"simthm\",\"gammas\":[],\"lengths\":[9],\"bandwidth\":16}}",
    );
    assert_eq!(status, 400, "{invalid}");
    assert!(invalid.contains("\"error\":\"invalid_spec\""), "{invalid}");

    // …shape errors and unknown builtins are 400 bad_request…
    let (status, shapeless) = post(&server.addr, "/jobs", "alice", "{\"builtin\":\"nope\"}");
    assert_eq!(status, 400, "{shapeless}");
    assert!(
        shapeless.contains("\"error\":\"bad_request\""),
        "{shapeless}"
    );

    // …and transport-level junk is also structured.
    let (status, not_found) = get(&server.addr, "/jobs/99");
    assert_eq!(status, 404);
    assert!(not_found.contains("\"error\":\"not_found\""), "{not_found}");
    let (status, wrong_method) = get(&server.addr, "/jobs");
    assert_eq!(status, 405, "{wrong_method}");
    assert!(
        wrong_method.contains("\"error\":\"method_not_allowed\""),
        "{wrong_method}"
    );
    let (status, oversized) = http(
        &server.addr,
        &format!("POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 1 << 20),
    );
    assert_eq!(status, 413, "{oversized}");
    assert!(
        oversized.contains("\"error\":\"payload_too_large\""),
        "{oversized}"
    );

    // The admission rejections (quota, invalid spec) landed in alice's
    // counters; the malformed body never reached admission, so it is
    // deliberately not counted.
    let (_, body) = get(&server.addr, "/status");
    assert!(
        body.contains("\"alice\":{\"submitted\":1,\"rejected\":2,"),
        "{body}"
    );

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn loopback_interrupted_service_resumes_byte_identically() {
    let dir = temp_dir("resume");
    let config = ServiceConfig {
        data_dir: dir.clone(),
        workers: 1,
        // Slow the grid down so cancellation reliably lands mid-job.
        throttle_ms: 30,
        ..ServiceConfig::default()
    };
    let server = TestServer::start(config.clone());
    let (status, receipt) = post(
        &server.addr,
        "/jobs",
        "alice",
        "{\"builtin\":\"simthm_smoke\",\"telemetry\":false}",
    );
    assert_eq!(status, 201, "{receipt}");
    // Give the worker time to start and commit at least one point,
    // then shut the service down mid-grid.
    std::thread::sleep(std::time::Duration::from_millis(80));
    server.stop();

    let partial = std::fs::read_to_string(dir.join("job_1.records.jsonl")).unwrap_or_default();
    let partial_lines = partial.lines().count();
    assert!(
        partial_lines < 4,
        "shutdown landed mid-grid ({partial_lines} lines)"
    );

    // Restart on the same data dir: the job is re-enqueued and finishes.
    let server = TestServer::start(config);
    let done = wait_terminal(&server.addr, 1);
    assert!(done.contains("\"state\":\"completed\""), "{done}");
    let (_, streamed) = get(&server.addr, "/jobs/1/records");
    let direct = run_campaign(
        &builtin("simthm_smoke").expect("builtin"),
        &RunOptions::default(),
    )
    .expect("runs")
    .deterministic_jsonl();
    assert_eq!(
        streamed, direct,
        "resumed-and-streamed records are byte-identical to a direct run"
    );
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn loopback_telemetry_archives_are_served_byte_exactly() {
    let dir = temp_dir("telemetry");
    let server = TestServer::start(ServiceConfig {
        data_dir: dir.clone(),
        ..ServiceConfig::default()
    });
    let (status, receipt) = post(
        &server.addr,
        "/jobs",
        "alice",
        "{\"builtin\":\"telemetry_smoke\",\"telemetry\":true}",
    );
    assert_eq!(status, 201, "{receipt}");
    wait_terminal(&server.addr, 1);

    let (status, single) = get(&server.addr, "/jobs/1/telemetry/0");
    assert_eq!(status, 200);
    let on_disk =
        std::fs::read_to_string(dir.join("job_1.telemetry").join("point_0.telemetry.jsonl"))
            .expect("archive exists");
    assert_eq!(single, on_disk, "single archive is byte-exact");

    let (status, all) = get(&server.addr, "/jobs/1/telemetry");
    assert_eq!(status, 200);
    let second =
        std::fs::read_to_string(dir.join("job_1.telemetry").join("point_1.telemetry.jsonl"))
            .expect("archive exists");
    assert_eq!(all, format!("{on_disk}{second}"), "concatenated in order");

    // A large archive must arrive as many bounded chunks, never one
    // file-sized buffer. Plant an oversized archive next to the real
    // ones (the endpoints serve committed bytes verbatim), then check
    // the chunk framing: every chunk is at most the 64 KiB read window,
    // and the file is big enough that several windows are required.
    let line = "{\"round\":1,\"messages\":4,\"bits\":64,\"dropped\":0,\"corrupted\":0,\
                \"crashes\":0,\"quiescent\":0,\"util\":[0,4,0,0,0],\"split\":[64,0,0]}\n";
    let big: String = line.repeat(2500); // ~330 KiB, > 5 read windows
    std::fs::write(
        dir.join("job_1.telemetry").join("point_7.telemetry.jsonl"),
        &big,
    )
    .expect("plant archive");
    let (status, sizes, body) = get_chunk_profile(&server.addr, "/jobs/1/telemetry/7");
    assert_eq!(status, 200);
    assert_eq!(body, big, "streamed bytes equal the file");
    assert!(
        sizes.len() >= 5,
        "a {}-byte archive must take several chunks, got {:?}",
        big.len(),
        sizes
    );
    assert!(
        sizes.iter().all(|&s| s <= 64 * 1024),
        "every chunk fits the bounded read window, got {sizes:?}"
    );

    // Telemetry of a job submitted without it is a structured 404.
    let (status, receipt) = post(
        &server.addr,
        "/jobs",
        "alice",
        "{\"builtin\":\"simthm_smoke\"}",
    );
    assert_eq!(status, 201, "{receipt}");
    wait_terminal(&server.addr, 2);
    let (status, no_telemetry) = get(&server.addr, "/jobs/2/telemetry");
    assert_eq!(status, 404, "{no_telemetry}");

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
