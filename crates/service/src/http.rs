//! A deliberately minimal HTTP/1.1 layer — just enough for the
//! service's five endpoints, hand-rolled over [`std::io`] so the
//! workspace's no-external-dependencies discipline holds.
//!
//! Scope decisions, all in the name of smallness:
//!
//! * one request per connection, answered with `Connection: close`
//!   (the streaming endpoint holds the connection open for its body,
//!   then closes — no keep-alive state machine);
//! * requests are `method path HTTP/1.1` plus headers and an optional
//!   `Content-Length` body — no `Transfer-Encoding` on the way *in*;
//! * responses are either a fixed body with `Content-Length` or a
//!   chunked stream ([`ChunkedWriter`]) for the JSONL tail;
//! * hard limits guard both directions: oversized header blocks are a
//!   `400`, oversized bodies a `413` ([`HttpError::PayloadTooLarge`]),
//!   so a misbehaving client cannot balloon the server's memory.
//!
//! Everything here is testable against in-memory byte buffers; the
//! only socket code in the crate lives in [`crate::server`].

use std::io::{self, BufRead, Write};

/// Longest accepted request line + header block, in bytes.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Longest accepted request body, in bytes. Campaign specs are a few
/// hundred bytes; 64 KiB leaves two orders of magnitude of headroom.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// One parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// The method verb, as sent (`GET`, `POST`, …).
    pub method: String,
    /// The request path (query strings are not used by this service and
    /// are kept attached).
    pub path: String,
    /// Header name/value pairs, names lowercased, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty when there was no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of the named header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == want)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be served at the transport layer.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or framing.
    BadRequest(String),
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    PayloadTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
    },
    /// The underlying stream failed (including read timeouts).
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            HttpError::PayloadTooLarge { declared } => write!(
                f,
                "payload too large: {declared} bytes declared, {MAX_BODY_BYTES} allowed"
            ),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// Reads one head line (request line or header), charging it against
/// the shared `MAX_HEAD_BYTES` budget **as the bytes arrive**: the read
/// itself is capped at the remaining budget, so a peer that streams an
/// endless line with no `\n` is cut off after at most `MAX_HEAD_BYTES`
/// buffered bytes instead of growing server memory without bound
/// (`read_line` alone buffers until a newline shows up). Returns an
/// empty string on clean EOF.
fn read_head_line(stream: &mut impl BufRead, head: &mut usize) -> Result<String, HttpError> {
    let budget = (MAX_HEAD_BYTES - *head) as u64;
    let mut line = String::new();
    // One byte past the budget distinguishes "exactly fits" from
    // "still going when the budget ran out".
    let n = io::Read::take(&mut *stream, budget + 1).read_line(&mut line)?;
    *head += n;
    if *head > MAX_HEAD_BYTES {
        return Err(HttpError::BadRequest(format!(
            "header block exceeds {MAX_HEAD_BYTES} bytes"
        )));
    }
    Ok(line)
}

/// Reads and parses one request. `Ok(None)` means the peer closed the
/// connection cleanly before sending anything.
pub fn read_request(stream: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    let mut head = 0usize;
    let line = read_head_line(stream, &mut head)?;
    if line.is_empty() {
        return Ok(None);
    }
    let line = line.trim_end_matches(['\r', '\n']);
    let mut parts = line.split(' ');
    let (Some(method), Some(path), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequest(format!(
            "malformed request line `{line}`"
        )));
    };
    if method.is_empty() || path.is_empty() {
        return Err(HttpError::BadRequest(format!(
            "malformed request line `{line}`"
        )));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol version `{version}`"
        )));
    }
    let (method, path) = (method.to_string(), path.to_string());

    let mut headers = Vec::new();
    loop {
        let raw = read_head_line(stream, &mut head)?;
        if raw.is_empty() {
            return Err(HttpError::BadRequest("truncated header block".into()));
        }
        let raw = raw.trim_end_matches(['\r', '\n']);
        if raw.is_empty() {
            break;
        }
        let Some((name, value)) = raw.split_once(':') else {
            return Err(HttpError::BadRequest(format!("malformed header `{raw}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut body = Vec::new();
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::BadRequest(format!("malformed content-length `{v}`")))
        })
        .transpose()?;
    if let Some(declared) = content_length {
        if declared > MAX_BODY_BYTES {
            return Err(HttpError::PayloadTooLarge { declared });
        }
        body.resize(declared, 0);
        stream.read_exact(&mut body)?;
    }
    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// The reason phrase for the status codes this service emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete fixed-length JSON response and flushes it. The
/// body is sent exactly as given plus a trailing newline (every body
/// this service emits is a single JSON document; the newline makes
/// `curl | python3 -m json.tool` pipelines clean).
pub fn write_json_response(w: &mut impl Write, status: u16, body: &str) -> io::Result<()> {
    let reason = status_text(status);
    write!(
        w,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}\n",
        body.len() + 1
    )?;
    w.flush()
}

/// Writes a fixed-length response with the given content type and the
/// body bytes exactly as given (no newline appended — used for serving
/// archived files, where byte-fidelity matters).
pub fn write_raw_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let reason = status_text(status);
    write!(
        w,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    w.write_all(body)?;
    w.flush()
}

/// An in-progress chunked response: the streaming endpoint writes the
/// headers once, then any number of byte chunks, then the terminator.
/// Each chunk is flushed immediately — a tailing client sees lines as
/// they commit, not when the response ends.
pub struct ChunkedWriter<W: Write> {
    inner: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the response head and returns the chunk writer.
    pub fn begin(mut inner: W, status: u16, content_type: &str) -> io::Result<ChunkedWriter<W>> {
        let reason = status_text(status);
        write!(
            inner,
            "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
             Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
        )?;
        inner.flush()?;
        Ok(ChunkedWriter { inner })
    }

    /// Sends one chunk (skipped silently when empty: a zero-length
    /// chunk would terminate the stream).
    pub fn chunk(&mut self, bytes: &[u8]) -> io::Result<()> {
        if bytes.is_empty() {
            return Ok(());
        }
        write!(self.inner, "{:x}\r\n", bytes.len())?;
        self.inner.write_all(bytes)?;
        self.inner.write_all(b"\r\n")?;
        self.inner.flush()
    }

    /// Sends the terminating zero chunk.
    pub fn finish(mut self) -> io::Result<()> {
        self.inner.write_all(b"0\r\n\r\n")?;
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()))
    }

    #[test]
    fn http_parses_a_post_with_body_and_case_insensitive_headers() {
        let req = parse(
            "POST /jobs HTTP/1.1\r\nHost: x\r\nX-QDC-Client: alice\r\n\
             Content-Length: 4\r\n\r\nabcd",
        )
        .expect("parses")
        .expect("non-empty");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.header("x-qdc-client"), Some("alice"));
        assert_eq!(req.header("X-Qdc-Client"), Some("alice"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn http_get_without_length_has_an_empty_body() {
        let req = parse("GET /status HTTP/1.1\r\n\r\n")
            .expect("parses")
            .expect("non-empty");
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn http_clean_eof_is_none_not_an_error() {
        assert!(parse("").expect("clean close").is_none());
    }

    #[test]
    fn http_rejects_malformed_requests() {
        for raw in [
            "GARBAGE\r\n\r\n",
            "GET /x HTTP/2\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "GET /x HTTP/1.1\r\nContent-Length: pony\r\n\r\n",
            "GET /x HTTP/1.1\r\nTruncated: yes",
        ] {
            assert!(
                matches!(parse(raw), Err(HttpError::BadRequest(_))),
                "should reject: {raw:?}"
            );
        }
    }

    #[test]
    fn http_rejects_oversized_bodies_and_heads() {
        let big = format!("POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 1 << 20);
        assert!(matches!(
            parse(&big),
            Err(HttpError::PayloadTooLarge { declared }) if declared == 1 << 20
        ));
        let huge_head = format!(
            "GET /x HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(parse(&huge_head), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn http_cuts_off_a_newline_free_line_at_the_head_budget() {
        // A peer that streams bytes forever without ever sending `\n`.
        // Before the bounded read, `read_line` would buffer this without
        // limit (and this test would never return); now the connection
        // is rejected after at most MAX_HEAD_BYTES buffered bytes.
        struct EndlessAs;
        impl io::Read for EndlessAs {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                buf.fill(b'a');
                Ok(buf.len())
            }
        }
        // …as the request line,
        let mut endless = io::BufReader::new(EndlessAs);
        assert!(matches!(
            read_request(&mut endless),
            Err(HttpError::BadRequest(_))
        ));
        // …and as a header line after a valid request line.
        let mut endless_header = io::BufReader::new(io::Read::chain(
            Cursor::new(b"GET /x HTTP/1.1\r\nX-Pad: ".to_vec()),
            EndlessAs,
        ));
        assert!(matches!(
            read_request(&mut endless_header),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn http_fixed_response_is_well_formed() {
        let mut buf = Vec::new();
        write_json_response(&mut buf, 201, "{\"ok\":true}").expect("writes");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 201 Created\r\n"), "{text}");
        assert!(text.contains("Content-Length: 12\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}\n"), "{text}");
    }

    #[test]
    fn http_chunked_stream_frames_and_terminates() {
        let mut buf = Vec::new();
        {
            let mut w = ChunkedWriter::begin(&mut buf, 200, "application/jsonl").expect("head");
            w.chunk(b"line one\n").expect("chunk");
            w.chunk(b"").expect("empty chunk is a no-op");
            w.chunk(b"line two\n").expect("chunk");
            w.finish().expect("terminator");
        }
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.contains("Transfer-Encoding: chunked\r\n"), "{text}");
        assert!(text.contains("9\r\nline one\n\r\n"), "{text}");
        assert!(text.contains("9\r\nline two\n\r\n"), "{text}");
        assert!(text.ends_with("0\r\n\r\n"), "{text}");
    }
}
