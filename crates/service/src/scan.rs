//! Journal classification and service data-dir recovery.
//!
//! The service keeps one directory with three kinds of entries per job:
//!
//! ```text
//! <data>/job_<id>.json            — the submission (id, client, spec)
//! <data>/job_<id>.records.jsonl   — the fsync-per-line journal
//! <data>/job_<id>.telemetry/      — per-point telemetry archives
//! ```
//!
//! On startup the service scans this directory and rebuilds its queue:
//! a job whose journal holds every grid point is restored as completed;
//! anything less — a missing journal, a clean prefix, or a torn tail —
//! is re-enqueued and resumes at the first missing index. The journal
//! triage lives in [`classify_journal`] so the `campaign verify`
//! subcommand can run exactly the same dry-run classification on any
//! records file without a service in sight.

use crate::core::{Job, JobState};
use qdc_harness::json::{self, Json};
use qdc_harness::{journal, spec_from_json, spec_to_json, Aggregate, CampaignSpec};
use std::io;
use std::path::{Path, PathBuf};

/// The verdict on one journal file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalClass {
    /// Every byte belongs to a committed record (an empty file counts:
    /// zero records is a valid prefix).
    Clean {
        /// Committed records in the journal.
        entries: usize,
    },
    /// A torn tail follows a valid record prefix — the crash-recovery
    /// path truncates the tail on its record boundary and resumes.
    Recoverable {
        /// Committed records in the valid prefix.
        entries: usize,
        /// Bytes of the valid prefix.
        kept_bytes: usize,
        /// Bytes of the torn tail that truncation would drop.
        truncated_bytes: usize,
    },
    /// The file is not a prefix of the expected campaign at all — a
    /// different campaign's journal, or no recognizable record on the
    /// first line. Resuming over it would destroy someone else's data,
    /// so this is a hard stop.
    Foreign {
        /// What disqualified the file.
        reason: String,
    },
}

/// Classifies a journal. When `expected_campaign` is `None` the
/// campaign name is taken from the journal's own first record (the
/// `verify` use case: "is this file internally consistent?"); passing
/// `Some(name)` additionally pins the campaign (the service use case,
/// where the submission says which campaign the journal must belong to).
pub fn classify_journal(text: &str, expected_campaign: Option<&str>) -> JournalClass {
    if text.is_empty() {
        return JournalClass::Clean { entries: 0 };
    }
    let campaign = match expected_campaign {
        Some(name) => name.to_string(),
        None => {
            let first = text.lines().next().unwrap_or("");
            match json::parse(first).ok().as_ref().and_then(|doc| {
                doc.get("campaign").and_then(|v| match v {
                    Json::Str(s) => Some(s.clone()),
                    _ => None,
                })
            }) {
                Some(name) => name,
                None => {
                    return JournalClass::Foreign {
                        reason: "first line is not a campaign record".into(),
                    }
                }
            }
        }
    };
    match journal::recover(text, &campaign) {
        Err(reason) => JournalClass::Foreign { reason },
        Ok(recovery) if recovery.truncated_bytes == 0 => JournalClass::Clean {
            entries: recovery.entries.len(),
        },
        Ok(recovery) => JournalClass::Recoverable {
            entries: recovery.entries.len(),
            kept_bytes: recovery.kept_bytes,
            truncated_bytes: recovery.truncated_bytes,
        },
    }
}

/// The submission document persisted as `job_<id>.json`. Internal to
/// the service (it is not served), but written in the same strict
/// hand-rolled dialect as everything else so a restart can trust it.
pub fn job_doc_json(id: u64, client: &str, telemetry: bool, spec: &CampaignSpec) -> String {
    Json::obj([
        ("id", Json::Num(id)),
        ("client", Json::Str(client.to_string())),
        ("telemetry", Json::Bool(telemetry)),
        ("spec", spec_to_json(spec)),
    ])
    .to_json()
}

/// Parses one persisted submission document back.
pub fn parse_job_doc(text: &str) -> Result<(u64, String, bool, CampaignSpec), String> {
    let doc = json::parse(text.strip_suffix('\n').unwrap_or(text))?;
    json::require_keys(&doc, &["id", "client", "telemetry", "spec"], &[])?;
    let id = doc
        .get("id")
        .and_then(Json::as_u64)
        .ok_or("`id` must be an unsigned integer")?;
    let Some(Json::Str(client)) = doc.get("client") else {
        return Err("`client` must be a string".into());
    };
    let Some(Json::Bool(telemetry)) = doc.get("telemetry") else {
        return Err("`telemetry` must be a boolean".into());
    };
    let spec = spec_from_json(doc.get("spec").expect("checked above"))?;
    Ok((id, client.clone(), *telemetry, spec))
}

/// Paths of one job's on-disk artifacts.
pub fn job_paths(data_dir: &Path, id: u64) -> (PathBuf, PathBuf, PathBuf) {
    (
        data_dir.join(format!("job_{id}.json")),
        data_dir.join(format!("job_{id}.records.jsonl")),
        data_dir.join(format!("job_{id}.telemetry")),
    )
}

/// What a startup scan recovered.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Jobs rebuilt from disk, in id order, ready for
    /// [`ServiceCore::restore`](crate::core::ServiceCore::restore).
    pub jobs: Vec<Job>,
    /// Entries that could not be recovered (foreign journals, unreadable
    /// submission documents). The scan skips them rather than failing:
    /// one damaged job must not take the service down.
    pub warnings: Vec<String>,
}

/// Scans a service data dir and rebuilds every job from its submission
/// document and journal. Torn journal tails are truncated on their
/// record boundary here (exactly what a resumed run would do), so
/// everything the service later streams from these files is committed
/// bytes only.
pub fn scan_data_dir(data_dir: &Path) -> io::Result<ScanReport> {
    let mut report = ScanReport::default();
    let mut doc_paths = Vec::new();
    for entry in std::fs::read_dir(data_dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.starts_with("job_") && name.ends_with(".json") {
            doc_paths.push(path);
        }
    }
    doc_paths.sort();

    for doc_path in doc_paths {
        let text = std::fs::read_to_string(&doc_path)?;
        let (id, client, telemetry, spec) = match parse_job_doc(&text) {
            Ok(parsed) => parsed,
            Err(e) => {
                report.warnings.push(format!(
                    "{}: unreadable submission: {e}",
                    doc_path.display()
                ));
                continue;
            }
        };
        let total_points = spec.point_count();
        let (_, records_path, _) = job_paths(data_dir, id);
        let journal_text = match std::fs::read_to_string(&records_path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let (entries, kept_bytes, truncate) =
            match classify_journal(&journal_text, Some(&spec.name)) {
                JournalClass::Clean { entries } => (entries, journal_text.len(), false),
                JournalClass::Recoverable {
                    entries,
                    kept_bytes,
                    ..
                } => (entries, kept_bytes, true),
                JournalClass::Foreign { reason } => {
                    report.warnings.push(format!(
                        "{}: foreign journal, job {id} skipped: {reason}",
                        records_path.display()
                    ));
                    continue;
                }
            };
        if truncate {
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(&records_path)?;
            file.set_len(kept_bytes as u64)?;
            file.sync_all()?;
        }
        let mut aggregate = Aggregate::default();
        if entries > 0 {
            // Re-fold the kept prefix; classify_journal proved it valid.
            let recovery = journal::recover(&journal_text[..kept_bytes], &spec.name)
                .expect("classified as recoverable");
            for entry in &recovery.entries {
                aggregate.add_entry(entry);
            }
        }
        let state = if entries as u64 >= total_points {
            JobState::Completed
        } else {
            JobState::Interrupted
        };
        report.jobs.push(Job {
            id,
            client,
            spec,
            telemetry,
            total_points,
            state,
            committed: entries as u64,
            aggregate,
        });
    }
    report.jobs.sort_by_key(|j| j.id);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdc_harness::{builtin, run_campaign, RunOptions};

    fn smoke_jsonl() -> String {
        let spec = builtin("simthm_smoke").expect("builtin");
        run_campaign(&spec, &RunOptions::default())
            .expect("runs")
            .deterministic_jsonl()
    }

    #[test]
    fn scan_classifies_clean_torn_and_foreign_journals() {
        let clean = smoke_jsonl();
        assert_eq!(
            classify_journal(&clean, None),
            JournalClass::Clean { entries: 4 }
        );
        assert_eq!(
            classify_journal("", Some("simthm_smoke")),
            JournalClass::Clean { entries: 0 }
        );

        let torn = format!("{}{}", clean, &clean.lines().next().expect("line")[..40]);
        match classify_journal(&torn, None) {
            JournalClass::Recoverable {
                entries,
                kept_bytes,
                truncated_bytes,
            } => {
                assert_eq!(entries, 4);
                assert_eq!(kept_bytes, clean.len());
                assert_eq!(truncated_bytes, 40);
            }
            other => panic!("expected recoverable, got {other:?}"),
        }

        assert!(matches!(
            classify_journal(&clean, Some("another_campaign")),
            JournalClass::Foreign { .. }
        ));
        assert!(matches!(
            classify_journal("not json at all\n", None),
            JournalClass::Foreign { .. }
        ));
    }

    #[test]
    fn scan_job_doc_round_trips() {
        let spec = builtin("chaos_ensemble").expect("builtin");
        let text = job_doc_json(7, "alice", true, &spec);
        let (id, client, telemetry, back) = parse_job_doc(&text).expect("parses");
        assert_eq!(id, 7);
        assert_eq!(client, "alice");
        assert!(telemetry);
        assert_eq!(back, spec);
        assert!(parse_job_doc("{\"id\":1}").is_err());
    }

    #[test]
    fn scan_rebuilds_completed_interrupted_and_fresh_jobs() {
        let dir = std::env::temp_dir().join(format!(
            "qdc_scan_test_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let spec = builtin("simthm_smoke").expect("builtin");
        let jsonl = smoke_jsonl();

        // Job 1: complete journal. Job 2: half a journal plus a torn
        // tail. Job 3: no journal yet. Job 4: a foreign journal.
        for (id, client) in [(1, "a"), (2, "b"), (3, "c"), (4, "d")] {
            std::fs::write(
                dir.join(format!("job_{id}.json")),
                job_doc_json(id, client, false, &spec),
            )
            .expect("write doc");
        }
        std::fs::write(dir.join("job_1.records.jsonl"), &jsonl).expect("write");
        let two_lines: String = jsonl.lines().take(2).map(|l| format!("{l}\n")).collect();
        std::fs::write(
            dir.join("job_2.records.jsonl"),
            format!("{two_lines}{{\"torn"),
        )
        .expect("write");
        std::fs::write(
            dir.join("job_4.records.jsonl"),
            jsonl.replace("simthm_smoke", "someone_elses"),
        )
        .expect("write");

        let report = scan_data_dir(&dir).expect("scans");
        assert_eq!(report.jobs.len(), 3, "foreign job 4 is skipped");
        assert_eq!(report.warnings.len(), 1, "and warned about");
        let by_id: Vec<_> = report
            .jobs
            .iter()
            .map(|j| (j.id, j.state, j.committed))
            .collect();
        assert_eq!(
            by_id,
            vec![
                (1, JobState::Completed, 4),
                (2, JobState::Interrupted, 2),
                (3, JobState::Interrupted, 0),
            ]
        );
        // The torn tail was truncated on its record boundary.
        let kept = std::fs::read_to_string(dir.join("job_2.records.jsonl")).expect("read");
        assert_eq!(kept, two_lines);

        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
