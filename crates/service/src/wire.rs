//! The service's three wire schemas, with writers and strict
//! validators in the workspace's conformance-locked style.
//!
//! * `qdc-job/v1` — one job's receipt/status document (returned by
//!   `POST /jobs` and `GET /jobs/<id>`);
//! * `qdc-service-status/v1` — the whole-service snapshot
//!   (`GET /status`);
//! * `qdc-service-error/v1` — every structured rejection, from a full
//!   queue to an unknown path.
//!
//! Like the campaign schemas, each document has a fixed field order,
//! integer-only counters, and a validator that rejects unknown or
//! reordered fields; `tests/golden_schemas.rs` at the workspace root
//! pins example bytes for all three.

use crate::core::{Job, JobState, ServiceCore, SubmitError};
use qdc_harness::json::{self, Json};

/// Schema tag of a job receipt/status document.
pub const JOB_SCHEMA: &str = "qdc-job/v1";
/// Schema tag of the service status snapshot.
pub const STATUS_SCHEMA: &str = "qdc-service-status/v1";
/// Schema tag of a structured rejection.
pub const ERROR_SCHEMA: &str = "qdc-service-error/v1";

/// Renders one job as a `qdc-job/v1` document. The `aggregate` field is
/// the one optional tail: present exactly when the job has committed
/// results to fold (terminal states, and running jobs once the journal
/// has lines).
pub fn job_json(job: &Job) -> String {
    let mut fields = vec![
        ("schema".to_string(), Json::Str(JOB_SCHEMA.to_string())),
        ("id".to_string(), Json::Num(job.id)),
        ("campaign".to_string(), Json::Str(job.spec.name.clone())),
        ("client".to_string(), Json::Str(job.client.clone())),
        ("telemetry".to_string(), Json::Bool(job.telemetry)),
        ("points".to_string(), Json::Num(job.total_points)),
        (
            "state".to_string(),
            Json::Str(job.state.as_str().to_string()),
        ),
        ("committed".to_string(), Json::Num(job.committed)),
    ];
    if job.committed > 0 {
        fields.push(("aggregate".to_string(), job.aggregate.to_json()));
    }
    Json::Obj(fields).to_json()
}

/// Renders the service snapshot as a `qdc-service-status/v1` document:
/// global job counts by state, then per-client lifetime counters in
/// client-key order.
pub fn status_json(core: &ServiceCore) -> String {
    let clients = core
        .clients()
        .map(|(key, stats)| {
            (
                key.to_string(),
                Json::obj([
                    ("submitted", Json::Num(stats.submitted)),
                    ("rejected", Json::Num(stats.rejected)),
                    ("completed", Json::Num(stats.completed)),
                ]),
            )
        })
        .collect();
    Json::obj([
        ("schema", Json::Str(STATUS_SCHEMA.to_string())),
        ("jobs", Json::Num(core.jobs().count() as u64)),
        (
            "queued",
            Json::Num(core.count_in_state(JobState::Queued) as u64),
        ),
        (
            "running",
            Json::Num(core.count_in_state(JobState::Running) as u64),
        ),
        (
            "completed",
            Json::Num(core.count_in_state(JobState::Completed) as u64),
        ),
        (
            "interrupted",
            Json::Num(core.count_in_state(JobState::Interrupted) as u64),
        ),
        ("clients", Json::Obj(clients)),
    ])
    .to_json()
}

/// Renders a structured rejection as a `qdc-service-error/v1` document.
/// `status` is the HTTP status the document travels with, `error` a
/// stable machine-readable slug, `message` the human-readable detail.
pub fn error_json(status: u16, error: &str, message: &str) -> String {
    Json::obj([
        ("schema", Json::Str(ERROR_SCHEMA.to_string())),
        ("status", Json::Num(u64::from(status))),
        ("error", Json::Str(error.to_string())),
        ("message", Json::Str(message.to_string())),
    ])
    .to_json()
}

/// Maps a queue/quota rejection to its HTTP status, slug, and rendered
/// `qdc-service-error/v1` body. Spec errors are the client's fault
/// (400); every resource rejection is 429, distinguishable by slug.
pub fn submit_error_json(err: &SubmitError) -> (u16, String) {
    let (status, slug) = match err {
        SubmitError::InvalidSpec(_) => (400, "invalid_spec"),
        SubmitError::QueueFull { .. } => (429, "queue_full"),
        SubmitError::ClientQueueFull { .. } => (429, "client_queue_full"),
        SubmitError::QuotaExceeded { .. } => (429, "quota_exceeded"),
    };
    (status, error_json(status, slug, &err.to_string()))
}

const AGGREGATE_KEYS: [&str; 14] = [
    "points",
    "ok",
    "errors",
    "accepted",
    "rejected",
    "rounds",
    "messages",
    "bits",
    "max_bits_per_round",
    "dropped",
    "crashed",
    "corrupted",
    "points_failed",
    "points_retried",
];

fn check_aggregate(agg: &Json) -> Result<(), String> {
    json::require_keys(agg, &AGGREGATE_KEYS, &[]).map_err(|e| format!("aggregate: {e}"))?;
    if let Json::Obj(fields) = agg {
        for (k, v) in fields {
            if v.as_u64().is_none() {
                return Err(format!(
                    "aggregate counter `{k}` must be an unsigned integer"
                ));
            }
        }
    }
    Ok(())
}

fn check_schema_tag(doc: &Json, want: &str) -> Result<(), String> {
    match doc.get("schema") {
        Some(Json::Str(s)) if s == want => Ok(()),
        _ => Err(format!("schema tag must be `{want}`")),
    }
}

/// Strict conformance check for one `qdc-job/v1` document: exact field
/// list and order, a known `state` word, integer counters, and — when
/// present — a full integer aggregate. A trailing newline is accepted.
pub fn validate_job(text: &str) -> Result<(), String> {
    let doc = json::parse(text.strip_suffix('\n').unwrap_or(text))?;
    json::require_keys(
        &doc,
        &[
            "schema",
            "id",
            "campaign",
            "client",
            "telemetry",
            "points",
            "state",
            "committed",
        ],
        &["aggregate"],
    )?;
    check_schema_tag(&doc, JOB_SCHEMA)?;
    for key in ["id", "points", "committed"] {
        if doc.get(key).and_then(Json::as_u64).is_none() {
            return Err(format!("`{key}` must be an unsigned integer"));
        }
    }
    for key in ["campaign", "client"] {
        if !matches!(doc.get(key), Some(Json::Str(_))) {
            return Err(format!("`{key}` must be a string"));
        }
    }
    if !matches!(doc.get("telemetry"), Some(Json::Bool(_))) {
        return Err("`telemetry` must be a boolean".into());
    }
    match doc.get("state") {
        Some(Json::Str(s))
            if ["queued", "running", "completed", "interrupted"].contains(&s.as_str()) => {}
        _ => return Err("`state` must be one of queued/running/completed/interrupted".into()),
    }
    if let Some(agg) = doc.get("aggregate") {
        check_aggregate(agg)?;
    }
    Ok(())
}

/// Strict conformance check for one `qdc-service-status/v1` document.
/// A trailing newline is accepted.
pub fn validate_status(text: &str) -> Result<(), String> {
    let doc = json::parse(text.strip_suffix('\n').unwrap_or(text))?;
    json::require_keys(
        &doc,
        &[
            "schema",
            "jobs",
            "queued",
            "running",
            "completed",
            "interrupted",
            "clients",
        ],
        &[],
    )?;
    check_schema_tag(&doc, STATUS_SCHEMA)?;
    for key in ["jobs", "queued", "running", "completed", "interrupted"] {
        if doc.get(key).and_then(Json::as_u64).is_none() {
            return Err(format!("`{key}` must be an unsigned integer"));
        }
    }
    let Some(Json::Obj(clients)) = doc.get("clients") else {
        return Err("`clients` must be an object".into());
    };
    for (key, stats) in clients {
        json::require_keys(stats, &["submitted", "rejected", "completed"], &[])
            .map_err(|e| format!("client `{key}`: {e}"))?;
        if let Json::Obj(fields) = stats {
            for (k, v) in fields {
                if v.as_u64().is_none() {
                    return Err(format!(
                        "client `{key}` counter `{k}` must be an unsigned integer"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Strict conformance check for one `qdc-service-error/v1` document.
/// A trailing newline is accepted.
pub fn validate_error(text: &str) -> Result<(), String> {
    let doc = json::parse(text.strip_suffix('\n').unwrap_or(text))?;
    json::require_keys(&doc, &["schema", "status", "error", "message"], &[])?;
    check_schema_tag(&doc, ERROR_SCHEMA)?;
    let status = doc
        .get("status")
        .and_then(Json::as_u64)
        .ok_or("`status` must be an unsigned integer")?;
    if !(100..=599).contains(&status) {
        return Err("`status` must be an HTTP status code".into());
    }
    for key in ["error", "message"] {
        if !matches!(doc.get(key), Some(Json::Str(_))) {
            return Err(format!("`{key}` must be a string"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::{QuotaConfig, ServiceCore};
    use qdc_harness::{builtin, Aggregate, CampaignError};

    fn filled_core() -> ServiceCore {
        let mut core = ServiceCore::new(QuotaConfig::default());
        let a = core
            .submit("alice", builtin("simthm_smoke").expect("builtin"), false)
            .expect("admits");
        core.submit("bob", builtin("telemetry_smoke").expect("builtin"), true)
            .expect("admits");
        let job = core.take_next().expect("dispatch");
        assert_eq!(job.id, a);
        core.finish(a, 4, Aggregate::default(), false);
        core
    }

    #[test]
    fn wire_job_document_validates_in_every_state() {
        let core = filled_core();
        for job in core.jobs() {
            let text = job_json(job);
            validate_job(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        }
        // A running job with committed lines carries the aggregate tail.
        let mut core = ServiceCore::new(QuotaConfig::default());
        let id = core
            .submit("alice", builtin("simthm_smoke").expect("builtin"), false)
            .expect("admits");
        let mut job = core.take_next().expect("dispatch");
        assert_eq!(job.id, id);
        job.committed = 2;
        job.aggregate.points = 2;
        job.aggregate.ok = 2;
        let text = job_json(&job);
        assert!(text.contains("\"aggregate\":{"), "{text}");
        validate_job(&text).expect("validates with aggregate");
    }

    #[test]
    fn wire_status_document_round_trips_counters() {
        let core = filled_core();
        let text = status_json(&core);
        validate_status(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        assert!(text.contains("\"jobs\":2"), "{text}");
        assert!(text.contains("\"completed\":1"), "{text}");
        assert!(
            text.contains("\"alice\":{\"submitted\":1,\"rejected\":0,\"completed\":1}"),
            "{text}"
        );
    }

    #[test]
    fn wire_submit_errors_map_to_stable_statuses_and_slugs() {
        for (err, want_status, want_slug) in [
            (
                SubmitError::InvalidSpec(CampaignError::EmptyName),
                400,
                "invalid_spec",
            ),
            (
                SubmitError::QueueFull { depth: 3, max: 3 },
                429,
                "queue_full",
            ),
            (
                SubmitError::ClientQueueFull { queued: 2, max: 2 },
                429,
                "client_queue_full",
            ),
            (
                SubmitError::QuotaExceeded {
                    requested: 9,
                    active: 1,
                    max: 8,
                },
                429,
                "quota_exceeded",
            ),
        ] {
            let (status, body) = submit_error_json(&err);
            assert_eq!(status, want_status);
            assert!(
                body.contains(&format!("\"error\":\"{want_slug}\"")),
                "{body}"
            );
            validate_error(&body).unwrap_or_else(|e| panic!("{body}: {e}"));
        }
    }

    #[test]
    fn wire_validators_reject_malformed_documents() {
        for bad in [
            // Wrong schema tags.
            "{\"schema\":\"qdc-job/v2\",\"id\":1,\"campaign\":\"x\",\"client\":\"c\",\
             \"telemetry\":false,\"points\":4,\"state\":\"queued\",\"committed\":0}",
            // Unknown state word.
            "{\"schema\":\"qdc-job/v1\",\"id\":1,\"campaign\":\"x\",\"client\":\"c\",\
             \"telemetry\":false,\"points\":4,\"state\":\"paused\",\"committed\":0}",
            // Reordered fields.
            "{\"id\":1,\"schema\":\"qdc-job/v1\",\"campaign\":\"x\",\"client\":\"c\",\
             \"telemetry\":false,\"points\":4,\"state\":\"queued\",\"committed\":0}",
        ] {
            assert!(validate_job(bad).is_err(), "should reject: {bad}");
        }
        assert!(
            validate_status("{\"schema\":\"qdc-service-status/v1\",\"jobs\":0}").is_err(),
            "missing counters"
        );
        assert!(
            validate_error(
                "{\"schema\":\"qdc-service-error/v1\",\"status\":999,\
                 \"error\":\"x\",\"message\":\"y\"}"
            )
            .is_err(),
            "out-of-range status"
        );
    }
}
