//! The socket adapter: a resident HTTP server wrapping the
//! deterministic [`ServiceCore`].
//!
//! # Endpoints
//!
//! | route | method | reply |
//! |---|---|---|
//! | `/jobs` | POST | `qdc-job/v1` receipt (201), or a structured rejection |
//! | `/jobs/<id>` | GET | `qdc-job/v1` with live progress |
//! | `/jobs/<id>/records` | GET | chunked JSONL long-poll tail of the journal |
//! | `/jobs/<id>/telemetry` | GET | all telemetry archives, concatenated |
//! | `/jobs/<id>/telemetry/<i>` | GET | one point's archive, byte-exact |
//! | `/status` | GET | `qdc-service-status/v1` snapshot |
//!
//! # Back-pressure and isolation
//!
//! Admission control happens *before* any work: the queue and quota
//! checks in [`ServiceCore::submit`] run under one mutex and reject
//! with a structured `qdc-service-error/v1` body. A slow reader can
//! never block a worker, because the streaming endpoint reads only the
//! committed journal *file* — workers append through the fsync
//! discipline of [`qdc_harness::Journal`] and never hand bytes to a
//! socket. Each connection gets its own thread and a read timeout, so
//! a stalled client costs one thread, not the accept loop.
//!
//! # Durability
//!
//! Every admitted job is persisted as `job_<id>.json` before its 201
//! receipt is sent, and every result line is fsync'd by the journaled
//! runner. A SIGKILL at any instant therefore loses at most work that
//! was never acknowledged; on restart [`Server::bind`] rescans the data
//! dir, truncates torn journal tails on record boundaries, re-enqueues
//! incomplete jobs, and the resumed output is byte-identical to an
//! uninterrupted run (the workers always run the deterministic form).

use crate::core::{JobState, QuotaConfig, ServiceCore, SubmitError};
use crate::http::{read_request, write_json_response, ChunkedWriter, HttpError, Request};
use crate::scan::{job_doc_json, job_paths, scan_data_dir};
use crate::wire::{error_json, job_json, status_json, submit_error_json};
use qdc_harness::json::{self, Json};
use qdc_harness::{
    builtin, journal, run_campaign_journaled, spec_from_json, CampaignSpec, CancelToken,
    JournalConfig, RunOptions, TelemetryMode,
};
use std::io::{self, BufReader, Read as _, Seek as _, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How the service runs: storage location, worker sizing, quotas.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Directory for job documents, journals, and telemetry archives.
    pub data_dir: PathBuf,
    /// Campaign worker threads (jobs running concurrently).
    pub workers: usize,
    /// Point-level threads inside each campaign run (the determinism
    /// contract makes any value safe).
    pub job_threads: usize,
    /// Admission limits.
    pub quotas: QuotaConfig,
    /// Per-point throttle passed to every run (testing aid: lets CI
    /// keep a job running long enough to observe it mid-flight).
    pub throttle_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            data_dir: PathBuf::from("qdc_service_data"),
            workers: 2,
            job_threads: 1,
            quotas: QuotaConfig::default(),
            throttle_ms: 0,
        }
    }
}

struct ServiceState {
    core: Mutex<ServiceCore>,
    wake: Condvar,
    config: ServiceConfig,
    cancel: CancelToken,
}

/// A bound, recovered, not-yet-serving campaign service.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServiceState>,
    scan_warnings: Vec<String>,
}

impl Server {
    /// Binds the listener, creates the data dir, and replays it: torn
    /// journals are truncated on record boundaries, completed jobs are
    /// restored as completed, and every incomplete job goes back on the
    /// queue. Port `0` binds an ephemeral port (see
    /// [`local_addr`](Server::local_addr)).
    pub fn bind(addr: &str, config: ServiceConfig, cancel: CancelToken) -> io::Result<Server> {
        std::fs::create_dir_all(&config.data_dir)?;
        let report = scan_data_dir(&config.data_dir)?;
        let mut core = ServiceCore::new(config.quotas);
        for job in report.jobs {
            core.restore(job);
        }
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            state: Arc::new(ServiceState {
                core: Mutex::new(core),
                wake: Condvar::new(),
                config,
                cancel,
            }),
            scan_warnings: report.warnings,
        })
    }

    /// The address actually bound (resolves an ephemeral port).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Damaged data-dir entries the startup scan skipped.
    pub fn scan_warnings(&self) -> &[String] {
        &self.scan_warnings
    }

    /// Serves until the cancel token fires: accepts connections (one
    /// thread each), runs the worker pool, then drains. Shutdown order
    /// matters — stop accepting, let in-flight jobs reach their next
    /// journal flush (the cancel token interrupts them between points),
    /// join the workers, return. Queued jobs stay queued on disk; a
    /// restart re-enqueues them.
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let workers: Vec<_> = (0..self.state.config.workers.max(1))
            .map(|_| {
                let state = Arc::clone(&self.state);
                std::thread::spawn(move || worker_loop(&state))
            })
            .collect();

        while !self.state.cancel.is_cancelled() {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    let state = Arc::clone(&self.state);
                    std::thread::spawn(move || {
                        // A failed connection only costs that client.
                        let _ = handle_connection(&state, stream, peer);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(15));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(15)),
            }
        }

        self.state.wake.notify_all();
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Pulls jobs FIFO until shutdown. Every run is the deterministic
/// resumable form: `with_wall: false`, `resume: true`, journal under
/// the data dir — which is precisely what makes the service's streamed
/// bytes equal to a direct `campaign run --deterministic`.
fn worker_loop(state: &ServiceState) {
    loop {
        let job = {
            let mut core = state.core.lock().expect("core lock");
            loop {
                if state.cancel.is_cancelled() {
                    return;
                }
                if let Some(job) = core.take_next() {
                    break job;
                }
                let (guard, _) = state
                    .wake
                    .wait_timeout(core, Duration::from_millis(100))
                    .expect("core lock");
                core = guard;
            }
        };

        let (_, records_path, telemetry_dir) = job_paths(&state.config.data_dir, job.id);
        let journal_config = JournalConfig {
            out_path: records_path.to_string_lossy().into_owned(),
            trace_dir: None,
            telemetry_dir: job
                .telemetry
                .then(|| telemetry_dir.to_string_lossy().into_owned()),
            resume: true,
            with_wall: false,
        };
        let options = RunOptions {
            threads: state.config.job_threads.max(1),
            telemetry: if job.telemetry {
                TelemetryMode::Exact
            } else {
                TelemetryMode::Off
            },
            throttle_ms: state.config.throttle_ms,
            ..RunOptions::default()
        };
        let result = run_campaign_journaled(&job.spec, &options, &journal_config, &state.cancel);

        let mut core = state.core.lock().expect("core lock");
        match result {
            Ok(outcome) => core.finish(
                job.id,
                (outcome.recovered + outcome.executed) as u64,
                outcome.aggregate,
                outcome.interrupted,
            ),
            Err(e) => {
                // Journal I/O or corruption: leave the job resumable and
                // let the operator see why.
                eprintln!("job {}: {e}", job.id);
                core.finish(job.id, job.committed, job.aggregate, true);
            }
        }
    }
}

/// One request per connection: parse, route, answer, close.
fn handle_connection(
    state: &ServiceState,
    stream: TcpStream,
    peer: std::net::SocketAddr,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    match read_request(&mut reader) {
        Ok(None) => Ok(()),
        Ok(Some(req)) => route(state, &req, peer, &mut writer),
        Err(HttpError::PayloadTooLarge { declared }) => write_json_response(
            &mut writer,
            413,
            &error_json(
                413,
                "payload_too_large",
                &format!("{declared} bytes declared"),
            ),
        ),
        Err(HttpError::BadRequest(msg)) => {
            write_json_response(&mut writer, 400, &error_json(400, "bad_request", &msg))
        }
        Err(HttpError::Io(e)) => Err(e),
    }
}

/// The service's URL space, parsed.
enum Route {
    Jobs,
    Job(u64),
    Records(u64),
    TelemetryAll(u64),
    TelemetryPoint(u64, u64),
    Status,
    Unknown,
}

fn parse_route(path: &str) -> Route {
    if path == "/status" {
        return Route::Status;
    }
    if path == "/jobs" {
        return Route::Jobs;
    }
    let Some(rest) = path.strip_prefix("/jobs/") else {
        return Route::Unknown;
    };
    let mut parts = rest.split('/');
    let Some(id) = parts.next().and_then(|s| s.parse::<u64>().ok()) else {
        return Route::Unknown;
    };
    match (parts.next(), parts.next(), parts.next()) {
        (None, _, _) => Route::Job(id),
        (Some("records"), None, _) => Route::Records(id),
        (Some("telemetry"), None, _) => Route::TelemetryAll(id),
        (Some("telemetry"), Some(i), None) => match i.parse::<u64>() {
            Ok(i) => Route::TelemetryPoint(id, i),
            Err(_) => Route::Unknown,
        },
        _ => Route::Unknown,
    }
}

fn route(
    state: &ServiceState,
    req: &Request,
    peer: std::net::SocketAddr,
    w: &mut TcpStream,
) -> io::Result<()> {
    match (parse_route(&req.path), req.method.as_str()) {
        (Route::Jobs, "POST") => submit(state, req, peer, w),
        (Route::Job(id), "GET") => job_status(state, id, w),
        (Route::Records(id), "GET") => stream_records(state, id, w),
        (Route::TelemetryAll(id), "GET") => telemetry_all(state, id, w),
        (Route::TelemetryPoint(id, i), "GET") => telemetry_point(state, id, i, w),
        (Route::Status, "GET") => {
            let body = {
                let core = state.core.lock().expect("core lock");
                status_json(&core)
            };
            write_json_response(w, 200, &body)
        }
        (Route::Unknown, _) => not_found(w, &format!("no such path `{}`", req.path)),
        (_, method) => write_json_response(
            w,
            405,
            &error_json(
                405,
                "method_not_allowed",
                &format!("`{method}` is not valid here"),
            ),
        ),
    }
}

fn not_found(w: &mut TcpStream, message: &str) -> io::Result<()> {
    write_json_response(w, 404, &error_json(404, "not_found", message))
}

/// The submission body: a raw spec document, or a wrapper selecting a
/// builtin / attaching a telemetry request.
fn parse_submission(doc: &Json) -> Result<(CampaignSpec, bool), String> {
    let first_key = match doc {
        Json::Obj(fields) => fields.first().map(|(k, _)| k.as_str()),
        _ => return Err("submission must be an object".into()),
    };
    let telemetry = match doc.get("telemetry") {
        None => false,
        Some(Json::Bool(b)) => *b,
        Some(_) => return Err("`telemetry` must be a boolean".into()),
    };
    match first_key {
        Some("builtin") => {
            json::require_keys(doc, &["builtin"], &["telemetry"])?;
            let Some(Json::Str(name)) = doc.get("builtin") else {
                return Err("`builtin` must be a string".into());
            };
            let spec = builtin(name).ok_or_else(|| format!("unknown builtin `{name}`"))?;
            Ok((spec, telemetry))
        }
        Some("spec") => {
            json::require_keys(doc, &["spec"], &["telemetry"])?;
            let spec = spec_from_json(doc.get("spec").expect("checked above"))?;
            Ok((spec, telemetry))
        }
        _ => Ok((spec_from_json(doc)?, false)),
    }
}

fn submit(
    state: &ServiceState,
    req: &Request,
    peer: std::net::SocketAddr,
    w: &mut TcpStream,
) -> io::Result<()> {
    let client = match req.header("x-qdc-client") {
        Some(token) if !token.is_empty() => token.to_string(),
        _ => peer.ip().to_string(),
    };
    let parsed = std::str::from_utf8(&req.body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(|text| json::parse(text.trim()))
        .and_then(|doc| parse_submission(&doc));
    let (spec, telemetry) = match parsed {
        Ok(p) => p,
        Err(msg) => {
            return write_json_response(w, 400, &error_json(400, "bad_request", &msg));
        }
    };

    let outcome: Result<String, Rejection> = {
        let mut core = state.core.lock().expect("core lock");
        match core.submit(&client, spec, telemetry) {
            Err(e) => Err(Rejection::Submit(e)),
            Ok(id) => {
                // Persist the submission before acknowledging it: once
                // the 201 is on the wire, a restart must find the job.
                let job = core.job(id).expect("just admitted").clone();
                let (doc_path, _, _) = job_paths(&state.config.data_dir, id);
                match persist_job_doc(&doc_path, &job) {
                    Ok(()) => Ok(job_json(&job)),
                    Err(e) => {
                        // Roll the admission back: an unpersisted job
                        // would vanish on restart despite its receipt.
                        core.abort_queued(id);
                        Err(Rejection::Storage(e))
                    }
                }
            }
        }
    };
    match outcome {
        Ok(body) => {
            state.wake.notify_one();
            write_json_response(w, 201, &body)
        }
        Err(Rejection::Storage(e)) => write_json_response(
            w,
            500,
            &error_json(
                500,
                "storage_failure",
                &format!("could not persist job: {e}"),
            ),
        ),
        Err(Rejection::Submit(e)) => {
            let (status, body) = submit_error_json(&e);
            write_json_response(w, status, &body)
        }
    }
}

/// Either admission failed, or admission succeeded but persistence did.
enum Rejection {
    Submit(SubmitError),
    Storage(io::Error),
}

fn persist_job_doc(path: &std::path::Path, job: &crate::core::Job) -> io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(job_doc_json(job.id, &job.client, job.telemetry, &job.spec).as_bytes())?;
    file.write_all(b"\n")?;
    file.sync_data()
}

/// `GET /jobs/<id>` — the stored job, with live progress folded in from
/// the journal while it runs.
fn job_status(state: &ServiceState, id: u64, w: &mut TcpStream) -> io::Result<()> {
    let job = {
        let core = state.core.lock().expect("core lock");
        core.job(id).cloned()
    };
    let Some(mut job) = job else {
        return not_found(w, &format!("no job {id}"));
    };
    if job.state == JobState::Running {
        let (_, records_path, _) = job_paths(&state.config.data_dir, id);
        if let Ok(text) = std::fs::read_to_string(&records_path) {
            if let Ok(recovery) = journal::recover(&text, &job.spec.name) {
                let mut agg = qdc_harness::Aggregate::default();
                for entry in &recovery.entries {
                    agg.add_entry(entry);
                }
                job.committed = recovery.entries.len() as u64;
                job.aggregate = agg;
            }
        }
    }
    write_json_response(w, 200, &job_json(&job))
}

/// `GET /jobs/<id>/records` — long-poll tail of the journal as chunked
/// JSONL. Emits only whole committed lines (everything up to the last
/// newline on disk), polls while the job is live, and terminates once
/// the job reaches a terminal state and the tail is drained. Reads the
/// file, never the worker: back-pressure from a slow client stops
/// *this* thread at the socket, nothing else.
fn stream_records(state: &ServiceState, id: u64, w: &mut TcpStream) -> io::Result<()> {
    let exists = {
        let core = state.core.lock().expect("core lock");
        core.job(id).is_some()
    };
    if !exists {
        return not_found(w, &format!("no job {id}"));
    }
    let (_, records_path, _) = job_paths(&state.config.data_dir, id);
    let mut chunks = ChunkedWriter::begin(w, 200, "application/jsonl")?;
    let mut offset = 0u64;
    loop {
        // Read the state *before* the file: bytes committed after this
        // check are caught on the next loop, and once terminal the file
        // can only be complete.
        let terminal = {
            let core = state.core.lock().expect("core lock");
            matches!(
                core.job(id).map(|j| j.state),
                Some(JobState::Completed | JobState::Interrupted) | None
            )
        };
        // Re-open each poll (the journal does not exist until the worker
        // starts the job) but read only from the last streamed boundary:
        // total I/O over the life of a streaming client is linear in the
        // journal, not quadratic. Bytes streamed so far never change —
        // recovery only ever truncates a torn *partial* trailing line,
        // and `offset` always sits on a committed newline boundary.
        let mut tail = Vec::new();
        if let Ok(mut file) = std::fs::File::open(&records_path) {
            if file.seek(io::SeekFrom::Start(offset)).is_ok() {
                let _ = file.read_to_end(&mut tail);
            }
        }
        // Emit only whole lines; a partial trailing line stays unsent
        // (and is re-read next poll — at most one record of rework).
        let committed = tail
            .iter()
            .rposition(|&b| b == b'\n')
            .map(|p| p + 1)
            .unwrap_or(0);
        if committed > 0 {
            chunks.chunk(&tail[..committed])?;
            offset += committed as u64;
        }
        if terminal || state.cancel.is_cancelled() {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    chunks.finish()
}

fn telemetry_dir_for(state: &ServiceState, id: u64) -> Result<PathBuf, String> {
    let core = state.core.lock().expect("core lock");
    match core.job(id) {
        None => Err(format!("no job {id}")),
        Some(job) if !job.telemetry => Err(format!("job {id} was submitted without telemetry")),
        Some(_) => Ok(job_paths(&state.config.data_dir, id).2),
    }
}

/// Read window for archive streaming: the serving thread never holds
/// more than this much archive in memory, however large the file is.
const TELEMETRY_CHUNK_BYTES: usize = 64 * 1024;

/// Copies one committed archive through the chunked writer with a
/// bounded buffer. Archives land atomically (the committer's single
/// write, or the stream sink's `.part` rename), so a file visible at
/// its final path is complete and can be streamed without coordination.
fn stream_archive_file(
    chunks: &mut ChunkedWriter<&mut TcpStream>,
    path: &std::path::Path,
) -> io::Result<()> {
    let mut file = std::fs::File::open(path)?;
    let mut buf = vec![0u8; TELEMETRY_CHUNK_BYTES];
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            return Ok(());
        }
        chunks.chunk(&buf[..n])?;
    }
}

/// `GET /jobs/<id>/telemetry` — every archived point profile so far,
/// concatenated in point order (each archive is itself JSONL, so the
/// concatenation is too). Streamed chunk-by-chunk from the committed
/// bytes on disk: memory stays O(chunk) no matter how many points the
/// campaign has or how long each archive is, and back-pressure from a
/// slow client parks this thread at the socket, nothing else.
fn telemetry_all(state: &ServiceState, id: u64, w: &mut TcpStream) -> io::Result<()> {
    let dir = match telemetry_dir_for(state, id) {
        Ok(dir) => dir,
        Err(msg) => return not_found(w, &msg),
    };
    let mut indexed = Vec::new();
    if let Ok(entries) = std::fs::read_dir(&dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(i) = name
                .strip_prefix("point_")
                .and_then(|s| s.strip_suffix(".telemetry.jsonl"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                indexed.push((i, entry.path()));
            }
        }
    }
    indexed.sort();
    let mut chunks = ChunkedWriter::begin(w, 200, "application/jsonl")?;
    for (_, path) in indexed {
        stream_archive_file(&mut chunks, &path)?;
    }
    chunks.finish()
}

/// `GET /jobs/<id>/telemetry/<i>` — one point's archive, byte-exact
/// (pipe it straight into `profile -` or `profile query -`). Streamed
/// with the same bounded window as the concatenated endpoint.
fn telemetry_point(state: &ServiceState, id: u64, index: u64, w: &mut TcpStream) -> io::Result<()> {
    let dir = match telemetry_dir_for(state, id) {
        Ok(dir) => dir,
        Err(msg) => return not_found(w, &msg),
    };
    let path = dir.join(format!("point_{index}.telemetry.jsonl"));
    if !path.is_file() {
        return not_found(w, &format!("job {id} has no archive for point {index}"));
    }
    let mut chunks = ChunkedWriter::begin(w, 200, "application/jsonl")?;
    stream_archive_file(&mut chunks, &path)?;
    chunks.finish()
}
