//! The deterministic scheduler core: a bounded FIFO job queue with
//! per-client quotas and a four-state job lifecycle.
//!
//! This module is a plain library — no sockets, no threads, no clocks.
//! Every decision (admit, reject, dispatch, finish) is a pure function
//! of the call sequence, which is what makes the admission policy
//! directly unit- and property-testable: the HTTP layer in
//! [`crate::server`] is a thin adapter that translates requests into
//! these calls under one mutex.
//!
//! # Admission policy
//!
//! A submission is checked in a fixed order, and the *first* violated
//! rule names the rejection:
//!
//! 1. the spec must pass [`CampaignSpec::validate`]
//!    ([`SubmitError::InvalidSpec`], a 400-class rejection);
//! 2. the global queue must have room ([`SubmitError::QueueFull`],
//!    429-class);
//! 3. the client must have queue slots left
//!    ([`SubmitError::ClientQueueFull`], 429-class);
//! 4. the client's *active* grid points — queued plus running, plus the
//!    new grid — must fit its point quota
//!    ([`SubmitError::QuotaExceeded`], 429-class). Points are the real
//!    cost unit: one 10⁶-point grid is not the same load as one smoke
//!    grid, so job-count quotas alone would be gameable.
//!
//! Completed and interrupted jobs stop counting against quotas, so a
//! client's budget frees up as its work drains.

use qdc_harness::{Aggregate, CampaignError, CampaignSpec};
use std::collections::{BTreeMap, VecDeque};

/// Per-client and global admission limits.
#[derive(Clone, Copy, Debug)]
pub struct QuotaConfig {
    /// Maximum jobs queued (not yet running) across all clients.
    pub max_queue: usize,
    /// Maximum jobs one client may have queued at once.
    pub max_queued_per_client: usize,
    /// Maximum grid points one client may have active (queued plus
    /// running) at once. Also caps a single submission's size.
    pub max_points_per_client: u64,
}

impl Default for QuotaConfig {
    fn default() -> Self {
        QuotaConfig {
            max_queue: 64,
            max_queued_per_client: 8,
            max_points_per_client: 4096,
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Every grid point is committed to the journal.
    Completed,
    /// Execution stopped early (service shutdown mid-job); the journal
    /// is a resumable record-boundary prefix, and a restart re-enqueues
    /// the job.
    Interrupted,
}

impl JobState {
    /// The wire name of the state (`qdc-job/v1`'s `state` field).
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Interrupted => "interrupted",
        }
    }
}

/// One admitted job.
#[derive(Clone, Debug)]
pub struct Job {
    /// Service-assigned id (monotonic; names the job's files and URLs).
    pub id: u64,
    /// The submitting client's key (token header or peer address).
    pub client: String,
    /// The validated campaign specification.
    pub spec: CampaignSpec,
    /// Whether the job asked for per-point telemetry archives.
    pub telemetry: bool,
    /// Size of the expanded grid (cached from `spec.point_count()`).
    pub total_points: u64,
    /// Lifecycle state.
    pub state: JobState,
    /// Journal lines committed so far (updated at state transitions;
    /// the live count for a running job comes from its journal file).
    pub committed: u64,
    /// Fold of the committed entries (same update discipline).
    pub aggregate: Aggregate,
}

/// Why a submission was rejected. Every variant maps to one
/// `qdc-service-error/v1` body (see [`crate::wire::submit_error_json`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The spec failed semantic validation.
    InvalidSpec(CampaignError),
    /// The global queue is at capacity.
    QueueFull {
        /// Jobs currently queued.
        depth: usize,
        /// The configured bound.
        max: usize,
    },
    /// The client has too many jobs queued already.
    ClientQueueFull {
        /// Jobs this client has queued.
        queued: usize,
        /// The configured per-client bound.
        max: usize,
    },
    /// The submission would push the client past its point quota.
    QuotaExceeded {
        /// Points the new grid would add.
        requested: u64,
        /// Points the client already has active.
        active: u64,
        /// The configured per-client bound.
        max: u64,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::InvalidSpec(e) => write!(f, "invalid campaign spec: {e}"),
            SubmitError::QueueFull { depth, max } => {
                write!(f, "queue full: {depth} of {max} job slots in use")
            }
            SubmitError::ClientQueueFull { queued, max } => {
                write!(f, "client queue full: {queued} of {max} job slots in use")
            }
            SubmitError::QuotaExceeded {
                requested,
                active,
                max,
            } => write!(
                f,
                "point quota exceeded: {requested} requested with {active} active \
                 of {max} allowed"
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Per-client lifetime counters (monotonic; survive job completion).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Jobs admitted.
    pub submitted: u64,
    /// Submissions rejected (any [`SubmitError`]).
    pub rejected: u64,
    /// Jobs that reached [`JobState::Completed`].
    pub completed: u64,
}

/// The deterministic queue/quota/scheduler state machine.
#[derive(Debug, Default)]
pub struct ServiceCore {
    quotas: QuotaConfig,
    next_id: u64,
    queue: VecDeque<u64>,
    jobs: BTreeMap<u64, Job>,
    clients: BTreeMap<String, ClientStats>,
}

impl ServiceCore {
    /// A fresh core with the given admission limits.
    pub fn new(quotas: QuotaConfig) -> ServiceCore {
        ServiceCore {
            quotas,
            next_id: 1,
            ..ServiceCore::default()
        }
    }

    /// The configured limits.
    pub fn quotas(&self) -> QuotaConfig {
        self.quotas
    }

    /// Jobs currently queued (not yet dispatched).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Jobs in the given state.
    pub fn count_in_state(&self, state: JobState) -> usize {
        self.jobs.values().filter(|j| j.state == state).count()
    }

    /// All jobs, in id order.
    pub fn jobs(&self) -> impl Iterator<Item = &Job> {
        self.jobs.values()
    }

    /// Looks up one job.
    pub fn job(&self, id: u64) -> Option<&Job> {
        self.jobs.get(&id)
    }

    /// Per-client lifetime counters, in key order.
    pub fn clients(&self) -> impl Iterator<Item = (&str, &ClientStats)> {
        self.clients.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Grid points the client has active (queued plus running).
    pub fn active_points(&self, client: &str) -> u64 {
        self.jobs
            .values()
            .filter(|j| {
                j.client == client && matches!(j.state, JobState::Queued | JobState::Running)
            })
            .map(|j| j.total_points)
            .sum()
    }

    /// Jobs the client has queued right now.
    pub fn queued_jobs(&self, client: &str) -> usize {
        self.queue
            .iter()
            .filter(|id| self.jobs[id].client == client)
            .count()
    }

    /// Admits a job or rejects it with the first violated rule (see the
    /// module docs for the check order). Rejections are counted against
    /// the client either way.
    pub fn submit(
        &mut self,
        client: &str,
        spec: CampaignSpec,
        telemetry: bool,
    ) -> Result<u64, SubmitError> {
        let decision = self.admit(client, &spec);
        let stats = self.clients.entry(client.to_string()).or_default();
        match decision {
            Err(e) => {
                stats.rejected += 1;
                Err(e)
            }
            Ok(total_points) => {
                stats.submitted += 1;
                let id = self.next_id;
                self.next_id += 1;
                self.jobs.insert(
                    id,
                    Job {
                        id,
                        client: client.to_string(),
                        spec,
                        telemetry,
                        total_points,
                        state: JobState::Queued,
                        committed: 0,
                        aggregate: Aggregate::default(),
                    },
                );
                self.queue.push_back(id);
                Ok(id)
            }
        }
    }

    /// The admission checks alone (no mutation). Returns the grid size.
    fn admit(&self, client: &str, spec: &CampaignSpec) -> Result<u64, SubmitError> {
        spec.validate().map_err(SubmitError::InvalidSpec)?;
        // Size the grid arithmetically: expanding it (`spec.points()`)
        // before the quota check would let an untrusted 64 KiB spec with
        // two multi-thousand-entry axes allocate a multi-GB cross
        // product under the core mutex just to be told 429.
        let requested = spec.point_count();
        if self.queue.len() >= self.quotas.max_queue {
            return Err(SubmitError::QueueFull {
                depth: self.queue.len(),
                max: self.quotas.max_queue,
            });
        }
        let queued = self.queued_jobs(client);
        if queued >= self.quotas.max_queued_per_client {
            return Err(SubmitError::ClientQueueFull {
                queued,
                max: self.quotas.max_queued_per_client,
            });
        }
        let active = self.active_points(client);
        if active + requested > self.quotas.max_points_per_client {
            return Err(SubmitError::QuotaExceeded {
                requested,
                active,
                max: self.quotas.max_points_per_client,
            });
        }
        Ok(requested)
    }

    /// Re-inserts a job recovered from the service data dir at startup.
    /// Incomplete jobs (`Queued`/`Running`/`Interrupted` on disk) are
    /// re-enqueued as [`JobState::Queued`]; completed ones keep their
    /// terminal state. The id counter advances past every restored id.
    /// Every restored job counts as submitted (and completed ones as
    /// completed), so the lifetime invariant `completed ≤ submitted`
    /// holds across restarts.
    pub fn restore(&mut self, mut job: Job) {
        self.next_id = self.next_id.max(job.id + 1);
        let stats = self.clients.entry(job.client.clone()).or_default();
        stats.submitted += 1;
        if job.state != JobState::Completed {
            job.state = JobState::Queued;
            self.queue.push_back(job.id);
        } else {
            stats.completed += 1;
        }
        self.jobs.insert(job.id, job);
    }

    /// Dispatches the oldest queued job to a worker (FIFO), marking it
    /// running. `None` when the queue is empty.
    pub fn take_next(&mut self) -> Option<Job> {
        let id = self.queue.pop_front()?;
        let job = self.jobs.get_mut(&id).expect("queued jobs exist");
        job.state = JobState::Running;
        Some(job.clone())
    }

    /// Removes a still-queued job entirely (the submit path could not
    /// persist it, so the admission is rolled back as if it never
    /// happened — including the client's `submitted` count).
    pub fn abort_queued(&mut self, id: u64) {
        let Some(pos) = self.queue.iter().position(|&q| q == id) else {
            return;
        };
        self.queue.remove(pos);
        if let Some(job) = self.jobs.remove(&id) {
            if let Some(stats) = self.clients.get_mut(&job.client) {
                stats.submitted = stats.submitted.saturating_sub(1);
            }
        }
    }

    /// Records a finished run: `interrupted = false` marks the job
    /// completed, `true` leaves it resumable (a restart re-enqueues it).
    pub fn finish(&mut self, id: u64, committed: u64, aggregate: Aggregate, interrupted: bool) {
        let Some(job) = self.jobs.get_mut(&id) else {
            return;
        };
        job.committed = committed;
        job.aggregate = aggregate;
        job.state = if interrupted {
            JobState::Interrupted
        } else {
            JobState::Completed
        };
        if !interrupted {
            self.clients
                .get_mut(&job.client)
                .expect("submitting created the entry")
                .completed += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdc_harness::builtin;

    fn smoke() -> CampaignSpec {
        builtin("simthm_smoke").expect("builtin")
    }

    fn tiny_quotas() -> QuotaConfig {
        QuotaConfig {
            max_queue: 3,
            max_queued_per_client: 2,
            max_points_per_client: 8,
        }
    }

    #[test]
    fn core_submit_assigns_monotonic_ids_and_fifo_dispatch() {
        let mut core = ServiceCore::new(QuotaConfig::default());
        let a = core.submit("alice", smoke(), false).expect("admits");
        let b = core.submit("bob", smoke(), true).expect("admits");
        assert!(a < b, "ids are monotonic");
        assert_eq!(core.queue_depth(), 2);
        let first = core.take_next().expect("queue has jobs");
        assert_eq!(first.id, a, "FIFO order");
        assert_eq!(core.job(a).expect("exists").state, JobState::Running);
        assert_eq!(core.job(b).expect("exists").state, JobState::Queued);
        assert!(!first.telemetry);
        assert!(core.job(b).expect("exists").telemetry);
    }

    #[test]
    fn core_rejects_invalid_specs_before_any_quota() {
        let mut core = ServiceCore::new(QuotaConfig {
            max_queue: 0, // even a full queue…
            ..QuotaConfig::default()
        });
        let mut spec = smoke();
        spec.name.clear();
        let err = core.submit("alice", spec, false).expect_err("rejects");
        // …must not mask the spec error: validation runs first.
        assert_eq!(
            err,
            SubmitError::InvalidSpec(CampaignError::EmptyName),
            "spec validation precedes quota checks"
        );
        assert_eq!(core.clients().next().expect("counted").1.rejected, 1);
    }

    #[test]
    fn core_enforces_the_global_queue_bound() {
        let mut core = ServiceCore::new(tiny_quotas());
        core.submit("a", smoke(), false).expect("1st");
        core.submit("b", smoke(), false).expect("2nd");
        // Third client, zero active points — only the *global* bound can
        // reject it once c's own quota is fine… but max_queue = 3 admits
        // it, and the fourth submission hits the wall.
        core.submit("c", smoke(), false).expect("3rd");
        let err = core.submit("d", smoke(), false).expect_err("4th");
        assert_eq!(err, SubmitError::QueueFull { depth: 3, max: 3 });
    }

    #[test]
    fn core_enforces_per_client_bounds_and_frees_them_on_finish() {
        let mut core = ServiceCore::new(tiny_quotas());
        let a = core.submit("alice", smoke(), false).expect("1st");
        core.submit("alice", smoke(), false).expect("2nd");
        // Queue slots: 2 of 2 in use.
        let err = core.submit("alice", smoke(), false).expect_err("3rd");
        assert_eq!(err, SubmitError::ClientQueueFull { queued: 2, max: 2 });
        // Dispatching frees a queue slot but not the point quota: the
        // smoke grid is 4 points, so 2 active jobs = 8 = the full budget.
        let job = core.take_next().expect("dispatch");
        assert_eq!(job.id, a);
        let err = core.submit("alice", smoke(), false).expect_err("points");
        assert_eq!(
            err,
            SubmitError::QuotaExceeded {
                requested: 4,
                active: 8,
                max: 8
            }
        );
        // Finishing the running job returns its points to the budget.
        core.finish(a, 4, Aggregate::default(), false);
        core.submit("alice", smoke(), false)
            .expect("quota freed by completion");
        let stats = core
            .clients()
            .find(|(k, _)| *k == "alice")
            .expect("tracked")
            .1;
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.rejected, 2);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn core_oversized_single_job_is_rejected_outright() {
        let mut core = ServiceCore::new(QuotaConfig {
            max_points_per_client: 3,
            ..QuotaConfig::default()
        });
        let err = core.submit("alice", smoke(), false).expect_err("too big");
        assert_eq!(
            err,
            SubmitError::QuotaExceeded {
                requested: 4,
                active: 0,
                max: 3
            }
        );
    }

    #[test]
    fn core_rejects_a_hostile_grid_without_expanding_it() {
        use qdc_harness::CampaignGrid;
        // Two ~4k-entry axes describe a 16M-point grid from a few KiB of
        // spec. Admission must size it arithmetically — expanding the
        // cross product here (as admit() once did via spec.points())
        // would allocate millions of PointSpecs under the core mutex
        // before the rejection.
        let mut core = ServiceCore::new(QuotaConfig::default());
        let mut spec = qdc_harness::builtin("chaos_ensemble").expect("builtin");
        if let CampaignGrid::Chaos { drop_pm, seeds, .. } = &mut spec.grid {
            *drop_pm = vec![0; 4000];
            *seeds = (0..4000).collect();
        }
        let err = core.submit("alice", spec, false).expect_err("rejected");
        assert_eq!(
            err,
            SubmitError::QuotaExceeded {
                requested: 16_000_000,
                active: 0,
                max: QuotaConfig::default().max_points_per_client,
            }
        );
    }

    #[test]
    fn core_restore_re_enqueues_incomplete_jobs_and_advances_ids() {
        let mut core = ServiceCore::new(QuotaConfig::default());
        core.restore(Job {
            id: 7,
            client: "alice".into(),
            spec: smoke(),
            telemetry: false,
            total_points: 4,
            state: JobState::Completed,
            committed: 4,
            aggregate: Aggregate::default(),
        });
        core.restore(Job {
            id: 9,
            client: "bob".into(),
            spec: smoke(),
            telemetry: true,
            total_points: 4,
            state: JobState::Interrupted,
            committed: 2,
            aggregate: Aggregate::default(),
        });
        assert_eq!(core.count_in_state(JobState::Completed), 1);
        assert_eq!(core.count_in_state(JobState::Queued), 1);
        assert_eq!(core.queue_depth(), 1);
        let next = core.take_next().expect("recovered job re-enqueued");
        assert_eq!(next.id, 9, "the interrupted job is back in the queue");
        assert_eq!(next.committed, 2, "its progress marker survives");
        // Restored jobs keep the lifetime counters consistent: every
        // restored job counts as submitted, so `completed ≤ submitted`
        // holds in /status even right after a restart.
        let alice = core.clients().find(|(k, _)| *k == "alice").expect("kept").1;
        assert_eq!((alice.submitted, alice.completed), (1, 1));
        let bob = core.clients().find(|(k, _)| *k == "bob").expect("kept").1;
        assert_eq!((bob.submitted, bob.completed), (1, 0));
        // A fresh submission continues past every restored id.
        let fresh = core.submit("carol", smoke(), false).expect("admits");
        assert_eq!(fresh, 10);
    }

    #[test]
    fn core_abort_queued_rolls_the_admission_back() {
        let mut core = ServiceCore::new(QuotaConfig::default());
        let id = core.submit("alice", smoke(), false).expect("admits");
        core.abort_queued(id);
        assert!(core.job(id).is_none(), "the job is gone");
        assert_eq!(core.queue_depth(), 0, "and not in the queue");
        assert_eq!(
            core.clients().next().expect("tracked").1.submitted,
            0,
            "the submitted count is rolled back"
        );
        // Aborting a dispatched (running) job is a no-op: it is no
        // longer queued, so there is nothing to roll back.
        let id = core.submit("alice", smoke(), false).expect("admits");
        core.take_next().expect("dispatch");
        core.abort_queued(id);
        assert!(core.job(id).is_some(), "running jobs are untouched");
    }

    #[test]
    fn core_errors_display_without_panicking() {
        for e in [
            SubmitError::InvalidSpec(CampaignError::ZeroGamma),
            SubmitError::QueueFull { depth: 3, max: 3 },
            SubmitError::ClientQueueFull { queued: 2, max: 2 },
            SubmitError::QuotaExceeded {
                requested: 9,
                active: 1,
                max: 8,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
