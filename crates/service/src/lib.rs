//! Resident campaign service: a job queue, per-client quotas, and
//! streaming JSONL endpoints over a hand-rolled HTTP/1.1 layer.
//!
//! The batch `campaign` CLI runs one spec and exits; this crate keeps a
//! process resident so campaigns can be *submitted* — queued behind
//! admission control, executed by a worker pool through the crash-safe
//! journaled runner, and observed live over plain HTTP. The layering
//! keeps every policy decision testable without a socket:
//!
//! * [`core`] — the deterministic scheduler: bounded FIFO queue,
//!   per-client quotas ([`QuotaConfig`]), job lifecycle
//!   ([`JobState`]), structured rejections ([`SubmitError`]). A plain
//!   library; property tests drive it directly.
//! * [`scan`] — journal triage ([`classify_journal`], shared with the
//!   `campaign verify` subcommand) and the startup data-dir scan that
//!   makes the service SIGKILL-durable: re-enqueue incomplete jobs,
//!   truncate torn tails on record boundaries, restore completed ones.
//! * [`wire`] — the three service schemas (`qdc-job/v1`,
//!   `qdc-service-status/v1`, `qdc-service-error/v1`), writers and
//!   strict validators, golden-locked at the workspace root.
//! * [`http`] — a minimal HTTP/1.1 reader/writer over [`std::io`]
//!   (one request per connection, chunked streaming out, hard size
//!   limits in), testable against byte buffers.
//! * [`server`] — the only socket code: accept loop, connection
//!   threads, worker pool, graceful [`CancelToken`]-driven shutdown.
//!
//! The headline invariant carries over from the harness: a job's
//! streamed `/records` bytes are **identical** to what a direct
//! `campaign run --deterministic` of the same spec writes, because
//! workers always run the deterministic resumable form and the stream
//! serves only committed journal bytes.
//!
//! [`CancelToken`]: qdc_harness::CancelToken

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod core;
pub mod http;
pub mod scan;
pub mod server;
pub mod wire;

pub use crate::core::{ClientStats, Job, JobState, QuotaConfig, ServiceCore, SubmitError};
pub use scan::{classify_journal, scan_data_dir, JournalClass, ScanReport};
pub use server::{Server, ServiceConfig};
pub use wire::{
    error_json, job_json, status_json, submit_error_json, validate_error, validate_job,
    validate_status, ERROR_SCHEMA, JOB_SCHEMA, STATUS_SCHEMA,
};
