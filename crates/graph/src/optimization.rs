//! Sequential reference implementations of the Appendix A.3 / Corollary
//! 3.9 optimization problems.
//!
//! These are the centralized counterparts the distributed algorithms and
//! lower bounds refer to: minimum s-t cut via Edmonds–Karp max-flow,
//! minimum routing cost spanning trees (with the classic best-shortest-
//! path-tree 2-approximation), shallow-light trees (LAST-style
//! MST/SPT balance), and a feasible generalized Steiner forest.

use crate::algorithms::{dijkstra, kruskal_mst, shortest_path_tree, UNREACHABLE};
use crate::{EdgeId, EdgeWeights, Graph, NodeId, Subgraph};
use std::collections::VecDeque;

// ---------------------------------------------------------------------------
// Minimum s-t cut via Edmonds–Karp max-flow.
// ---------------------------------------------------------------------------

/// Result of a minimum s-t cut computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StCut {
    /// The max-flow = min-cut value.
    pub value: u64,
    /// Edges crossing the cut (from the `s`-side to the `t`-side).
    pub cut_edges: Vec<EdgeId>,
    /// Nodes on the `s` side of the cut.
    pub s_side: Vec<NodeId>,
}

/// Minimum s-t cut of an undirected weighted graph via Edmonds–Karp.
///
/// Each undirected edge becomes a pair of directed arcs with capacity
/// equal to its weight.
///
/// # Panics
///
/// Panics if `s == t`.
pub fn min_st_cut(graph: &Graph, weights: &EdgeWeights, s: NodeId, t: NodeId) -> StCut {
    assert_ne!(s, t, "source and sink must differ");
    let n = graph.node_count();
    // Arc representation: for edge e with endpoints (u, v) create arcs
    // 2e (u→v) and 2e+1 (v→u), each with capacity w(e). Residual of arc a
    // is cap[a] - flow[a]; pushing on a adds to flow[a] and subtracts
    // from flow[a^1] (standard undirected-edge trick).
    let m = graph.edge_count();
    let mut flow = vec![0i64; 2 * m];
    let cap = |a: usize| weights.weight(EdgeId::from(a / 2)) as i64;
    let arc_from = |a: usize| -> NodeId {
        let (u, v) = graph.endpoints(EdgeId::from(a / 2));
        if a.is_multiple_of(2) {
            u
        } else {
            v
        }
    };
    let arc_to = |a: usize| -> NodeId {
        let (u, v) = graph.endpoints(EdgeId::from(a / 2));
        if a.is_multiple_of(2) {
            v
        } else {
            u
        }
    };

    let mut value = 0u64;
    loop {
        // BFS over residual arcs.
        let mut pred: Vec<Option<usize>> = vec![None; n]; // arc used to reach node
        let mut visited = vec![false; n];
        visited[s.index()] = true;
        let mut queue = VecDeque::from([s]);
        'bfs: while let Some(u) = queue.pop_front() {
            for &(e, _) in graph.incident(u) {
                for half in 0..2 {
                    let a = 2 * e.index() + half;
                    if arc_from(a) != u {
                        continue;
                    }
                    let v = arc_to(a);
                    if !visited[v.index()] && cap(a) - flow[a] > 0 {
                        visited[v.index()] = true;
                        pred[v.index()] = Some(a);
                        if v == t {
                            break 'bfs;
                        }
                        queue.push_back(v);
                    }
                }
            }
        }
        if !visited[t.index()] {
            // Done: extract the cut from the final residual reachability.
            let s_side: Vec<NodeId> = graph.nodes().filter(|v| visited[v.index()]).collect();
            let cut_edges: Vec<EdgeId> = graph
                .edges()
                .filter(|&e| {
                    let (u, v) = graph.endpoints(e);
                    visited[u.index()] != visited[v.index()]
                })
                .collect();
            debug_assert_eq!(
                cut_edges.iter().map(|&e| weights.weight(e)).sum::<u64>(),
                value,
                "max-flow equals min-cut"
            );
            return StCut {
                value,
                cut_edges,
                s_side,
            };
        }
        // Bottleneck along the augmenting path.
        let mut bottleneck = i64::MAX;
        let mut v = t;
        while v != s {
            let a = pred[v.index()].expect("path exists");
            bottleneck = bottleneck.min(cap(a) - flow[a]);
            v = arc_from(a);
        }
        let mut v = t;
        while v != s {
            let a = pred[v.index()].expect("path exists");
            flow[a] += bottleneck;
            flow[a ^ 1] -= bottleneck;
            v = arc_from(a);
        }
        value += bottleneck as u64;
    }
}

// ---------------------------------------------------------------------------
// Minimum routing cost spanning tree.
// ---------------------------------------------------------------------------

/// Routing cost of a spanning tree: the sum of tree distances over all
/// unordered node pairs (Appendix A.3).
///
/// # Panics
///
/// Panics if `tree` is not a spanning tree of `graph`.
pub fn routing_cost(graph: &Graph, weights: &EdgeWeights, tree: &Subgraph) -> u64 {
    assert!(
        crate::predicates::is_spanning_tree(graph, tree),
        "routing cost is defined on spanning trees"
    );
    let mut total = 0u64;
    for s in graph.nodes() {
        total += tree_distances(graph, weights, tree, s).iter().sum::<u64>();
    }
    total / 2
}

/// Single-source distances restricted to tree edges.
fn tree_distances(graph: &Graph, weights: &EdgeWeights, tree: &Subgraph, s: NodeId) -> Vec<u64> {
    let mut dist = vec![UNREACHABLE; graph.node_count()];
    dist[s.index()] = 0;
    let mut queue = VecDeque::from([s]);
    while let Some(u) = queue.pop_front() {
        for &(e, v) in graph.incident(u) {
            if tree.contains(e) && dist[v.index()] == UNREACHABLE {
                dist[v.index()] = dist[u.index()] + weights.weight(e);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// The classic 2-approximation for the minimum routing cost spanning
/// tree: take the best shortest-path tree over all roots.
///
/// Returns `(tree, cost)`.
pub fn best_spt_routing_tree(graph: &Graph, weights: &EdgeWeights) -> (Subgraph, u64) {
    let mut best: Option<(Subgraph, u64)> = None;
    for r in graph.nodes() {
        let parents = shortest_path_tree(graph, weights, r);
        let tree = Subgraph::from_edges(graph, parents.iter().flatten().copied());
        if !crate::predicates::is_spanning_tree(graph, &tree) {
            continue; // disconnected graph
        }
        let cost = routing_cost(graph, weights, &tree);
        if best.as_ref().is_none_or(|&(_, c)| cost < c) {
            best = Some((tree, cost));
        }
    }
    best.expect("graph must be connected")
}

/// The metric lower bound on any spanning tree's routing cost: the sum of
/// *graph* distances over unordered pairs. The best-SPT tree is within a
/// factor 2 of this (hence of the optimum).
pub fn routing_cost_lower_bound(graph: &Graph, weights: &EdgeWeights) -> u64 {
    let mut total = 0u64;
    for s in graph.nodes() {
        total += dijkstra(graph, weights, s).iter().sum::<u64>();
    }
    total / 2
}

// ---------------------------------------------------------------------------
// Shallow-light trees (LAST-style).
// ---------------------------------------------------------------------------

/// A shallow-light tree: root distances within `alpha` of shortest-path
/// distances, total weight within `1 + 2/(alpha − 1)` of the MST.
#[derive(Clone, Debug)]
pub struct ShallowLightTree {
    /// The tree.
    pub tree: Subgraph,
    /// Distances from the root in the tree.
    pub root_distances: Vec<u64>,
    /// Total tree weight.
    pub weight: u64,
}

/// Builds a LAST-style shallow-light tree (Khuller–Raghavachari–Young):
/// walk the MST in DFS preorder; whenever a node's current tree distance
/// exceeds `alpha` times its shortest-path distance, graft the entire
/// shortest path from the root.
///
/// # Panics
///
/// Panics if `alpha <= 1`, or the graph is disconnected.
pub fn shallow_light_tree(
    graph: &Graph,
    weights: &EdgeWeights,
    root: NodeId,
    alpha: f64,
) -> ShallowLightTree {
    assert!(alpha > 1.0, "need α > 1");
    let n = graph.node_count();
    let d_spt = dijkstra(graph, weights, root);
    assert!(
        d_spt.iter().all(|&d| d != UNREACHABLE),
        "shallow-light tree needs a connected graph"
    );
    let spt_parent = shortest_path_tree(graph, weights, root);
    let mst = kruskal_mst(graph, weights);
    let mst_sub = Subgraph::from_edges(graph, mst.edges.iter().copied());

    // Rooted MST structure.
    let mut mst_parent: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut order = Vec::with_capacity(n);
    {
        let mut stack = vec![root];
        let mut seen = vec![false; n];
        seen[root.index()] = true;
        while let Some(u) = stack.pop() {
            order.push(u);
            for &(e, v) in graph.incident(u) {
                if mst_sub.contains(e) && !seen[v.index()] {
                    seen[v.index()] = true;
                    mst_parent[v.index()] = Some((u, e));
                    stack.push(v);
                }
            }
        }
    }

    // parent_edge in the final tree.
    let mut parent_edge: Vec<Option<EdgeId>> = vec![None; n];
    let mut d_cur = vec![u64::MAX; n];
    d_cur[root.index()] = 0;
    // Invariant: d_cur only ever decreases, and whenever a parent edge is
    // recorded its estimate satisfies d_cur[v] ≤ α·d_spt[v]. Final tree
    // distances are then ≤ the estimates (they only shrink as ancestors
    // improve), giving the α-radius guarantee.
    for &v in order.iter().skip(1) {
        let (u, e) = mst_parent[v.index()].expect("non-root MST node has a parent");
        let cand = d_cur[u.index()].saturating_add(weights.weight(e));
        let within = |d: u64| (d as f64) <= alpha * d_spt[v.index()] as f64;
        if within(cand) && cand < d_cur[v.index()] {
            // Take the cheap MST edge — but never overwrite a better
            // (earlier-grafted) assignment with a larger estimate.
            parent_edge[v.index()] = Some(e);
            d_cur[v.index()] = cand;
        } else if !within(d_cur[v.index()]) {
            // No valid assignment yet: graft the whole shortest path
            // root → v.
            let mut w = v;
            while w != root {
                let pe = spt_parent[w.index()].expect("connected");
                let p = graph.other_endpoint(pe, w);
                if d_cur[w.index()] > d_spt[w.index()] {
                    parent_edge[w.index()] = Some(pe);
                    d_cur[w.index()] = d_spt[w.index()];
                }
                w = p;
            }
        }
    }

    let tree = Subgraph::from_edges(graph, parent_edge.iter().flatten().copied());
    let root_distances = tree_distances(graph, weights, &tree, root);
    let weight = tree.edges().map(|e| weights.weight(e)).sum();
    ShallowLightTree {
        tree,
        root_distances,
        weight,
    }
}

// ---------------------------------------------------------------------------
// Tree-packing minimum cut (Karger-style).
// ---------------------------------------------------------------------------

/// Given a rooted spanning tree, the minimum over tree edges of the
/// weight of the cut obtained by deleting that edge (the best
/// "1-respecting" cut). Karger's theorem: for enough trees sampled from
/// a (here: randomized-MST) packing, some near-minimum cut 1-respects one
/// of them — the idea behind the distributed min-cut algorithms
/// (Ghaffari–Kuhn and successors) the paper cites as upper bounds.
///
/// Returns `None` if the graph has fewer than 2 nodes or `tree` is not a
/// spanning tree.
pub fn tree_respecting_min_cut(
    graph: &Graph,
    weights: &EdgeWeights,
    tree: &Subgraph,
) -> Option<u64> {
    if graph.node_count() < 2 || !crate::predicates::is_spanning_tree(graph, tree) {
        return None;
    }
    let n = graph.node_count();
    let root = NodeId(0);
    // Root the tree; compute a postorder.
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut order = Vec::with_capacity(n);
    let mut stack = vec![root];
    let mut seen = vec![false; n];
    seen[root.index()] = true;
    while let Some(u) = stack.pop() {
        order.push(u);
        for &(e, v) in graph.incident(u) {
            if tree.contains(e) && !seen[v.index()] {
                seen[v.index()] = true;
                parent[v.index()] = Some(u);
                stack.push(v);
            }
        }
    }
    // Euler intervals for subtree tests.
    let mut tin = vec![0usize; n];
    let mut tout = vec![0usize; n];
    {
        let mut timer = 0usize;
        // order is a preorder from the stack DFS; recompute tin/tout with
        // an explicit two-phase DFS.
        let mut stack: Vec<(NodeId, bool)> = vec![(root, false)];
        while let Some((u, processed)) = stack.pop() {
            if processed {
                tout[u.index()] = timer;
                continue;
            }
            tin[u.index()] = timer;
            timer += 1;
            stack.push((u, true));
            for &(e, v) in graph.incident(u) {
                if tree.contains(e) && parent[v.index()] == Some(u) {
                    stack.push((v, false));
                }
            }
        }
    }
    let in_subtree = |v: NodeId, s: NodeId| {
        tin[s.index()] <= tin[v.index()] && tout[v.index()] <= tout[s.index()]
    };

    // For each non-root node s, cut(subtree(s)) = Σ incident weights of
    // subtree nodes − 2 × internal weight. Aggregate bottom-up.
    let mut inc = vec![0u64; n];
    for e in graph.edges() {
        let (u, v) = graph.endpoints(e);
        inc[u.index()] += weights.weight(e);
        inc[v.index()] += weights.weight(e);
    }
    // subtree sums of incident weight, bottom-up over the preorder
    // reversed (children appear after parents in `order`).
    let mut sub_inc = inc.clone();
    for &u in order.iter().rev() {
        if let Some(p) = parent[u.index()] {
            sub_inc[p.index()] += sub_inc[u.index()];
        }
    }
    // cut(subtree(s)) = sub_inc(s) − 2·internal(s), where an edge is
    // internal iff both endpoints lie in the subtree (Euler-interval
    // containment test; the O(n·m) scan is fine at experiment scale).
    let mut best = u64::MAX;
    for s in graph.nodes() {
        if s == root {
            continue;
        }
        let mut internal = 0u64;
        for e in graph.edges() {
            let (u, v) = graph.endpoints(e);
            if in_subtree(u, s) && in_subtree(v, s) {
                internal += weights.weight(e);
            }
        }
        let cut = sub_inc[s.index()] - 2 * internal;
        best = best.min(cut);
    }
    Some(best)
}

/// Karger-style sampled minimum cut: sample `k` spanning trees by
/// computing MSTs under independently perturbed weights, take the best
/// 1-respecting cut of each. Always an upper bound on the true minimum
/// cut; equals it with high probability for enough samples.
pub fn sampled_min_cut(graph: &Graph, weights: &EdgeWeights, k: usize, seed: u64) -> Option<u64> {
    use rand::Rng;
    if graph.node_count() < 2 {
        return None;
    }
    let mut rng = crate::generate::rng(seed);
    let mut best: Option<u64> = None;
    for _ in 0..k.max(1) {
        // Perturb: random weights biased by inverse true weight so heavy
        // edges (less likely in small cuts) tend to enter the tree.
        let perturbed: Vec<u64> = graph
            .edges()
            .map(|e| {
                let w = weights.weight(e);
                rng.gen_range(1..=1_000_000u64) / w.max(1)
            })
            .map(|w| w.max(1))
            .collect();
        let pw = EdgeWeights::from_vec(graph, perturbed);
        let mst = kruskal_mst(graph, &pw);
        if mst.edges.len() != graph.node_count() - 1 {
            return None; // disconnected
        }
        let tree = Subgraph::from_edges(graph, mst.edges.iter().copied());
        if let Some(cut) = tree_respecting_min_cut(graph, weights, &tree) {
            best = Some(best.map_or(cut, |b: u64| b.min(cut)));
        }
    }
    best
}

// ---------------------------------------------------------------------------
// Generalized Steiner forest.
// ---------------------------------------------------------------------------

/// A feasible generalized Steiner forest: connects every terminal group
/// by shortest paths to the group's first terminal. Not optimal, but
/// feasible and cheap to compute; the benchmark reports its weight
/// against the trivial per-group shortest-path lower bound.
///
/// Returns `(forest, weight)`.
///
/// # Panics
///
/// Panics if a group's terminals are not all connected in the graph.
pub fn steiner_forest(
    graph: &Graph,
    weights: &EdgeWeights,
    groups: &[Vec<NodeId>],
) -> (Subgraph, u64) {
    let mut forest = Subgraph::empty(graph);
    for group in groups {
        if group.len() < 2 {
            continue;
        }
        let hub = group[0];
        let parents = shortest_path_tree(graph, weights, hub);
        for &terminal in &group[1..] {
            let mut v = terminal;
            while v != hub {
                let e = parents[v.index()]
                    .unwrap_or_else(|| panic!("terminal {terminal} unreachable from {hub}"));
                forest.insert(e);
                v = graph.other_endpoint(e, v);
            }
        }
    }
    let weight = forest.edges().map(|e| weights.weight(e)).sum();
    (forest, weight)
}

/// Checks Steiner-forest feasibility: every group lies in one component
/// of the forest.
pub fn steiner_feasible(graph: &Graph, forest: &Subgraph, groups: &[Vec<NodeId>]) -> bool {
    let (labels, _) = crate::predicates::components(graph, forest);
    groups.iter().all(|g| {
        g.windows(2)
            .all(|w| labels[w[0].index()] == labels[w[1].index()])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, predicates, Graph};

    #[test]
    fn min_st_cut_on_path_and_cycle() {
        let p = Graph::path(5);
        let w = EdgeWeights::uniform(&p);
        let cut = min_st_cut(&p, &w, NodeId(0), NodeId(4));
        assert_eq!(cut.value, 1);
        assert_eq!(cut.cut_edges.len(), 1);
        let c = Graph::cycle(6);
        let w = EdgeWeights::uniform(&c);
        let cut = min_st_cut(&c, &w, NodeId(0), NodeId(3));
        assert_eq!(cut.value, 2);
        assert_eq!(cut.cut_edges.len(), 2);
    }

    #[test]
    fn min_st_cut_respects_weights() {
        // Two parallel 2-paths from s to t, one heavy, one light.
        let g = Graph::from_edges(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]);
        let mut w = EdgeWeights::uniform(&g);
        w.set(g.find_edge(NodeId(0), NodeId(1)).unwrap(), 10);
        w.set(g.find_edge(NodeId(1), NodeId(3)).unwrap(), 10);
        let cut = min_st_cut(&g, &w, NodeId(0), NodeId(3));
        assert_eq!(cut.value, 11); // 10-path cut at its cheapest (10) + 1
    }

    #[test]
    fn min_st_cut_separates_sides() {
        for seed in 0..5 {
            let g = generate::random_connected(14, 16, seed);
            let w = generate::random_weights(&g, 9, seed + 5);
            let cut = min_st_cut(&g, &w, NodeId(0), NodeId(13));
            // Removing the cut edges separates s from t.
            let mut remaining = g.full_subgraph();
            for e in &cut.cut_edges {
                remaining.remove(*e);
            }
            assert!(!predicates::st_connected(
                &g,
                &remaining,
                NodeId(0),
                NodeId(13)
            ));
            // And the cut value matches the crossing weight.
            let crossing: u64 = cut.cut_edges.iter().map(|&e| w.weight(e)).sum();
            assert_eq!(crossing, cut.value);
            assert!(cut.s_side.contains(&NodeId(0)));
            assert!(!cut.s_side.contains(&NodeId(13)));
        }
    }

    #[test]
    fn global_min_cut_bounds_st_cuts() {
        // Stoer–Wagner global cut = min over t of s-t cuts.
        let g = generate::random_connected(10, 12, 7);
        let w = generate::random_weights(&g, 7, 8);
        let global = crate::algorithms::stoer_wagner_min_cut(&g, &w).unwrap();
        let best_st = (1..10)
            .map(|t| min_st_cut(&g, &w, NodeId(0), NodeId(t)).value)
            .min()
            .unwrap();
        assert_eq!(global, best_st);
    }

    #[test]
    fn routing_cost_of_star_and_path() {
        // Star on 4 nodes: pairs through center: 3 at distance 1 + 3 at 2.
        let star = Graph::star(4);
        let w = EdgeWeights::uniform(&star);
        assert_eq!(routing_cost(&star, &w, &star.full_subgraph()), 3 + 3 * 2);
        // Path 0-1-2: distances 1,1,2.
        let path = Graph::path(3);
        let w = EdgeWeights::uniform(&path);
        assert_eq!(routing_cost(&path, &w, &path.full_subgraph()), 4);
    }

    #[test]
    fn best_spt_is_within_two_of_the_metric_lower_bound() {
        for seed in 0..5 {
            let g = generate::random_connected(12, 14, seed + 20);
            let w = generate::random_weights(&g, 9, seed + 30);
            let (tree, cost) = best_spt_routing_tree(&g, &w);
            assert!(predicates::is_spanning_tree(&g, &tree));
            let lb = routing_cost_lower_bound(&g, &w);
            assert!(cost >= lb, "tree cost below the metric bound");
            assert!(
                cost <= 2 * lb,
                "seed {seed}: best-SPT routing cost {cost} exceeds 2×{lb}"
            );
        }
    }

    #[test]
    fn shallow_light_tree_balances_radius_and_weight() {
        for seed in 0..6 {
            let g = generate::random_connected(20, 30, seed + 40);
            let w = generate::random_weights(&g, 20, seed + 50);
            let alpha = 2.0;
            let slt = shallow_light_tree(&g, &w, NodeId(0), alpha);
            assert!(predicates::is_spanning_tree(&g, &slt.tree), "seed {seed}");
            let d_spt = dijkstra(&g, &w, NodeId(0));
            for v in g.nodes() {
                assert!(
                    slt.root_distances[v.index()] as f64 <= alpha * d_spt[v.index()] as f64 + 1e-9,
                    "seed {seed}, node {v}: {} > α·{}",
                    slt.root_distances[v.index()],
                    d_spt[v.index()]
                );
            }
            let mst_w = kruskal_mst(&g, &w).total_weight;
            let light_bound = (1.0 + 2.0 / (alpha - 1.0)) * mst_w as f64;
            assert!(
                slt.weight as f64 <= light_bound + 1e-9,
                "seed {seed}: weight {} exceeds (1+2/(α−1))·MST = {light_bound}",
                slt.weight
            );
        }
    }

    #[test]
    fn shallow_light_extremes() {
        let g = generate::random_connected(15, 25, 3);
        let w = generate::random_weights(&g, 50, 4);
        // Huge α: the MST itself qualifies.
        let loose = shallow_light_tree(&g, &w, NodeId(0), 1e9);
        assert_eq!(loose.weight, kruskal_mst(&g, &w).total_weight);
        // α close to 1: weight may grow but distances hug the SPT.
        let tight = shallow_light_tree(&g, &w, NodeId(0), 1.01);
        let d_spt = dijkstra(&g, &w, NodeId(0));
        for v in g.nodes() {
            assert!(
                tight.root_distances[v.index()] as f64 <= 1.01 * d_spt[v.index()] as f64 + 1e-9
            );
        }
    }

    #[test]
    fn steiner_forest_is_feasible_and_reasonable() {
        let g = generate::random_connected(16, 20, 9);
        let w = generate::random_weights(&g, 9, 10);
        let groups = vec![
            vec![NodeId(0), NodeId(5), NodeId(11)],
            vec![NodeId(2), NodeId(14)],
        ];
        let (forest, weight) = steiner_forest(&g, &w, &groups);
        assert!(steiner_feasible(&g, &forest, &groups));
        // Never heavier than connecting everything (an MST).
        assert!(weight <= g.edges().map(|e| w.weight(e)).sum());
        // Untouched groups of size 1 are free.
        let (empty, zero) = steiner_forest(&g, &w, &[vec![NodeId(3)]]);
        assert_eq!(zero, 0);
        assert_eq!(empty.edge_count(), 0);
    }

    #[test]
    fn tree_respecting_cut_on_cycle() {
        // On a cycle, deleting one tree edge of a Hamiltonian-path tree
        // yields cuts of weight 2 (unit weights).
        let g = Graph::cycle(6);
        let w = EdgeWeights::uniform(&g);
        let mut tree = g.full_subgraph();
        tree.remove(crate::EdgeId(5));
        assert_eq!(tree_respecting_min_cut(&g, &w, &tree), Some(2));
    }

    #[test]
    fn tree_respecting_cut_rejects_non_trees() {
        let g = Graph::cycle(4);
        let w = EdgeWeights::uniform(&g);
        assert_eq!(tree_respecting_min_cut(&g, &w, &g.full_subgraph()), None);
    }

    #[test]
    fn sampled_min_cut_matches_stoer_wagner() {
        for seed in 0..6 {
            let g = generate::random_connected(12, 14, seed + 60);
            let w = generate::random_weights(&g, 8, seed + 70);
            let exact = crate::algorithms::stoer_wagner_min_cut(&g, &w).unwrap();
            let sampled = sampled_min_cut(&g, &w, 30, seed).unwrap();
            // Sampled cuts are real cuts, hence ≥ the minimum…
            assert!(sampled >= exact, "seed {seed}: {sampled} < {exact}");
            // …and with 30 samples on 12 nodes they find it.
            assert_eq!(sampled, exact, "seed {seed}");
        }
    }

    #[test]
    fn sampled_min_cut_finds_planted_bridge() {
        // Two dense blobs joined by one light edge: the cut is obvious
        // and every sampled tree 1-respects it.
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (0, 2),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 4),
                (5, 7),
                (3, 4),
            ],
        );
        let mut w = EdgeWeights::uniform(&g);
        for e in g.edges() {
            w.set(e, 10);
        }
        w.set(g.find_edge(NodeId(3), NodeId(4)).unwrap(), 1);
        assert_eq!(sampled_min_cut(&g, &w, 10, 1), Some(1));
    }

    #[test]
    #[should_panic(expected = "spanning tree")]
    fn routing_cost_rejects_non_trees() {
        let g = Graph::cycle(4);
        let w = EdgeWeights::uniform(&g);
        routing_cost(&g, &w, &g.full_subgraph());
    }
}
