//! Edge-subset indicators: the "subnetwork `M` of `N`" of Section 2.2.

use crate::{EdgeId, Graph, NodeId};

/// A subset of the edges of a host [`Graph`].
///
/// This is the paper's input object for every verification problem: the
/// network is `N`, each node knows which of its incident edges participate
/// in the subnetwork `M`, and the nodes must decide a property of `M`
/// (Appendix A.2). A `Subgraph` stores one indicator bit per host edge.
///
/// # Example
///
/// ```
/// use qdc_graph::{Graph, Subgraph, EdgeId};
///
/// let g = Graph::path(3);
/// let mut m = Subgraph::empty(&g);
/// m.insert(EdgeId(0));
/// assert!(m.contains(EdgeId(0)));
/// assert_eq!(m.edge_count(), 1);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Subgraph {
    host_nodes: usize,
    bits: Vec<bool>,
}

impl std::fmt::Debug for Subgraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subgraph")
            .field("host_nodes", &self.host_nodes)
            .field("edges", &self.edge_count())
            .finish()
    }
}

impl Subgraph {
    /// The empty subgraph of `host`.
    pub fn empty(host: &Graph) -> Self {
        Subgraph {
            host_nodes: host.node_count(),
            bits: vec![false; host.edge_count()],
        }
    }

    /// The subgraph containing every edge of `host`.
    pub fn full(host: &Graph) -> Self {
        Subgraph {
            host_nodes: host.node_count(),
            bits: vec![true; host.edge_count()],
        }
    }

    /// Builds a subgraph from an iterator of host edge ids.
    ///
    /// # Panics
    ///
    /// Panics if an edge id is out of range for `host`.
    pub fn from_edges<I: IntoIterator<Item = EdgeId>>(host: &Graph, edges: I) -> Self {
        let mut s = Subgraph::empty(host);
        for e in edges {
            s.insert(e);
        }
        s
    }

    /// Builds a subgraph from node-pair endpoints.
    ///
    /// # Panics
    ///
    /// Panics if a pair is not an edge of `host`.
    pub fn from_endpoint_pairs(host: &Graph, pairs: &[(NodeId, NodeId)]) -> Self {
        let mut s = Subgraph::empty(host);
        for &(u, v) in pairs {
            let e = host
                .find_edge(u, v)
                .unwrap_or_else(|| panic!("({u}, {v}) is not an edge of the host graph"));
            s.insert(e);
        }
        s
    }

    /// Number of nodes of the host graph (subgraphs always span all nodes).
    #[inline]
    pub fn host_node_count(&self) -> usize {
        self.host_nodes
    }

    /// Number of indicator slots, i.e. host edges.
    #[inline]
    pub fn host_edge_count(&self) -> usize {
        self.bits.len()
    }

    /// Whether edge `e` participates in the subgraph.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn contains(&self, e: EdgeId) -> bool {
        self.bits[e.index()]
    }

    /// Marks `e` as participating.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn insert(&mut self, e: EdgeId) {
        self.bits[e.index()] = true;
    }

    /// Marks `e` as not participating.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn remove(&mut self, e: EdgeId) {
        self.bits[e.index()] = false;
    }

    /// Number of participating edges.
    pub fn edge_count(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Iterates over participating edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.bits
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(i, _)| EdgeId::from(i))
    }

    /// Degree of `u` counting only participating edges.
    pub fn degree_in(&self, host: &Graph, u: NodeId) -> usize {
        host.incident(u)
            .iter()
            .filter(|&&(e, _)| self.contains(e))
            .count()
    }

    /// Neighbors of `u` through participating edges.
    pub fn neighbors_in<'a>(
        &'a self,
        host: &'a Graph,
        u: NodeId,
    ) -> impl Iterator<Item = NodeId> + 'a {
        host.incident(u)
            .iter()
            .filter(|&&(e, _)| self.contains(e))
            .map(|&(_, v)| v)
    }

    /// The complement subgraph (participating ↔ not participating).
    pub fn complement(&self) -> Subgraph {
        Subgraph {
            host_nodes: self.host_nodes,
            bits: self.bits.iter().map(|&b| !b).collect(),
        }
    }

    /// Per-node indicator strings as the paper distributes them: node `u`
    /// learns, for each incident edge, whether it is in `M`.
    ///
    /// Returns, for each node, its incident `(edge, in_m)` view.
    pub fn node_views(&self, host: &Graph) -> Vec<Vec<(EdgeId, bool)>> {
        host.nodes()
            .map(|u| {
                host.incident(u)
                    .iter()
                    .map(|&(e, _)| (e, self.contains(e)))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn empty_and_full() {
        let g = Graph::cycle(5);
        assert_eq!(Subgraph::empty(&g).edge_count(), 0);
        assert_eq!(Subgraph::full(&g).edge_count(), 5);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let g = Graph::path(4);
        let mut s = Subgraph::empty(&g);
        s.insert(EdgeId(1));
        assert!(s.contains(EdgeId(1)));
        s.remove(EdgeId(1));
        assert!(!s.contains(EdgeId(1)));
    }

    #[test]
    fn degree_in_counts_only_member_edges() {
        let g = Graph::cycle(4);
        let mut s = Subgraph::empty(&g);
        s.insert(EdgeId(0)); // v0-v1
        assert_eq!(s.degree_in(&g, NodeId(0)), 1);
        assert_eq!(s.degree_in(&g, NodeId(2)), 0);
    }

    #[test]
    fn from_endpoint_pairs_resolves_edges() {
        let g = Graph::cycle(4);
        let s =
            Subgraph::from_endpoint_pairs(&g, &[(NodeId(1), NodeId(0)), (NodeId(2), NodeId(3))]);
        assert_eq!(s.edge_count(), 2);
        assert!(s.contains(g.find_edge(NodeId(0), NodeId(1)).unwrap()));
    }

    #[test]
    #[should_panic(expected = "not an edge")]
    fn from_endpoint_pairs_rejects_non_edges() {
        let g = Graph::path(4);
        Subgraph::from_endpoint_pairs(&g, &[(NodeId(0), NodeId(3))]);
    }

    #[test]
    fn complement_flips_all() {
        let g = Graph::cycle(3);
        let mut s = Subgraph::empty(&g);
        s.insert(EdgeId(2));
        let c = s.complement();
        assert_eq!(c.edge_count(), 2);
        assert!(!c.contains(EdgeId(2)));
    }

    #[test]
    fn node_views_are_consistent() {
        let g = Graph::cycle(4);
        let mut s = Subgraph::empty(&g);
        s.insert(EdgeId(0));
        let views = s.node_views(&g);
        // The two endpoints of e0 see it as present; consistency of the
        // indicator variables x_{u,v} = x_{v,u} of Appendix A.2.
        let (u, v) = g.endpoints(EdgeId(0));
        assert!(views[u.index()].iter().any(|&(e, b)| e == EdgeId(0) && b));
        assert!(views[v.index()].iter().any(|&(e, b)| e == EdgeId(0) && b));
    }

    #[test]
    fn edges_iterator_matches_count() {
        let g = Graph::complete(5);
        let mut s = Subgraph::empty(&g);
        s.insert(EdgeId(0));
        s.insert(EdgeId(4));
        s.insert(EdgeId(7));
        let listed: Vec<_> = s.edges().collect();
        assert_eq!(listed, vec![EdgeId(0), EdgeId(4), EdgeId(7)]);
        assert_eq!(s.edge_count(), 3);
    }
}
