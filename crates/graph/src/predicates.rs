//! Sequential verification predicates: every problem of Appendix A.2.
//!
//! These are the ground-truth oracles. Distributed verification algorithms
//! (in `qdc-algos`) and the gadget reductions (in `qdc-gadgets`) are tested
//! against them. Each predicate takes the host graph `N` and the subnetwork
//! `M` as a [`Subgraph`], exactly mirroring the paper's problem statements.

use crate::{DisjointSets, EdgeId, Graph, NodeId, Subgraph};

/// Labels each node with the id of its connected component **in `sub`**,
/// counting isolated nodes as singleton components.
///
/// Returns `(labels, component_count)` with labels in `0..component_count`.
pub fn components(host: &Graph, sub: &Subgraph) -> (Vec<usize>, usize) {
    let n = host.node_count();
    let mut label = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut stack = Vec::new();
    for start in host.nodes() {
        if label[start.index()] != usize::MAX {
            continue;
        }
        label[start.index()] = next;
        stack.push(start);
        while let Some(u) = stack.pop() {
            for &(e, v) in host.incident(u) {
                if sub.contains(e) && label[v.index()] == usize::MAX {
                    label[v.index()] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    (label, next)
}

/// Number of connected components of `sub` over **all** host nodes
/// (isolated nodes are singleton components).
pub fn component_count(host: &Graph, sub: &Subgraph) -> usize {
    components(host, sub).1
}

/// **Connected spanning subgraph verification** (Appendix A.2): `M` is
/// connected and every node of `N` is incident to an edge of `M`.
pub fn is_spanning_connected_subgraph(host: &Graph, sub: &Subgraph) -> bool {
    if host.node_count() <= 1 {
        return true;
    }
    component_count(host, sub) == 1
}

/// **Connectivity verification**: whether `M` is connected.
///
/// Isolated nodes (incident to no `M`-edge) are ignored, i.e. this asks
/// whether all `M`-edges lie in one component; an edgeless `M` counts as
/// connected. Use [`is_spanning_connected_subgraph`] for the spanning
/// variant.
pub fn is_connected(host: &Graph, sub: &Subgraph) -> bool {
    let (labels, _) = components(host, sub);
    let mut touched = None;
    for e in sub.edges() {
        let (u, _) = host.endpoints(e);
        match touched {
            None => touched = Some(labels[u.index()]),
            Some(c) if c != labels[u.index()] => return false,
            _ => {}
        }
    }
    true
}

/// Minimum number of edges (from anywhere) whose addition makes `M` a
/// connected spanning subgraph: `component_count - 1`.
///
/// `M` is **δ-far from connected** in the paper's sense (Section 2.2) iff
/// this value is at least δ.
pub fn distance_from_spanning_connected(host: &Graph, sub: &Subgraph) -> usize {
    component_count(host, sub).saturating_sub(1)
}

/// **Cycle containment verification**: whether `M` contains a cycle.
pub fn contains_cycle(host: &Graph, sub: &Subgraph) -> bool {
    let mut dsu = DisjointSets::new(host.node_count());
    for e in sub.edges() {
        let (u, v) = host.endpoints(e);
        if !dsu.union(u.index(), v.index()) {
            return true;
        }
    }
    false
}

/// **e-cycle containment verification**: whether `M` contains a cycle
/// through the edge `e`.
///
/// This holds iff `e ∈ M` and the endpoints of `e` remain connected in
/// `M − e`.
pub fn contains_cycle_through(host: &Graph, sub: &Subgraph, e: EdgeId) -> bool {
    if !sub.contains(e) {
        return false;
    }
    let (u, v) = host.endpoints(e);
    let mut without = sub.clone();
    without.remove(e);
    st_connected(host, &without, u, v)
}

/// **s-t connectivity verification**: whether `s` and `t` lie in the same
/// component of `M`.
pub fn st_connected(host: &Graph, sub: &Subgraph, s: NodeId, t: NodeId) -> bool {
    let (labels, _) = components(host, sub);
    labels[s.index()] == labels[t.index()]
}

/// **Bipartiteness verification**: whether `M` is bipartite.
pub fn is_bipartite(host: &Graph, sub: &Subgraph) -> bool {
    let n = host.node_count();
    let mut color = vec![u8::MAX; n];
    let mut stack = Vec::new();
    for start in host.nodes() {
        if color[start.index()] != u8::MAX {
            continue;
        }
        color[start.index()] = 0;
        stack.push(start);
        while let Some(u) = stack.pop() {
            for &(e, v) in host.incident(u) {
                if !sub.contains(e) {
                    continue;
                }
                if color[v.index()] == u8::MAX {
                    color[v.index()] = 1 - color[u.index()];
                    stack.push(v);
                } else if color[v.index()] == color[u.index()] {
                    return false;
                }
            }
        }
    }
    true
}

/// **Cut verification**: whether removing the edges of `M` disconnects `N`.
///
/// Edge case: if `N` is already disconnected, every `M` is a cut.
pub fn is_cut(host: &Graph, sub: &Subgraph) -> bool {
    component_count(host, &sub.complement()) > 1
}

/// **s-t cut verification**: whether removing the edges of `M` from `N`
/// separates `s` from `t`.
pub fn is_st_cut(host: &Graph, sub: &Subgraph, s: NodeId, t: NodeId) -> bool {
    !st_connected(host, &sub.complement(), s, t)
}

/// **Edge on all paths verification**: whether `e` lies on every `u`–`v`
/// path in `M` (i.e. `e` is a `u`-`v` cut in `M`).
///
/// If `u` and `v` are disconnected in `M` the answer is vacuously `true`
/// (there are no paths), matching the cut formulation of Appendix A.2.
pub fn edge_on_all_paths(host: &Graph, sub: &Subgraph, u: NodeId, v: NodeId, e: EdgeId) -> bool {
    let mut without = sub.clone();
    without.remove(e);
    !st_connected(host, &without, u, v)
}

/// **Hamiltonian cycle verification**: whether `M` is a simple cycle of
/// length `n` (Appendix A.2). Requires `n >= 3`.
pub fn is_hamiltonian_cycle(host: &Graph, sub: &Subgraph) -> bool {
    let n = host.node_count();
    if n < 3 || sub.edge_count() != n {
        return false;
    }
    if host.nodes().any(|u| sub.degree_in(host, u) != 2) {
        return false;
    }
    component_count(host, sub) == 1
}

/// **Spanning tree verification**: whether `M` is a tree spanning `N`.
pub fn is_spanning_tree(host: &Graph, sub: &Subgraph) -> bool {
    let n = host.node_count();
    if n == 0 {
        return true;
    }
    sub.edge_count() == n - 1 && component_count(host, sub) == 1
}

/// **Simple path verification**: all nodes have degree 0 or 2 in `M`
/// except exactly two nodes of degree 1, and `M` is acyclic (Appendix A.2).
pub fn is_simple_path(host: &Graph, sub: &Subgraph) -> bool {
    let mut deg1 = 0usize;
    for u in host.nodes() {
        match sub.degree_in(host, u) {
            0 | 2 => {}
            1 => deg1 += 1,
            _ => return false,
        }
    }
    if deg1 != 2 {
        return false;
    }
    if contains_cycle(host, sub) {
        return false;
    }
    // Degree conditions + acyclicity still allow a path plus separate
    // degree-2 cycles; acyclicity already excludes those, but a path plus a
    // second path would need four degree-1 nodes, so one path remains.
    true
}

/// Decomposes a subgraph in which every node has degree 0 or 2 into its
/// cycles, returning the number of cycles.
///
/// This is the quantity behind Observation 8.1 ("the number of cycles in
/// `G` equals the number of cycles in `M`") and the δ-far analysis of the
/// Gap-Eq → Ham reduction.
///
/// # Errors
///
/// Returns `Err(node)` naming an offending node if some node has degree
/// other than 0 or 2.
pub fn cycle_count_two_regular(host: &Graph, sub: &Subgraph) -> Result<usize, NodeId> {
    for u in host.nodes() {
        let d = sub.degree_in(host, u);
        if d != 0 && d != 2 {
            return Err(u);
        }
    }
    let (labels, count) = components(host, sub);
    // Each component containing an edge is a cycle; isolated nodes are not.
    let mut has_edge = vec![false; count];
    for e in sub.edges() {
        let (u, _) = host.endpoints(e);
        has_edge[labels[u.index()]] = true;
    }
    Ok(has_edge.iter().filter(|&&b| b).count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn cyc(n: usize) -> (Graph, Subgraph) {
        let g = Graph::cycle(n);
        let s = g.full_subgraph();
        (g, s)
    }

    #[test]
    fn hamiltonian_cycle_positive_and_negative() {
        let (g, s) = cyc(6);
        assert!(is_hamiltonian_cycle(&g, &s));
        let mut broken = s.clone();
        broken.remove(EdgeId(0));
        assert!(!is_hamiltonian_cycle(&g, &broken));
    }

    #[test]
    fn two_disjoint_triangles_are_not_hamiltonian() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let s = g.full_subgraph();
        assert!(!is_hamiltonian_cycle(&g, &s));
        assert_eq!(cycle_count_two_regular(&g, &s), Ok(2));
    }

    #[test]
    fn spanning_tree_checks() {
        let g = Graph::complete(5);
        let star = Subgraph::from_endpoint_pairs(
            &g,
            &[
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(2)),
                (NodeId(0), NodeId(3)),
                (NodeId(0), NodeId(4)),
            ],
        );
        assert!(is_spanning_tree(&g, &star));
        assert!(!is_spanning_tree(&g, &g.full_subgraph()));
        assert!(!is_spanning_tree(&g, &g.empty_subgraph()));
    }

    #[test]
    fn component_counting_with_isolated_nodes() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let mut s = g.full_subgraph();
        assert_eq!(component_count(&g, &s), 2);
        s.remove(g.find_edge(NodeId(3), NodeId(4)).unwrap());
        assert_eq!(component_count(&g, &s), 3);
        assert_eq!(distance_from_spanning_connected(&g, &s), 2);
    }

    #[test]
    fn connectivity_ignores_isolated_nodes() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let mut s = g.full_subgraph();
        s.remove(g.find_edge(NodeId(2), NodeId(3)).unwrap());
        // Only edge (0,1) participates; node 2 and 3 are isolated.
        assert!(is_connected(&g, &s));
        assert!(!is_spanning_connected_subgraph(&g, &s));
    }

    #[test]
    fn disconnected_edges_fail_connectivity() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let s = g.full_subgraph();
        assert!(!is_connected(&g, &s));
    }

    #[test]
    fn cycle_detection() {
        let g = Graph::cycle(4);
        assert!(contains_cycle(&g, &g.full_subgraph()));
        let mut s = g.full_subgraph();
        s.remove(EdgeId(2));
        assert!(!contains_cycle(&g, &s));
    }

    #[test]
    fn e_cycle_containment() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let s = g.full_subgraph();
        let in_cycle = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let pendant = g.find_edge(NodeId(2), NodeId(3)).unwrap();
        assert!(contains_cycle_through(&g, &s, in_cycle));
        assert!(!contains_cycle_through(&g, &s, pendant));
        let mut without = s.clone();
        without.remove(in_cycle);
        assert!(!contains_cycle_through(&g, &without, in_cycle));
    }

    #[test]
    fn bipartiteness() {
        let even = Graph::cycle(4);
        assert!(is_bipartite(&even, &even.full_subgraph()));
        let odd = Graph::cycle(5);
        assert!(!is_bipartite(&odd, &odd.full_subgraph()));
        // Removing one edge of an odd cycle makes it an (even) path.
        let mut s = odd.full_subgraph();
        s.remove(EdgeId(0));
        assert!(is_bipartite(&odd, &s));
    }

    #[test]
    fn st_connectivity() {
        let g = Graph::path(4);
        let s = g.full_subgraph();
        assert!(st_connected(&g, &s, NodeId(0), NodeId(3)));
        let mut cut = s.clone();
        cut.remove(EdgeId(1));
        assert!(!st_connected(&g, &cut, NodeId(0), NodeId(3)));
        assert!(st_connected(&g, &cut, NodeId(2), NodeId(3)));
    }

    #[test]
    fn cut_verification() {
        let g = Graph::cycle(4);
        // Two opposite edges form a cut of the 4-cycle.
        let m =
            Subgraph::from_endpoint_pairs(&g, &[(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))]);
        assert!(is_cut(&g, &m));
        // A single edge of a cycle is not a cut.
        let single = Subgraph::from_endpoint_pairs(&g, &[(NodeId(0), NodeId(1))]);
        assert!(!is_cut(&g, &single));
    }

    #[test]
    fn st_cut_verification() {
        let g = Graph::path(3);
        let m = Subgraph::from_endpoint_pairs(&g, &[(NodeId(1), NodeId(2))]);
        assert!(is_st_cut(&g, &m, NodeId(0), NodeId(2)));
        assert!(!is_st_cut(&g, &m, NodeId(0), NodeId(1)));
    }

    #[test]
    fn edge_on_all_paths_bridge_vs_cycle_edge() {
        // Triangle 0-1-2 plus pendant edge 2-3.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let s = g.full_subgraph();
        let bridge = g.find_edge(NodeId(2), NodeId(3)).unwrap();
        let side = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        assert!(edge_on_all_paths(&g, &s, NodeId(0), NodeId(3), bridge));
        assert!(!edge_on_all_paths(&g, &s, NodeId(0), NodeId(2), side));
    }

    #[test]
    fn edge_on_all_paths_vacuous_when_disconnected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let s = g.full_subgraph();
        let e = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        assert!(edge_on_all_paths(&g, &s, NodeId(0), NodeId(3), e));
    }

    #[test]
    fn simple_path_verification() {
        let g = Graph::path(5);
        assert!(is_simple_path(&g, &g.full_subgraph()));
        // A cycle is not a simple path (no degree-1 nodes).
        let c = Graph::cycle(4);
        assert!(!is_simple_path(&c, &c.full_subgraph()));
        // Two disjoint edges have four degree-1 nodes.
        let g2 = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!is_simple_path(&g2, &g2.full_subgraph()));
    }

    #[test]
    fn cycle_count_rejects_bad_degrees() {
        let g = Graph::star(4);
        let s = g.full_subgraph();
        assert_eq!(cycle_count_two_regular(&g, &s), Err(NodeId(0)));
    }

    #[test]
    fn cycle_count_ignores_isolated_nodes() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0)]);
        let s = g.full_subgraph();
        assert_eq!(cycle_count_two_regular(&g, &s), Ok(1));
    }

    #[test]
    fn spanning_connected_trivial_hosts() {
        let g = Graph::empty(1);
        assert!(is_spanning_connected_subgraph(&g, &g.empty_subgraph()));
        assert!(is_spanning_tree(
            &Graph::empty(0),
            &Graph::empty(0).empty_subgraph()
        ));
    }
}
