//! Sequential reference algorithms.
//!
//! These are the centralized oracles the distributed implementations in
//! `qdc-algos` are validated against: BFS layers and trees, Dijkstra
//! shortest paths, Kruskal/Prim minimum spanning trees, Stoer–Wagner global
//! minimum cut, and exact diameter.

use crate::{DisjointSets, EdgeId, EdgeWeights, Graph, NodeId, Subgraph};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Distance value for unreachable nodes.
pub const UNREACHABLE: u64 = u64::MAX;

/// Breadth-first search distances (hop counts) from `source`, restricted to
/// the edges of `sub`. Unreachable nodes get [`UNREACHABLE`].
pub fn bfs_distances(host: &Graph, sub: &Subgraph, source: NodeId) -> Vec<u64> {
    let mut dist = vec![UNREACHABLE; host.node_count()];
    let mut queue = std::collections::VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &(e, v) in host.incident(u) {
            if sub.contains(e) && dist[v.index()] == UNREACHABLE {
                dist[v.index()] = dist[u.index()] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// A BFS tree: for each node, the parent edge toward the root (None for the
/// root and unreachable nodes), plus hop distances.
#[derive(Clone, Debug)]
pub struct BfsTree {
    /// Root of the tree.
    pub root: NodeId,
    /// Parent edge of each node (`None` for root/unreachable).
    pub parent_edge: Vec<Option<EdgeId>>,
    /// Parent node of each node (`None` for root/unreachable).
    pub parent: Vec<Option<NodeId>>,
    /// Hop distance from the root ([`UNREACHABLE`] if unreachable).
    pub depth: Vec<u64>,
}

impl BfsTree {
    /// Height of the tree: maximum finite depth.
    pub fn height(&self) -> u64 {
        self.depth
            .iter()
            .copied()
            .filter(|&d| d != UNREACHABLE)
            .max()
            .unwrap_or(0)
    }

    /// The tree as a [`Subgraph`] of the host.
    pub fn as_subgraph(&self, host: &Graph) -> Subgraph {
        Subgraph::from_edges(host, self.parent_edge.iter().flatten().copied())
    }
}

/// Builds a BFS tree from `root` over the whole host graph.
pub fn bfs_tree(host: &Graph, root: NodeId) -> BfsTree {
    let n = host.node_count();
    let mut depth = vec![UNREACHABLE; n];
    let mut parent_edge = vec![None; n];
    let mut parent = vec![None; n];
    let mut queue = std::collections::VecDeque::new();
    depth[root.index()] = 0;
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        for &(e, v) in host.incident(u) {
            if depth[v.index()] == UNREACHABLE {
                depth[v.index()] = depth[u.index()] + 1;
                parent_edge[v.index()] = Some(e);
                parent[v.index()] = Some(u);
                queue.push_back(v);
            }
        }
    }
    BfsTree {
        root,
        parent_edge,
        parent,
        depth,
    }
}

/// Dijkstra single-source shortest path distances under `weights`.
/// Unreachable nodes get [`UNREACHABLE`].
pub fn dijkstra(host: &Graph, weights: &EdgeWeights, source: NodeId) -> Vec<u64> {
    let mut dist = vec![UNREACHABLE; host.node_count()];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0;
    heap.push(Reverse((0u64, source.0)));
    while let Some(Reverse((d, u))) = heap.pop() {
        let u = NodeId(u);
        if d > dist[u.index()] {
            continue;
        }
        for &(e, v) in host.incident(u) {
            let nd = d + weights.weight(e);
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                heap.push(Reverse((nd, v.0)));
            }
        }
    }
    dist
}

/// A shortest path tree rooted at `source`: parent edges realizing the
/// Dijkstra distances. Deterministic tie-break: the lowest-id edge wins.
pub fn shortest_path_tree(
    host: &Graph,
    weights: &EdgeWeights,
    source: NodeId,
) -> Vec<Option<EdgeId>> {
    let dist = dijkstra(host, weights, source);
    let mut parent = vec![None; host.node_count()];
    for v in host.nodes() {
        if v == source || dist[v.index()] == UNREACHABLE {
            continue;
        }
        parent[v.index()] = host
            .incident(v)
            .iter()
            .filter(|&&(e, u)| {
                dist[u.index()] != UNREACHABLE
                    && dist[u.index()] + weights.weight(e) == dist[v.index()]
            })
            .map(|&(e, _)| e)
            .min();
    }
    parent
}

/// Result of an MST computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MstResult {
    /// Edges of the forest, in no particular order.
    pub edges: Vec<EdgeId>,
    /// Total weight of the forest.
    pub total_weight: u64,
}

/// Kruskal's minimum spanning forest. Ties broken by edge id, so the result
/// is deterministic.
pub fn kruskal_mst(host: &Graph, weights: &EdgeWeights) -> MstResult {
    let mut order: Vec<EdgeId> = host.edges().collect();
    order.sort_by_key(|&e| (weights.weight(e), e));
    let mut dsu = DisjointSets::new(host.node_count());
    let mut edges = Vec::new();
    let mut total_weight = 0;
    for e in order {
        let (u, v) = host.endpoints(e);
        if dsu.union(u.index(), v.index()) {
            total_weight += weights.weight(e);
            edges.push(e);
        }
    }
    MstResult {
        edges,
        total_weight,
    }
}

/// Prim's minimum spanning tree from an arbitrary root, for cross-checking
/// Kruskal. Only the component of node 0 is spanned; on connected graphs
/// the weight equals Kruskal's.
pub fn prim_mst(host: &Graph, weights: &EdgeWeights) -> MstResult {
    let n = host.node_count();
    if n == 0 {
        return MstResult {
            edges: Vec::new(),
            total_weight: 0,
        };
    }
    let mut in_tree = vec![false; n];
    let mut edges = Vec::new();
    let mut total_weight = 0;
    let mut heap: BinaryHeap<Reverse<(u64, u32, u32)>> = BinaryHeap::new();
    in_tree[0] = true;
    for &(e, v) in host.incident(NodeId(0)) {
        heap.push(Reverse((weights.weight(e), e.0, v.0)));
    }
    while let Some(Reverse((w, e, v))) = heap.pop() {
        let v = NodeId(v);
        if in_tree[v.index()] {
            continue;
        }
        in_tree[v.index()] = true;
        edges.push(EdgeId(e));
        total_weight += w;
        for &(e2, u) in host.incident(v) {
            if !in_tree[u.index()] {
                heap.push(Reverse((weights.weight(e2), e2.0, u.0)));
            }
        }
    }
    MstResult {
        edges,
        total_weight,
    }
}

/// Stoer–Wagner global minimum cut weight. Returns `None` if the graph is
/// disconnected (cut weight 0 with an empty cut is reported as `Some(0)`
/// only when `n >= 2`; single-node graphs have no cut).
pub fn stoer_wagner_min_cut(host: &Graph, weights: &EdgeWeights) -> Option<u64> {
    let n = host.node_count();
    if n < 2 {
        return None;
    }
    // Dense adjacency of merged supernodes.
    let mut w = vec![vec![0u64; n]; n];
    for e in host.edges() {
        let (u, v) = host.endpoints(e);
        w[u.index()][v.index()] += weights.weight(e);
        w[v.index()][u.index()] += weights.weight(e);
    }
    let mut active: Vec<usize> = (0..n).collect();
    let mut best = u64::MAX;
    while active.len() > 1 {
        // Maximum adjacency (minimum cut phase).
        let mut in_a = vec![false; n];
        let mut weights_to_a = vec![0u64; n];
        let mut prev = usize::MAX;
        let mut last = usize::MAX;
        for _ in 0..active.len() {
            let mut sel = usize::MAX;
            for &v in &active {
                if !in_a[v] && (sel == usize::MAX || weights_to_a[v] > weights_to_a[sel]) {
                    sel = v;
                }
            }
            in_a[sel] = true;
            prev = last;
            last = sel;
            for &v in &active {
                if !in_a[v] {
                    weights_to_a[v] += w[sel][v];
                }
            }
        }
        best = best.min(weights_to_a[last]);
        // Merge `last` into `prev`.
        for &v in &active {
            if v != last && v != prev {
                w[prev][v] += w[last][v];
                w[v][prev] = w[prev][v];
            }
        }
        active.retain(|&v| v != last);
    }
    Some(best)
}

/// Exact diameter (maximum finite pairwise hop distance) via `n` BFS runs.
///
/// Returns `None` if the graph is disconnected or empty.
pub fn diameter(host: &Graph) -> Option<u64> {
    if host.node_count() == 0 {
        return None;
    }
    let full = host.full_subgraph();
    let mut best = 0;
    for s in host.nodes() {
        let d = bfs_distances(host, &full, s);
        let ecc = d.iter().copied().max().unwrap();
        if ecc == UNREACHABLE {
            return None;
        }
        best = best.max(ecc);
    }
    Some(best)
}

/// Two-sweep diameter lower bound (exact on trees), cheap for large graphs:
/// BFS from `start`, then BFS from the farthest node found.
pub fn double_sweep_diameter_lower_bound(host: &Graph, start: NodeId) -> u64 {
    let full = host.full_subgraph();
    let d1 = bfs_distances(host, &full, start);
    let far = d1
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != UNREACHABLE)
        .max_by_key(|&(_, &d)| d)
        .map(|(i, _)| NodeId::from(i))
        .unwrap_or(start);
    let d2 = bfs_distances(host, &full, far);
    d2.iter()
        .copied()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn bfs_distances_on_path() {
        let g = Graph::path(5);
        let d = bfs_distances(&g, &g.full_subgraph(), NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let d = bfs_distances(&g, &g.full_subgraph(), NodeId(0));
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    fn bfs_tree_is_spanning_tree() {
        let g = Graph::complete(6);
        let t = bfs_tree(&g, NodeId(2));
        let sub = t.as_subgraph(&g);
        assert!(crate::predicates::is_spanning_tree(&g, &sub));
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn dijkstra_respects_weights() {
        // Path 0-1-2 with heavy middle edge plus shortcut 0-2.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let mut w = EdgeWeights::uniform(&g);
        w.set(g.find_edge(NodeId(1), NodeId(2)).unwrap(), 10);
        w.set(g.find_edge(NodeId(0), NodeId(2)).unwrap(), 3);
        let d = dijkstra(&g, &w, NodeId(0));
        assert_eq!(d, vec![0, 1, 3]);
    }

    #[test]
    fn shortest_path_tree_realizes_distances() {
        let g = Graph::complete(5);
        let mut w = EdgeWeights::uniform(&g);
        w.set(EdgeId(0), 7);
        let dist = dijkstra(&g, &w, NodeId(0));
        let spt = shortest_path_tree(&g, &w, NodeId(0));
        for v in g.nodes() {
            if v == NodeId(0) {
                assert!(spt[v.index()].is_none());
                continue;
            }
            let e = spt[v.index()].unwrap();
            let u = g.other_endpoint(e, v);
            assert_eq!(dist[u.index()] + w.weight(e), dist[v.index()]);
        }
    }

    #[test]
    fn kruskal_equals_prim_on_connected_graphs() {
        let g = Graph::complete(7);
        let mut w = EdgeWeights::uniform(&g);
        for (i, e) in g.edges().enumerate() {
            w.set(e, ((i * 37) % 11 + 1) as u64);
        }
        let k = kruskal_mst(&g, &w);
        let p = prim_mst(&g, &w);
        assert_eq!(k.total_weight, p.total_weight);
        assert_eq!(k.edges.len(), 6);
    }

    #[test]
    fn kruskal_mst_is_spanning_tree() {
        let g = Graph::complete(6);
        let w = EdgeWeights::uniform(&g);
        let k = kruskal_mst(&g, &w);
        let sub = Subgraph::from_edges(&g, k.edges.iter().copied());
        assert!(crate::predicates::is_spanning_tree(&g, &sub));
        assert_eq!(k.total_weight, 5);
    }

    #[test]
    fn stoer_wagner_on_known_graphs() {
        // Cycle of 4 with unit weights: min cut 2.
        let c = Graph::cycle(4);
        assert_eq!(stoer_wagner_min_cut(&c, &EdgeWeights::uniform(&c)), Some(2));
        // Path: min cut 1.
        let p = Graph::path(5);
        assert_eq!(stoer_wagner_min_cut(&p, &EdgeWeights::uniform(&p)), Some(1));
        // Complete graph K5: min cut 4.
        let k = Graph::complete(5);
        assert_eq!(stoer_wagner_min_cut(&k, &EdgeWeights::uniform(&k)), Some(4));
        // Disconnected: cut weight 0.
        let d = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(stoer_wagner_min_cut(&d, &EdgeWeights::uniform(&d)), Some(0));
        // Single node has no cut.
        assert_eq!(
            stoer_wagner_min_cut(&Graph::empty(1), &EdgeWeights::uniform(&Graph::empty(1))),
            None
        );
    }

    #[test]
    fn stoer_wagner_weighted() {
        // Two triangles joined by a light bridge.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
        let mut w = EdgeWeights::uniform(&g);
        for e in g.edges() {
            w.set(e, 5);
        }
        w.set(g.find_edge(NodeId(2), NodeId(3)).unwrap(), 1);
        assert_eq!(stoer_wagner_min_cut(&g, &w), Some(1));
    }

    #[test]
    fn diameter_of_standard_graphs() {
        assert_eq!(diameter(&Graph::path(6)), Some(5));
        assert_eq!(diameter(&Graph::cycle(6)), Some(3));
        assert_eq!(diameter(&Graph::complete(6)), Some(1));
        assert_eq!(diameter(&Graph::from_edges(3, &[(0, 1)])), None);
    }

    #[test]
    fn double_sweep_is_exact_on_paths() {
        let g = Graph::path(9);
        assert_eq!(double_sweep_diameter_lower_bound(&g, NodeId(4)), 8);
    }
}
