//! Least-element lists (Cohen) and their verification, per Appendix A.2.
//!
//! Given distinct integer ranks `r(v)` on the nodes of a weighted graph,
//! node `v` is a **least element** of `u` if `v` has the lowest rank among
//! all nodes within weighted distance `d(u, v)` of `u`. The LE-list of `u`
//! is `{(v, d(u, v)) : v is a least element of u}`. The paper's
//! least-element-list *verification* problem hands a node `u` a candidate
//! set `S` and asks whether `S` is exactly `u`'s LE-list.

use crate::{algorithms, EdgeWeights, Graph, NodeId};

/// One entry of a least-element list: a node and its weighted distance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LeEntry {
    /// Weighted distance from the querying node.
    pub distance: u64,
    /// The least element at this distance scale.
    pub node: NodeId,
}

/// Computes the least-element list of `u` under `ranks`.
///
/// The list is returned sorted by increasing distance; ranks along it are
/// strictly decreasing (the defining property).
///
/// # Panics
///
/// Panics if `ranks.len() != host.node_count()` or ranks are not distinct.
pub fn le_list(host: &Graph, weights: &EdgeWeights, ranks: &[u64], u: NodeId) -> Vec<LeEntry> {
    assert_eq!(ranks.len(), host.node_count(), "one rank per node required");
    {
        let mut sorted: Vec<u64> = ranks.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ranks.len(), "ranks must be distinct");
    }
    let dist = algorithms::dijkstra(host, weights, u);
    // Order reachable nodes by distance, tie-break by rank so that at equal
    // distance only the lowest rank can qualify.
    let mut order: Vec<NodeId> = host
        .nodes()
        .filter(|v| dist[v.index()] != algorithms::UNREACHABLE)
        .collect();
    order.sort_by_key(|v| (dist[v.index()], ranks[v.index()]));
    let mut out = Vec::new();
    let mut best_rank = u64::MAX;
    for v in order {
        if ranks[v.index()] < best_rank {
            best_rank = ranks[v.index()];
            out.push(LeEntry {
                distance: dist[v.index()],
                node: v,
            });
        }
    }
    out
}

/// **Least-element list verification**: is `candidate` exactly the LE-list
/// of `u`? Order-insensitive.
pub fn verify_le_list(
    host: &Graph,
    weights: &EdgeWeights,
    ranks: &[u64],
    u: NodeId,
    candidate: &[LeEntry],
) -> bool {
    let mut truth = le_list(host, weights, ranks, u);
    let mut cand = candidate.to_vec();
    truth.sort();
    cand.sort();
    truth == cand
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeWeights, Graph};

    #[test]
    fn le_list_on_path() {
        // Path 0-1-2-3 with unit weights; ranks decreasing along the path.
        let g = Graph::path(4);
        let w = EdgeWeights::uniform(&g);
        let ranks = vec![30, 20, 10, 0];
        let l = le_list(&g, &w, &ranks, NodeId(0));
        // From node 0: itself (rank 30, d 0), then node 1 (rank 20, d 1),
        // node 2 (rank 10, d 2), node 3 (rank 0, d 3).
        assert_eq!(l.len(), 4);
        assert_eq!(
            l[0],
            LeEntry {
                distance: 0,
                node: NodeId(0)
            }
        );
        assert_eq!(
            l[3],
            LeEntry {
                distance: 3,
                node: NodeId(3)
            }
        );
    }

    #[test]
    fn le_list_stops_at_global_minimum() {
        let g = Graph::path(4);
        let w = EdgeWeights::uniform(&g);
        // Node 1 has globally lowest rank; beyond it nothing qualifies.
        let ranks = vec![5, 0, 7, 9];
        let l = le_list(&g, &w, &ranks, NodeId(0));
        assert_eq!(l.len(), 2);
        assert_eq!(l[1].node, NodeId(1));
    }

    #[test]
    fn ranks_strictly_decrease_along_list() {
        let g = crate::generate::random_connected(20, 15, 11);
        let w = crate::generate::random_weights(&g, 9, 12);
        let ranks: Vec<u64> = (0..20).map(|i| (i * 7919 + 13) % 10007).collect();
        for u in g.nodes() {
            let l = le_list(&g, &w, &ranks, u);
            for pair in l.windows(2) {
                assert!(pair[0].distance <= pair[1].distance);
                assert!(ranks[pair[0].node.index()] > ranks[pair[1].node.index()]);
            }
            // First entry is u itself at distance zero... unless a
            // lower-ranked node is also at distance zero (impossible:
            // positive weights), so it is u.
            assert_eq!(l[0].node, u);
            assert_eq!(l[0].distance, 0);
        }
    }

    #[test]
    fn verification_accepts_truth_and_rejects_corruption() {
        let g = Graph::cycle(5);
        let w = EdgeWeights::uniform(&g);
        let ranks = vec![4, 3, 2, 1, 0];
        let truth = le_list(&g, &w, &ranks, NodeId(0));
        assert!(verify_le_list(&g, &w, &ranks, NodeId(0), &truth));
        let mut bad = truth.clone();
        bad.pop();
        assert!(!verify_le_list(&g, &w, &ranks, NodeId(0), &bad));
        let mut tampered = truth.clone();
        tampered[0].distance += 1;
        assert!(!verify_le_list(&g, &w, &ranks, NodeId(0), &tampered));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_ranks_rejected() {
        let g = Graph::path(3);
        let w = EdgeWeights::uniform(&g);
        le_list(&g, &w, &[1, 1, 2], NodeId(0));
    }
}
