//! Deterministic random graph and workload generators.
//!
//! All generators take an explicit `u64` seed and use `ChaCha8Rng`, so
//! every experiment in the benchmark harnesses is reproducible bit-for-bit
//! across platforms (design decision D4 in DESIGN.md).

use crate::{EdgeWeights, Graph, GraphBuilder, NodeId};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// The deterministic RNG used throughout the workspace.
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Erdős–Rényi G(n, p). Not guaranteed connected.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    let mut r = rng(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if r.gen_bool(p) {
                b.add_edge(NodeId::from(u), NodeId::from(v));
            }
        }
    }
    b.build()
}

/// A uniformly random labelled tree on `n` nodes via a random Prüfer-like
/// attachment: node `i` attaches to a uniform earlier node. (Not the
/// uniform distribution over trees, but deterministic, connected, and with
/// the degree spread the experiments need.)
pub fn random_tree(n: usize, seed: u64) -> Graph {
    let mut r = rng(seed);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let j = r.gen_range(0..i);
        b.add_edge(NodeId::from(j), NodeId::from(i));
    }
    b.build()
}

/// A connected graph: random tree plus `extra` random non-tree edges.
pub fn random_connected(n: usize, extra: usize, seed: u64) -> Graph {
    let mut r = rng(seed);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let j = r.gen_range(0..i);
        b.add_edge(NodeId::from(j), NodeId::from(i));
    }
    let max_edges = n * (n - 1) / 2;
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < extra && b.edge_count() < max_edges && attempts < 100 * (extra + 1) {
        attempts += 1;
        let u = r.gen_range(0..n);
        let v = r.gen_range(0..n);
        if u == v {
            continue;
        }
        let before = b.edge_count();
        b.add_edge_if_absent(NodeId::from(u), NodeId::from(v));
        if b.edge_count() > before {
            added += 1;
        }
    }
    b.build()
}

/// Random positive edge weights in `[1, max_weight]`, giving aspect ratio
/// at most `max_weight`.
pub fn random_weights(host: &Graph, max_weight: u64, seed: u64) -> EdgeWeights {
    assert!(max_weight >= 1, "max_weight must be at least 1");
    let mut r = rng(seed);
    let w = (0..host.edge_count())
        .map(|_| r.gen_range(1..=max_weight))
        .collect();
    EdgeWeights::from_vec(host, w)
}

/// Weights achieving aspect ratio **exactly** `w_max` (some edge weight 1
/// and some edge `w_max`), the regime Theorem 3.8 sweeps over.
///
/// # Panics
///
/// Panics if the host has fewer than 2 edges and `w_max > 1`.
pub fn weights_with_aspect_ratio(host: &Graph, w_max: u64, seed: u64) -> EdgeWeights {
    let m = host.edge_count();
    if w_max > 1 {
        assert!(
            m >= 2,
            "need at least two edges to realize aspect ratio > 1"
        );
    }
    let mut weights = random_weights(host, w_max.max(1), seed);
    if m >= 1 {
        weights.set(crate::EdgeId(0), 1);
    }
    if m >= 2 && w_max > 1 {
        weights.set(crate::EdgeId(1), w_max);
    }
    weights
}

/// A random perfect matching on `2k` labelled points, returned as index
/// pairs. This is the input distribution of the Simulation Theorem
/// experiments (Carol and David each hold a perfect matching, Section 8).
pub fn random_perfect_matching(k2: usize, seed: u64) -> Vec<(usize, usize)> {
    assert!(
        k2.is_multiple_of(2),
        "perfect matching needs an even number of points"
    );
    let mut r = rng(seed);
    let mut idx: Vec<usize> = (0..k2).collect();
    idx.shuffle(&mut r);
    idx.chunks(2).map(|c| (c[0], c[1])).collect()
}

/// A perfect matching as index pairs.
pub type Matching = Vec<(usize, usize)>;

/// The pair of matchings `(E_C, E_D)` whose union is a single Hamiltonian
/// cycle on `Γ` nodes (`Γ` even): Carol gets `{2i, 2i+1}`, David gets
/// `{2i+1, 2i+2 mod Γ}` — exactly the example of Figure 9.
pub fn hamiltonian_matching_pair(gamma: usize) -> (Matching, Matching) {
    assert!(gamma >= 4 && gamma.is_multiple_of(2), "need even Γ ≥ 4");
    let carol = (0..gamma / 2).map(|i| (2 * i, 2 * i + 1)).collect();
    let david = (0..gamma / 2)
        .map(|i| (2 * i + 1, (2 * i + 2) % gamma))
        .collect();
    (carol, david)
}

/// A random bit string of length `n`.
pub fn random_bits(n: usize, seed: u64) -> Vec<bool> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_bool(0.5)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicates;

    #[test]
    fn gnp_is_deterministic() {
        let a = gnp(20, 0.3, 42);
        let b = gnp(20, 0.3, 42);
        assert_eq!(a.edge_count(), b.edge_count());
        let c = gnp(20, 0.3, 43);
        // Overwhelmingly likely to differ.
        assert!(
            a.edge_count() != c.edge_count() || {
                let ae: Vec<_> = a.edges().map(|e| a.endpoints(e)).collect();
                let ce: Vec<_> = c.edges().map(|e| c.endpoints(e)).collect();
                ae != ce
            }
        );
    }

    #[test]
    fn random_tree_is_spanning_tree() {
        for seed in 0..5 {
            let g = random_tree(30, seed);
            assert!(predicates::is_spanning_tree(&g, &g.full_subgraph()));
        }
    }

    #[test]
    fn random_connected_is_connected_with_extra_edges() {
        let g = random_connected(25, 10, 7);
        assert!(predicates::is_spanning_connected_subgraph(
            &g,
            &g.full_subgraph()
        ));
        assert!(g.edge_count() >= 24);
    }

    #[test]
    fn weights_hit_requested_aspect_ratio() {
        let g = random_connected(10, 5, 1);
        let w = weights_with_aspect_ratio(&g, 64, 2);
        assert_eq!(w.aspect_ratio(), 64.0);
    }

    #[test]
    fn perfect_matching_covers_everything_once() {
        let m = random_perfect_matching(12, 3);
        let mut seen = [false; 12];
        for (a, b) in m {
            assert!(!seen[a] && !seen[b]);
            seen[a] = true;
            seen[b] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "even number")]
    fn odd_matching_rejected() {
        random_perfect_matching(5, 0);
    }

    #[test]
    fn hamiltonian_pair_forms_single_cycle() {
        let (c, d) = hamiltonian_matching_pair(8);
        // Union as a graph must be a Hamiltonian cycle on 8 nodes.
        let mut b = crate::GraphBuilder::new(8);
        for &(u, v) in c.iter().chain(d.iter()) {
            b.add_edge(NodeId::from(u), NodeId::from(v));
        }
        let g = b.build();
        assert!(predicates::is_hamiltonian_cycle(&g, &g.full_subgraph()));
    }

    #[test]
    fn random_bits_deterministic() {
        assert_eq!(random_bits(64, 9), random_bits(64, 9));
    }
}
