//! Weighted graphs and the weight aspect ratio `W` of Section 2.2.

use crate::{EdgeId, Graph};

/// A positive weight assignment to the edges of a host [`Graph`].
///
/// The paper's optimization problems (Appendix A.3) take a weight function
/// `w : E(N) → R+`; algorithms may depend on the **aspect ratio**
/// `W = max w / min w` (Theorem 3.8 is stated in terms of `W`). We use
/// `u64` weights: every construction in the paper uses integer weights
/// (`1` and `W`), and integer arithmetic keeps MST comparisons exact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeWeights {
    w: Vec<u64>,
}

impl EdgeWeights {
    /// Uniform weight `1` on every edge of `host`.
    pub fn uniform(host: &Graph) -> Self {
        EdgeWeights {
            w: vec![1; host.edge_count()],
        }
    }

    /// Builds weights from a vector indexed by edge id.
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != host.edge_count()` or any weight is zero
    /// (weights must be positive).
    pub fn from_vec(host: &Graph, w: Vec<u64>) -> Self {
        assert_eq!(
            w.len(),
            host.edge_count(),
            "weight vector length must equal edge count"
        );
        assert!(w.iter().all(|&x| x > 0), "edge weights must be positive");
        EdgeWeights { w }
    }

    /// Weight of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn weight(&self, e: EdgeId) -> u64 {
        self.w[e.index()]
    }

    /// Overwrites the weight of `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range or `weight == 0`.
    pub fn set(&mut self, e: EdgeId, weight: u64) {
        assert!(weight > 0, "edge weights must be positive");
        self.w[e.index()] = weight;
    }

    /// The aspect ratio `W = max w / min w` (integer division rounding down
    /// is avoided by returning a float; the paper treats `W` as a scale).
    ///
    /// Returns `1.0` for edgeless graphs.
    pub fn aspect_ratio(&self) -> f64 {
        match (self.w.iter().max(), self.w.iter().min()) {
            (Some(&max), Some(&min)) => max as f64 / min as f64,
            _ => 1.0,
        }
    }

    /// Sum of the weights of the given edges.
    pub fn total<I: IntoIterator<Item = EdgeId>>(&self, edges: I) -> u64 {
        edges.into_iter().map(|e| self.weight(e)).sum()
    }

    /// Number of weighted edges.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// Whether there are no edges.
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }
}

/// A graph bundled with its edge weights.
///
/// # Example
///
/// ```
/// use qdc_graph::{Graph, WeightedGraph};
///
/// let wg = WeightedGraph::uniform(Graph::cycle(4));
/// assert_eq!(wg.weights().aspect_ratio(), 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct WeightedGraph {
    graph: Graph,
    weights: EdgeWeights,
}

impl WeightedGraph {
    /// Bundles `graph` with `weights`.
    ///
    /// # Panics
    ///
    /// Panics if the weight vector does not match the graph.
    pub fn new(graph: Graph, weights: EdgeWeights) -> Self {
        assert_eq!(
            weights.len(),
            graph.edge_count(),
            "weights must cover every edge"
        );
        WeightedGraph { graph, weights }
    }

    /// Bundles `graph` with uniform unit weights.
    pub fn uniform(graph: Graph) -> Self {
        let weights = EdgeWeights::uniform(&graph);
        WeightedGraph { graph, weights }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The edge weights.
    pub fn weights(&self) -> &EdgeWeights {
        &self.weights
    }

    /// Mutable access to the edge weights.
    pub fn weights_mut(&mut self) -> &mut EdgeWeights {
        &mut self.weights
    }

    /// Weight of edge `e`.
    pub fn weight(&self, e: EdgeId) -> u64 {
        self.weights.weight(e)
    }

    /// Splits into parts.
    pub fn into_parts(self) -> (Graph, EdgeWeights) {
        (self.graph, self.weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn uniform_weights() {
        let g = Graph::cycle(4);
        let w = EdgeWeights::uniform(&g);
        assert_eq!(w.weight(EdgeId(0)), 1);
        assert_eq!(w.aspect_ratio(), 1.0);
        assert_eq!(w.total(g.edges()), 4);
    }

    #[test]
    fn aspect_ratio_tracks_extremes() {
        let g = Graph::path(3);
        let mut w = EdgeWeights::uniform(&g);
        w.set(EdgeId(1), 10);
        assert_eq!(w.aspect_ratio(), 10.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let g = Graph::path(2);
        EdgeWeights::from_vec(&g, vec![0]);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn wrong_length_rejected() {
        let g = Graph::path(3);
        EdgeWeights::from_vec(&g, vec![1]);
    }

    #[test]
    fn weighted_graph_accessors() {
        let mut wg = WeightedGraph::uniform(Graph::path(4));
        wg.weights_mut().set(EdgeId(2), 5);
        assert_eq!(wg.weight(EdgeId(2)), 5);
        assert_eq!(wg.graph().node_count(), 4);
        let (g, w) = wg.into_parts();
        assert_eq!(g.edge_count(), w.len());
    }

    #[test]
    fn empty_weights() {
        let g = Graph::empty(2);
        let w = EdgeWeights::uniform(&g);
        assert!(w.is_empty());
        assert_eq!(w.aspect_ratio(), 1.0);
    }
}
