//! Disjoint-set union (union–find) with path halving and union by size.

/// A disjoint-set forest over `0..n`.
///
/// Used by Kruskal's MST, Borůvka phases and the δ-far connectivity
/// computations.
///
/// # Example
///
/// ```
/// use qdc_graph::DisjointSets;
///
/// let mut d = DisjointSets::new(4);
/// assert!(d.union(0, 1));
/// assert!(!d.union(1, 0));
/// assert!(d.same_set(0, 1));
/// assert_eq!(d.set_count(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct DisjointSets {
    parent: Vec<usize>,
    size: Vec<usize>,
    sets: usize,
}

impl DisjointSets {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSets {
            parent: (0..n).collect(),
            size: vec![1; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of the set containing `x`, with path halving.
    ///
    /// # Panics
    ///
    /// Panics if `x >= self.len()`.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        self.sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r]
    }

    /// Current number of disjoint sets.
    pub fn set_count(&self) -> usize {
        self.sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut d = DisjointSets::new(5);
        assert_eq!(d.set_count(), 5);
        assert!(d.union(0, 1));
        assert!(d.union(2, 3));
        assert_eq!(d.set_count(), 3);
        assert!(d.union(1, 3));
        assert_eq!(d.set_count(), 2);
        assert!(d.same_set(0, 2));
        assert!(!d.same_set(0, 4));
        assert_eq!(d.set_size(3), 4);
    }

    #[test]
    fn union_same_set_is_noop() {
        let mut d = DisjointSets::new(3);
        d.union(0, 1);
        assert!(!d.union(0, 1));
        assert_eq!(d.set_count(), 2);
    }

    #[test]
    fn len_and_empty() {
        let d = DisjointSets::new(0);
        assert!(d.is_empty());
        assert_eq!(DisjointSets::new(3).len(), 3);
    }
}
