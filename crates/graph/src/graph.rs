//! Core undirected graph representation.

use std::fmt;

/// Identifier of a node in a [`Graph`].
///
/// Node ids are dense indices `0..n`; the newtype keeps them from being
/// confused with edge ids or plain counters.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(u32::try_from(v).expect("node index exceeds u32::MAX"))
    }
}

/// Identifier of an undirected edge in a [`Graph`].
///
/// Edge ids are dense indices `0..m` in insertion order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<usize> for EdgeId {
    fn from(v: usize) -> Self {
        EdgeId(u32::try_from(v).expect("edge index exceeds u32::MAX"))
    }
}

/// An undirected simple graph with dense node and edge ids.
///
/// Nodes are `0..n`; parallel edges and self-loops are rejected at
/// construction time. The adjacency structure is immutable after building
/// (use [`GraphBuilder`] or the convenience constructors); this mirrors the
/// paper's setting where the network `N` is fixed and only the *subnetwork*
/// `M` (a [`crate::Subgraph`]) varies.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    /// Endpoints of edge `e`, with `endpoints[e].0 < endpoints[e].1`.
    endpoints: Vec<(NodeId, NodeId)>,
    /// For each node, the incident `(edge, other endpoint)` pairs.
    adj: Vec<Vec<(EdgeId, NodeId)>>,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.n)
            .field("m", &self.endpoints.len())
            .finish()
    }
}

impl Graph {
    /// Creates a graph with `n` nodes and the given undirected edges.
    ///
    /// # Panics
    ///
    /// Panics if an edge is a self-loop, references a node `>= n`, or is a
    /// duplicate of an earlier edge.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(NodeId(u), NodeId(v));
        }
        b.build()
    }

    /// Creates the empty graph on `n` nodes.
    pub fn empty(n: usize) -> Self {
        GraphBuilder::new(n).build()
    }

    /// Creates the path graph `v0 - v1 - … - v(n-1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn path(n: usize) -> Self {
        assert!(n > 0, "path graph needs at least one node");
        let mut b = GraphBuilder::new(n);
        for i in 1..n {
            b.add_edge(NodeId((i - 1) as u32), NodeId(i as u32));
        }
        b.build()
    }

    /// Creates the cycle graph on `n >= 3` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 3, "cycle graph needs at least three nodes");
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            b.add_edge(NodeId(i as u32), NodeId(((i + 1) % n) as u32));
        }
        b.build()
    }

    /// Creates the complete graph on `n` nodes.
    pub fn complete(n: usize) -> Self {
        let mut b = GraphBuilder::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(NodeId(u as u32), NodeId(v as u32));
            }
        }
        b.build()
    }

    /// Creates the star graph with center `0` and `n - 1` leaves.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn star(n: usize) -> Self {
        assert!(n > 0, "star graph needs at least one node");
        let mut b = GraphBuilder::new(n);
        for v in 1..n {
            b.add_edge(NodeId(0), NodeId(v as u32));
        }
        b.build()
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n as u32).map(NodeId)
    }

    /// Iterates over all edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.endpoints.len() as u32).map(EdgeId)
    }

    /// Endpoints `(u, v)` of edge `e`, with `u < v`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.endpoints[e.index()]
    }

    /// The endpoint of `e` that is not `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not an endpoint of `e`.
    pub fn other_endpoint(&self, e: EdgeId, u: NodeId) -> NodeId {
        let (a, b) = self.endpoints(e);
        if a == u {
            b
        } else {
            assert_eq!(b, u, "{u} is not an endpoint of {e:?}");
            a
        }
    }

    /// Incident `(edge, neighbor)` pairs of `u`.
    #[inline]
    pub fn incident(&self, u: NodeId) -> &[(EdgeId, NodeId)] {
        &self.adj[u.index()]
    }

    /// Neighbors of `u`.
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj[u.index()].iter().map(|&(_, v)| v)
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u.index()].len()
    }

    /// Looks up the edge between `u` and `v`, if present.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let (small, other) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[small.index()]
            .iter()
            .find(|&&(_, w)| w == other)
            .map(|&(e, _)| e)
    }

    /// Whether `u` and `v` are adjacent.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.find_edge(u, v).is_some()
    }

    /// A [`crate::Subgraph`] containing every edge of this graph.
    pub fn full_subgraph(&self) -> crate::Subgraph {
        crate::Subgraph::full(self)
    }

    /// A [`crate::Subgraph`] containing no edges.
    pub fn empty_subgraph(&self) -> crate::Subgraph {
        crate::Subgraph::empty(self)
    }
}

/// Incremental builder for [`Graph`].
///
/// # Example
///
/// ```
/// use qdc_graph::{GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(NodeId(0), NodeId(1));
/// b.add_edge(NodeId(1), NodeId(2));
/// let g = b.build();
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    endpoints: Vec<(NodeId, NodeId)>,
    adj: Vec<Vec<(EdgeId, NodeId)>>,
}

impl GraphBuilder {
    /// Starts a builder for a graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            endpoints: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Adds the undirected edge `{u, v}` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, out-of-range endpoints, or duplicate edges.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> EdgeId {
        assert!(u != v, "self-loop at {u}");
        assert!(
            u.index() < self.n && v.index() < self.n,
            "edge ({u}, {v}) out of range for n = {}",
            self.n
        );
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        assert!(
            !self.adj[a.index()].iter().any(|&(_, w)| w == b),
            "duplicate edge ({a}, {b})"
        );
        let e = EdgeId::from(self.endpoints.len());
        self.endpoints.push((a, b));
        self.adj[a.index()].push((e, b));
        self.adj[b.index()].push((e, a));
        e
    }

    /// Adds the edge `{u, v}` if absent; returns its id either way.
    pub fn add_edge_if_absent(&mut self, u: NodeId, v: NodeId) -> EdgeId {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        if let Some(&(e, _)) = self.adj[a.index()].iter().find(|&&(_, w)| w == b) {
            e
        } else {
            self.add_edge(u, v)
        }
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Finalizes the builder into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        Graph {
            n: self.n,
            endpoints: self.endpoints,
            adj: self.adj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_graph_shape() {
        let g = Graph::path(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(NodeId(0)), 1);
        assert_eq!(g.degree(NodeId(2)), 2);
        assert_eq!(g.degree(NodeId(4)), 1);
    }

    #[test]
    fn cycle_graph_is_two_regular() {
        let g = Graph::cycle(7);
        assert_eq!(g.edge_count(), 7);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = Graph::complete(6);
        assert_eq!(g.edge_count(), 15);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 5);
        }
    }

    #[test]
    fn star_graph_degrees() {
        let g = Graph::star(5);
        assert_eq!(g.degree(NodeId(0)), 4);
        for v in 1..5 {
            assert_eq!(g.degree(NodeId(v)), 1);
        }
    }

    #[test]
    fn find_edge_and_endpoints() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 1), (3, 0)]);
        let e = g.find_edge(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(g.endpoints(e), (NodeId(1), NodeId(2)));
        assert_eq!(g.other_endpoint(e, NodeId(1)), NodeId(2));
        assert_eq!(g.other_endpoint(e, NodeId(2)), NodeId(1));
        assert!(g.has_edge(NodeId(0), NodeId(3)));
        assert!(!g.has_edge(NodeId(2), NodeId(3)));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        Graph::from_edges(2, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate_edge() {
        Graph::from_edges(3, &[(0, 1), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        Graph::from_edges(2, &[(0, 2)]);
    }

    #[test]
    fn add_edge_if_absent_dedups() {
        let mut b = GraphBuilder::new(3);
        let e1 = b.add_edge_if_absent(NodeId(0), NodeId(1));
        let e2 = b.add_edge_if_absent(NodeId(1), NodeId(0));
        assert_eq!(e1, e2);
        assert_eq!(b.edge_count(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(4);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.nodes().count(), 4);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(3).to_string(), "v3");
        assert_eq!(NodeId::from(7usize).index(), 7);
        assert_eq!(format!("{:?}", EdgeId(2)), "e2");
    }
}
