//! Graph substrate for the `qdc` workspace.
//!
//! This crate provides the graph machinery that the rest of the
//! reproduction of Elkin–Klauck–Nanongkai–Pandurangan (PODC 2014) is built
//! on: an undirected [`Graph`] type, weighted graphs with aspect-ratio
//! tracking, [`Subgraph`] indicators (the "subnetwork M of N" of the paper's
//! Section 2.2), every verification predicate from Appendix A.2, sequential
//! reference algorithms (BFS, Dijkstra, Kruskal, Stoer–Wagner, …) used as
//! oracles by the distributed algorithms, and deterministic random-graph
//! generators.
//!
//! # Example
//!
//! ```
//! use qdc_graph::{Graph, predicates};
//!
//! // A 4-cycle is a Hamiltonian cycle of itself.
//! let g = Graph::cycle(4);
//! let all = g.full_subgraph();
//! assert!(predicates::is_hamiltonian_cycle(&g, &all));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dsu;
mod graph;
mod subgraph;
mod weighted;

pub mod algorithms;
pub mod generate;
pub mod lel;
pub mod optimization;
pub mod predicates;

pub use dsu::DisjointSets;
pub use graph::{EdgeId, Graph, GraphBuilder, NodeId};
pub use subgraph::Subgraph;
pub use weighted::{EdgeWeights, WeightedGraph};
