//! Criterion benches: the paper's constructions (gadgets, networks,
//! codes) — experiments G47, G7, F810 of DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdc_cc::codes::greedy_random_code;
use qdc_gadgets::{gapeq_to_ham, ipmod3_to_ham};
use qdc_graph::{generate, predicates};
use qdc_simthm::SimulationNetwork;
use std::hint::black_box;

fn bench_gadgets(c: &mut Criterion) {
    let mut g = c.benchmark_group("gadgets");
    for &n in &[64usize, 256, 1024] {
        let x = generate::random_bits(n, 1);
        let y = generate::random_bits(n, 2);
        g.bench_with_input(BenchmarkId::new("ipmod3_to_ham", n), &n, |b, _| {
            b.iter(|| ipmod3_to_ham(black_box(&x), black_box(&y)))
        });
        g.bench_with_input(BenchmarkId::new("gapeq_to_ham", n), &n, |b, _| {
            b.iter(|| gapeq_to_ham(black_box(&x), black_box(&y)))
        });
        let inst = ipmod3_to_ham(&x, &y);
        let sub = inst.full_subgraph();
        g.bench_with_input(BenchmarkId::new("verify_ham_predicate", n), &n, |b, _| {
            b.iter(|| predicates::is_hamiltonian_cycle(black_box(inst.graph()), black_box(&sub)))
        });
    }
    g.finish();
}

fn bench_network(c: &mut Criterion) {
    let mut g = c.benchmark_group("network");
    for &l in &[17usize, 33, 65, 129] {
        g.bench_with_input(BenchmarkId::new("build_n_gamma16", l), &l, |b, &l| {
            b.iter(|| SimulationNetwork::build(black_box(16), black_box(l)))
        });
    }
    let net = SimulationNetwork::build(16, 33);
    let tracks = net.track_count();
    let (carol, david) = if tracks.is_multiple_of(2) {
        generate::hamiltonian_matching_pair(tracks)
    } else {
        let net2 = SimulationNetwork::build(17, 33);
        generate::hamiltonian_matching_pair(net2.track_count())
    };
    let net = if tracks.is_multiple_of(2) {
        net
    } else {
        SimulationNetwork::build(17, 33)
    };
    g.bench_function("embed_matchings", |b| {
        b.iter(|| net.embed_matchings(black_box(&carol), black_box(&david)))
    });
    g.finish();
}

fn bench_codes(c: &mut Criterion) {
    let mut g = c.benchmark_group("gv_codes");
    g.sample_size(10);
    for &n in &[32usize, 64] {
        let d = n / 4;
        g.bench_with_input(BenchmarkId::new("greedy_random", n), &n, |b, _| {
            b.iter(|| greedy_random_code(black_box(n), d, 128, 20_000, 7))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gadgets, bench_network, bench_codes);
criterion_main!(benches);
