//! Criterion benches: per-figure workloads — F3 (MST branches), E1.1
//! (Disjointness protocols), T35 (audited simulation), CHSH (games),
//! and Grover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdc_algos::disjointness::classical_disjointness;
use qdc_algos::mst::{mst_approx_sweep, mst_exact};
use qdc_congest::CongestConfig;
use qdc_core::theorems;
use qdc_graph::generate;
use qdc_quantum::games::{chsh_optimal_strategy, XorGame};
use qdc_quantum::grover::Grover;
use qdc_simthm::SimulationNetwork;
use std::hint::black_box;

fn bench_fig3_mst(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_mst");
    g.sample_size(10);
    let mut net = SimulationNetwork::build(8, 17);
    if net.track_count() % 2 == 1 {
        net = SimulationNetwork::build(9, 17);
    }
    let (carol, david) = generate::hamiltonian_matching_pair(net.track_count());
    let m = net.embed_matchings(&carol, &david);
    let cfg = CongestConfig::classical(64);
    for &w in &[8u64, 128] {
        let weights = theorems::weight_gadget(net.graph(), &m, w);
        g.bench_with_input(BenchmarkId::new("approx_sweep", w), &w, |b, _| {
            b.iter(|| mst_approx_sweep(black_box(net.graph()), cfg, black_box(&weights), 2.0))
        });
        g.bench_with_input(BenchmarkId::new("exact", w), &w, |b, _| {
            b.iter(|| mst_exact(black_box(net.graph()), cfg, black_box(&weights)))
        });
    }
    g.finish();
}

fn bench_ex11(c: &mut Criterion) {
    let mut g = c.benchmark_group("ex11_disjointness");
    g.sample_size(10);
    for &b_len in &[256usize, 1024] {
        let x = generate::random_bits(b_len, 5);
        let y: Vec<bool> = x.iter().map(|&v| !v).collect();
        g.bench_with_input(
            BenchmarkId::new("classical_stream", b_len),
            &b_len,
            |b, _| {
                b.iter(|| {
                    classical_disjointness(
                        black_box(&x),
                        black_box(&y),
                        8,
                        CongestConfig::classical(16),
                    )
                })
            },
        );
    }
    g.finish();
}

fn bench_quantum(c: &mut Criterion) {
    let mut g = c.benchmark_group("quantum");
    g.bench_function("chsh_classical_bias", |b| {
        let game = XorGame::chsh();
        b.iter(|| black_box(&game).classical_bias())
    });
    g.bench_function("chsh_entangled_bias", |b| {
        let game = XorGame::chsh();
        let s = chsh_optimal_strategy();
        b.iter(|| black_box(&game).entangled_bias(black_box(&s)))
    });
    for &q in &[8usize, 12] {
        let grover = Grover::new(q, &[7]);
        let k = qdc_quantum::grover::optimal_iterations(1 << q, 1);
        g.bench_with_input(BenchmarkId::new("grover_run", q), &q, |b, _| {
            b.iter(|| black_box(&grover).run(k))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig3_mst, bench_ex11, bench_quantum);
criterion_main!(benches);
