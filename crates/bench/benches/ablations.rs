//! Criterion benches: ablations of the design decisions in DESIGN.md.
//!
//! * D5 — highway count: network diameter with the full `k = log₂(L−1)`
//!   highway stack vs a single highway (the Θ(log L) claim degrades);
//! * two-phase fragment engine: `size_threshold = √n` (Kutten–Peleg) vs
//!   `size_threshold = 1` (phase 2 only, the naive pipelined Borůvka).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdc_algos::fragments::{spanning_forest, FragmentConfig};
use qdc_algos::Ledger;
use qdc_congest::CongestConfig;
use qdc_graph::generate;
use qdc_simthm::SimulationNetwork;
use std::hint::black_box;

fn bench_threshold_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_fragment_threshold");
    g.sample_size(10);
    let graph = generate::random_connected(300, 600, 9);
    let weights = generate::random_weights(&graph, 64, 10);
    let cfg = CongestConfig::classical(64);
    let full = graph.full_subgraph();
    for &(name, threshold) in &[("sqrt_n", 18usize), ("phase2_only", 1usize)] {
        g.bench_with_input(BenchmarkId::new(name, threshold), &threshold, |b, &t| {
            b.iter(|| {
                let fc = FragmentConfig {
                    size_threshold: t,
                    max_phases: 64,
                };
                let mut ledger = Ledger::new();
                spanning_forest(
                    black_box(&graph),
                    cfg,
                    black_box(&weights),
                    black_box(&full),
                    &fc,
                    &mut ledger,
                )
            })
        });
    }
    g.finish();
}

fn bench_highway_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_highways");
    g.sample_size(10);
    for &l in &[33usize, 65] {
        g.bench_with_input(BenchmarkId::new("build_and_diameter", l), &l, |b, &l| {
            b.iter(|| {
                let net = SimulationNetwork::build(8, l);
                qdc_graph::algorithms::diameter(black_box(net.graph()))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_threshold_ablation, bench_highway_ablation);
criterion_main!(benches);
