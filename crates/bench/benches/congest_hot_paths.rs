//! Criterion benches for the CONGEST substrate hot paths: the
//! `BitString` codec, flooding on a dense graph, and a full
//! Hamiltonian-cycle verification run on the Γ=13, L=17 simulation
//! network. EXPERIMENTS.md records before/after numbers for the
//! word-level codec and the O(1)-routing/reusable-buffer round loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdc_algos::verify::verify_hamiltonian_cycle;
use qdc_algos::{flood, Ledger};
use qdc_congest::{BitString, CongestConfig, RunOptions, Simulator};
use qdc_graph::{generate, Graph};
use qdc_simthm::{SimThmPoint, SimulationNetwork};
use std::hint::black_box;

/// Encode `count` fields of `width` bits each into one `BitString`.
fn encode(count: usize, width: usize) -> BitString {
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let mut bits = BitString::new();
    for i in 0..count {
        bits.push_uint((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask, width);
    }
    bits
}

fn bench_bitstring_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitstring");
    g.sample_size(20);
    // Unaligned width (37) exercises the cross-word-boundary path;
    // 4096 fields ≈ 150 Kbit payloads, the scale of a Figure 2 round.
    for &(count, width) in &[(4096usize, 37usize), (4096, 16), (1024, 64)] {
        g.bench_with_input(
            BenchmarkId::new("encode", format!("{count}x{width}b")),
            &(count, width),
            |b, &(count, width)| b.iter(|| encode(black_box(count), black_box(width))),
        );
        let bits = encode(count, width);
        g.bench_with_input(
            BenchmarkId::new("decode", format!("{count}x{width}b")),
            &bits,
            |b, bits| {
                b.iter(|| {
                    let mut r = bits.reader();
                    let mut acc = 0u64;
                    while let Some(v) = r.read_uint(width) {
                        acc = acc.wrapping_add(v);
                    }
                    acc
                })
            },
        );
    }
    let blob = encode(4096, 37);
    g.bench_function("extend_bits/64x150Kbit", |b| {
        b.iter(|| {
            let mut acc = BitString::new();
            acc.push_bit(true); // force the unaligned path
            for _ in 0..64 {
                acc.extend_bits(black_box(&blob));
            }
            acc
        })
    });
    let bools = blob.to_bools();
    g.bench_function("from_bools/150Kbit", |b| {
        b.iter(|| BitString::from_bools(black_box(&bools)))
    });
    g.bench_function("to_bools/150Kbit", |b| {
        b.iter(|| black_box(&blob).to_bools())
    });
    g.finish();
}

fn bench_flood_complete(c: &mut Criterion) {
    let mut g = c.benchmark_group("flood");
    g.sample_size(10);
    // Complete graphs maximize per-round delivery fan-in: the regime
    // where O(deg) reverse-port scans cost O(Σ deg²) per round.
    let graph = Graph::complete(256);
    let cfg = CongestConfig::classical(64);
    g.bench_function("elect_leader/complete256", |b| {
        b.iter(|| {
            let mut ledger = Ledger::new();
            flood::elect_leader(black_box(&graph), cfg, &mut ledger)
        })
    });
    g.finish();
}

fn bench_verification_gamma13_l17(c: &mut Criterion) {
    let mut g = c.benchmark_group("verification");
    g.sample_size(10);
    // Γ=13, L=17 has 13 + log₂(16) = 17 tracks; the Hamiltonian matching
    // pair needs an even track count, so pad Γ by one (same convention
    // as the `simulator` bench and the paper's even-Γ assumption).
    let mut net = SimulationNetwork::build(13, 17);
    if net.track_count() % 2 == 1 {
        net = SimulationNetwork::build(14, 17);
    }
    let (carol, david) = generate::hamiltonian_matching_pair(net.track_count());
    let m = net.embed_matchings(&carol, &david);
    let cfg = CongestConfig::classical(64);
    g.bench_with_input(
        BenchmarkId::new("distributed_ham", format!("n{}", net.graph().node_count())),
        &net,
        |b, net| b.iter(|| verify_hamiltonian_cycle(black_box(net.graph()), cfg, black_box(&m))),
    );
    g.finish();
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry");
    g.sample_size(10);
    // The same Γ=13, L=17-class workload as the verification group, run
    // three ways: the plain entry point (null sink — must stay on the
    // PR 1 hot-path numbers), an explicit NullTelemetry-observed run
    // (must be indistinguishable from plain: the sink is compiled out),
    // and a RoundProfiler-observed run (the real observation cost).
    let point = SimThmPoint {
        gamma: 13,
        l: 17,
        bandwidth: 32,
    };
    g.bench_function("run_point/null_sink", |b| {
        b.iter(|| qdc_simthm::campaign::run_point(black_box(&point)))
    });
    g.bench_function("run_point/profiler", |b| {
        b.iter(|| qdc_simthm::campaign::run_point_observed(black_box(&point)))
    });
    g.finish();
}

fn bench_slab_delivery(c: &mut Criterion) {
    use qdc_congest::{Inbox, Message, NodeAlgorithm, NodeInfo, Outbox};
    let mut g = c.benchmark_group("slab");
    g.sample_size(10);
    // An every-round rebroadcast on a dense graph is the message plane's
    // worst case: every directed slot is packed, masked and scattered
    // every round. This pins the columnar (SoA) delivery path; the
    // `flood` and `verification` groups above cover the mixed regimes.
    struct Rebroadcast {
        rounds_left: usize,
    }
    impl NodeAlgorithm for Rebroadcast {
        fn on_start(&mut self, info: &NodeInfo, out: &mut Outbox) {
            out.broadcast(Message::from_uint(info.id.0 as u64, 32));
        }
        fn on_round(&mut self, info: &NodeInfo, _: &Inbox, out: &mut Outbox) {
            if self.rounds_left > 0 {
                self.rounds_left -= 1;
                out.broadcast(Message::from_uint(info.id.0 as u64, 32));
            }
        }
        fn is_terminated(&self) -> bool {
            self.rounds_left == 0
        }
    }
    let graph = Graph::complete(128);
    let cfg = CongestConfig::classical(32);
    for &threads in &[1usize, 4] {
        let sim = Simulator::with_options(&graph, cfg, RunOptions { threads });
        g.bench_function(format!("rebroadcast/complete128/t{threads}"), |b| {
            b.iter(|| sim.run(|_| Rebroadcast { rounds_left: 16 }, black_box(64)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_bitstring_codec,
    bench_flood_complete,
    bench_verification_gamma13_l17,
    bench_telemetry_overhead,
    bench_slab_delivery
);
criterion_main!(benches);
