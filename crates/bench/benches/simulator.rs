//! Criterion benches: the CONGEST simulator and distributed algorithms —
//! the substrate costs behind experiments F2, T35 and T36.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdc_algos::fragments::count_components;
use qdc_algos::verify::verify_hamiltonian_cycle;
use qdc_algos::{flood, Ledger};
use qdc_congest::CongestConfig;
use qdc_graph::{generate, NodeId};
use qdc_simthm::SimulationNetwork;
use std::hint::black_box;

fn bench_flood_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives");
    g.sample_size(20);
    for &n in &[100usize, 400] {
        let graph = generate::random_connected(n, 2 * n, 3);
        let cfg = CongestConfig::classical(64);
        g.bench_with_input(BenchmarkId::new("leader_election", n), &n, |b, _| {
            b.iter(|| {
                let mut ledger = Ledger::new();
                flood::elect_leader(black_box(&graph), cfg, &mut ledger)
            })
        });
        g.bench_with_input(BenchmarkId::new("bfs_tree", n), &n, |b, _| {
            b.iter(|| {
                let mut ledger = Ledger::new();
                flood::build_bfs_tree(black_box(&graph), cfg, NodeId(0), &mut ledger)
            })
        });
    }
    g.finish();
}

fn bench_verification(c: &mut Criterion) {
    let mut g = c.benchmark_group("verification");
    g.sample_size(10);
    for &(gamma, l) in &[(6usize, 9usize), (12, 17)] {
        let mut net = SimulationNetwork::build(gamma, l);
        if net.track_count() % 2 == 1 {
            net = SimulationNetwork::build(gamma + 1, l);
        }
        let (carol, david) = generate::hamiltonian_matching_pair(net.track_count());
        let m = net.embed_matchings(&carol, &david);
        let n = net.graph().node_count();
        let cfg = CongestConfig::classical(64);
        g.bench_with_input(BenchmarkId::new("distributed_ham", n), &n, |b, _| {
            b.iter(|| verify_hamiltonian_cycle(black_box(net.graph()), cfg, black_box(&m)))
        });
        g.bench_with_input(BenchmarkId::new("count_components", n), &n, |b, _| {
            b.iter(|| {
                let mut ledger = Ledger::new();
                count_components(black_box(net.graph()), cfg, black_box(&m), &mut ledger)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_flood_primitives, bench_verification);
criterion_main!(benches);
