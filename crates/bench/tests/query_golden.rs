//! Golden tests for the `profile query` CLI: the rendered summary and
//! metric-series output are pinned byte-for-byte against committed
//! fixtures, driven through the real binary (`CARGO_BIN_EXE_profile`)
//! over archives a real streaming campaign wrote.
//!
//! Regenerate after a deliberate output change with:
//!
//! ```text
//! QDC_UPDATE_GOLDEN=1 cargo test -p qdc-bench --test query_golden
//! ```

use qdc_congest::{CongestConfig, StreamSink};
use qdc_harness::{builtin, run_campaign, RunOptions, StreamTelemetry, TelemetryMode};
use std::path::{Path, PathBuf};
use std::process::Command;

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `produced` against the committed fixture, or rewrites the
/// fixture when `QDC_UPDATE_GOLDEN=1` is set.
fn assert_matches_golden(name: &str, produced: &str) {
    let path = golden_path(name);
    if std::env::var("QDC_UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, produced).expect("write fixture");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with QDC_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        produced,
        want,
        "query output drifted from {}; if the change is deliberate, \
         regenerate with QDC_UPDATE_GOLDEN=1",
        path.display()
    );
}

/// Runs the deterministic `telemetry_smoke` campaign with the streaming
/// sink into `dir` (2 points, `qdc-telemetry-stream/v1` archives).
fn write_archives(dir: &Path) {
    let spec = builtin("telemetry_smoke").expect("builtin");
    let options = RunOptions {
        telemetry: TelemetryMode::Stream(StreamTelemetry::new(dir.to_string_lossy().into_owned())),
        ..RunOptions::default()
    };
    run_campaign(&spec, &options).expect("campaign runs");
}

/// Writes a quantum-channel archive: seeded distributed-Grover
/// Disjointness (b = 64, D = 3) under EPR/teleportation accounting, so
/// the footer totals carry the classical/qubit `qsplit`.
fn write_quantum_archive(path: &Path) {
    let mut x = qdc_graph::generate::random_bits(64, 164);
    let mut y: Vec<bool> = x.iter().map(|&v| !v).collect();
    x[32] = true;
    y[32] = true;
    let mut buf = Vec::new();
    let mut sink = StreamSink::new(&mut buf, 4, 3, 16, 8).with_quantum(true);
    let _ = qdc_algos::disjointness::quantum_disjointness_seeded(
        &x,
        &y,
        3,
        CongestConfig::quantum_teleport(16),
        11,
        qdc_congest::RunOptions::default(),
        &mut sink,
    );
    sink.finish().expect("in-memory write");
    std::fs::write(path, buf).expect("write quantum archive");
}

fn profile_query(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_profile"))
        .arg("query")
        .args(args)
        .output()
        .expect("profile runs");
    assert!(
        out.status.success(),
        "profile query {:?} failed: {}",
        args,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn profile_query_summary_series_and_merge_match_goldens() {
    let dir = std::env::temp_dir().join(format!("qdc_query_golden_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    write_archives(&dir);
    let dir_arg = dir.to_string_lossy().into_owned();
    let point0 = dir.join("point_0.telemetry.jsonl");
    let point0_arg = point0.to_string_lossy().into_owned();

    // One archive, full summary.
    let summary = profile_query(&[&point0_arg, "--top-k", "4"]);
    assert_matches_golden("query_summary.txt", &summary);

    // The whole directory folded through the merge.
    let merged = profile_query(&[&dir_arg, "--merge", "--top-k", "4"]);
    assert_matches_golden("query_merge.txt", &merged);

    // Metric series over a round window.
    let series = profile_query(&[&point0_arg, "--metric", "bits", "--rounds", "1..2"]);
    assert_matches_golden("query_series.txt", &series);

    // Merging an archive with itself doubles every additive counter —
    // checked here through the CLI rather than the unit layer.
    let doubled = profile_query(&[&point0_arg, &point0_arg, "--merge", "--top-k", "4"]);
    assert!(
        doubled.starts_with("2 archive(s):"),
        "merge counts its inputs: {doubled}"
    );

    // A quantum-channel archive surfaces the classical/qubit split.
    let quantum = dir.join("quantum_ex11.telemetry.jsonl");
    write_quantum_archive(&quantum);
    let quantum_arg = quantum.to_string_lossy().into_owned();
    let qsummary = profile_query(&[&quantum_arg, "--top-k", "4"]);
    assert_matches_golden("query_quantum.txt", &qsummary);
    assert!(
        qsummary.contains("qsplit: classical "),
        "the summary must render the teleportation accounting: {qsummary}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
