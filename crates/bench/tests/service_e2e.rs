//! End-to-end tests over the real binaries: `campaign serve` spawned as
//! a child process, killed with real signals, and restarted — plus the
//! `campaign verify` exit-code contract and the `profile -` stdin path.
//!
//! The SIGKILL test is the service's headline durability claim: a
//! process killed without warning mid-job leaves a journal that is a
//! clean record-boundary prefix, and a restart on the same data dir
//! resumes it to bytes identical to an uninterrupted in-process run.

use qdc_harness::{builtin, run_campaign, RunOptions};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qdc_e2e_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// A `campaign serve` child plus the address it printed.
struct ServeChild {
    child: Child,
    addr: String,
}

fn spawn_serve(data_dir: &Path, extra: &[&str]) -> ServeChild {
    let mut child = Command::new(env!("CARGO_BIN_EXE_campaign"))
        .arg("serve")
        .args(["--addr", "127.0.0.1:0"])
        .args(["--data-dir", data_dir.to_str().expect("utf8 path")])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn campaign serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read the listening line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .to_string();
    ServeChild { child, addr }
}

fn http(addr: &str, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read");
    let text = String::from_utf8(response).expect("utf8");
    let (head, body) = text.split_once("\r\n\r\n").expect("head/body");
    let status = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = if head.contains("Transfer-Encoding: chunked") {
        dechunk(body)
    } else {
        body.to_string()
    };
    (status, body)
}

fn dechunk(mut body: &str) -> String {
    let mut out = String::new();
    loop {
        let (size_line, rest) = body.split_once("\r\n").expect("chunk size");
        let size = usize::from_str_radix(size_line.trim(), 16).expect("hex size");
        if size == 0 {
            return out;
        }
        out.push_str(&rest[..size]);
        body = rest[size..].strip_prefix("\r\n").expect("chunk end");
    }
}

fn post_job(addr: &str, body: &str) -> (u16, String) {
    http(
        addr,
        &format!(
            "POST /jobs HTTP/1.1\r\nHost: t\r\nx-qdc-client: e2e\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn wait_completed(addr: &str, id: u64) {
    for _ in 0..600 {
        let (status, body) = http(addr, &format!("GET /jobs/{id} HTTP/1.1\r\nHost: t\r\n\r\n"));
        assert_eq!(status, 200, "{body}");
        if body.contains("\"state\":\"completed\"") {
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("job {id} never completed");
}

#[test]
fn e2e_sigkill_midjob_then_restart_resumes_byte_identically() {
    let dir = temp_dir("sigkill");
    // Throttle so the kill reliably lands mid-grid.
    let mut serve = spawn_serve(&dir, &["--workers", "1", "--throttle-ms", "60"]);
    let (status, receipt) = post_job(&serve.addr, "{\"builtin\":\"simthm_smoke\"}");
    assert_eq!(status, 201, "{receipt}");

    // Wait for the first committed line, then SIGKILL — no drain, no
    // flush, the hard way down.
    let journal_path = dir.join("job_1.records.jsonl");
    for _ in 0..200 {
        if std::fs::read_to_string(&journal_path)
            .map(|t| t.lines().count() >= 1)
            .unwrap_or(false)
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    serve.child.kill().expect("SIGKILL");
    serve.child.wait().expect("reaped");

    // The journal is a clean record-boundary prefix even after SIGKILL.
    let partial = std::fs::read_to_string(&journal_path).expect("journal exists");
    let partial_lines = partial.lines().count();
    assert!(
        (1..4).contains(&partial_lines),
        "kill landed mid-grid ({partial_lines} of 4 lines)"
    );
    assert!(partial.ends_with('\n'), "prefix ends on a record boundary");
    match qdc_service::classify_journal(&partial, Some("simthm_smoke")) {
        qdc_service::JournalClass::Clean { entries } => assert_eq!(entries, partial_lines),
        other => panic!("journal after SIGKILL should be clean, got {other:?}"),
    }

    // Restart on the same data dir: the scan re-enqueues job 1 and a
    // worker finishes the missing tail.
    let mut serve = spawn_serve(&dir, &["--workers", "1"]);
    wait_completed(&serve.addr, 1);
    let (status, streamed) = http(
        &serve.addr,
        "GET /jobs/1/records HTTP/1.1\r\nHost: t\r\n\r\n",
    );
    assert_eq!(status, 200);
    let direct = run_campaign(
        &builtin("simthm_smoke").expect("builtin"),
        &RunOptions::default(),
    )
    .expect("runs")
    .deterministic_jsonl();
    assert_eq!(
        streamed, direct,
        "post-SIGKILL resumed stream is byte-identical to a direct run"
    );

    serve.child.kill().expect("cleanup kill");
    serve.child.wait().expect("reaped");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn e2e_sigterm_drains_and_exits_130() {
    let dir = temp_dir("sigterm");
    let mut serve = spawn_serve(&dir, &["--workers", "1", "--throttle-ms", "40"]);
    let (status, receipt) = post_job(&serve.addr, "{\"builtin\":\"simthm_smoke\"}");
    assert_eq!(status, 201, "{receipt}");
    std::thread::sleep(Duration::from_millis(60));

    let term = Command::new("kill")
        .args(["-TERM", &serve.child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    let exit = serve.child.wait().expect("reaped");
    assert_eq!(exit.code(), Some(130), "graceful interrupt exits 130");

    // Whatever the drain committed is a clean prefix on disk.
    let journal = std::fs::read_to_string(dir.join("job_1.records.jsonl")).unwrap_or_default();
    assert!(
        matches!(
            qdc_service::classify_journal(&journal, Some("simthm_smoke")),
            qdc_service::JournalClass::Clean { .. }
        ),
        "drained journal is clean"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn e2e_campaign_verify_exit_codes() {
    let dir = temp_dir("verify");
    let direct = run_campaign(
        &builtin("simthm_smoke").expect("builtin"),
        &RunOptions::default(),
    )
    .expect("runs")
    .deterministic_jsonl();

    let clean = dir.join("clean.jsonl");
    std::fs::write(&clean, &direct).expect("write");
    let torn = dir.join("torn.jsonl");
    std::fs::write(&torn, format!("{direct}{{\"torn")).expect("write");
    let garbage = dir.join("garbage.jsonl");
    std::fs::write(&garbage, "not a journal\n").expect("write");

    let run = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_campaign"))
            .arg("verify")
            .args(args)
            .output()
            .expect("run campaign verify")
    };

    let out = run(&[clean.to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("clean"));

    let out = run(&[torn.to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(0), "recoverable is still usable");
    assert!(String::from_utf8_lossy(&out.stdout).contains("recoverable"));

    // The same file against the wrong campaign is foreign: exit 5.
    let out = run(&[
        clean.to_str().expect("utf8"),
        "--campaign",
        "other_campaign",
    ]);
    assert_eq!(out.status.code(), Some(5));

    let out = run(&[garbage.to_str().expect("utf8")]);
    assert_eq!(
        out.status.code(),
        Some(5),
        "unclassifiable garbage is foreign"
    );

    let out = run(&[dir.join("missing.jsonl").to_str().expect("utf8")]);
    assert_eq!(
        out.status.code(),
        Some(4),
        "unreadable file is an I/O error"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn e2e_profile_reads_stdin_identically_to_a_file() {
    let dir = temp_dir("profile_stdin");
    // Produce a real telemetry archive through the campaign binary.
    let status = Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args(["telemetry_smoke", "--deterministic"])
        .args(["--out", dir.join("r.jsonl").to_str().expect("utf8")])
        .args(["--summary", dir.join("s.json").to_str().expect("utf8")])
        .args(["--telemetry-dir", dir.join("t").to_str().expect("utf8")])
        .stdout(Stdio::null())
        .status()
        .expect("run campaign");
    assert!(status.success());
    let archive = dir.join("t").join("point_0.telemetry.jsonl");

    let from_file = Command::new(env!("CARGO_BIN_EXE_profile"))
        .arg(&archive)
        .output()
        .expect("profile <file>");
    assert!(from_file.status.success());

    let mut piped = Command::new(env!("CARGO_BIN_EXE_profile"))
        .arg("-")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("profile -");
    piped
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(&std::fs::read(&archive).expect("archive bytes"))
        .expect("feed stdin");
    let piped = piped.wait_with_output().expect("reaped");
    assert!(piped.status.success());

    // Identical tables, modulo the path in the header line.
    let file_text = String::from_utf8(from_file.stdout).expect("utf8");
    let pipe_text = String::from_utf8(piped.stdout).expect("utf8");
    let tail = |s: &str| {
        s.split_once('\n')
            .map(|(_, t)| t.to_string())
            .expect("body")
    };
    assert_eq!(tail(&file_text), tail(&pipe_text));
    assert!(pipe_text.starts_with("profile `-`:"), "{pipe_text}");

    let _ = std::fs::remove_dir_all(&dir);
}
