//! Archive query engine for `qdc-telemetry-stream/v1` archives: input
//! expansion, round windows, per-round metric extraction, and the
//! summary renderer behind `profile query`.
//!
//! Everything here is pure string-in/string-out (or path expansion) so
//! the `profile` binary stays a thin shell and the golden tests in
//! `crates/bench/tests/` can pin the rendered output byte-for-byte.
//! The binary drives [`qdc_congest::StreamReader`] record-by-record and
//! calls into these helpers; no function in this module ever buffers an
//! archive.

use crate::{fmt_header, fmt_row};
use qdc_congest::{RoundProfile, StreamAggregate, TopK};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Per-round metrics `--metric` understands, in help order.
pub const METRICS: &[&str] = &[
    "messages",
    "bits",
    "dropped",
    "corrupted",
    "crashes",
    "path",
    "highway",
    "cross",
];

/// Extracts one named per-round metric. `None` for unknown names — the
/// CLI turns that into a usage error listing [`METRICS`].
pub fn metric_value(r: &RoundProfile, metric: &str) -> Option<u64> {
    Some(match metric {
        "messages" => r.messages,
        "bits" => r.bits,
        "dropped" => r.dropped,
        "corrupted" => r.corrupted_bits,
        "crashes" => r.crashes,
        "path" => r.path_bits,
        "highway" => r.highway_bits,
        "cross" => r.cross_bits,
        _ => return None,
    })
}

/// Inclusive round window parsed from `--rounds`: `A..B`, `A..`
/// (everything from `A`), `..B` (everything up to `B`), or a single
/// round `A`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundWindow {
    /// First round included (1-based).
    pub first: usize,
    /// Last round included.
    pub last: usize,
}

impl RoundWindow {
    /// The unbounded window.
    pub fn all() -> RoundWindow {
        RoundWindow {
            first: 1,
            last: usize::MAX,
        }
    }

    /// Parses the `--rounds` argument. Rejects empty and inverted
    /// windows with a human-readable message.
    pub fn parse(s: &str) -> Result<RoundWindow, String> {
        let parse_bound = |t: &str, default: usize| -> Result<usize, String> {
            if t.is_empty() {
                return Ok(default);
            }
            t.parse()
                .map_err(|_| format!("`{t}` is not a round number"))
        };
        let (first, last) = match s.split_once("..") {
            Some((a, b)) => (parse_bound(a, 1)?, parse_bound(b, usize::MAX)?),
            None => {
                let r = parse_bound(s, 0)?;
                (r, r)
            }
        };
        if first == 0 {
            return Err("rounds are 1-based".into());
        }
        if first > last {
            return Err(format!("empty window {first}..{last}"));
        }
        Ok(RoundWindow { first, last })
    }

    /// Whether `round` falls inside the window.
    pub fn contains(&self, round: usize) -> bool {
        (self.first..=self.last).contains(&round)
    }
}

/// Expands one CLI input into archive paths: a file maps to itself, a
/// directory to every `point_<i>.telemetry.jsonl` inside it in point
/// order. `-` is handled by the caller (stdin has no path).
pub fn expand_input(path: &Path) -> Result<Vec<PathBuf>, String> {
    if path.is_dir() {
        let entries = std::fs::read_dir(path)
            .map_err(|e| format!("cannot list `{}`: {e}", path.display()))?;
        let mut indexed = Vec::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(i) = name
                .strip_prefix("point_")
                .and_then(|s| s.strip_suffix(".telemetry.jsonl"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                indexed.push((i, entry.path()));
            }
        }
        if indexed.is_empty() {
            return Err(format!(
                "`{}` holds no point_<i>.telemetry.jsonl archives",
                path.display()
            ));
        }
        indexed.sort();
        Ok(indexed.into_iter().map(|(_, p)| p).collect())
    } else {
        Ok(vec![path.to_path_buf()])
    }
}

fn top_table(out: &mut String, what: &str, sketch: &TopK, limit: usize) {
    let entries = sketch.ranked();
    let shown = entries.len().min(limit);
    let _ = writeln!(
        out,
        "top {shown} hottest {what} (of {} tracked, capacity {}):",
        entries.len(),
        sketch.capacity()
    );
    let widths = [8, 12, 10, 10];
    let _ = writeln!(
        out,
        "{}",
        fmt_header(&[what, "bits", "msgs", "±err"], &widths)
    );
    for e in entries.iter().take(limit) {
        let _ = writeln!(
            out,
            "{}",
            fmt_row(
                &[
                    &e.index.to_string(),
                    &e.bits.to_string(),
                    &e.messages.to_string(),
                    &e.err.to_string(),
                ],
                &widths,
            )
        );
    }
}

/// Renders one aggregate — a single archive's footer, or the result of
/// `--merge` across many — as the `profile query` summary block.
///
/// `archives` is how many archives were folded in; `top_k` caps how
/// many sketch rows are listed. Counter semantics (and the `±err`
/// column: each sketch entry's bits overcount by at most `err`) are
/// documented in DESIGN.md §4g.
pub fn render_summary(agg: &StreamAggregate, archives: usize, top_k: usize) -> String {
    let h = &agg.header;
    let t = &agg.totals;
    let mut out = String::new();
    let bandwidth = if h.bandwidth == 0 {
        "mixed".to_string()
    } else {
        format!("{} bits", h.bandwidth)
    };
    let _ = writeln!(
        out,
        "{archives} archive(s): {} nodes, {} edges, B = {bandwidth}{}",
        h.nodes,
        h.edges,
        if h.classified {
            ", highway/path classified"
        } else {
            ""
        }
    );
    let _ = writeln!(
        out,
        "totals: {} round(s) ({} quiescent), {} messages, {} bits, {} dropped, \
         {} bits corrupted, {} crash(es)",
        t.rounds, t.quiescent, t.messages, t.bits, t.dropped, t.corrupted_bits, t.crashes
    );
    let _ = writeln!(
        out,
        "util: idle {}, <=B/4 {}, <=B/2 {}, <=3B/4 {}, <=B {}",
        t.util[0], t.util[1], t.util[2], t.util[3], t.util[4]
    );
    if h.classified {
        let _ = writeln!(
            out,
            "split: path {}, highway {}, cross {}",
            t.path_bits, t.highway_bits, t.cross_bits
        );
    }
    if let Some(q) = &t.qsplit {
        let _ = writeln!(
            out,
            "qsplit: classical {}, qubit {}",
            q.classical_bits, q.qubit_bits
        );
    }
    top_table(&mut out, "edges", &agg.top_edges, top_k);
    top_table(&mut out, "nodes", &agg.top_nodes, top_k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_windows_parse_and_reject() {
        assert_eq!(
            RoundWindow::parse("3..7"),
            Ok(RoundWindow { first: 3, last: 7 })
        );
        assert_eq!(
            RoundWindow::parse("5.."),
            Ok(RoundWindow {
                first: 5,
                last: usize::MAX
            })
        );
        assert_eq!(
            RoundWindow::parse("..4"),
            Ok(RoundWindow { first: 1, last: 4 })
        );
        assert_eq!(
            RoundWindow::parse("9"),
            Ok(RoundWindow { first: 9, last: 9 })
        );
        assert!(RoundWindow::parse("7..3").is_err());
        assert!(RoundWindow::parse("0..2").is_err());
        assert!(RoundWindow::parse("x").is_err());
        let w = RoundWindow::parse("2..4").unwrap();
        assert!(!w.contains(1) && w.contains(2) && w.contains(4) && !w.contains(5));
    }

    #[test]
    fn metric_names_cover_the_table() {
        let r = RoundProfile {
            round: 1,
            messages: 2,
            bits: 30,
            dropped: 1,
            corrupted_bits: 4,
            crashes: 1,
            quiescent: false,
            util: [0; 5],
            path_bits: 10,
            highway_bits: 15,
            cross_bits: 5,
            qsplit: None,
            wall_ns: 0,
        };
        for m in METRICS {
            assert!(metric_value(&r, m).is_some(), "metric `{m}` extracts");
        }
        assert_eq!(metric_value(&r, "corrupted"), Some(4));
        assert_eq!(metric_value(&r, "wall"), None);
    }

    #[test]
    fn summary_renders_merged_headers() {
        let mut a = StreamAggregate::new(4, 6, 16, 2);
        a.header.classified = true;
        a.totals.rounds = 3;
        a.totals.messages = 12;
        a.totals.bits = 96;
        a.top_edges.observe(2, 64, 8);
        a.top_edges.observe(0, 32, 4);
        a.top_nodes.observe(1, 96, 12);
        let text = render_summary(&a, 1, 10);
        assert!(
            text.contains("1 archive(s): 4 nodes, 6 edges, B = 16 bits"),
            "{text}"
        );
        assert!(text.contains("highway/path classified"), "{text}");
        assert!(text.contains("3 round(s)"), "{text}");
        // Ranked by bits desc; err column present.
        let edge_pos = text.find("top 2 hottest edges").expect("edge table");
        assert!(text[edge_pos..].contains('2') && text[edge_pos..].contains('0'));

        // A poisoned merge renders the bandwidth as mixed.
        let b = StreamAggregate::new(4, 6, 32, 2);
        a.merge(&b);
        let text = render_summary(&a, 2, 10);
        assert!(text.contains("B = mixed"), "{text}");
        assert!(!text.contains("classified,"), "{text}");
    }

    #[test]
    fn summary_renders_the_qubit_split_only_when_present() {
        let mut a = StreamAggregate::new(3, 2, 8, 2);
        a.totals.rounds = 2;
        assert!(
            !render_summary(&a, 1, 10).contains("qsplit"),
            "classical archives carry no qsplit line"
        );
        a.totals.qsplit = Some(qdc_congest::QubitSplit {
            classical_bits: 14,
            qubit_bits: 7,
        });
        let text = render_summary(&a, 1, 10);
        assert!(text.contains("qsplit: classical 14, qubit 7"), "{text}");
    }
}
