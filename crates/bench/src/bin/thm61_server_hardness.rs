//! Theorem 6.1 / Appendix B: Server-model hardness, piece by piece.
//!
//! Prints the §B.3 spectral certificate for `IPmod3` (strongly balanced
//! `A_g`, `‖A_g‖ = 2√2`, the composed `Ω(n)` bound), the Gap-Eq fooling
//! sets built from greedy Gilbert–Varshamov codes, and the Lemma 3.2
//! abort-game statistics against the `4^{-2c}` closed form.

use qdc_bench::{fmt_f, print_header, print_row};
use qdc_cc::codes::{greedy_random_code, gv_log2_size_bound};
use qdc_cc::fooling::gap_equality_fooling_set;
use qdc_cc::norms::{ag_matrix, ipmod3_server_lower_bound, paturi_mod3_degree_lower};
use qdc_cc::problems::GapEquality;
use qdc_quantum::games::{abort_statistics, InnerProductStreaming};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    println!("=== §B.3: the gadget matrix A_g ===\n");
    let ag = ag_matrix();
    println!("strongly balanced: {}", ag.is_strongly_balanced());
    println!(
        "spectral norm ‖A_g‖ = {} (paper: 2√2 = {})",
        fmt_f(ag.spectral_norm(300)),
        fmt_f(2.0 * 2f64.sqrt())
    );
    println!(
        "per-gadget bound factor log₂(√16/‖A_g‖) = {} bits\n",
        fmt_f(((16f64).sqrt() / ag.spectral_norm(300)).log2())
    );

    println!("=== Theorem 6.1: Q*(IPmod3_n) = Ω(n) in the Server model ===\n");
    let widths = [8, 16, 20];
    print_header(&["n", "deg(f) ≥ n/16", "server bound (qubits)"], &widths);
    for &n in &[64usize, 128, 256, 512, 1024] {
        print_row(
            &[
                &n.to_string(),
                &fmt_f(paturi_mod3_degree_lower(n / 4)),
                &fmt_f(ipmod3_server_lower_bound(n)),
            ],
            &widths,
        );
    }

    println!("\n=== Theorem 6.1: Q*₀(βn-Eq) = Ω(n) via GV fooling sets ===\n");
    let widths = [8, 8, 14, 14, 16, 18];
    print_header(
        &[
            "n",
            "2βn",
            "GV log₂ bound",
            "greedy log₂",
            "KdW quantum ≥",
            "server (ε=1/2) ≥",
        ],
        &widths,
    );
    for &n in &[32usize, 64, 96, 128] {
        let beta = 0.125;
        let d = ((2.0 * beta * n as f64) as usize).max(2);
        // Grow the greedy target with the GV guarantee (capped for runtime)
        // so the table exhibits the 2^Ω(n) growth.
        let target = (1usize << ((gv_log2_size_bound(n, d) * 0.8) as usize).min(12)).max(16);
        let code = greedy_random_code(n, d, target, 400_000, 9);
        let fs = gap_equality_fooling_set(&code, d - 1);
        fs.verify(&GapEquality::new(n, d - 1))
            .expect("valid fooling set");
        print_row(
            &[
                &n.to_string(),
                &d.to_string(),
                &fmt_f(gv_log2_size_bound(n, d)),
                &fmt_f(fs.log2_size()),
                &fmt_f(fs.kdw_quantum_bound()),
                &fmt_f(fs.server_model_bound(0.5)),
            ],
            &widths,
        );
    }

    println!("\n=== Lemma 3.2: abort-game survival vs 4^(-2c) ===\n");
    let widths = [8, 14, 14, 18];
    print_header(&["c", "measured", "predicted", "correct|survive"], &widths);
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    for &c in &[1usize, 2] {
        let p = InnerProductStreaming::new(2 * c);
        let x: Vec<bool> = (0..2 * c).map(|i| i % 2 == 0).collect();
        let y: Vec<bool> = (0..2 * c).map(|i| i % 3 == 0).collect();
        let trials = if c == 1 { 60_000 } else { 600_000 };
        let stats = abort_statistics(&p, &x, &y, trials, &mut rng);
        print_row(
            &[
                &c.to_string(),
                &format!("{:.5}", stats.survival_rate),
                &format!("{:.5}", stats.predicted_survival),
                &fmt_f(stats.correct_given_survival),
            ],
            &widths,
        );
    }
    println!("\nThe abort strategy converts any c-qubit Server protocol into a nonlocal-game");
    println!("strategy with bias ≥ 4^(-2c)·(1/2 − ε) — so game bounds lower-bound the Server");
    println!("model, which the two-party simulation argument cannot reach in the quantum case.");
}
