//! Corollary 3.7: the full verification-problem roster, run distributed.
//!
//! The corollary extends the Theorem 3.6 bound to eleven verification
//! problems via classical reductions. This harness runs our distributed
//! verifier for each on a hard network instance, confirming the decision
//! against the sequential predicate and recording the measured rounds —
//! all of which sit in the Õ(√n + D) regime the Ω(√(n/(B log n))) bound
//! makes near-optimal.

use qdc_algos::verify::{
    verify_connectivity, verify_hamiltonian_cycle, verify_spanning_connected, verify_spanning_tree,
};
use qdc_algos::verify_ext::{
    verify_bipartiteness, verify_cut, verify_cycle_containment, verify_e_cycle_containment,
    verify_edge_on_all_paths, verify_simple_path, verify_st_connectivity, verify_st_cut,
};
use qdc_bench::{fmt_f, print_header, print_row};
use qdc_congest::CongestConfig;
use qdc_core::bounds;
use qdc_graph::{generate, predicates, NodeId};
use qdc_simthm::SimulationNetwork;

fn main() {
    let bandwidth = 64;
    let mut net = SimulationNetwork::build(11, 17);
    if net.track_count() % 2 == 1 {
        net = SimulationNetwork::build(12, 17);
    }
    let (carol, david) = generate::hamiltonian_matching_pair(net.track_count());
    let m = net.embed_matchings(&carol, &david);
    let g = net.graph();
    let n = g.node_count();
    let cfg = CongestConfig::classical(bandwidth);
    let bound = bounds::verification_lower_bound(n, bandwidth);

    println!(
        "=== Corollary 3.7: verification suite on N(Γ={}, L={}), n = {n} ===",
        net.path_count(),
        net.length()
    );
    println!(
        "subnetwork M = embedded Hamiltonian matchings; Ω-bound {} rounds\n",
        fmt_f(bound)
    );

    let widths = [28, 10, 12, 12];
    print_header(&["problem", "accept", "rounds", "truth agrees"], &widths);

    let s = NodeId(0);
    let t = NodeId((n - 1) as u32);
    let e0 = m.edges().next().expect("M has edges");
    let (u0, v0) = g.endpoints(e0);

    let mut rows: Vec<(&str, bool, usize, bool)> = Vec::new();
    let r = verify_hamiltonian_cycle(g, cfg, &m);
    rows.push((
        "Hamiltonian cycle",
        r.accept,
        r.ledger.rounds,
        r.accept == predicates::is_hamiltonian_cycle(g, &m),
    ));
    let r = verify_spanning_tree(g, cfg, &m);
    rows.push((
        "spanning tree",
        r.accept,
        r.ledger.rounds,
        r.accept == predicates::is_spanning_tree(g, &m),
    ));
    let r = verify_spanning_connected(g, cfg, &m);
    rows.push((
        "spanning connected subgraph",
        r.accept,
        r.ledger.rounds,
        r.accept == predicates::is_spanning_connected_subgraph(g, &m),
    ));
    let r = verify_connectivity(g, cfg, &m);
    rows.push((
        "connectivity",
        r.accept,
        r.ledger.rounds,
        r.accept == predicates::is_connected(g, &m),
    ));
    let r = verify_cycle_containment(g, cfg, &m);
    rows.push((
        "cycle containment",
        r.accept,
        r.ledger.rounds,
        r.accept == predicates::contains_cycle(g, &m),
    ));
    let r = verify_e_cycle_containment(g, cfg, &m, e0);
    rows.push((
        "e-cycle containment",
        r.accept,
        r.ledger.rounds,
        r.accept == predicates::contains_cycle_through(g, &m, e0),
    ));
    let r = verify_bipartiteness(g, cfg, &m);
    rows.push((
        "bipartiteness",
        r.accept,
        r.ledger.rounds,
        r.accept == predicates::is_bipartite(g, &m),
    ));
    let r = verify_st_connectivity(g, cfg, &m, s, t);
    rows.push((
        "s-t connectivity",
        r.accept,
        r.ledger.rounds,
        r.accept == predicates::st_connected(g, &m, s, t),
    ));
    let r = verify_cut(g, cfg, &m);
    rows.push((
        "cut",
        r.accept,
        r.ledger.rounds,
        r.accept == predicates::is_cut(g, &m),
    ));
    let r = verify_st_cut(g, cfg, &m, s, t);
    rows.push((
        "s-t cut",
        r.accept,
        r.ledger.rounds,
        r.accept == predicates::is_st_cut(g, &m, s, t),
    ));
    let r = verify_edge_on_all_paths(g, cfg, &m, u0, v0, e0);
    rows.push((
        "edge on all paths",
        r.accept,
        r.ledger.rounds,
        r.accept == predicates::edge_on_all_paths(g, &m, u0, v0, e0),
    ));
    let r = verify_simple_path(g, cfg, &m);
    rows.push((
        "simple path",
        r.accept,
        r.ledger.rounds,
        r.accept == predicates::is_simple_path(g, &m),
    ));

    let mut all_agree = true;
    for (name, accept, rounds, agrees) in &rows {
        all_agree &= agrees;
        print_row(
            &[
                name,
                &accept.to_string(),
                &rounds.to_string(),
                &agrees.to_string(),
            ],
            &widths,
        );
    }
    assert!(all_agree, "every verifier must agree with its predicate");
    println!(
        "\nAll {} verifiers agree with the sequential predicates. Every one of them",
        rows.len()
    );
    println!("needs Ω(√(n/(B log n))) rounds — quantum communication included (Cor. 3.7).");
}
