//! Theorem 3.5: the Quantum Simulation Theorem, audited on real runs.
//!
//! Runs an event-driven component-labeling algorithm (the core of a Ham
//! verifier) on `N(Γ, L)` with an embedded subnetwork `M`, traces every
//! message, and charges each to the party owning its sender under the
//! ownership schedule `S_C^t / S_D^t / S_S^t`. The audited Carol+David
//! cost must stay within `6kB` per round — which is exactly the
//! `O(B log L)`-per-round claim of Theorem 3.5.

use qdc_bench::{print_header, print_row};
use qdc_congest::{CongestConfig, Inbox, Message, NodeAlgorithm, NodeInfo, Outbox, Simulator};
use qdc_graph::generate;
use qdc_simthm::{audit_trace, SimulationNetwork};

struct ComponentFlood {
    label: u64,
    active_ports: Vec<bool>,
    width: usize,
}

impl NodeAlgorithm for ComponentFlood {
    fn on_start(&mut self, _info: &NodeInfo, out: &mut Outbox) {
        for p in 0..self.active_ports.len() {
            if self.active_ports[p] {
                out.send(p, Message::from_uint(self.label, self.width));
            }
        }
    }
    fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        let mut improved = false;
        for (port, msg) in inbox.iter() {
            if self.active_ports[port] {
                if let Some(v) = msg.as_uint(self.width) {
                    if v < self.label {
                        self.label = v;
                        improved = true;
                    }
                }
            }
        }
        if improved {
            for p in 0..self.active_ports.len() {
                if self.active_ports[p] {
                    out.send(p, Message::from_uint(self.label, self.width));
                }
            }
        }
    }
    fn is_terminated(&self) -> bool {
        true
    }
}

fn main() {
    let bandwidth = 32;
    println!("=== Theorem 3.5: per-round Carol+David cost vs the 6kB budget ===\n");
    println!("workload: min-label flood along the embedded M (quantum channel, B = {bandwidth})\n");
    let widths = [6, 6, 6, 10, 10, 12, 14, 12, 10];
    print_header(
        &[
            "Γ",
            "L",
            "k",
            "horizon",
            "rounds",
            "paid bits",
            "max/round",
            "6kB budget",
            "within",
        ],
        &widths,
    );
    for &(gamma, l) in &[(11usize, 17usize), (11, 33), (11, 65), (27, 33), (59, 33)] {
        let mut net = SimulationNetwork::build(gamma, l);
        if net.track_count() % 2 == 1 {
            net = SimulationNetwork::build(gamma + 1, l);
        }
        let tracks = net.track_count();
        let (carol, david) = generate::hamiltonian_matching_pair(tracks);
        let m = net.embed_matchings(&carol, &david);
        let width = qdc_algos::widths::id_width(net.graph().node_count());
        let cfg = CongestConfig::quantum(bandwidth);
        let sim = Simulator::new(net.graph(), cfg);
        let (_, report, trace) = sim.run_traced(
            |info| ComponentFlood {
                label: info.id.0 as u64,
                active_ports: info.incident_edges.iter().map(|&e| m.contains(e)).collect(),
                width,
            },
            net.horizon(),
        );
        let audit = audit_trace(&net, &trace, bandwidth);
        assert!(audit.within_budget, "Theorem 3.5 budget must hold");
        print_row(
            &[
                &net.path_count().to_string(),
                &net.length().to_string(),
                &net.highway_count().to_string(),
                &net.horizon().to_string(),
                &report.rounds.to_string(),
                &audit.total_paid().to_string(),
                &audit.max_paid_per_round.to_string(),
                &audit.per_round_budget.to_string(),
                &audit.within_budget.to_string(),
            ],
            &widths,
        );
    }
    println!("\nReading: the paid traffic per round is bounded by 6kB = O(B log L) regardless");
    println!("of Γ — so a T-round distributed algorithm yields an O(B log L · T)-bit Server");
    println!("protocol, and the Ω(Γ) Server-model hardness forces T = Ω(Γ/(B log L)).");
}
