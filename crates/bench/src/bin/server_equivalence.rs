//! Section 3.1: the classical Server ⇄ two-party equivalence, executed.
//!
//! The paper sketches why the Server model equals the two-party model
//! classically (Alice simulates Carol + a server copy, Bob simulates
//! David + a server copy) and why that simulation *fails* quantumly —
//! the entire reason the Server model exists. This harness runs the
//! classical simulation on concrete protocols and shows the costs match
//! bit for bit.

use qdc_bench::{print_header, print_row};
use qdc_cc::problems::{Equality, GapEquality, IpMod3, TwoPartyFunction};
use qdc_cc::server::{run_server, simulate_in_two_party, StreamedServerProtocol};
use qdc_graph::generate;

fn check<F: TwoPartyFunction + Clone>(f: F, seed: u64, widths: &[usize]) {
    let n = f.input_bits();
    let p = StreamedServerProtocol::new(f.clone());
    let mut agree = true;
    let mut cost_equal = true;
    let mut server_cost = 0;
    for trial in 0..20 {
        let x = generate::random_bits(n, seed + trial);
        let y = if trial % 3 == 0 {
            x.clone()
        } else {
            generate::random_bits(n, seed + 1000 + trial)
        };
        if !f.in_promise(&x, &y) {
            continue;
        }
        let sv = run_server(&p, &x, &y);
        let tp = simulate_in_two_party(&p, &x, &y);
        agree &= sv.output == tp.output && sv.output == f.evaluate(&x, &y);
        cost_equal &= sv.cost() == tp.total_bits();
        server_cost = sv.cost();
    }
    print_row(
        &[
            &f.name(),
            &server_cost.to_string(),
            &agree.to_string(),
            &cost_equal.to_string(),
        ],
        widths,
    );
}

fn main() {
    println!("=== §3.1: classical Server model ≡ two-party model (simulation) ===\n");
    let widths = [14, 14, 14, 22];
    print_header(
        &[
            "problem",
            "cost (bits)",
            "outputs agree",
            "two-party cost equal",
        ],
        &widths,
    );
    check(Equality::new(16), 1, &widths);
    check(Equality::new(64), 2, &widths);
    check(IpMod3::new(15), 3, &widths);
    check(IpMod3::new(63), 4, &widths);
    check(GapEquality::new(32, 7), 5, &widths);
    println!("\nClassically, nothing is lost by giving the players a free-talking server:");
    println!("Alice and Bob each maintain a deterministic copy of the server and exchange");
    println!("exactly the bits Carol and David would have sent. Quantumly, the server's");
    println!("state cannot be duplicated (no-cloning), the copies cannot be kept in sync");
    println!("without extra messages — and whether Q*,sv = Q*,cc remains the paper's open");
    println!("problem. Hence: prove hardness directly in the Server model (Section 6).");
}
