//! Figure 2: the lower-bounds table, predicted and measured.
//!
//! Prints (a) the paper's table instantiated at concrete `(n, B)` and
//! (b) measured rounds of our distributed Ham/ST verifiers on the
//! Theorem 3.5 hard networks across a size sweep — the measured upper
//! bound should track the √n shape of the quantum lower bound (they are
//! tight up to polylog factors).

use qdc_algos::verify::{verify_hamiltonian_cycle, verify_spanning_tree};
use qdc_bench::{fmt_f, print_header, print_row};
use qdc_congest::CongestConfig;
use qdc_core::bounds;
use qdc_graph::generate;
use qdc_simthm::SimulationNetwork;

fn main() {
    let bandwidth = 64;

    println!("=== Figure 2 (a): the bounds table at n = 4096, B = 16 ===\n");
    let widths = [44, 52, 62, 10];
    print_header(
        &[
            "problem",
            "previous",
            "this paper (quantum + entanglement)",
            "rounds",
        ],
        &widths,
    );
    for row in bounds::fig2_rows(4096, 16) {
        print_row(
            &[row.problem, row.previous, row.new, &fmt_f(row.bound_rounds)],
            &widths,
        );
    }

    println!(
        "\n=== Figure 2 (b): measured verification rounds vs the Ω(√(n/(B log n))) shape ===\n"
    );
    let widths = [8, 8, 8, 10, 12, 12, 16];
    print_header(
        &[
            "Γ",
            "L",
            "n",
            "diam",
            "Ham rounds",
            "ST rounds",
            "Ω-bound (rounds)",
        ],
        &widths,
    );
    for &(gamma, l) in &[(6usize, 9usize), (9, 17), (13, 17), (19, 33), (27, 33)] {
        let mut net = SimulationNetwork::build(gamma, l);
        if net.track_count() % 2 == 1 {
            net = SimulationNetwork::build(gamma + 1, l);
        }
        let tracks = net.track_count();
        let (carol, david) = generate::hamiltonian_matching_pair(tracks);
        let m = net.embed_matchings(&carol, &david);
        let n = net.graph().node_count();
        let cfg = CongestConfig::classical(bandwidth);
        let ham = verify_hamiltonian_cycle(net.graph(), cfg, &m);
        assert!(ham.accept, "embedded M is a Hamiltonian cycle");
        let st = verify_spanning_tree(net.graph(), cfg, &m);
        assert!(!st.accept, "a cycle is not a tree");
        let diam = qdc_graph::algorithms::diameter(net.graph()).unwrap();
        print_row(
            &[
                &gamma.to_string(),
                &net.length().to_string(),
                &n.to_string(),
                &diam.to_string(),
                &ham.ledger.rounds.to_string(),
                &st.ledger.rounds.to_string(),
                &fmt_f(bounds::verification_lower_bound(n, bandwidth)),
            ],
            &widths,
        );
    }
    println!("\nShape check: measured rounds and the bound both grow ~√n (constants differ —");
    println!("the verifiers are Õ(√n + D), the bound is Ω(√(n/(B log n))); tight up to polylogs).");
}
