//! Figures 8, 10, 13: the simulation network's shape.
//!
//! Regenerates Observation D.2: `N(Γ, L)` has `Θ(ΓL)` nodes and diameter
//! `Θ(log L)`; also shows the highway ablation (diameter without
//! highways is `Θ(L)`), and Observation 8.1 (cycles of the embedded `M`
//! equal cycles of the matching graph `G`).

use qdc_bench::{print_header, print_row};
use qdc_graph::{algorithms, generate, predicates, GraphBuilder, NodeId};
use qdc_simthm::SimulationNetwork;

fn ladder_without_highways(gamma: usize, l: usize) -> qdc_graph::Graph {
    let mut b = GraphBuilder::new(gamma * l);
    for t in 0..gamma {
        for p in 0..(l - 1) {
            b.add_edge(NodeId::from(t * l + p), NodeId::from(t * l + p + 1));
        }
    }
    for a in 0..gamma {
        for c in (a + 1)..gamma {
            b.add_edge(NodeId::from(a * l), NodeId::from(c * l));
            b.add_edge(NodeId::from(a * l + l - 1), NodeId::from(c * l + l - 1));
        }
    }
    b.build()
}

fn main() {
    println!("=== Figures 8/10/13 + Observation D.2: size and diameter of N(Γ, L) ===\n");
    let widths = [6, 6, 6, 8, 8, 14, 10, 16];
    print_header(
        &[
            "Γ",
            "L",
            "k",
            "nodes",
            "ΓL",
            "diam (with)",
            "4k+8",
            "diam (no hwy)",
        ],
        &widths,
    );
    for &(gamma, l) in &[
        (4usize, 9usize),
        (4, 17),
        (4, 33),
        (4, 65),
        (8, 33),
        (16, 33),
    ] {
        let net = SimulationNetwork::build(gamma, l);
        let with = algorithms::diameter(net.graph()).unwrap();
        let without = algorithms::diameter(&ladder_without_highways(gamma, net.length())).unwrap();
        print_row(
            &[
                &gamma.to_string(),
                &net.length().to_string(),
                &net.highway_count().to_string(),
                &net.graph().node_count().to_string(),
                &(gamma * net.length()).to_string(),
                &with.to_string(),
                &net.diameter_upper_bound().to_string(),
                &without.to_string(),
            ],
            &widths,
        );
    }
    println!("\nAblation (design decision D5): highways take the diameter from Θ(L) to Θ(log L).");

    println!("\n=== Observation 8.1: cycles(M) = cycles(G) for random matchings ===\n");
    let widths = [8, 10, 12, 12, 8];
    print_header(
        &["tracks", "seed", "cycles(G)", "cycles(M)", "equal"],
        &widths,
    );
    let mut shown = 0;
    let mut seed = 0u64;
    while shown < 6 {
        seed += 1;
        let net = SimulationNetwork::build(13, 17); // 13 + 4 = 17 … odd
        let net = if net.track_count() % 2 == 1 {
            SimulationNetwork::build(14, 17)
        } else {
            net
        };
        let tracks = net.track_count();
        let carol = generate::random_perfect_matching(tracks, seed);
        let david = generate::random_perfect_matching(tracks, seed + 1000);
        // Skip seeds where the two matchings share a pair (G would need a
        // multigraph).
        let mut b = GraphBuilder::new(tracks);
        let mut simple = true;
        for &(a, c) in carol.iter().chain(&david) {
            let before = b.edge_count();
            b.add_edge_if_absent(NodeId::from(a), NodeId::from(c));
            simple &= b.edge_count() > before;
        }
        if !simple {
            continue;
        }
        let g = b.build();
        let gc = predicates::cycle_count_two_regular(&g, &g.full_subgraph()).unwrap();
        let m = net.embed_matchings(&carol, &david);
        let mc = predicates::cycle_count_two_regular(net.graph(), &m).unwrap();
        assert_eq!(gc, mc);
        print_row(
            &[
                &tracks.to_string(),
                &seed.to_string(),
                &gc.to_string(),
                &mc.to_string(),
                &(gc == mc).to_string(),
            ],
            &widths,
        );
        shown += 1;
    }
    println!("\nThe embedding is cycle-structure-preserving, so deciding Ham(M) on N decides");
    println!("Ham(G) in the Server model — the hinge of the Quantum Simulation Theorem.");
}
