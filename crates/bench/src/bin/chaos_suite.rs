//! Chaos suite: broadcast robustness under seeded fault injection.
//!
//! Sweeps message-drop rates over several topologies and compares a
//! fire-once flood (the paper's fault-free idiom) against the
//! acknowledgement-based `robust_broadcast` from `qdc-algos`. The
//! fire-once flood strands nodes as soon as a frontier message dies; the
//! hardened variant retransmits until each port is settled, so its
//! coverage stays at 100% on the surviving graph while its round count
//! grows with the loss rate. Every run is seeded — re-running the suite
//! reproduces the tables byte for byte.

use qdc_algos::flood::{chaos_round_budget, robust_broadcast};
use qdc_bench::{fmt_f, print_header, print_row};
use qdc_congest::{
    ChaosConfig, CongestConfig, Inbox, Message, NodeAlgorithm, NodeInfo, Outbox, Simulator,
};
use qdc_graph::{generate, Graph, NodeId};

/// Fire-once flood: forward the token the first time it is heard, then
/// stay silent. Quiescence-driven, so lost frontier messages strand the
/// subtree behind them.
struct NaiveFlood {
    informed: bool,
}

impl NodeAlgorithm for NaiveFlood {
    fn on_start(&mut self, info: &NodeInfo, out: &mut Outbox) {
        if info.id == NodeId(0) {
            self.informed = true;
            out.broadcast(Message::from_uint(1, 2));
        }
    }
    fn on_round(&mut self, _info: &NodeInfo, inbox: &Inbox, out: &mut Outbox) {
        if !self.informed && !inbox.is_empty() {
            self.informed = true;
            out.broadcast(Message::from_uint(1, 2));
        }
    }
    fn is_terminated(&self) -> bool {
        true
    }
}

fn chaos(seed: u64, drop: f64, watchdog: usize) -> ChaosConfig {
    ChaosConfig {
        seed,
        drop_prob: drop,
        crash_schedule: Vec::new(),
        corrupt_prob: 0.02,
        max_rounds_watchdog: watchdog,
    }
}

fn main() {
    let cfg = CongestConfig::classical(8);
    let n = 24;
    let topologies: Vec<(&str, Graph)> = vec![
        ("path", Graph::path(n)),
        ("cycle", Graph::cycle(n)),
        ("sparse", generate::random_connected(n, n + 6, 11)),
    ];
    let drops = [0.0, 0.1, 0.2, 0.3];
    let seed = 7;

    println!("=== Chaos suite: broadcast coverage under message loss ===\n");
    println!(
        "n = {n}, B = {} bits, corrupt_prob = 0.02, seed = {seed}; coverage is the\n\
         fraction of nodes informed (fire-once flood vs ack-based robust flood)\n",
        cfg.bandwidth_bits
    );
    let widths = [8, 6, 11, 11, 12, 12, 9, 10];
    print_header(
        &[
            "topo",
            "drop",
            "naive_cov",
            "naive_rds",
            "robust_cov",
            "robust_rds",
            "dropped",
            "corrupted",
        ],
        &widths,
    );

    for (name, g) in &topologies {
        for &drop in &drops {
            let give_up = chaos_round_budget(n, drop);
            let cc = chaos(seed, drop, give_up + 5);

            let sim = Simulator::new(g, cfg);
            let (naive, naive_report) = sim
                .try_run(|_| NaiveFlood { informed: false }, &cc)
                .expect("fire-once flood quiesces");
            let naive_cov =
                naive.iter().filter(|x| x.informed).count() as f64 / g.node_count() as f64;

            let out = robust_broadcast(g, cfg, NodeId(0), &cc, give_up)
                .expect("robust flood winds down within the budget");
            let robust_cov =
                out.informed.iter().filter(|&&x| x).count() as f64 / g.node_count() as f64;

            print_row(
                &[
                    name,
                    &fmt_f(drop),
                    &fmt_f(naive_cov),
                    &naive_report.rounds.to_string(),
                    &fmt_f(robust_cov),
                    &out.report.rounds.to_string(),
                    &out.report.messages_dropped.to_string(),
                    &out.report.bits_corrupted.to_string(),
                ],
                &widths,
            );
        }
    }
    println!(
        "\nThe robust flood holds 100% coverage at every loss rate; the fire-once\n\
         flood degrades as soon as drop > 0. Round counts grow roughly like\n\
         1/(1 - drop), matching the retransmission budget in chaos_round_budget."
    );
}
