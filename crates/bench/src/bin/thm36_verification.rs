//! Theorem 3.6: the verification lower bound, parameters and measured
//! near-tightness.
//!
//! Prints the §9.1 parameter composition `(L, Γ)` across `n`, verifying
//! `Γ·L = Θ(n)` and `L ≈ √(n/(B log n))`; then runs the distributed Ham
//! and ST verifiers (plus the Ham → ST reduction of the proof) on scaled
//! networks, showing the measured Õ(√n + D) rounds against the Ω-curve.

use qdc_algos::verify::{verify_hamiltonian_cycle, verify_spanning_tree};
use qdc_bench::{fmt_f, print_header, print_row};
use qdc_congest::CongestConfig;
use qdc_core::{bounds, theorems};
use qdc_gadgets::ham_to_st::verify_ham_via_spanning_tree;
use qdc_graph::generate;
use qdc_simthm::SimulationNetwork;

fn main() {
    let bandwidth = 64;

    println!("=== §9.1: parameter composition L = √(n/(B log n)), Γ = √(B n log n) ===\n");
    let widths = [10, 8, 10, 12, 10];
    print_header(&["n", "L", "Γ", "Γ·L / n", "Ω-bound"], &widths);
    for &n in &[1usize << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18] {
        let p = theorems::theorem36_params(n, bandwidth);
        print_row(
            &[
                &n.to_string(),
                &p.l.to_string(),
                &p.gamma.to_string(),
                &fmt_f(p.node_scale() as f64 / n as f64),
                &fmt_f(bounds::verification_lower_bound(n, bandwidth)),
            ],
            &widths,
        );
    }

    println!("\n=== measured verification rounds on hard networks (scaled) ===\n");
    let widths = [8, 10, 12, 12, 14, 12];
    print_header(
        &[
            "n",
            "√n",
            "Ham rounds",
            "ST rounds",
            "Ham→ST agree",
            "Ω-bound",
        ],
        &widths,
    );
    for &(gamma, l) in &[(6usize, 9usize), (11, 17), (19, 17), (27, 33), (43, 33)] {
        let mut net = SimulationNetwork::build(gamma, l);
        if net.track_count() % 2 == 1 {
            net = SimulationNetwork::build(gamma + 1, l);
        }
        let tracks = net.track_count();
        let (carol, david) = generate::hamiltonian_matching_pair(tracks);
        let m = net.embed_matchings(&carol, &david);
        let n = net.graph().node_count();
        let cfg = CongestConfig::classical(bandwidth);
        let ham = verify_hamiltonian_cycle(net.graph(), cfg, &m);
        let st = verify_spanning_tree(net.graph(), cfg, &m);
        // The Theorem 3.6 proof's reduction: Ham via an ST oracle.
        let via_st = verify_ham_via_spanning_tree(net.graph(), &m);
        assert!(ham.accept && !st.accept && via_st);
        print_row(
            &[
                &n.to_string(),
                &fmt_f((n as f64).sqrt()),
                &ham.ledger.rounds.to_string(),
                &st.ledger.rounds.to_string(),
                &(via_st == ham.accept).to_string(),
                &fmt_f(bounds::verification_lower_bound(n, bandwidth)),
            ],
            &widths,
        );
    }
    println!("\nTheorem 3.6: no quantum algorithm (even with entanglement) can verify Ham or");
    println!("ST on these networks in o(√(n/(B log n))) rounds; the measured classical");
    println!("verifiers are within polylog factors — quantumness buys essentially nothing.");
}
