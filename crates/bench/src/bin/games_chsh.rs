//! Section 6 / Appendix B.1: nonlocal games — classical vs entangled.
//!
//! Prints the CHSH game's exact classical bias (strategy enumeration) and
//! entangled bias (state-vector simulation of the optimal measurement
//! angles), plus a sweep of Bob's angle showing the Tsirelson optimum.

use qdc_bench::{fmt_f, print_header, print_row};
use qdc_quantum::games::{chsh_optimal_strategy, EntangledXorStrategy, XorGame};
use qdc_quantum::protocols::epr_pair;

fn main() {
    let game = XorGame::chsh();
    println!("=== CHSH: the canonical XOR game ===\n");
    println!(
        "classical bias (exact enumeration): {}",
        fmt_f(game.classical_bias())
    );
    println!(
        "entangled bias (optimal strategy):  {}  (Tsirelson √2/2 = {})\n",
        fmt_f(game.entangled_bias(&chsh_optimal_strategy())),
        fmt_f(std::f64::consts::FRAC_1_SQRT_2)
    );

    println!("=== angle sweep: Bob measures at ±θ, Alice at 0 / π/2 ===\n");
    let widths = [12, 14, 18];
    print_header(&["θ (rad)", "bias", "beats classical?"], &widths);
    for k in 0..=12 {
        let theta = k as f64 * std::f64::consts::FRAC_PI_2 / 12.0;
        let strategy = EntangledXorStrategy {
            state: epr_pair(),
            alice_angles: vec![0.0, std::f64::consts::FRAC_PI_2],
            bob_angles: vec![theta, -theta],
        };
        let bias = game.entangled_bias(&strategy);
        print_row(
            &[
                &fmt_f(theta),
                &fmt_f(bias),
                &(bias > 0.5 + 1e-12).to_string(),
            ],
            &widths,
        );
    }
    println!("\nThe maximum sits at θ = π/4 with bias √2/2 ≈ 0.7071 — the entanglement");
    println!("advantage that Lemma 3.2 channels from Server-model protocols into games,");
    println!("making game-based bounds the right tool where fooling/rank arguments break.");
}
