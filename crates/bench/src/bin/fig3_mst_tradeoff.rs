//! Figure 3: the MST time/aspect-ratio trade-off.
//!
//! For fixed `n` and `α`, sweeps the weight aspect ratio `W` and prints:
//! the Theorem 3.8 lower bound `Ω(min(W/α, √n)/√(B log n))`, the two
//! upper-bound branches (Elkin `O(W/α + D)`, Kutten–Peleg `Õ(√n + D)`),
//! and the **measured** rounds of both distributed MST algorithms on a
//! Theorem 3.8 hard network with the §9.2 weight gadget. The
//! reproduction target is the *shape*: the approximate branch grows
//! linearly in `W`, the exact branch is flat, and they cross near
//! `W = Θ(α√n)` — the solid line of Figure 3.

use qdc_algos::mst::{mst_approx_sweep, mst_exact};
use qdc_bench::{fmt_f, print_header, print_row};
use qdc_congest::CongestConfig;
use qdc_core::{bounds, theorems};
use qdc_graph::generate;
use qdc_simthm::SimulationNetwork;

fn main() {
    let bandwidth = 48;
    let alpha = 2.0;

    // A fixed Theorem 3.8-style network (scaled down for the simulator).
    let mut net = SimulationNetwork::build(13, 17);
    if net.track_count() % 2 == 1 {
        net = SimulationNetwork::build(14, 17);
    }
    let n = net.graph().node_count();
    let diam = qdc_graph::algorithms::diameter(net.graph()).unwrap() as usize;
    let (carol, david) = generate::hamiltonian_matching_pair(net.track_count());
    let m = net.embed_matchings(&carol, &david);

    println!("=== Figure 3: T(n, W) for n = {n}, α = {alpha}, B = {bandwidth}, D = {diam} ===\n");
    println!(
        "theory crossovers: W = α√n ≈ {}, W = αn ≈ {}\n",
        fmt_f(bounds::fig3_first_crossover(n, alpha)),
        fmt_f(bounds::fig3_second_crossover(n, alpha))
    );

    let widths = [8, 14, 14, 14, 16, 16, 12];
    print_header(
        &[
            "W",
            "lower Ω(·)",
            "upper W/α+D",
            "upper √n+D",
            "measured approx",
            "measured exact",
            "ratio ok",
        ],
        &widths,
    );
    let opt = qdc_graph::algorithms::kruskal_mst(
        net.graph(),
        &theorems::weight_gadget(net.graph(), &m, 1),
    );
    let _ = opt;
    for &w in &[2u64, 8, 32, 128, 512, 2048] {
        let weights = theorems::weight_gadget(net.graph(), &m, w);
        let cfg = CongestConfig::classical(bandwidth);
        let approx = mst_approx_sweep(net.graph(), cfg, &weights, alpha);
        let exact = mst_exact(net.graph(), cfg, &weights);
        let reference = qdc_graph::algorithms::kruskal_mst(net.graph(), &weights);
        assert_eq!(
            exact.total_weight, reference.total_weight,
            "exact MST must match Kruskal"
        );
        let ratio_ok = approx.total_weight as f64 <= alpha * reference.total_weight as f64;
        print_row(
            &[
                &w.to_string(),
                &fmt_f(bounds::optimization_lower_bound(
                    n, bandwidth, w as f64, alpha,
                )),
                &fmt_f(bounds::elkin_upper(w as f64, alpha, diam)),
                &fmt_f(bounds::sqrt_n_plus_d_upper(n, diam)),
                &approx.ledger.rounds.to_string(),
                &exact.ledger.rounds.to_string(),
                &ratio_ok.to_string(),
            ],
            &widths,
        );
    }
    println!("\nShape check: 'measured approx' grows ~W/α while 'measured exact' stays flat;");
    println!("the winner flips at the crossover, matching the solid line of Figure 3.");
}
