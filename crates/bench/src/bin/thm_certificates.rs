//! The §9 derivations as printable, auditable certificates.
//!
//! Prints the fully-evaluated Theorem 3.6 and 3.8 derivations — Server
//! hardness × simulation cost × parameter choice — at several scales,
//! with every constant explicit.

use qdc_core::certificates::{theorem36_certificate, theorem38_certificate, CompositionConstants};

fn main() {
    let consts = CompositionConstants::default();
    println!(
        "=== Executable §9 certificates (c′ = {}, c = {}) ===\n",
        consts.server_constant, consts.simulation_constant
    );

    for &n in &[1usize << 14, 1 << 18, 1 << 22] {
        println!("{}", theorem36_certificate(n, 16, &consts).render());
    }

    println!("--- Theorem 3.8 across the W sweep (n = 2^18, α = 2) ---\n");
    for &w in &[256.0f64, 4096.0, 1e9] {
        println!(
            "{}",
            theorem38_certificate(1 << 18, 16, w, 2.0, &consts).render()
        );
    }

    // The measured simulation constant (audits stay under 2) tightens the
    // bound by 3×:
    let tight = CompositionConstants {
        simulation_constant: 2.0,
        ..Default::default()
    };
    println!("--- With the *measured* simulation constant c = 2 ---\n");
    println!("{}", theorem36_certificate(1 << 18, 16, &tight).render());
}
