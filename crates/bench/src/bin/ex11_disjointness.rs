//! Example 1.1: distributed Set Disjointness — the quantum speedup.
//!
//! Prints measured rounds of the classical streaming protocol and the
//! quantum (Grover round-trip) protocol at small scale, then the
//! closed-form curves across `b`, locating the crossover where quantum
//! communication genuinely wins — the phenomenon that forces the paper to
//! abandon Disjointness-based lower bounds.

use qdc_algos::disjointness::{
    classical_disjointness, classical_rounds, quantum_disjointness, quantum_rounds,
};
use qdc_bench::{fmt_f, print_header, print_row};
use qdc_congest::CongestConfig;
use qdc_graph::generate;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let d = 16; // path length (distance between the input holders)
    let bandwidth = 16;
    let mut rng = ChaCha8Rng::seed_from_u64(11);

    println!("=== Example 1.1 (a): measured runs at distance D = {d}, B = {bandwidth} ===\n");
    let widths = [8, 12, 14, 14, 12];
    print_header(
        &["b", "disjoint?", "classical rds", "quantum rds", "q wins?"],
        &widths,
    );
    for &b in &[64usize, 256, 1024, 4096] {
        let x = generate::random_bits(b, 100 + b as u64);
        let mut y: Vec<bool> = x.iter().map(|&v| !v).collect();
        if b >= 256 {
            y[b / 2] = x[b / 2]; // plant an intersection for larger b
        }
        let planted = x.iter().zip(&y).any(|(&a, &c)| a && c);
        let c_run = classical_disjointness(&x, &y, d, CongestConfig::classical(bandwidth));
        let q_run = quantum_disjointness(&x, &y, d, CongestConfig::quantum(bandwidth), &mut rng);
        assert_eq!(c_run.disjoint, !planted);
        assert_eq!(q_run.disjoint, !planted);
        print_row(
            &[
                &b.to_string(),
                &c_run.disjoint.to_string(),
                &c_run.ledger.rounds.to_string(),
                &q_run.ledger.rounds.to_string(),
                &(q_run.ledger.rounds < c_run.ledger.rounds).to_string(),
            ],
            &widths,
        );
    }

    println!("\n=== Example 1.1 (b): closed-form crossover (D = {d}, B = {bandwidth}) ===\n");
    let widths = [12, 16, 16, 10];
    print_header(
        &["b", "classical D+b/B", "quantum 2D·π√b/4", "q wins?"],
        &widths,
    );
    let mut crossover = None;
    for k in 6..=24 {
        let b = 1usize << k;
        let c = classical_rounds(b, d, bandwidth);
        let q = quantum_rounds(b, d);
        if q < c && crossover.is_none() {
            crossover = Some(b);
        }
        print_row(
            &[
                &format!("2^{k}"),
                &c.to_string(),
                &q.to_string(),
                &(q < c).to_string(),
            ],
            &widths,
        );
    }
    match crossover {
        Some(b) => println!(
            "\nQuantum wins for b ≥ {b} (analytic crossover √b ≈ (π/2)·D·B = {}).",
            fmt_f(std::f64::consts::FRAC_PI_2 * d as f64 * bandwidth as f64)
        ),
        None => println!("\nNo crossover in range (increase b)."),
    }
    println!("In the paper's regime (b = √n, D = O(log n)) this is the Õ(n^1/4·D)-round");
    println!("quantum Disjointness of [AA05] beating the classical Ω̃(√n) bound.");
}
