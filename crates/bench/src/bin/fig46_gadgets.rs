//! Figures 4–7 and 12: the gadget reductions, validated.
//!
//! Regenerates the constructions' stated behaviour: the per-gadget track
//! permutation of Figure 5 (Observation 7.1), the chained permutation of
//! Figure 6 (Lemma 7.2), the Hamiltonicity criterion of Figure 12
//! (Lemma C.3), and the pass/turn behaviour + δ-cycle counts of the
//! Figure 7 Gap-Eq gadget.

use qdc_bench::{print_header, print_row};
use qdc_gadgets::ipmod3_ham::gadget_permutation;
use qdc_gadgets::{gapeq_to_ham, ipmod3_to_ham};
use qdc_graph::{generate, predicates};

fn main() {
    println!("=== Figure 5: per-gadget track permutation σ = (β^y α^x)² ===\n");
    let widths = [6, 6, 20, 24];
    print_header(&["x_i", "y_i", "σ (tracks 0,1,2)", "meaning"], &widths);
    for &(x, y) in &[(false, false), (false, true), (true, false), (true, true)] {
        let s = gadget_permutation(x, y);
        let meaning = if s == [0, 1, 2] {
            "identity (x·y = 0)"
        } else {
            "shift by 2·x·y mod 3"
        };
        print_row(
            &[
                &(x as u8).to_string(),
                &(y as u8).to_string(),
                &format!("{s:?}"),
                meaning,
            ],
            &widths,
        );
    }

    println!("\n=== Figures 6 & 12: IPmod3 → Ham over random inputs (Lemma C.3) ===\n");
    let widths = [6, 14, 10, 8, 12, 14];
    print_header(
        &[
            "n",
            "Σxᵢyᵢ mod 3",
            "Ham?",
            "cycles",
            "|V(G)|",
            "matchings ok",
        ],
        &widths,
    );
    for &(n, seed) in &[(8usize, 1u64), (32, 2), (64, 3), (128, 4), (256, 5)] {
        let x = generate::random_bits(n, seed);
        let y = generate::random_bits(n, seed + 100);
        let inst = ipmod3_to_ham(&x, &y);
        let sub = inst.full_subgraph();
        let s: usize = x.iter().zip(&y).filter(|&(&a, &b)| a && b).count();
        let ham = predicates::is_hamiltonian_cycle(inst.graph(), &sub);
        let cycles = predicates::cycle_count_two_regular(inst.graph(), &sub).unwrap();
        assert_eq!(ham, !s.is_multiple_of(3), "Lemma C.3");
        print_row(
            &[
                &n.to_string(),
                &(s % 3).to_string(),
                &ham.to_string(),
                &cycles.to_string(),
                &inst.graph().node_count().to_string(),
                &inst.both_sides_perfect_matchings().to_string(),
            ],
            &widths,
        );
    }

    println!("\n=== Figure 7: Gap-Eq → Ham, cycles track the Hamming distance ===\n");
    let widths = [6, 10, 10, 10, 12];
    print_header(&["n", "Δ(x,y)", "Ham?", "cycles", "|V(G)|"], &widths);
    for &delta in &[0usize, 1, 2, 5, 10, 25] {
        let n = 50;
        let x = generate::random_bits(n, 77);
        let mut y = x.clone();
        for j in 0..delta {
            y[(j * 7) % n] = !y[(j * 7) % n];
        }
        let inst = gapeq_to_ham(&x, &y);
        let sub = inst.full_subgraph();
        let ham = predicates::is_hamiltonian_cycle(inst.graph(), &sub);
        let cycles = predicates::cycle_count_two_regular(inst.graph(), &sub).unwrap();
        assert_eq!(ham, delta == 0);
        assert_eq!(cycles, delta + 1);
        print_row(
            &[
                &n.to_string(),
                &delta.to_string(),
                &ham.to_string(),
                &cycles.to_string(),
                &inst.graph().node_count().to_string(),
            ],
            &widths,
        );
    }
    println!("\nδ mismatches ⇒ δ+1 cycles ⇒ Ω(δ)-far from Hamiltonian: the gap reduction");
    println!("feeding the one-sided-error bound of Theorem 3.4 (and then Theorem 3.8).");
}
