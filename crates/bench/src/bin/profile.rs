//! Telemetry archive viewer and query engine.
//!
//! ```text
//! profile <telemetry.jsonl> [--top K]
//! profile - [--top K]            # read the archive from stdin
//! profile query <path|dir|->... [--merge] [--metric NAME]
//!                               [--rounds A..B] [--top-k K]
//! ```
//!
//! The bare form renders one **exact-mode** `qdc-telemetry/v1` archive
//! (from `campaign --telemetry-dir`, or any
//! [`TelemetryReport::to_jsonl`] output) as a per-round utilisation
//! table plus the top-k hottest edges; `-` reads the same bytes from
//! stdin, so service endpoints pipe straight in:
//! `curl -sN host/jobs/1/telemetry/0 | profile -`.
//!
//! `profile query` is the archive engine for **streaming**
//! `qdc-telemetry-stream/v1` archives (`campaign --telemetry-dir D
//! --telemetry-stream`). It runs entirely on the streaming parser —
//! record in, record out — so memory stays flat no matter how many
//! rounds an archive holds:
//!
//! * each input is a file, a directory (every
//!   `point_<i>.telemetry.jsonl` inside, in point order), or `-` for
//!   stdin;
//! * default output is one summary block per archive: merged totals,
//!   the utilisation histogram, the classified split, and the top-K
//!   hottest-edge / hottest-node sketches with their `±err` bounds;
//! * `--merge` folds every archive's footer through the associative
//!   merge and prints a single combined summary (bandwidth renders as
//!   `mixed` when archives disagree);
//! * `--metric NAME` switches to series mode: one `r<round> <value>`
//!   line per round (names: `messages`, `bits`, `dropped`,
//!   `corrupted`, `crashes`, `path`, `highway`, `cross`);
//! * `--rounds A..B` restricts series mode to an inclusive window
//!   (`A..`, `..B`, and a single `A` also work);
//! * `--top-k K` caps the sketch rows a summary lists (default 5).
//!
//! The utilisation columns bucket each delivered message against the
//! per-edge budget `B`: `idle` counts directed edge slots that carried
//! nothing, and `<=B/4 … <=B` count messages by how much of the budget
//! they used. For classified profiles (simulation-theorem networks) the
//! path/highway/cross split of each round's bits is shown as well.
//!
//! Exit codes: `0` success, `2` usage, `4` an input cannot be read,
//! `5` an archive is empty, truncated, or otherwise malformed (the
//! parsers report structured errors — they never panic on bad input).

use qdc_bench::query::{expand_input, metric_value, render_summary, RoundWindow, METRICS};
use qdc_bench::{print_header, print_row};
use qdc_congest::{StreamAggregate, StreamReader, StreamRecord, TelemetryReport};
use std::io::BufRead;

fn usage() -> ! {
    eprintln!(
        "usage: profile <telemetry.jsonl> [--top K]\n       \
         profile query <path|dir|->... [--merge] [--metric NAME] [--rounds A..B] [--top-k K]"
    );
    std::process::exit(2);
}

/// One resolved `profile query` input.
enum Source {
    Stdin,
    File(std::path::PathBuf),
}

impl Source {
    fn label(&self) -> String {
        match self {
            Source::Stdin => "-".to_string(),
            Source::File(p) => p.display().to_string(),
        }
    }
}

struct QueryArgs {
    sources: Vec<Source>,
    merge: bool,
    top_k: usize,
    rounds: RoundWindow,
    metric: Option<String>,
}

fn parse_query_args(args: &[String]) -> QueryArgs {
    let mut inputs: Vec<String> = Vec::new();
    let mut merge = false;
    let mut top_k = 5usize;
    let mut rounds = RoundWindow::all();
    let mut metric = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--merge" => merge = true,
            "--top-k" => match it.next().and_then(|v| v.parse().ok()) {
                Some(k) => top_k = k,
                None => usage(),
            },
            "--rounds" => match it.next().map(|v| RoundWindow::parse(v)) {
                Some(Ok(w)) => rounds = w,
                Some(Err(e)) => {
                    eprintln!("profile query: bad --rounds: {e}");
                    usage();
                }
                None => usage(),
            },
            "--metric" => match it.next() {
                Some(name) if METRICS.contains(&name.as_str()) => metric = Some(name.clone()),
                Some(name) => {
                    eprintln!(
                        "profile query: unknown metric `{name}` (one of: {})",
                        METRICS.join(", ")
                    );
                    usage();
                }
                None => usage(),
            },
            "--help" | "-h" => usage(),
            "-" => inputs.push("-".to_string()),
            s if s.starts_with('-') => {
                eprintln!("unknown flag `{s}`");
                usage();
            }
            s => inputs.push(s.to_string()),
        }
    }
    if inputs.is_empty() {
        usage();
    }
    if merge && metric.is_some() {
        eprintln!("profile query: --merge combines footers; --metric streams rounds — pick one");
        usage();
    }
    let mut sources = Vec::new();
    for input in &inputs {
        if input == "-" {
            sources.push(Source::Stdin);
            continue;
        }
        match expand_input(std::path::Path::new(input)) {
            Ok(paths) => sources.extend(paths.into_iter().map(Source::File)),
            Err(e) => {
                eprintln!("profile query: {e}");
                std::process::exit(4);
            }
        }
    }
    QueryArgs {
        sources,
        merge,
        top_k,
        rounds,
        metric,
    }
}

/// Streams one archive record-by-record: prints the metric series when
/// in series mode, and returns the validated footer aggregate. Memory
/// is one record at a time.
fn drain_archive<R: BufRead>(
    input: R,
    metric: Option<&str>,
    window: RoundWindow,
) -> Result<StreamAggregate, String> {
    let mut reader = StreamReader::new(input);
    loop {
        match reader.next_record().map_err(|e| e.to_string())? {
            Some(StreamRecord::Header(_)) => {}
            Some(StreamRecord::Round(r)) => {
                if let Some(name) = metric {
                    if window.contains(r.round) {
                        let value = metric_value(&r, name).expect("metric name validated");
                        println!("r{} {}", r.round, value);
                    }
                }
            }
            Some(StreamRecord::Footer(agg)) => return Ok(*agg),
            None => return Err("archive ended without a footer".to_string()),
        }
    }
}

/// `profile query` — stream, filter, merge, render.
fn query_main(args: &[String]) -> ! {
    let q = parse_query_args(args);
    let multi = q.sources.len() > 1;
    let mut merged: Option<StreamAggregate> = None;
    let mut folded = 0usize;
    for source in &q.sources {
        let label = source.label();
        if multi && !q.merge {
            println!("== {label}");
        }
        let result = match source {
            Source::Stdin => drain_archive(std::io::stdin().lock(), q.metric.as_deref(), q.rounds),
            Source::File(path) => match std::fs::File::open(path) {
                Ok(file) => {
                    drain_archive(std::io::BufReader::new(file), q.metric.as_deref(), q.rounds)
                }
                Err(e) => {
                    eprintln!("profile query: cannot read `{label}`: {e}");
                    std::process::exit(4);
                }
            },
        };
        let agg = match result {
            Ok(agg) => agg,
            Err(e) => {
                eprintln!("profile query: `{label}` is not a valid stream archive: {e}");
                std::process::exit(5);
            }
        };
        folded += 1;
        if q.merge {
            match merged.as_mut() {
                Some(m) => m.merge(&agg),
                None => merged = Some(agg),
            }
        } else if q.metric.is_none() {
            print!("{}", render_summary(&agg, 1, q.top_k));
        }
    }
    if let Some(m) = &merged {
        print!("{}", render_summary(m, folded, q.top_k));
    }
    std::process::exit(0);
}

fn parse_args() -> (String, usize) {
    let mut path = String::new();
    let mut top = 5usize;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--top" => match it.next().and_then(|v| v.parse().ok()) {
                Some(k) => top = k,
                None => usage(),
            },
            "--help" | "-h" => usage(),
            // A bare `-` is the stdin pseudo-path, not a flag.
            "-" if path.is_empty() => path = "-".to_string(),
            s if s.starts_with('-') => {
                eprintln!("unknown flag `{s}`");
                usage();
            }
            s if path.is_empty() => path = s.to_string(),
            _ => usage(),
        }
    }
    if path.is_empty() {
        usage();
    }
    (path, top)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("query") {
        query_main(&argv[1..]);
    }
    let (path, top) = parse_args();
    let text = if path == "-" {
        use std::io::Read as _;
        let mut buf = String::new();
        match std::io::stdin().read_to_string(&mut buf) {
            Ok(_) => buf,
            Err(e) => {
                eprintln!("profile: cannot read stdin: {e}");
                std::process::exit(4);
            }
        }
    } else {
        match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("profile: cannot read `{path}`: {e}");
                std::process::exit(4);
            }
        }
    };
    let report = match TelemetryReport::from_jsonl(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("profile: `{path}` is not a valid telemetry archive: {e}");
            std::process::exit(5);
        }
    };

    println!(
        "profile `{path}`: {} nodes, {} edges, B = {} bits, {} round(s){}",
        report.nodes,
        report.edges,
        report.bandwidth,
        report.rounds.len(),
        if report.classified {
            ", highway/path classified"
        } else {
            ""
        }
    );

    let base: &[&str] = &[
        "round", "msgs", "bits", "idle", "<=B/4", "<=B/2", "<=3B/4", "<=B",
    ];
    let split: &[&str] = &["path", "hwy", "cross"];
    let faults: &[&str] = &["drop", "corr", "crash"];
    let any_faults = report
        .rounds
        .iter()
        .any(|r| r.dropped + r.corrupted_bits + r.crashes > 0);
    let mut cols: Vec<&str> = base.to_vec();
    if report.classified {
        cols.extend_from_slice(split);
    }
    if any_faults {
        cols.extend_from_slice(faults);
    }
    let widths: Vec<usize> = cols.iter().map(|c| c.len().max(7)).collect();
    print_header(&cols, &widths);
    for r in &report.rounds {
        let mut row: Vec<String> = vec![
            r.round.to_string(),
            r.messages.to_string(),
            r.bits.to_string(),
        ];
        row.extend(r.util.iter().map(u64::to_string));
        if report.classified {
            row.extend([
                r.path_bits.to_string(),
                r.highway_bits.to_string(),
                r.cross_bits.to_string(),
            ]);
        }
        if any_faults {
            row.extend([
                r.dropped.to_string(),
                r.corrupted_bits.to_string(),
                r.crashes.to_string(),
            ]);
        }
        let refs: Vec<&str> = row.iter().map(String::as_str).collect();
        print_row(&refs, &widths);
    }

    println!();
    println!("top {top} hottest edges (by delivered bits):");
    let widths = [8, 10, 12, 10, 12];
    print_header(&["edge", "msgs", "bits", "dropped", "corrupted"], &widths);
    for (edge, totals) in report.hottest_edges(top) {
        print_row(
            &[
                &edge.to_string(),
                &totals.messages.to_string(),
                &totals.bits.to_string(),
                &totals.dropped.to_string(),
                &totals.corrupted_bits.to_string(),
            ],
            &widths,
        );
    }
    println!(
        "totals: {} messages, {} bits, {} dropped, {} bits corrupted",
        report.total_messages(),
        report.total_bits(),
        report.total_dropped(),
        report.total_corrupted_bits()
    );
}
